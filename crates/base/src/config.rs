//! Configuration: protocol knobs, failure-detector tuning, and the cost
//! model that grounds simulated latencies in the paper's measured
//! environment constants (Appendix 3).

use crate::time::Dur;

/// Commit-pipeline batching knobs: how the application server groups
/// concurrent request outcomes into decision-log slots.
///
/// The pipeline queue flushes a batch when **any** of these holds:
///
/// * the queue reaches `max_batch` outcomes;
/// * `window` of simulated time passed since the first queued outcome;
/// * the server has no other attempt mid-flight that could still join
///   (idle flush — this is what keeps a sequential client's latency
///   identical to the unbatched protocol even at `max_batch = 64`).
///
/// `max_batch = 1` is the degenerate configuration: every outcome is its
/// own slot, which reproduces the paper's per-attempt `regD` behaviour
/// exactly (a batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchingConfig {
    /// Flush threshold: outcomes per decision-log slot (≥ 1).
    pub max_batch: usize,
    /// Flush deadline: longest a queued outcome may wait for company.
    pub window: Dur,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig { max_batch: 1, window: Dur::ZERO }
    }
}

impl BatchingConfig {
    /// A batching configuration with the given threshold and window.
    pub fn new(max_batch: usize, window: Dur) -> Self {
        BatchingConfig { max_batch: max_batch.max(1), window }
    }

    /// Whether outcomes can ever share a slot.
    pub fn is_batching(&self) -> bool {
        self.max_batch > 1
    }
}

/// Read-path fast-lane knobs: how the application server routes read-only
/// e-Transactions (scripts whose every operation is a `Get`).
///
/// With the lane **disabled** (the default), read-only scripts take the
/// paper's full commit machinery — decision-log slot, WAL append, replica
/// shipment — exactly as before the lane existed (trace-identical). With
/// it **enabled**, the application server sends each read-only script's
/// per-shard calls as direct `Read` messages against committed state: no
/// XA branch, no locks, no consensus. Reads are idempotent, so the
/// write-once `regD` contract they skip was never protecting anything.
///
/// ## Isolation of multi-shard fast reads
///
/// A read that fans out over several shards samples each shard at a
/// different moment, so a naive fan-out could observe a cross-shard write
/// half-applied (shard A post-commit, shard B pre-commit) — an isolation
/// the locking slow path never allows. Multi-shard fast reads therefore
/// run a **snapshot validation** loop: every call goes to the shard
/// *primary* (whose commit position is authoritative), the reply carries
/// that position plus an in-doubt flag over the keys read, and a collect
/// is accepted only when it agrees position-for-position with the
/// previous collect **and** no key has a prepared-but-undecided write.
/// Two such back-to-back collects pin one instant at which every returned
/// value held simultaneously and no spanning transaction was mid-commit —
/// a transactionally atomic snapshot. Disagreeing collects retry (writes
/// landed mid-read); after [`ReadPathConfig::max_snapshot_rounds`]
/// collects the read falls back to the locking slow path, which is always
/// live. Single-shard reads are atomic by construction and skip all of
/// this — one round, follower-servable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadPathConfig {
    /// Route read-only scripts around the commit pipeline.
    pub enabled: bool,
    /// Serve **single-shard** reads from shard *followers* (replication
    /// factor permitting) instead of always hitting the primary. Every
    /// read is stamped with the highest commit-ship position the issuing
    /// application server has observed for the shard, max-folded with the
    /// client's own causality token (`ClientMsg::Request::stamps`); a
    /// follower behind that stamp forwards to the primary instead of
    /// serving stale state.
    ///
    /// The client token makes read-your-writes (and per-client monotonic
    /// reads) hold regardless of which server handles the read: the stamp
    /// travels with the client, so failover to a server that never
    /// observed the write's acknowledgement no longer re-opens the window.
    /// What the gate still cannot see is *other* clients' writes that
    /// neither this server nor this client has observed — the same bound
    /// asymmetric-replication reads give without leases. Lease-based
    /// local reads (which close that window by construction) are the
    /// recorded ROADMAP follow-up.
    ///
    /// Multi-shard reads ignore this flag and always read primaries: the
    /// snapshot validation above needs the authoritative position, which
    /// a lagging follower cannot supply.
    pub follower_reads: bool,
    /// Maximum snapshot-validation collects a multi-shard read may issue
    /// before falling back to the locking slow path (values < 2 behave as
    /// 2 — one collect plus one validation is the minimum that can ever
    /// accept). Only contended keyspaces ever retry; the presets use 4.
    pub max_snapshot_rounds: u32,
}

impl ReadPathConfig {
    /// Fast lane off: reads take the historical commit route.
    pub fn disabled() -> Self {
        ReadPathConfig::default()
    }

    /// Fast lane on, reads served by shard primaries only.
    pub fn primary_only() -> Self {
        ReadPathConfig { enabled: true, follower_reads: false, max_snapshot_rounds: 4 }
    }

    /// Fast lane on, single-shard reads spread over shard followers
    /// (freshness-gated); multi-shard reads stay primary-validated.
    pub fn follower_reads() -> Self {
        ReadPathConfig { enabled: true, follower_reads: true, max_snapshot_rounds: 4 }
    }

    /// The effective collect budget (the configured value, floored at the
    /// minimum that can accept a snapshot).
    pub fn snapshot_rounds(&self) -> u32 {
        self.max_snapshot_rounds.max(2)
    }
}

/// Time-bounded read-lease knobs: how shard primaries let their replicas
/// (and the application servers that route reads at them) serve fast-path
/// reads **without** the per-read freshness-stamp gate.
///
/// With leases **disabled** (the default) the read fast lane behaves
/// exactly as [`ReadPathConfig`] describes: every follower read is gated
/// on the issuing server's freshness stamp and forwards to the primary
/// when the follower trails, and multi-shard snapshot-validation collects
/// go to primaries only. No lease frames, timers, or trace events exist —
/// a leases-off run replays the pre-lease trace byte-for-byte.
///
/// With leases **enabled**, a shard primary grants each follower a lease
/// asserting "serving your applied prefix is authoritative through `T`",
/// renewed by piggybacking on the commit shipments the follower receives
/// anyway (plus a renewal timer that covers write-quiet stretches) and
/// advertised to application servers on `AckDecide`/`AckDecideBatch`,
/// primary-served read replies, and bare `LeaseRenew` frames. An in-lease
/// follower serves any read — including its calls of a multi-shard
/// snapshot-validation collect, which without leases go primary-only —
/// with the server-wide `min_seq` gate replaced by the *client's own*
/// causality floor (so read-your-writes still holds exactly); lease
/// expiry, not per-read gating, bounds staleness. Each grant carries a
/// **floor** (the grantor's ship position at mint): a follower serves
/// in-lease only once its applied prefix has reached the floor, so a
/// renewal can never retroactively bless a prefix older than what the
/// primary had already shipped when it minted.
///
/// ## Why in-lease collects cannot observe a fractured transfer
///
/// Leases change **routing only**. A multi-shard collect is still
/// accepted by the application server's snapshot validation — every
/// reply's position matching its per-replica freshness stamp (`fresh`),
/// or positions unchanged across two consecutive collects (`stable`),
/// with the in-doubt veto on both — positions are monotone, so either
/// proof brackets a common instant at which all replies coexisted.
///
/// What the validation cannot see from an appserver is a cross-shard
/// transaction *already half-applied* at a follower that knows nothing of
/// the other shard's branch. That hole is closed on the **write side**:
/// a lease-granting primary **holds its yes vote** on a cross-shard
/// branch, shipping the branch's in-doubt intent to its followers, and
/// releases the vote only when every follower has acknowledged the intent
/// — or, if an intent frame is lost (they are deliberately never
/// retransmitted), when every lease outstanding at hold time has provably
/// lapsed (grant minting is withheld while the branch is unsettled, so
/// that horizon cannot grow while a hold waits on it). A follower holding
/// a live intent forwards reads to its primary, whose in-doubt veto
/// catches the straddle. Since no coordinator can learn the yes — and
/// hence no sibling shard can commit the transaction — before the
/// release, any collect that observes the transfer's effects anywhere
/// postdates it: the laggard shard's follower either still holds the
/// intent (forwards), has applied the commit too (consistent), or missed
/// the intent frame and is provably out of lease (forwards).
///
/// After a crash, a recovering primary cannot know which leases were
/// outstanding, so it installs a **write-ack fence** of one `duration`:
/// commit acknowledgements are withheld until every lease the deposed
/// incarnation could have granted has provably expired. Followers keep
/// serving their (pre-crash) prefix in-lease meanwhile — consistent,
/// because nothing newer has been acknowledged to anyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLeaseConfig {
    /// Grant, renew and honor read leases on the shard replica groups.
    pub enabled: bool,
    /// How long a grant is authoritative for, on the simulated clock.
    /// Soundness does not depend on it (the vote-hold handshake does
    /// that); raising it trades a longer forward-free window for a longer
    /// partition staleness bound, recovery fence, and vote-escape horizon.
    pub duration: Dur,
    /// How long before expiry the renewal timer fires (the timer period is
    /// `duration - renew_margin`), so an idle follower's lease is renewed
    /// while still comfortably valid.
    pub renew_margin: Dur,
}

impl Default for ReadLeaseConfig {
    fn default() -> Self {
        ReadLeaseConfig::disabled()
    }
}

impl ReadLeaseConfig {
    /// Leases off: the stamp-gated read path, trace-identical to PR 4/5.
    pub fn disabled() -> Self {
        ReadLeaseConfig {
            enabled: false,
            duration: Dur::from_millis(40),
            renew_margin: Dur::from_millis(10),
        }
    }

    /// Leases on at paper-environment scale (Appendix 3 cost model): a
    /// 40 ms grant keeps the staleness bound, recovery fence and
    /// vote-escape horizon each well under a failure-detector timeout.
    pub fn on() -> Self {
        ReadLeaseConfig { enabled: true, ..ReadLeaseConfig::disabled() }
    }

    /// Leases on at [`CostModel::fast_for_tests`] scale: a 2 ms grant,
    /// proportionally shrunk with that model's costs.
    pub fn fast_for_tests() -> Self {
        ReadLeaseConfig {
            enabled: true,
            duration: Dur::from_micros(2_000),
            renew_margin: Dur::from_micros(500),
        }
    }

    /// The renewal-timer period: `duration - renew_margin`, floored at
    /// half the duration so a degenerate margin cannot stall renewal.
    pub fn renew_period(&self) -> Dur {
        let floor = Dur((self.duration.0 / 2).max(1));
        if self.renew_margin < self.duration {
            Dur((self.duration.0 - self.renew_margin.0).max(floor.0))
        } else {
            floor
        }
    }
}

/// Speculative batch execution knobs: whether shard primaries execute a
/// flushed pipeline batch *while* its decision-log slot is still running
/// consensus, instead of strictly after the slot decides.
///
/// With speculation **disabled** (the default), the pipeline is the
/// paper's decide-then-execute shape, byte-for-byte: no extra messages,
/// no extra trace events. With it **enabled**, the application server
/// ships every flushed batch to the shard primaries as a `SpecExec`
/// frame the moment it proposes the batch into a slot; the primary
/// executes the batch against a speculative snapshot layered over
/// committed state — writes buffered per proposed slot, never touching
/// the WAL, the committed map, or follower shipping — and stashes the
/// per-request acknowledgements. When the slot decides, the primary
/// compares the decided batch against the speculated one: on a match the
/// buffered writes are promoted with the usual group WAL append and the
/// stashed acknowledgements released (`SpecHit`); on a mismatch the
/// buffer is discarded and the batch replays on the ordinary
/// decide-then-execute path (`SpecAbort`). Either way the write-once
/// `regD` contract and first-occurrence-in-slot-order arbitration are
/// exactly those of the non-speculative pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationConfig {
    /// Ship flushed batches to shard primaries for speculative execution.
    pub enabled: bool,
    /// Cap on speculation buffers a primary holds at once; when a new
    /// proposal would exceed it, the oldest stash is dropped (harmless —
    /// a dropped stash just means that slot decides the slow way).
    pub max_inflight_slots: usize,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig::disabled()
    }
}

impl SpeculationConfig {
    /// Speculation off: the paper's strict decide-then-execute pipeline.
    pub fn disabled() -> Self {
        SpeculationConfig { enabled: false, max_inflight_slots: 4 }
    }

    /// Speculation on with the default in-flight window.
    pub fn on() -> Self {
        SpeculationConfig { enabled: true, max_inflight_slots: 4 }
    }

    /// The effective buffer cap (the configured value, floored at one —
    /// a zero cap with speculation on would silently disable it).
    pub fn inflight_cap(&self) -> usize {
        self.max_inflight_slots.max(1)
    }
}

/// Decision-log pipelining knobs: how many undecided decision-log slots
/// the proposing application server keeps in flight at once.
///
/// At depth 1 (the default) the log runs one consensus round at a time —
/// exactly the PR 6/7/8 pipeline, byte-for-byte. At depth `K > 1` the log
/// proposes slots `s+1..s+K` as soon as pending outcomes exist, each slot
/// running its own write-once consensus round concurrently; decides may
/// arrive out of order, but promotion/apply stays strictly in slot order
/// behind the log's low-water mark, so the `regD` write-once contract and
/// first-occurrence-in-slot-order arbitration are untouched. With
/// speculation on, the application server ships a `SpecExec` for *every*
/// newly proposed slot, and shard primaries stack per-slot speculation
/// buffers (youngest-first reads); a mismatch at slot `s` cascades — the
/// stash for `s` and every speculative slot above it are discarded, since
/// the slots above were executed against a now-wrong base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Maximum undecided decision-log slots in flight at once (≥ 1).
    pub depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { depth: 1 }
    }
}

impl PipelineConfig {
    /// A pipeline of `depth` concurrent slots, floored at one.
    pub fn new(depth: usize) -> Self {
        PipelineConfig { depth: depth.max(1) }
    }

    /// The effective window (the configured depth, floored at one — a
    /// zero depth would silently stall the log).
    pub fn window(&self) -> usize {
        self.depth.max(1)
    }

    /// True iff more than one slot may be undecided at once.
    pub fn is_pipelined(&self) -> bool {
        self.window() > 1
    }
}

/// Applies an environment override for a scenario knob **only when the
/// scenario did not set the knob explicitly**: an explicit builder call
/// always wins over ambient CI matrix variables. Every env-tunable knob
/// (`ETX_BATCH_SIZE`, `ETX_READ_PATH`, `ETX_READ_LEASES`,
/// `ETX_SPECULATION`, `ETX_PIPELINE_DEPTH`) must route its override
/// through this helper so the precedence rule cannot be reimplemented
/// inconsistently per knob.
pub fn env_override<T>(
    var: &str,
    explicit: bool,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    if explicit {
        return None;
    }
    std::env::var(var).ok().and_then(|v| parse(v.trim()))
}

/// Parses a boolean-ish toggle value: `1`/`on`/`true` enable,
/// `0`/`off`/`false` disable, anything else is ignored.
pub fn parse_toggle(v: &str) -> Option<bool> {
    match v {
        "1" | "on" | "true" => Some(true),
        "0" | "off" | "false" => Some(false),
        _ => None,
    }
}

/// The optional protocol features layered over the paper's core pipeline,
/// gathered in one place: commit-pipeline batching, the read fast lane,
/// time-bounded read leases, and speculative batch execution. The default
/// set is every feature off — the paper-faithful shape, byte-for-byte.
///
/// ## Override precedence (the one rule)
///
/// Every feature knob resolves the same way, strongest first:
///
/// 1. **Explicit builder call** (`.features(..)` or a per-knob method such
///    as `.batching(..)`) — a test that pins a knob means it.
/// 2. **Environment variable** (`ETX_BATCH_SIZE`, `ETX_READ_PATH`,
///    `ETX_READ_LEASES`, `ETX_SPECULATION`) — the CI matrix hook that pins
///    every scenario which left the knob at its default.
/// 3. **Default** — feature off.
///
/// [`FeatureSet::apply_env`] implements steps 2–3 against the explicitness
/// record, routed through [`env_override`] per knob so the rule cannot be
/// reimplemented inconsistently.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FeatureSet {
    /// Commit-pipeline batching: how request outcomes group into
    /// decision-log slots (default: batches of one — the paper's shape).
    pub batching: BatchingConfig,
    /// Read fast lane: consensus-free routing of read-only scripts
    /// (default: disabled — reads take the paper's commit route).
    pub read_path: ReadPathConfig,
    /// Time-bounded read leases on the shard replica groups (default:
    /// disabled — follower reads stay freshness-stamp gated).
    pub read_leases: ReadLeaseConfig,
    /// Speculative batch execution: overlap commit application with the
    /// consensus round (default: disabled — strict decide-then-execute).
    pub speculation: SpeculationConfig,
    /// Decision-log pipelining: a window of concurrent undecided slots
    /// (default: depth 1 — one consensus round at a time, the paper's
    /// shape).
    pub pipeline: PipelineConfig,
}

/// Which [`FeatureSet`] knobs a scenario set explicitly. An explicit knob
/// is immune to its environment variable (precedence rule above); the
/// `.features(..)` builder entry marks all four at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureExplicit {
    /// `.batching(..)` (or `.features(..)`) was called.
    pub batching: bool,
    /// `.read_path(..)` (or `.features(..)`) was called.
    pub read_path: bool,
    /// `.read_leases(..)` (or `.features(..)`) was called.
    pub read_leases: bool,
    /// `.speculation(..)` (or `.features(..)`) was called.
    pub speculation: bool,
    /// `.pipeline(..)` (or `.features(..)`) was called.
    pub pipeline: bool,
}

impl FeatureExplicit {
    /// Every knob explicit — the `.features(..)` builder entry.
    pub fn all() -> Self {
        FeatureExplicit {
            batching: true,
            read_path: true,
            read_leases: true,
            speculation: true,
            pipeline: true,
        }
    }
}

impl FeatureSet {
    /// Applies the environment-variable layer of the precedence rule: each
    /// knob the scenario did not set explicitly may be pinned by its CI
    /// matrix variable. `batch_window` is the flush deadline an env-forced
    /// pipeline depth gets (callers pass a cadence already scaled to the
    /// scenario's cost model, e.g. the cleaner interval).
    ///
    /// * `ETX_BATCH_SIZE=<n>` forces the pipeline depth.
    /// * `ETX_READ_PATH=1|0` forces the read fast lane (with follower
    ///   reads) on or the historical commit route.
    /// * `ETX_READ_LEASES=1|0` forces the fast-test lease preset or the
    ///   stamp-gated route.
    /// * `ETX_SPECULATION=1|0` overlaps batch execution with the consensus
    ///   round or keeps strict decide-then-execute.
    /// * `ETX_PIPELINE_DEPTH=<k>` forces the decision-log window: how many
    ///   undecided slots run consensus concurrently.
    pub fn apply_env(&mut self, explicit: FeatureExplicit, batch_window: Dur) {
        if let Some(size) =
            env_override("ETX_BATCH_SIZE", explicit.batching, |v| v.parse::<usize>().ok())
        {
            let window = if size > 1 { batch_window } else { Dur::ZERO };
            self.batching = BatchingConfig::new(size, window);
        }
        if let Some(on) = env_override("ETX_READ_PATH", explicit.read_path, parse_toggle) {
            self.read_path =
                if on { ReadPathConfig::follower_reads() } else { ReadPathConfig::disabled() };
        }
        if let Some(on) = env_override("ETX_SPECULATION", explicit.speculation, parse_toggle) {
            self.speculation =
                if on { SpeculationConfig::on() } else { SpeculationConfig::disabled() };
        }
        if let Some(depth) =
            env_override("ETX_PIPELINE_DEPTH", explicit.pipeline, |v| v.parse::<usize>().ok())
        {
            self.pipeline = PipelineConfig::new(depth);
        }
        if let Some(on) = env_override("ETX_READ_LEASES", explicit.read_leases, parse_toggle) {
            self.read_leases =
                if on { ReadLeaseConfig::fast_for_tests() } else { ReadLeaseConfig::disabled() };
        }
        // Leases exist to serve the read fast lane; without it there is
        // nothing to lease-cover, so the grant machinery (renewal timers,
        // piggybacked grants, recovery fences) stays out of the schedule
        // entirely. This keeps the lease-on CI leg from perturbing every
        // write-only scenario in the suite.
        if !self.read_path.enabled {
            self.read_leases = ReadLeaseConfig::disabled();
        }
    }
}

/// Tunables of the e-Transaction protocol itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// The client's back-off period (Figure 2 line 3): how long it waits on
    /// the default primary before broadcasting to all application servers.
    pub client_backoff: Dur,
    /// After broadcasting, the client re-broadcasts at this period while
    /// still waiting (implements "keeps retransmitting the request", §4,
    /// against crash/recovery races; duplicates are absorbed by the
    /// protocol's idempotence).
    pub client_rebroadcast: Dur,
    /// Ceiling of the re-broadcast cadence: the gap doubles per
    /// re-broadcast of the same attempt, bounded by this value, and resets
    /// when the attempt advances. Equal to [`client_rebroadcast`] (the
    /// default) the cadence is flat — the paper's constant retransmission.
    /// A larger ceiling keeps a client partitioned away from every server
    /// from flooding the network at full cadence for the whole partition.
    ///
    /// [`client_rebroadcast`]: ProtocolConfig::client_rebroadcast
    pub client_rebroadcast_max: Dur,
    /// Retransmission period of the terminate() repeat-loop (Figure 4
    /// lines 2–6) while waiting for every database's `AckDecide`.
    pub terminate_retry: Dur,
    /// Period of the cleaning thread's scan (Figure 6).
    pub cleaner_interval: Dur,
    /// Period of consensus decision resync (decision re-broadcast /
    /// `DecideReq` pull) — the wo-register `read()` liveness mechanism.
    pub consensus_resync: Dur,
    /// Extra patience given to a round's coordinator before nacking, on top
    /// of failure-detector suspicion. Zero means "FD-driven only".
    pub consensus_round_patience: Dur,
    /// Adaptive routing extension (off = paper-faithful): when on, the
    /// client sends retries to the server that answered it last instead of
    /// always starting at `a1`.
    pub route_to_last_responder: bool,
    /// The optional protocol features (batching, read fast lane, read
    /// leases, speculation), defaulting to all-off — the paper's shape.
    /// See [`FeatureSet`] for the one override-precedence rule.
    pub features: FeatureSet,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            client_backoff: Dur::from_millis(800),
            client_rebroadcast: Dur::from_millis(400),
            client_rebroadcast_max: Dur::from_millis(400),
            terminate_retry: Dur::from_millis(150),
            cleaner_interval: Dur::from_millis(100),
            consensus_resync: Dur::from_millis(120),
            consensus_round_patience: Dur::from_millis(40),
            route_to_last_responder: false,
            features: FeatureSet::default(),
        }
    }
}

/// Heartbeat failure-detector tuning (◇P among application servers, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdConfig {
    /// Heartbeat period.
    pub heartbeat_every: Dur,
    /// Initial suspicion timeout (no heartbeat for this long ⇒ suspect).
    pub initial_timeout: Dur,
    /// Added to a peer's timeout whenever we falsely suspected it — this is
    /// what makes the detector *eventually* accurate.
    pub timeout_increment: Dur,
    /// Upper bound on the adaptive timeout.
    pub max_timeout: Dur,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            heartbeat_every: Dur::from_millis(20),
            initial_timeout: Dur::from_millis(80),
            timeout_increment: Dur::from_millis(40),
            max_timeout: Dur::from_millis(2_000),
        }
    }
}

/// Environment constants, mirroring the measured components of the paper's
/// testbed (Appendix 3, Figure 8): Orbix 2.3 RPC on HP C180s over 10 Mbit
/// Ethernet, Oracle 8.0.3 with XA.
///
/// These constants parameterise *how long things take*; which of them occur,
/// how many times, and on whose critical path is decided by the protocols
/// themselves as they execute in the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// One-way network latency, low bound (half of the paper's 3–5 ms RPC
    /// round trip).
    pub net_min: Dur,
    /// One-way network latency, high bound.
    pub net_max: Dur,
    /// Request dispatch cost at the application server (Figure 8 "start").
    pub start: Dur,
    /// Reply marshalling cost at the application server (Figure 8 "end").
    pub end: Dur,
    /// Business-logic / SQL execution at a database (Figure 8 "SQL",
    /// baseline column).
    pub sql: Dur,
    /// Snapshot-read service time at a database replica: executing a pure
    /// `Get` batch against committed state (no XA bracketing, no locking,
    /// no log force). Charged on a per-replica **serial read lane** — the
    /// single-threaded query executor each replica contributes — which is
    /// why follower reads add real capacity: spreading reads over a shard's
    /// replicas multiplies the lanes.
    pub sql_read: Dur,
    /// Extra SQL-path cost when the manipulation runs inside an XA branch
    /// (the paper's AR/2PC columns show SQL ≈ 3–6 ms above baseline).
    pub sql_xa_overhead: Dur,
    /// Database-side prepare processing (Figure 8 "prepare").
    pub db_prepare: Dur,
    /// Database-side commit processing (Figure 8 "commit").
    pub db_commit: Dur,
    /// Database-side abort processing.
    pub db_abort: Dur,
    /// One synchronous (forced) log write at the 2PC coordinator
    /// (Figure 8 shows ≈ 12.5 ms per forced write).
    pub log_force: Dur,
    /// Multiplicative jitter applied to service times, uniform in
    /// `[1-jitter, 1+jitter]`. The paper reports 90% confidence intervals
    /// under 10% of the mean; 0.04 reproduces that spread.
    pub jitter: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            net_min: Dur::from_micros(1_500),
            net_max: Dur::from_micros(2_500),
            start: Dur::from_millis_f64(3.4),
            end: Dur::from_millis_f64(3.4),
            sql: Dur::from_millis_f64(187.0),
            sql_read: Dur::from_millis_f64(24.0),
            sql_xa_overhead: Dur::from_millis_f64(4.5),
            db_prepare: Dur::from_millis_f64(19.0),
            db_commit: Dur::from_millis_f64(18.0),
            db_abort: Dur::from_millis_f64(9.0),
            log_force: Dur::from_millis_f64(12.5),
            jitter: 0.04,
        }
    }
}

impl CostModel {
    /// A zero-jitter copy (used by step-count experiments where determinism
    /// of the *schedule*, not just the seed, matters).
    pub fn without_jitter(mut self) -> Self {
        self.jitter = 0.0;
        self
    }

    /// A fast variant for unit/integration tests: all service times shrunk
    /// so chaos tests run thousands of schedules per second. Ratios between
    /// components are preserved (so shape assertions still hold).
    pub fn fast_for_tests() -> Self {
        CostModel {
            net_min: Dur::from_micros(100),
            net_max: Dur::from_micros(300),
            start: Dur::from_micros(150),
            end: Dur::from_micros(150),
            sql: Dur::from_micros(2_000),
            sql_read: Dur::from_micros(500),
            sql_xa_overhead: Dur::from_micros(100),
            db_prepare: Dur::from_micros(400),
            db_commit: Dur::from_micros(380),
            db_abort: Dur::from_micros(200),
            log_force: Dur::from_micros(600),
            jitter: 0.05,
        }
    }

    /// Mid-point one-way network latency (used by analytic step costing).
    pub fn net_mean(&self) -> Dur {
        Dur((self.net_min.0 + self.net_max.0) / 2)
    }

    /// Every service time zero and no jitter: nothing stalls on a modelled
    /// cost. On the simulator this collapses latency to pure message
    /// ordering; on the threaded backend it is the honest wall-clock
    /// configuration — throughput bounded by the hardware (threads, locks,
    /// channels), not by sleeps replaying the paper's 1999 testbed.
    pub fn zeroed() -> Self {
        CostModel {
            net_min: Dur::ZERO,
            net_max: Dur::ZERO,
            start: Dur::ZERO,
            end: Dur::ZERO,
            sql: Dur::ZERO,
            sql_read: Dur::ZERO,
            sql_xa_overhead: Dur::ZERO,
            db_prepare: Dur::ZERO,
            db_commit: Dur::ZERO,
            db_abort: Dur::ZERO,
            log_force: Dur::ZERO,
            jitter: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_environment() {
        let c = CostModel::default();
        assert_eq!(c.sql, Dur::from_micros(187_000));
        assert_eq!(c.log_force, Dur::from_micros(12_500));
        // RPC round trip in the paper's environment: 3–5 ms.
        let rtt_min = Dur(c.net_min.0 * 2);
        let rtt_max = Dur(c.net_max.0 * 2);
        assert!(rtt_min >= Dur::from_millis(3));
        assert!(rtt_max <= Dur::from_millis(5));
    }

    #[test]
    fn fast_model_preserves_component_ordering() {
        let f = CostModel::fast_for_tests();
        assert!(f.sql > f.db_prepare);
        assert!(f.db_prepare > f.net_max);
        assert!(f.log_force > f.net_max, "forced IO must dominate a one-way hop");
    }

    #[test]
    fn jitter_strip() {
        let c = CostModel::default().without_jitter();
        assert_eq!(c.jitter, 0.0);
    }

    #[test]
    fn batching_defaults_to_the_paper_shape() {
        let b = BatchingConfig::default();
        assert_eq!(b.max_batch, 1, "degenerate batches of one by default");
        assert!(!b.is_batching());
        assert!(BatchingConfig::new(0, Dur::ZERO).max_batch >= 1, "threshold clamps to 1");
        assert!(BatchingConfig::new(64, Dur::from_millis(2)).is_batching());
    }

    #[test]
    fn read_path_defaults_off_and_presets_compose() {
        let r = ReadPathConfig::default();
        assert!(!r.enabled, "paper-faithful default: reads take the commit route");
        assert!(!r.follower_reads);
        assert_eq!(ReadPathConfig::disabled(), ReadPathConfig::default());
        assert!(ReadPathConfig::primary_only().enabled);
        assert!(!ReadPathConfig::primary_only().follower_reads);
        assert!(ReadPathConfig::follower_reads().enabled);
        assert!(ReadPathConfig::follower_reads().follower_reads);
        assert_eq!(ReadPathConfig::follower_reads().snapshot_rounds(), 4);
        assert_eq!(
            ReadPathConfig::default().snapshot_rounds(),
            2,
            "collect budget floors at collect + validation"
        );
        let c = CostModel::default();
        assert!(c.sql_read < c.sql, "a pure Get batch is cheaper than the full manipulation");
        let f = CostModel::fast_for_tests();
        assert!(f.sql_read < f.sql);
    }

    #[test]
    fn read_leases_default_off_and_presets_compose() {
        let l = ReadLeaseConfig::default();
        assert!(!l.enabled, "paper-faithful default: stamp-gated follower reads");
        assert_eq!(ReadLeaseConfig::disabled(), ReadLeaseConfig::default());
        assert!(ReadLeaseConfig::on().enabled);
        assert!(ReadLeaseConfig::fast_for_tests().enabled);
        // The renewal timer must fire while the previous grant is still
        // comfortably valid, whatever the margin.
        for cfg in [ReadLeaseConfig::on(), ReadLeaseConfig::fast_for_tests()] {
            assert!(cfg.renew_period() < cfg.duration);
            assert!(cfg.renew_period().0 > 0);
        }
        let degenerate = ReadLeaseConfig {
            enabled: true,
            duration: Dur::from_millis(2),
            renew_margin: Dur::from_millis(5),
        };
        assert_eq!(degenerate.renew_period(), Dur::from_millis(1), "floors at duration/2");
        // Soundness of in-lease collects leans on the grant expiring below
        // the exec→commit-visible protocol floor of the matching cost model
        // (SQL execution + prepare + commit is a conservative under-count
        // of that path — the real one adds network hops and a consensus
        // round).
        let paper = CostModel::default();
        assert!(
            ReadLeaseConfig::on().duration
                < Dur(paper.sql.0 + paper.db_prepare.0 + paper.db_commit.0)
        );
        let fast = CostModel::fast_for_tests();
        assert!(
            ReadLeaseConfig::fast_for_tests().duration
                < Dur(fast.sql.0 + fast.db_prepare.0 + fast.db_commit.0)
        );
    }

    #[test]
    fn speculation_defaults_off_and_presets_compose() {
        let s = SpeculationConfig::default();
        assert!(!s.enabled, "paper-faithful default: decide before executing");
        assert_eq!(SpeculationConfig::disabled(), SpeculationConfig::default());
        assert!(SpeculationConfig::on().enabled);
        assert!(SpeculationConfig::on().max_inflight_slots >= 1);
        let zero = SpeculationConfig { enabled: true, max_inflight_slots: 0 };
        assert_eq!(zero.inflight_cap(), 1, "buffer cap floors at one");
    }

    #[test]
    fn pipeline_defaults_to_a_single_slot_and_floors_at_one() {
        let p = PipelineConfig::default();
        assert_eq!(p.depth, 1, "paper-faithful default: one round at a time");
        assert!(!p.is_pipelined());
        assert_eq!(PipelineConfig::new(0).window(), 1, "depth floors at one");
        assert!(!PipelineConfig::new(0).is_pipelined());
        let deep = PipelineConfig::new(4);
        assert_eq!(deep.window(), 4);
        assert!(deep.is_pipelined());
    }

    #[test]
    fn env_override_defers_to_explicit_settings() {
        // The precedence rule all three knobs share: explicit builder call
        // beats env var beats default. (Parsing is exercised without
        // touching the process environment — env mutation in tests races
        // the parallel test runner.)
        assert_eq!(env_override("ETX_NOT_A_REAL_VAR", false, parse_toggle), None);
        assert_eq!(env_override("ETX_NOT_A_REAL_VAR", true, parse_toggle), None);
        assert_eq!(parse_toggle("1"), Some(true));
        assert_eq!(parse_toggle("on"), Some(true));
        assert_eq!(parse_toggle("true"), Some(true));
        assert_eq!(parse_toggle("0"), Some(false));
        assert_eq!(parse_toggle("off"), Some(false));
        assert_eq!(parse_toggle("false"), Some(false));
        assert_eq!(parse_toggle("maybe"), None);
    }

    #[test]
    fn protocol_defaults_are_sane() {
        let p = ProtocolConfig::default();
        assert!(p.client_backoff > p.terminate_retry);
        assert!(!p.route_to_last_responder, "paper-faithful default");
        assert!(!p.features.batching.is_batching(), "paper-faithful default pipeline");
        assert!(!p.features.read_path.enabled, "paper-faithful default read route");
        assert!(!p.features.read_leases.enabled, "paper-faithful default follower gate");
        assert!(!p.features.speculation.enabled, "paper-faithful default execute order");
        assert!(!p.features.pipeline.is_pipelined(), "paper-faithful default slot window");
        let fd = FdConfig::default();
        assert!(fd.initial_timeout > fd.heartbeat_every);
        assert!(fd.max_timeout > fd.initial_timeout);
    }

    #[test]
    fn explicit_features_are_immune_to_env() {
        // An all-explicit set never consults the environment at all (the
        // env closure would otherwise fire on ambient CI matrix variables,
        // making this test flaky under the matrix — immunity is the point).
        let mut f = FeatureSet {
            batching: BatchingConfig::new(8, Dur::from_millis(1)),
            read_path: ReadPathConfig::follower_reads(),
            read_leases: ReadLeaseConfig::fast_for_tests(),
            speculation: SpeculationConfig::on(),
            pipeline: PipelineConfig::new(4),
        };
        let before = f;
        f.apply_env(FeatureExplicit::all(), Dur::from_millis(5));
        assert_eq!(f, before, "explicit knobs beat any environment");
    }

    #[test]
    fn leases_require_the_read_lane() {
        let mut f =
            FeatureSet { read_leases: ReadLeaseConfig::fast_for_tests(), ..FeatureSet::default() };
        f.apply_env(FeatureExplicit::all(), Dur::ZERO);
        assert!(!f.read_leases.enabled, "leases without the fast lane are inert and disabled");
    }

    #[test]
    fn zeroed_cost_model_never_stalls() {
        let z = CostModel::zeroed();
        assert_eq!(z.net_mean(), Dur::ZERO);
        assert_eq!(z.log_force + z.sql + z.start + z.end, Dur::ZERO);
        assert_eq!(z.jitter, 0.0);
    }
}
