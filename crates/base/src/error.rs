//! Error types shared across the workspace.

use crate::ids::RequestId;
use core::fmt;
use std::error::Error;

/// Why a *baseline* client's `issue()` failed. The e-Transaction client
/// never returns these — masking them is the abstraction's purpose (§1).
/// They exist to make the comparison protocols honest about their weaker
/// guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueError {
    /// The client timed out waiting for an answer. The request may or may
    /// not have executed — exactly the ambiguity the paper's introduction
    /// describes ("this does not convey what had actually happened").
    Timeout {
        /// The request whose fate is unknown.
        request: RequestId,
    },
    /// The server reported a failure before completing.
    ServerException {
        /// The failed request.
        request: RequestId,
        /// Server-provided reason.
        reason: String,
    },
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueError::Timeout { request } => {
                write!(f, "request {request} timed out; outcome unknown")
            }
            IssueError::ServerException { request, reason } => {
                write!(f, "request {request} failed at the server: {reason}")
            }
        }
    }
}

impl Error for IssueError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn errors_display_and_are_std_errors() {
        let req = RequestId { client: NodeId(0), seq: 1 };
        let e = IssueError::Timeout { request: req };
        assert!(format!("{e}").contains("outcome unknown"));
        let e2 = IssueError::ServerException { request: req, reason: "db down".into() };
        assert!(format!("{e2}").contains("db down"));
        let _: &dyn Error = &e;
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IssueError>();
    }
}
