//! The fault plane: one nemesis-schedule vocabulary for every runtime.
//!
//! The paper's guarantees (§3: at-most-once A.1–A.3, termination T.1/T.2,
//! validity V.1/V.2) are *fault-tolerance* claims — they mean nothing
//! until crashes, pauses and link failures are actually injected. This
//! module is the backend-neutral half of that story: a small algebra of
//! fault operations ([`FaultOp`]), trigger conditions ([`NemesisWhen`])
//! and schedules ([`NemesisSchedule`]) that both hosts implement through
//! [`crate::runtime::Host::schedule_fault`]:
//!
//! * the deterministic simulator maps every operation onto its existing
//!   virtual-time machinery (crash/recover queue entries, trace triggers,
//!   link blocks), so a schedule replays byte-identically per seed;
//! * the multi-threaded backend applies the *same* operations to real OS
//!   threads: a crash joins the node's thread (stable logs survive for
//!   restart, volatile state does not), a pause parks the thread with its
//!   inbox gated — the SIGSTOP story — and link faults drop, delay or
//!   duplicate real mpsc sends.
//!
//! One semantic difference is deliberate and documented: a [`LinkFault`]
//! with `drop` set *discards* messages on the threaded backend (real
//! loss; the protocol's own retransmission layers must cover it), while
//! the simulator — whose network model is a reliable channel that turns
//! loss into delay — *holds* them and re-injects at heal time. Both
//! honor the paper's §4 channel assumptions in their own regime.
//!
//! Hosts that cannot inject a given fault return a typed
//! [`CapabilityError`] instead of panicking or silently no-opping, so
//! chaos tooling can probe and fail loudly.

use crate::ids::NodeId;
use crate::time::Dur;
use crate::trace::TraceEvent;
use core::fmt;
use std::error::Error;
use std::sync::Arc;

/// A fault-plane request the hosting backend cannot honor. Returned by
/// [`crate::runtime::Host::schedule_fault`] (and the harness entry points
/// layered on it) instead of a panic: the *typed* refusal lets chaos
/// tooling route around a capability gap or fail with full context, while
/// a silently ignored fault would turn a chaos test into a green no-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapabilityError {
    /// Label of the backend that refused (`"sim"`, `"threaded"`, ...).
    pub backend: &'static str,
    /// Label of the refused operation (see [`FaultOp::label`]).
    pub op: &'static str,
}

impl CapabilityError {
    /// Convenience constructor.
    pub fn new(backend: &'static str, op: &'static str) -> Self {
        CapabilityError { backend, op }
    }
}

impl fmt::Display for CapabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the {} backend does not support fault injection ({}); probe \
             Host::supports_fault_injection before scheduling a nemesis",
            self.backend, self.op
        )
    }
}

impl Error for CapabilityError {}

/// What happens to messages on one directed link while a fault is
/// installed. Fields compose: `delay` + `duplicate` delivers two delayed
/// copies; `drop` wins over both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFault {
    /// Messages on the link are stopped. Both backends honor the §4
    /// reliable-channel model: traffic is held at the faulted link and
    /// re-injected when it heals — loss is delay, never absence (a TCP
    /// partition, not UDP loss). That is a *liveness requirement*, not a
    /// softness: consensus advances rounds on suspicion, so a silently
    /// destroyed message to a live coordinator would wedge an instance
    /// forever. Crashes are the genuinely lossy fault on both backends.
    pub drop: bool,
    /// Extra delivery delay added to every message on the link.
    pub delay: Option<Dur>,
    /// Every message on the link is delivered twice (duplicate-absorption
    /// is part of the at-most-once claim, so it deserves direct attack).
    pub duplicate: bool,
}

impl LinkFault {
    /// A fault that loses every message on the link.
    pub fn drop_all() -> Self {
        LinkFault { drop: true, ..LinkFault::default() }
    }

    /// A fault that delays every message on the link by `d`.
    pub fn delay_by(d: Dur) -> Self {
        LinkFault { delay: Some(d), ..LinkFault::default() }
    }

    /// A fault that delivers every message on the link twice.
    pub fn duplicating() -> Self {
        LinkFault { duplicate: true, ..LinkFault::default() }
    }

    /// Whether the fault changes anything at all.
    pub fn is_noop(&self) -> bool {
        !self.drop && self.delay.is_none() && !self.duplicate
    }
}

/// One fault-plane operation, applied by a [`crate::runtime::Host`] when
/// its trigger condition ([`NemesisWhen`]) fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOp {
    /// Crash a node: volatile state is lost, stable storage survives (§2:
    /// "the crash of a process has no impact on its stable storage"). On
    /// the threaded backend this kills and joins the node's OS thread,
    /// preserving its `LogStore` for restart.
    Crash(NodeId),
    /// Recover a previously crashed node: the factory rebuilds the
    /// process, which receives [`crate::runtime::Event::Recovered`] over
    /// its intact stable logs.
    Recover(NodeId),
    /// Crash a node and bring it back `down_for` later (the paper's
    /// good-database crash/recovery cycle in one operation).
    CrashFor {
        /// The victim.
        node: NodeId,
        /// How long it stays down.
        down_for: Dur,
    },
    /// Pause a node: it stops processing messages and timers but loses
    /// nothing — the SIGSTOP story. Its inbox keeps accumulating; on the
    /// threaded backend the OS thread genuinely parks. A paused node is
    /// exactly the "slow process" asynchrony §4 allows, which is why it
    /// must *not* violate safety.
    Pause(NodeId),
    /// Resume a paused node: queued messages and overdue timers are
    /// processed (late, as after a real SIGCONT).
    Resume(NodeId),
    /// Pause a node and resume it `down_for` later.
    PauseFor {
        /// The victim.
        node: NodeId,
        /// How long it stays paused.
        down_for: Dur,
    },
    /// Install a [`LinkFault`] on the directed link `from → to`,
    /// replacing any previous fault on that link. Lasts until
    /// [`FaultOp::HealLink`].
    SetLink {
        /// Sender side.
        from: NodeId,
        /// Receiver side.
        to: NodeId,
        /// What happens to messages meanwhile.
        fault: LinkFault,
    },
    /// Remove the fault on the directed link `from → to` (held messages,
    /// on backends that hold rather than drop, are re-injected).
    HealLink {
        /// Sender side.
        from: NodeId,
        /// Receiver side.
        to: NodeId,
    },
    /// Make the directed link `from → to` lossy for `heal_after`, then
    /// heal it. The bounded form of `SetLink(drop) … HealLink`.
    BlockLink {
        /// Sender side.
        from: NodeId,
        /// Receiver side.
        to: NodeId,
        /// How long the link stays down.
        heal_after: Dur,
    },
    /// Partition two node sets from each other (both directions of every
    /// cross pair) for `heal_after`, then heal every link.
    Partition {
        /// One side.
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
        /// How long the partition lasts.
        heal_after: Dur,
    },
}

impl FaultOp {
    /// Stable label (diagnostics, [`CapabilityError`], fault logs).
    pub fn label(&self) -> &'static str {
        match self {
            FaultOp::Crash(_) => "crash",
            FaultOp::Recover(_) => "recover",
            FaultOp::CrashFor { .. } => "crash-for",
            FaultOp::Pause(_) => "pause",
            FaultOp::Resume(_) => "resume",
            FaultOp::PauseFor { .. } => "pause-for",
            FaultOp::SetLink { .. } => "set-link",
            FaultOp::HealLink { .. } => "heal-link",
            FaultOp::BlockLink { .. } => "block-link",
            FaultOp::Partition { .. } => "partition",
        }
    }
}

/// A trace predicate deciding when a trace-triggered fault fires.
/// `Send + Sync` because the threaded backend's driver scans traces
/// produced by other threads.
pub type TracePred = Arc<dyn Fn(&TraceEvent) -> bool + Send + Sync>;

/// When a scheduled fault applies.
#[derive(Clone)]
pub enum NemesisWhen {
    /// Immediately (or, scheduled before the run starts, at startup).
    Now,
    /// After `Dur` on the host's clock — virtual time offset from the
    /// current instant on the simulator (which is the run start when
    /// scheduled before running), wall-clock offset from run start on the
    /// threaded backend.
    After(Dur),
    /// The first time the predicate matches a trace event (one-shot).
    /// This is how a schedule lands a fault *mid-protocol* — "crash the
    /// primary right after its first vote" — on either backend.
    OnTrace(TracePred),
}

impl NemesisWhen {
    /// Trace-trigger constructor that wraps the closure for you.
    pub fn on_trace(pred: impl Fn(&TraceEvent) -> bool + Send + Sync + 'static) -> Self {
        NemesisWhen::OnTrace(Arc::new(pred))
    }
}

impl fmt::Debug for NemesisWhen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NemesisWhen::Now => write!(f, "Now"),
            NemesisWhen::After(d) => write!(f, "After({d:?})"),
            NemesisWhen::OnTrace(_) => write!(f, "OnTrace(..)"),
        }
    }
}

/// An ordered list of `(when, op)` pairs — the nemesis schedule one run
/// injects. The representation is deliberately host-agnostic: the same
/// value drives the simulator and the threaded backend, which is what
/// makes a chaos scenario portable across runtimes.
#[derive(Debug, Clone, Default)]
pub struct NemesisSchedule {
    /// The schedule, applied in order.
    pub events: Vec<(NemesisWhen, FaultOp)>,
}

impl NemesisSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        NemesisSchedule::default()
    }

    /// Appends an immediate fault.
    pub fn now(mut self, op: FaultOp) -> Self {
        self.events.push((NemesisWhen::Now, op));
        self
    }

    /// Appends a time-triggered fault.
    pub fn at(mut self, after: Dur, op: FaultOp) -> Self {
        self.events.push((NemesisWhen::After(after), op));
        self
    }

    /// Appends a trace-triggered fault.
    pub fn on_trace(
        mut self,
        pred: impl Fn(&TraceEvent) -> bool + Send + Sync + 'static,
        op: FaultOp,
    ) -> Self {
        self.events.push((NemesisWhen::on_trace(pred), op));
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::trace::TraceKind;

    #[test]
    fn capability_error_displays_and_is_std_error() {
        let e = CapabilityError::new("threaded", "pause");
        let msg = format!("{e}");
        assert!(msg.contains("threaded") && msg.contains("pause"));
        let _: &dyn Error = &e;
    }

    #[test]
    fn capability_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CapabilityError>();
        assert_send_sync::<NemesisSchedule>();
    }

    #[test]
    fn link_fault_constructors() {
        assert!(LinkFault::default().is_noop());
        assert!(LinkFault::drop_all().drop);
        assert_eq!(LinkFault::delay_by(Dur(5)).delay, Some(Dur(5)));
        assert!(LinkFault::duplicating().duplicate);
        assert!(!LinkFault::drop_all().is_noop());
    }

    #[test]
    fn schedule_builder_keeps_order() {
        let s = NemesisSchedule::new()
            .at(Dur(10), FaultOp::Crash(NodeId(1)))
            .on_trace(|ev| matches!(ev.kind, TraceKind::Crash), FaultOp::Recover(NodeId(1)))
            .now(FaultOp::Pause(NodeId(2)));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(matches!(s.events[0], (NemesisWhen::After(Dur(10)), FaultOp::Crash(NodeId(1)))));
        assert!(matches!(s.events[2], (NemesisWhen::Now, FaultOp::Pause(NodeId(2)))));
        // The trace predicate survives the round trip.
        let (NemesisWhen::OnTrace(p), _) = &s.events[1] else { panic!("trace trigger") };
        assert!(p(&TraceEvent::new(Time(0), NodeId(0), TraceKind::Crash)));
        assert!(!p(&TraceEvent::new(Time(0), NodeId(0), TraceKind::Recover)));
    }

    #[test]
    fn fault_op_labels_are_stable() {
        assert_eq!(FaultOp::Crash(NodeId(0)).label(), "crash");
        assert_eq!(FaultOp::PauseFor { node: NodeId(0), down_for: Dur(1) }.label(), "pause-for");
        assert_eq!(
            FaultOp::Partition { a: vec![], b: vec![], heal_after: Dur(1) }.label(),
            "partition"
        );
    }

    #[test]
    fn nemesis_when_debug_is_readable() {
        assert_eq!(format!("{:?}", NemesisWhen::Now), "Now");
        assert!(format!("{:?}", NemesisWhen::on_trace(|_| true)).contains("OnTrace"));
    }
}
