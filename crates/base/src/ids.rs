//! Process, request, result and register identities.
//!
//! The paper (§2) distinguishes three kinds of processes — clients `c_i`,
//! application servers `a_i`, and database servers `s_i` — and identifies
//! every result (and its transaction) with an integer `j`. Because this
//! implementation supports many clients and many concurrent requests, the
//! paper's integer `j` generalises to [`ResultId`], which nests the issuing
//! client and request: `(client, request seq, attempt j)`.

use core::fmt;

/// Identity of a process (any tier). Flat id space; the harness assigns
/// contiguous ids per role and records the mapping in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The tier a process belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Front-end client (browser-like; diskless).
    Client,
    /// Stateless middle-tier application server.
    AppServer,
    /// Back-end database server (stateful, XA-style).
    DbServer,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Client => "client",
            Role::AppServer => "appserver",
            Role::DbServer => "dbserver",
        };
        f.write_str(s)
    }
}

/// Unique identity of a client request (§2 "each request is uniquely
/// identified"). A client issues requests one at a time, so `seq` increases
/// monotonically per client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId {
    /// Issuing client.
    pub client: NodeId,
    /// Per-client sequence number, starting at 1.
    pub seq: u64,
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#r{}", self.client, self.seq)
    }
}

/// Unique identity of one *result* (equivalently, of its transaction): the
/// paper's integer `j`, scoped to the request it belongs to. Attempt numbers
/// start at 1 and increase every time the client sees an abort and retries
/// (Figure 2, line 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResultId {
    /// The request this result answers.
    pub request: RequestId,
    /// The paper's `j`: which try this is, starting at 1.
    pub attempt: u32,
}

impl ResultId {
    /// First attempt for a request.
    pub fn first(request: RequestId) -> Self {
        ResultId { request, attempt: 1 }
    }

    /// The identifier the client moves to after an abort (Figure 2 line 10).
    pub fn next_attempt(self) -> Self {
        ResultId { request: self.request, attempt: self.attempt + 1 }
    }

    /// Marker id used by intra-shard replication snapshot log records —
    /// snapshots replicate the whole committed state, not one branch, so
    /// they carry this reserved id (no client ever owns `NodeId(u32::MAX)`).
    pub fn repl_snapshot() -> Self {
        ResultId::first(RequestId { client: NodeId(u32::MAX), seq: 0 })
    }

    /// Marker id used by group WAL records: one durable record framing the
    /// commit records of a whole decided batch belongs to no single branch.
    pub fn group_marker() -> Self {
        ResultId::first(RequestId { client: NodeId(u32::MAX), seq: 1 })
    }
}

impl fmt::Display for ResultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/j{}", self.request, self.attempt)
    }
}

/// Which of the two write-once register arrays a register belongs to (§4,
/// Figure 4): `regA[j]` records the application server that owns attempt `j`,
/// `regD[j]` records the decision (result, outcome) for attempt `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegKind {
    /// `regA` — owner election register.
    Owner,
    /// `regD` — decision register.
    Decision,
    /// `slot[k]` — one position of the sequenced decision log: a write-once
    /// register whose value is a whole *batch* of request outcomes. The
    /// paper's per-attempt `regD[j]` generalises to consecutive slots so a
    /// single consensus round decides many requests at once; the
    /// single-request path is a batch of one.
    Slot,
}

impl fmt::Display for RegKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RegKind::Owner => "regA",
            RegKind::Decision => "regD",
            RegKind::Slot => "slot",
        })
    }
}

/// Identity of one write-once register — also the identity of the consensus
/// instance that implements it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId {
    /// Which array.
    pub kind: RegKind,
    /// Which slot (the paper's `j`, fully scoped).
    pub rid: ResultId,
}

impl RegId {
    /// `regA[rid]`.
    pub fn owner(rid: ResultId) -> Self {
        RegId { kind: RegKind::Owner, rid }
    }
    /// `regD[rid]`.
    pub fn decision(rid: ResultId) -> Self {
        RegId { kind: RegKind::Decision, rid }
    }
    /// `slot[index]` — position `index` of the sequenced decision log. Slots
    /// belong to no client, so the identity is carried in the reserved
    /// `NodeId(u32::MAX)` namespace (like [`ResultId::repl_snapshot`]).
    pub fn slot(index: u64) -> Self {
        RegId {
            kind: RegKind::Slot,
            rid: ResultId {
                request: RequestId { client: NodeId(u32::MAX), seq: index },
                attempt: 0,
            },
        }
    }
    /// The log position of a `slot[..]` register; `None` for `regA`/`regD`.
    pub fn slot_index(&self) -> Option<u64> {
        match self.kind {
            RegKind::Slot => Some(self.rid.request.seq),
            _ => None,
        }
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.slot_index() {
            Some(i) => write!(f, "slot[{i}]"),
            None => write!(f, "{}[{}]", self.kind, self.rid),
        }
    }
}

/// Handle for a pending timer, returned by [`crate::Context::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// Static description of who is who in a run: the membership lists the
/// paper's algorithms take as givens (`alist`, `dlist`, the client set).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Topology {
    /// All client processes.
    pub clients: Vec<NodeId>,
    /// All application servers (`alist`), in order; index 0 is the default
    /// primary `a1`.
    pub app_servers: Vec<NodeId>,
    /// All database servers (`dlist`).
    pub db_servers: Vec<NodeId>,
}

impl Topology {
    /// Builds a topology with the given tier sizes, assigning contiguous ids:
    /// clients first, then app servers, then database servers.
    pub fn new(clients: usize, app_servers: usize, db_servers: usize) -> Self {
        let mut next = 0u32;
        let mut take = |n: usize| {
            let v: Vec<NodeId> = (0..n).map(|i| NodeId(next + i as u32)).collect();
            next += n as u32;
            v
        };
        Topology {
            clients: take(clients),
            app_servers: take(app_servers),
            db_servers: take(db_servers),
        }
    }

    /// Total number of processes.
    pub fn len(&self) -> usize {
        self.clients.len() + self.app_servers.len() + self.db_servers.len()
    }

    /// True when the topology has no processes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The default primary application server `a1` (Figure 2).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no application servers.
    pub fn primary(&self) -> NodeId {
        self.app_servers[0]
    }

    /// Role of a node in this topology, if it belongs to it.
    pub fn role(&self, node: NodeId) -> Option<Role> {
        if self.clients.contains(&node) {
            Some(Role::Client)
        } else if self.app_servers.contains(&node) {
            Some(Role::AppServer)
        } else if self.db_servers.contains(&node) {
            Some(Role::DbServer)
        } else {
            None
        }
    }

    /// Size of a majority quorum among application servers (§4 assumes a
    /// majority of app servers are correct).
    pub fn app_majority(&self) -> usize {
        self.app_servers.len() / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_assigns_contiguous_ids() {
        let t = Topology::new(1, 3, 2);
        assert_eq!(t.clients, vec![NodeId(0)]);
        assert_eq!(t.app_servers, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.db_servers, vec![NodeId(4), NodeId(5)]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.primary(), NodeId(1));
    }

    #[test]
    fn topology_roles() {
        let t = Topology::new(1, 3, 2);
        assert_eq!(t.role(NodeId(0)), Some(Role::Client));
        assert_eq!(t.role(NodeId(2)), Some(Role::AppServer));
        assert_eq!(t.role(NodeId(5)), Some(Role::DbServer));
        assert_eq!(t.role(NodeId(9)), None);
    }

    #[test]
    fn majority_sizes() {
        assert_eq!(Topology::new(1, 3, 1).app_majority(), 2);
        assert_eq!(Topology::new(1, 4, 1).app_majority(), 3);
        assert_eq!(Topology::new(1, 5, 1).app_majority(), 3);
        assert_eq!(Topology::new(1, 7, 1).app_majority(), 4);
    }

    #[test]
    fn result_id_attempt_chain() {
        let rid = ResultId::first(RequestId { client: NodeId(0), seq: 7 });
        assert_eq!(rid.attempt, 1);
        let next = rid.next_attempt();
        assert_eq!(next.attempt, 2);
        assert_eq!(next.request, rid.request);
        assert!(rid < next);
    }

    #[test]
    fn slot_ids_are_ordered_and_distinct_from_registers() {
        let s0 = RegId::slot(0);
        let s7 = RegId::slot(7);
        assert_eq!(s0.slot_index(), Some(0));
        assert_eq!(s7.slot_index(), Some(7));
        assert!(s0 < s7, "slot order follows the log order");
        assert_eq!(format!("{s7}"), "slot[7]");
        let rid = ResultId::first(RequestId { client: NodeId(1), seq: 1 });
        assert_eq!(RegId::owner(rid).slot_index(), None);
        assert_ne!(ResultId::group_marker(), ResultId::repl_snapshot());
    }

    #[test]
    fn display_formats_are_nonempty_and_stable() {
        let rid = ResultId::first(RequestId { client: NodeId(3), seq: 2 });
        assert_eq!(format!("{rid}"), "n3#r2/j1");
        assert_eq!(format!("{}", RegId::owner(rid)), "regA[n3#r2/j1]");
        assert_eq!(format!("{}", RegId::decision(rid)), "regD[n3#r2/j1]");
        assert_eq!(format!("{}", Role::AppServer), "appserver");
    }
}
