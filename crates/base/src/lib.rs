//! # etx-base — shared vocabulary for the e-Transactions workspace
//!
//! This crate holds everything that every tier of the three-tier system must
//! agree on: process identities, time, request/result/decision values, the
//! wire-message vocabulary, write-ahead-log record formats, configuration
//! knobs, trace events, and the runtime abstraction ([`Context`] /
//! [`Process`]) that protocol state machines are written against.
//!
//! The paper this workspace reproduces is Frølund & Guerraoui,
//! *"Implementing e-Transactions with Asynchronous Replication"* (DSN 2000).
//! Section references in doc comments (e.g. "§3", "Figure 5") point into that
//! paper.
//!
//! ## Design notes
//!
//! * All wire messages live here, in [`msg`], as one [`msg::Payload`] enum
//!   with per-layer sub-enums. Every protocol in the workspace shares a
//!   single simulated wire, so a central vocabulary avoids `Any`-downcasts
//!   and keeps the simulation kernel monomorphic.
//! * Protocol code never talks to a concrete runtime: it receives
//!   [`runtime::Event`]s and drives a [`runtime::Context`]. The deterministic
//!   simulator in `etx-sim` is one implementation of that interface.
//!
//! ```
//! use etx_base::ids::{NodeId, RequestId, ResultId};
//!
//! let client = NodeId(0);
//! let req = RequestId { client, seq: 1 };
//! let rid = ResultId { request: req, attempt: 1 };
//! assert_eq!(rid.next_attempt().attempt, 2);
//! ```

pub mod config;
pub mod error;
pub mod fault;
pub mod ids;
pub mod msg;
pub mod retry;
pub mod rng;
pub mod runtime;
pub mod shard;
pub mod time;
pub mod trace;
pub mod value;
pub mod wal;

pub use config::{BatchingConfig, CostModel, FdConfig, ProtocolConfig};
pub use error::IssueError;
pub use fault::{CapabilityError, FaultOp, LinkFault, NemesisSchedule, NemesisWhen, TracePred};
pub use ids::{NodeId, RegId, RegKind, RequestId, ResultId, Role};
pub use msg::Payload;
pub use retry::{AttemptDriver, IssuePlan, RetryTimer};
pub use runtime::{Context, Event, Process};
pub use shard::{ShardId, ShardMap, ShardSpec};
pub use time::{Dur, Time};
pub use value::{Decision, Outcome, Request, ResultValue, Vote};
