//! The wire-message vocabulary shared by every protocol in the workspace.
//!
//! Message names follow the paper's pseudo-code: `[Request, request, j]`,
//! `[Result, j, decision]`, `[Prepare, j]`, `[Vote, j, vote]`,
//! `[Decide, j, outcome]`, `[AckDecide, j]`, `[Ready]` (Figures 2–6), plus
//! the consensus messages that implement wo-registers, failure-detector
//! heartbeats, and the extra messages used by the comparison protocols of
//! Appendix 3 (2PC and primary-backup).

use crate::ids::{NodeId, RegId, RequestId, ResultId};
use crate::time::Time;
use crate::value::{
    DbOp, Decision, ExecStatus, OpOutput, Outcome, RegValue, Request, ShippedEntries, Vote,
};
use std::sync::Arc;

/// Everything that can travel on the simulated wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Client → application server.
    Client(ClientMsg),
    /// Application server → client.
    App(AppMsg),
    /// Application server → database server.
    Db(DbMsg),
    /// Database server → application server.
    DbReply(DbReplyMsg),
    /// Database server ↔ database server (intra-shard asynchronous
    /// replication: commit shipping and recovery catch-up).
    Repl(ReplMsg),
    /// Application server ↔ application server (wo-register consensus).
    Consensus(ConsensusMsg),
    /// Failure-detector traffic among application servers.
    Fd(FdMsg),
    /// Primary-backup baseline traffic (Appendix 3, Figure 7c).
    Pb(PbMsg),
}

impl Payload {
    /// Background traffic (heartbeats) is excluded from causal-depth
    /// accounting so that "communication steps as seen by the client"
    /// (Figure 7) counts only protocol messages.
    pub fn is_background(&self) -> bool {
        matches!(self, Payload::Fd(_))
    }

    /// Short label for traces and message-count tables.
    pub fn label(&self) -> &'static str {
        match self {
            Payload::Client(ClientMsg::Request { .. }) => "Request",
            Payload::App(AppMsg::Result { .. }) => "Result",
            Payload::App(AppMsg::Exception { .. }) => "Exception",
            Payload::Db(DbMsg::Exec { .. }) => "Exec",
            Payload::Db(DbMsg::Prepare { .. }) => "Prepare",
            Payload::Db(DbMsg::Decide { .. }) => "Decide",
            Payload::Db(DbMsg::CommitOnePhase { .. }) => "Commit1P",
            Payload::Db(DbMsg::DecideBatch { .. }) => "DecideBatch",
            Payload::Db(DbMsg::SpecExec { .. }) => "SpecExec",
            Payload::Db(DbMsg::Read { .. }) => "ReadRequest",
            Payload::DbReply(DbReplyMsg::ReadReply { .. }) => "ReadReply",
            Payload::DbReply(DbReplyMsg::ExecReply { .. }) => "ExecReply",
            Payload::DbReply(DbReplyMsg::Vote { .. }) => "Vote",
            Payload::DbReply(DbReplyMsg::AckDecide { .. }) => "AckDecide",
            Payload::DbReply(DbReplyMsg::AckDecideBatch { .. }) => "AckDecideBatch",
            Payload::DbReply(DbReplyMsg::AckCommitOnePhase { .. }) => "AckCommit1P",
            Payload::DbReply(DbReplyMsg::Ready) => "Ready",
            Payload::Repl(ReplMsg::Apply { .. }) => "ReplApply",
            Payload::Repl(ReplMsg::ApplyBatch { .. }) => "ReplApplyBatch",
            Payload::Repl(ReplMsg::LeaseRenew { .. }) => "LeaseRenew",
            Payload::Repl(ReplMsg::Intent { .. }) => "Intent",
            Payload::Repl(ReplMsg::IntentAck { .. }) => "IntentAck",
            Payload::Repl(ReplMsg::SyncReq) => "ReplSyncReq",
            Payload::Repl(ReplMsg::SyncState { .. }) => "ReplSyncState",
            Payload::Consensus(ConsensusMsg::Estimate { .. }) => "CEstimate",
            Payload::Consensus(ConsensusMsg::Propose { .. }) => "CPropose",
            Payload::Consensus(ConsensusMsg::Ack { .. }) => "CAck",
            Payload::Consensus(ConsensusMsg::Nack { .. }) => "CNack",
            Payload::Consensus(ConsensusMsg::Decide { .. }) => "CDecide",
            Payload::Consensus(ConsensusMsg::DecideReq { .. }) => "CDecideReq",
            Payload::Fd(FdMsg::Heartbeat { .. }) => "Heartbeat",
            Payload::Pb(PbMsg::Start { .. }) => "PbStart",
            Payload::Pb(PbMsg::AckStart { .. }) => "PbAckStart",
            Payload::Pb(PbMsg::Outcome { .. }) => "PbOutcome",
            Payload::Pb(PbMsg::AckOutcome { .. }) => "PbAckOutcome",
        }
    }
}

/// Client-originated messages (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// `[Request, request, j]` — submit attempt `j` of a request.
    Request {
        /// The request (business-logic script included).
        request: Request,
        /// The paper's `j`.
        attempt: u32,
        /// Garbage-collection watermark: every request of this client with a
        /// sequence number below `ack_below` is settled and will never be
        /// retransmitted. Sequential clients send their current sequence
        /// number (the paper's implicit acknowledgement); open-loop clients
        /// send their lowest unfinished sequence number, which is what makes
        /// server-side GC safe with many requests in flight.
        ack_below: u64,
        /// Causality token: per shard primary, the highest commit-ship
        /// position any result delivered to this client has carried
        /// ([`AppMsg::Result::stamps`], max-folded). The application server
        /// merges it into its own per-shard freshness observations before
        /// stamping follower reads, so read-your-writes (and per-client
        /// monotonic reads) hold even when a retry lands on a server that
        /// never observed the write's acknowledgement. Empty for baseline
        /// clients, whose protocols have no follower reads.
        stamps: Vec<(NodeId, u64)>,
    },
}

/// Application-server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum AppMsg {
    /// `[Result, j, decision]` — the outcome of attempt `j` (Figure 4
    /// terminate(), line 7).
    Result {
        /// Which attempt this answers.
        rid: ResultId,
        /// The decided (result, outcome) pair.
        decision: Decision,
        /// Freshness stamps backing the client's causality token: for each
        /// shard primary this decision touched, the commit-ship position
        /// the answering server had observed when it replied (which, for a
        /// committed write, includes the write itself). The client
        /// max-folds these into [`ClientMsg::Request::stamps`]. Baseline
        /// protocols send it empty.
        stamps: Vec<(NodeId, u64)>,
    },
    /// Failure notification used by the *unreliable* baseline and 2PC
    /// clients only: the e-Transaction protocol never raises exceptions to
    /// the end user — that is its whole point.
    Exception {
        /// The request that failed.
        request: RequestId,
        /// Human-readable reason.
        reason: String,
    },
}

/// Application-server → database messages (Figure 3 inputs, plus the
/// business-logic manipulation the paper abstracts as `compute()`).
#[derive(Debug, Clone, PartialEq)]
pub enum DbMsg {
    /// Execute business-logic operations inside branch `rid` (transient
    /// manipulation; not committed).
    Exec {
        /// Transaction branch.
        rid: ResultId,
        /// Operations to run (Arc-shared with the script they came from —
        /// an Exec send is a refcount bump, not an op-vector copy).
        ops: Arc<[DbOp]>,
        /// Whether the branch runs under XA bracketing (AR and 2PC do; the
        /// unreliable baseline does not). Figure 8 shows the XA path costs a
        /// few extra milliseconds of SQL time.
        xa: bool,
    },
    /// `[Prepare, j]` — request a vote.
    Prepare {
        /// Transaction branch.
        rid: ResultId,
        /// Whether the transaction spans more than one shard. A
        /// lease-granting primary holds its *yes* vote on a cross-shard
        /// branch until every follower has acknowledged the branch's
        /// [`ReplMsg::Intent`] (or every outstanding lease has provably
        /// lapsed) — the handshake that keeps an in-lease follower from
        /// serving the stale half of a half-applied cross-shard
        /// transaction. Single-shard branches never fracture, so their
        /// votes are never held.
        cross: bool,
    },
    /// `[Decide, j, outcome]` — deliver the decision.
    Decide {
        /// Transaction branch.
        rid: ResultId,
        /// Commit or abort.
        outcome: Outcome,
    },
    /// One-phase commit used by the unreliable baseline (Figure 7a): commit
    /// immediately, no vote.
    CommitOnePhase {
        /// Transaction branch.
        rid: ResultId,
    },
    /// Batched `[Decide]`: the outcomes of one decided decision-log slot
    /// that concern this database, delivered in one message. The database
    /// applies all of them behind a single group WAL append and one
    /// acknowledgement — the commit-path amortisation the pipeline exists
    /// for. Retransmissions fall back to per-branch [`DbMsg::Decide`].
    DecideBatch {
        /// The decision-log slot the batch was decided in. A speculating
        /// database compares this against its stashed speculative
        /// executions (promote on match, discard and replay on mismatch);
        /// without speculation the field is bookkeeping only.
        slot: u64,
        /// `(branch, outcome)` pairs, in slot order.
        entries: Vec<(ResultId, Outcome)>,
    },
    /// Speculative pre-execution of a *proposed* (not yet decided) pipeline
    /// batch: the application server ships this to a shard primary in the
    /// same event that proposes the batch into decision-log slot `slot`.
    /// The database executes the entries against a snapshot overlay —
    /// writes buffered per slot, nothing durable, nothing shipped to
    /// followers — and stashes the would-be acknowledgements until the
    /// slot decides. Purely an optimisation: losing or ignoring this
    /// message costs nothing but the overlap.
    SpecExec {
        /// The decision-log slot the batch was proposed into.
        slot: u64,
        /// Proposed `(branch, outcome)` pairs, in proposal order.
        entries: Vec<(ResultId, Outcome)>,
    },
    /// `[ReadRequest]` — one call of a read-only e-Transaction, executed
    /// against committed state with **no** XA branch, no locks and no
    /// consensus (the read fast path). A shard *follower* receiving one
    /// compares `min_seq` with its applied replication position: behind it,
    /// the follower forwards this same message to its primary instead of
    /// serving stale state; at or past it, the follower serves locally.
    /// With read leases active the follower additionally requires its own
    /// grant window to be unexpired — an expired lease forwards regardless
    /// of position, which is what turns per-read gating into a pure
    /// time-bounded staleness contract.
    Read {
        /// The read-only attempt this call belongs to.
        rid: ResultId,
        /// Index of the call within the attempt's routed script (read-only
        /// scripts fan out one `Read` per touched shard).
        call: u32,
        /// Which snapshot-validation collect of the attempt this send
        /// belongs to (0 for the first; multi-shard reads re-collect until
        /// two consecutive rounds agree — see
        /// [`crate::config::ReadPathConfig::max_snapshot_rounds`]).
        /// Echoed in the reply so the issuer can drop answers from
        /// superseded rounds.
        round: u32,
        /// The `Get` operations to execute (Arc-shared: fan-out, forwards
        /// and retries clone a reference count, not the ops).
        ops: Arc<[DbOp]>,
        /// Freshness gate for follower serving: the maximum of (a) the
        /// highest commit-ship position the issuing application server has
        /// observed for this shard and (b) the client's own causality token
        /// ([`ClientMsg::Request::stamps`]). (b) is what makes
        /// read-your-writes hold unconditionally: even when the read
        /// reaches a server that never saw the write's acknowledgement,
        /// the client's stamp — carried from the write's own
        /// [`AppMsg::Result`] — keeps a lagging follower from serving
        /// pre-write state. With read leases active
        /// ([`crate::config::ReadLeaseConfig`]), the issuer sends only (b):
        /// an in-lease follower owes the client its own writes, while
        /// staleness against everything else is bounded by lease expiry
        /// rather than per-read gating.
        min_seq: u64,
        /// Where the answer must go (preserved across forwards, so the
        /// primary answering a forwarded read replies straight to the
        /// application server).
        reply_to: NodeId,
    },
}

/// Database → application-server messages (Figure 3 outputs).
#[derive(Debug, Clone, PartialEq)]
pub enum DbReplyMsg {
    /// Results of an `Exec` batch.
    ExecReply {
        /// Transaction branch.
        rid: ResultId,
        /// Per-op outputs or a conflict notice.
        status: ExecStatus,
    },
    /// `[Vote, j, vote]`.
    Vote {
        /// Transaction branch.
        rid: ResultId,
        /// Yes or no.
        vote: Vote,
    },
    /// `[AckDecide, j]` — the decision was applied durably.
    AckDecide {
        /// Transaction branch.
        rid: ResultId,
        /// The outcome that was applied (for tracing/assertions).
        outcome: Outcome,
        /// The replying primary's commit-ship position after applying.
        /// Application servers fold this into their per-shard freshness
        /// stamp for follower reads ([`DbMsg::Read::min_seq`]).
        seq: u64,
        /// Read-lease advertisement (piggybacked renewal): when the
        /// primary's replica leases are active, the instant through which
        /// its followers' applied prefixes are authoritative. Application
        /// servers fold it into their per-shard lease view and route reads
        /// — including multi-shard collects — at followers while it is in
        /// force. `None` whenever leases are disabled or withheld.
        lease: Option<Time>,
    },
    /// Baseline's one-phase commit acknowledgement.
    AckCommitOnePhase {
        /// Transaction branch.
        rid: ResultId,
        /// Whether the commit succeeded.
        ok: bool,
    },
    /// Acknowledgement of a whole [`DbMsg::DecideBatch`]: every entry was
    /// applied durably (behind one group WAL append).
    AckDecideBatch {
        /// `(branch, applied outcome)` pairs, mirroring the batch.
        entries: Vec<(ResultId, Outcome)>,
        /// The replying primary's commit-ship position after the batch
        /// (same freshness role as [`DbReplyMsg::AckDecide::seq`]).
        seq: u64,
        /// Read-lease advertisement (same role as
        /// [`DbReplyMsg::AckDecide::lease`]).
        lease: Option<Time>,
    },
    /// Answer to a [`DbMsg::Read`]: the per-op outputs of one read-only
    /// call, served from committed state, plus the consistency metadata
    /// the issuer's snapshot validation runs on (multi-shard reads only
    /// accept a collect once every shard's `pos` matched the previous
    /// collect and no `indoubt` flag is set — that is what makes a
    /// cross-shard fan-out read transactionally atomic instead of a
    /// fractured per-shard sample).
    ReadReply {
        /// The read-only attempt.
        rid: ResultId,
        /// Which call of the attempt's script this answers.
        call: u32,
        /// The collect round this answers ([`DbMsg::Read::round`] echoed);
        /// the issuer ignores replies from superseded rounds.
        round: u32,
        /// Per-op outputs (`Value(..)` per `Get`).
        outputs: Vec<OpOutput>,
        /// The serving replica's commit position when the values were
        /// sampled: the primary's commit-ship counter, or a follower's
        /// applied replication position (same scale — a follower at `pos`
        /// holds exactly the primary's committed state at ship position
        /// `pos`).
        pos: u64,
        /// Whether any **prepared** (in-doubt) branch at the serving
        /// server has a pending write to one of the keys read: a
        /// cross-shard transaction between its first and last per-shard
        /// commit is exactly "prepared at the shards that have not applied
        /// it yet", so this flag is how the laggard shard exposes a
        /// half-applied transaction to the validation check.
        indoubt: bool,
        /// Whether the values were served **under an active read lease**
        /// (a follower inside its grant window, or a primary — trivially
        /// authoritative — with leases enabled). Informational: leases
        /// steer *routing* (which replica a collect lands on), never the
        /// issuer's snapshot validation — a multi-shard collect is
        /// accepted only by the same freshness/stability/no-in-doubt rule
        /// whether its replies were leased or not. (Atomicity under
        /// follower serving is instead guaranteed server-side, by the
        /// cross-shard vote-hold / intent handshake — see
        /// [`ReplMsg::Intent`].)
        leased: bool,
        /// Read-lease advertisement from a serving *primary* (same role as
        /// [`DbReplyMsg::AckDecide::lease`]; what keeps application
        /// servers routing at followers through read-dominated stretches
        /// where no decide traffic would otherwise refresh the view).
        /// Followers send `None` — the advertisement tracks what the
        /// grantor has granted, not what a grantee holds.
        lease: Option<Time>,
    },
    /// `[Ready]` — recovery notification (Figure 3 line 2): "I crashed and
    /// came back; anything I had not prepared is gone."
    Ready,
}

/// Intra-shard replication traffic between the database servers of one
/// replica group. The primary ships every committed write set to its
/// followers *asynchronously* (off the transaction's critical path — the
/// same design move the paper makes for the middle tier); a recovering
/// follower pulls a snapshot from its primary to catch up on anything it
/// missed while down.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplMsg {
    /// Primary → followers: branch `rid` committed with these post-commit
    /// values. Appliers process strictly in `seq` order (buffering gaps),
    /// so a follower's state is always a prefix of the primary's history.
    Apply {
        /// Dense per-primary ship counter, starting at 1.
        seq: u64,
        /// The committed transaction branch.
        rid: ResultId,
        /// Post-commit key values (absolute, not deltas — replay-safe;
        /// Arc-shared so per-follower broadcast copies are refcount bumps).
        entries: ShippedEntries,
        /// Piggybacked read-lease renewal: the follower's applied prefix is
        /// authoritative through this instant (`None` when leases are
        /// disabled, or withheld because a cross-shard branch is live).
        lease: Option<Time>,
    },
    /// Primary → followers: several committed branches shipped in one
    /// message (the batched form of [`ReplMsg::Apply`], produced when a
    /// group commit puts more than one write set in the outbox at once).
    /// Followers process the items exactly as a sequence of `Apply`s.
    ApplyBatch {
        /// `(seq, branch, post-commit key values)` triples, in ship order.
        items: Vec<crate::value::ShippedCommit>,
        /// Piggybacked read-lease renewal (same role as
        /// [`ReplMsg::Apply::lease`]).
        lease: Option<Time>,
    },
    /// Primary → followers *and application servers*: a bare read-lease
    /// renewal, sent at startup and from the renewal timer when no commit
    /// shipment has ridden one recently (write-quiet stretches must not
    /// let follower leases lapse, and a read-only workload must not leave
    /// the application servers' routing tables blind to the grants). The
    /// followers' applied prefixes are authoritative through `through`.
    /// Never sent with leases disabled.
    LeaseRenew {
        /// The instant the grant is valid through.
        through: Time,
        /// Grant floor: the grantor's commit-ship position when the grant
        /// was minted. A follower adopting this renewal may serve reads
        /// under it only once its applied position has reached the floor —
        /// otherwise a bare renewal racing ahead of a lost or delayed
        /// `Apply` would re-authorize a prefix that is *missing* commits
        /// the rest of the system has already observed. (Application
        /// servers ignore the field; it gates serving, not routing.)
        floor: u64,
    },
    /// Lease-granting primary → followers: branch `rid` is a **cross-shard
    /// in-doubt intent**. The primary is holding its yes vote for `rid`
    /// hostage to this notice: until every follower acknowledges (or every
    /// outstanding lease lapses), no coordinator can decide the branch, so
    /// no sibling shard can commit it either. A follower holding a live
    /// intent forwards in-lease reads to the primary — whose ordinary
    /// in-doubt check then vetoes fractured snapshots — until the intent
    /// resolves (the branch's commit applies, or a renewal minted after
    /// the branch settled clears it). Never retransmitted: a lost intent
    /// just means the vote waits out the escape horizon.
    Intent {
        /// The cross-shard branch.
        rid: ResultId,
        /// When the primary recorded the intent (used by followers to
        /// expire intents older than a later renewal's mint instant —
        /// which is how aborted branches, whose outcome never ships, get
        /// cleared).
        at: Time,
    },
    /// Follower → its shard primary: intent recorded; release the vote.
    IntentAck {
        /// The acknowledged branch.
        rid: ResultId,
    },
    /// Follower → its shard primary: "send me your state" (recovery, or a
    /// detected gap in the apply stream).
    SyncReq,
    /// Primary → follower: full committed snapshot at ship position `seq`.
    SyncState {
        /// The primary's ship counter at snapshot time.
        seq: u64,
        /// The primary's committed key values.
        entries: Vec<(String, i64)>,
    },
}

/// Messages of the rotating-coordinator consensus that implements
/// wo-registers (§4; one instance per register).
#[derive(Debug, Clone, PartialEq)]
pub enum ConsensusMsg {
    /// Phase 1: participant → coordinator of `round`; carries the
    /// participant's current estimate and the round in which it was adopted.
    Estimate {
        /// Register / consensus instance.
        inst: RegId,
        /// Destination round.
        round: u32,
        /// Current estimate, if any.
        est: Option<RegValue>,
        /// Round in which `est` was adopted (0 = initial).
        ts: u32,
    },
    /// Phase 2: coordinator → all; proposes a value for the round.
    Propose {
        /// Register / consensus instance.
        inst: RegId,
        /// Round number.
        round: u32,
        /// Proposed value.
        value: RegValue,
    },
    /// Phase 3 positive reply: participant adopted the proposal.
    Ack {
        /// Register / consensus instance.
        inst: RegId,
        /// Round number.
        round: u32,
    },
    /// Phase 3 negative reply: participant suspects the coordinator and
    /// moved on.
    Nack {
        /// Register / consensus instance.
        inst: RegId,
        /// Round the participant abandoned.
        round: u32,
    },
    /// Decision dissemination (reliable broadcast, also re-sent on demand).
    Decide {
        /// Register / consensus instance.
        inst: RegId,
        /// Decided value.
        value: RegValue,
    },
    /// Pull request: "if this instance is decided, tell me" — implements the
    /// liveness half of the wo-register `read()` specification.
    DecideReq {
        /// Register / consensus instance.
        inst: RegId,
    },
}

/// Failure-detector traffic (heartbeat-based ◇P among application servers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdMsg {
    /// Periodic liveness beacon.
    Heartbeat {
        /// Monotonic per-sender sequence number.
        seq: u64,
    },
}

/// Primary-backup replication messages (the comparison protocol the authors
/// adapted from their TR \[18\]; Appendix 3, Figure 7c).
#[derive(Debug, Clone, PartialEq)]
pub enum PbMsg {
    /// Primary → backup: a request entered processing.
    Start {
        /// Attempt being processed.
        rid: ResultId,
        /// The request itself (so the backup can take over).
        request: Request,
    },
    /// Backup → primary: start recorded.
    AckStart {
        /// Attempt acknowledged.
        rid: ResultId,
    },
    /// Primary → backup: the decision for the attempt.
    Outcome {
        /// Attempt decided.
        rid: ResultId,
        /// Decision reached.
        decision: Decision,
    },
    /// Backup → primary: outcome recorded.
    AckOutcome {
        /// Attempt acknowledged.
        rid: ResultId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, RequestId};
    use crate::value::RequestScript;

    fn rid() -> ResultId {
        ResultId::first(RequestId { client: NodeId(0), seq: 1 })
    }

    #[test]
    fn background_classification() {
        assert!(Payload::Fd(FdMsg::Heartbeat { seq: 1 }).is_background());
        assert!(!Payload::Db(DbMsg::Prepare { rid: rid(), cross: false }).is_background());
    }

    #[test]
    fn labels_are_distinct_for_protocol_phases() {
        let labels = [
            Payload::Client(ClientMsg::Request {
                request: Request { id: rid().request, script: RequestScript::default() },
                attempt: 1,
                ack_below: 1,
                stamps: Vec::new(),
            })
            .label(),
            Payload::Db(DbMsg::Prepare { rid: rid(), cross: false }).label(),
            Payload::Db(DbMsg::Decide { rid: rid(), outcome: Outcome::Commit }).label(),
            Payload::Db(DbMsg::DecideBatch { slot: 0, entries: vec![(rid(), Outcome::Commit)] })
                .label(),
            Payload::Db(DbMsg::SpecExec { slot: 0, entries: vec![(rid(), Outcome::Commit)] })
                .label(),
            Payload::Db(DbMsg::Read {
                rid: rid(),
                call: 0,
                round: 0,
                ops: Arc::from([]),
                min_seq: 0,
                reply_to: NodeId(1),
            })
            .label(),
            Payload::DbReply(DbReplyMsg::ReadReply {
                rid: rid(),
                call: 0,
                round: 0,
                outputs: vec![],
                pos: 0,
                indoubt: false,
                leased: false,
                lease: None,
            })
            .label(),
            Payload::DbReply(DbReplyMsg::AckDecideBatch {
                entries: vec![(rid(), Outcome::Commit)],
                seq: 1,
                lease: None,
            })
            .label(),
            Payload::Repl(ReplMsg::ApplyBatch {
                items: vec![(1, rid(), Arc::from([]))],
                lease: None,
            })
            .label(),
            Payload::Repl(ReplMsg::LeaseRenew { through: Time(1), floor: 0 }).label(),
            Payload::Repl(ReplMsg::Intent { rid: rid(), at: Time(1) }).label(),
            Payload::Repl(ReplMsg::IntentAck { rid: rid() }).label(),
            Payload::DbReply(DbReplyMsg::Ready).label(),
            Payload::Consensus(ConsensusMsg::DecideReq { inst: RegId::owner(rid()) }).label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
