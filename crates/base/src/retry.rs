//! The shared client-side retry driver.
//!
//! Every client protocol in the workspace — the e-Transaction client
//! (Figure 2) and the baseline/2PC clients — runs the same mechanical loop
//! underneath its policy: walk a plan of requests, keep one attempt of the
//! current request identified by a [`ResultId`], arm timers against it,
//! discard stale timer fires and stale results, and advance the attempt
//! counter on retry. Before this module each client re-implemented that
//! loop; now they share it, so the batched e-Transaction client and the
//! baseline clients *measure the same thing*: an `Issue` trace per request,
//! identical attempt bookkeeping, identical stale-event filtering. Only the
//! policy layered on top differs (back-off + broadcast vs. timeout +
//! resend/give-up).
//!
//! The driver is runtime-agnostic: it talks to the same [`Context`] the
//! protocols do and owns no policy — it never decides *when* to retry, only
//! keeps the bookkeeping straight when the policy does.

use crate::ids::{NodeId, ResultId, TimerId};
use crate::msg::{ClientMsg, Payload};
use crate::runtime::{Context, TimerTag};
use crate::time::Dur;
use crate::trace::TraceKind;
use crate::value::Request;

/// Which of an attempt's (up to two) timers a call concerns. The
/// e-Transaction client arms `Primary` for the back-off period and
/// `Secondary` for the re-broadcast cadence; baseline clients use only
/// `Primary` (their single patience timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryTimer {
    /// First-line timer (back-off / patience).
    Primary,
    /// Second-line timer (re-broadcast cadence).
    Secondary,
}

/// Plan iteration shared by every client: hands out the next request and
/// emits its `Issue` trace exactly once.
#[derive(Debug, Clone)]
pub struct IssuePlan {
    plan: Vec<Request>,
    next: usize,
}

impl IssuePlan {
    /// A plan over the given requests, issued in order.
    pub fn new(plan: Vec<Request>) -> Self {
        IssuePlan { plan, next: 0 }
    }

    /// Issues the next request (tracing `Issue`), or `None` when the plan
    /// is exhausted.
    pub fn issue_next(&mut self, ctx: &mut dyn Context) -> Option<Request> {
        let request = self.plan.get(self.next)?.clone();
        self.next += 1;
        ctx.trace(TraceKind::Issue { request: request.id });
        Some(request)
    }

    /// Sequence number the next issued request will carry (1-based); one
    /// past the last plan entry once exhausted.
    pub fn next_seq(&self) -> u64 {
        self.plan.get(self.next).map_or(self.plan.len() as u64 + 1, |r| r.id.seq)
    }

    /// Whether every request has been issued.
    pub fn exhausted(&self) -> bool {
        self.next >= self.plan.len()
    }

    /// Total number of requests in the plan.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }
}

/// The attempt chain of one in-flight request: current [`ResultId`],
/// pending timers, and the retry counter. One driver per logical request —
/// sequential clients hold one, open-loop clients hold one per in-flight
/// request.
#[derive(Debug, Clone)]
pub struct AttemptDriver {
    request: Request,
    rid: ResultId,
    timers: [Option<TimerId>; 2],
    retries: u32,
    rebroadcasts: u32,
}

impl AttemptDriver {
    /// Starts the attempt chain for `request` at attempt 1.
    pub fn new(request: Request) -> Self {
        let rid = ResultId::first(request.id);
        AttemptDriver { request, rid, timers: [None, None], retries: 0, rebroadcasts: 0 }
    }

    /// The request this chain answers.
    pub fn request(&self) -> &Request {
        &self.request
    }

    /// The current attempt's identity.
    pub fn rid(&self) -> ResultId {
        self.rid
    }

    /// How many times the policy has retried (attempt advances and
    /// policy-level resends both count).
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Sends the current attempt to `to` as a `[Request, request, j]`
    /// message carrying the client's GC watermark and causality token
    /// (`stamps`; baseline clients pass `&[]`).
    pub fn send_to(
        &self,
        ctx: &mut dyn Context,
        to: NodeId,
        ack_below: u64,
        stamps: &[(NodeId, u64)],
    ) {
        ctx.send(
            to,
            Payload::Client(ClientMsg::Request {
                request: self.request.clone(),
                attempt: self.rid.attempt,
                ack_below,
                stamps: stamps.to_vec(),
            }),
        );
    }

    /// Broadcasts the current attempt to every server in `alist`.
    pub fn broadcast(
        &self,
        ctx: &mut dyn Context,
        alist: &[NodeId],
        ack_below: u64,
        stamps: &[(NodeId, u64)],
    ) {
        for &a in alist {
            self.send_to(ctx, a, ack_below, stamps);
        }
    }

    /// Arms (or replaces) one of the attempt's timers.
    pub fn arm(&mut self, ctx: &mut dyn Context, which: RetryTimer, delay: Dur, tag: TimerTag) {
        let id = ctx.set_timer(delay, tag);
        self.timers[which as usize] = Some(id);
    }

    /// Whether a fired timer is the *current* one for this attempt: the ids
    /// must match and the tag's attempt must be current. Stale fires (an
    /// earlier attempt's timer, or a replaced timer) answer `false` and
    /// must be ignored — this is the filtering every client used to
    /// open-code.
    pub fn timer_is_current(&self, which: RetryTimer, id: TimerId, rid: ResultId) -> bool {
        self.rid == rid && self.timers[which as usize] == Some(id)
    }

    /// Clears a timer slot once its fire has been accepted (a one-shot
    /// timer that fired no longer needs cancelling).
    pub fn clear(&mut self, which: RetryTimer) {
        self.timers[which as usize] = None;
    }

    /// Whether a result for `rid` answers the current attempt.
    pub fn matches(&self, rid: ResultId) -> bool {
        self.rid == rid
    }

    /// Whether a result for `rid` belongs to this request at all (any
    /// attempt — baseline clients accept late results of earlier attempts).
    pub fn same_request(&self, rid: ResultId) -> bool {
        self.rid.request == rid.request
    }

    /// Cancels every pending timer (call before delivering or retrying).
    pub fn cancel_all(&mut self, ctx: &mut dyn Context) {
        for t in &mut self.timers {
            if let Some(id) = t.take() {
                ctx.cancel_timer(id);
            }
        }
    }

    /// Advances to the next attempt (Figure 2 line 10: `j := j + 1`):
    /// cancels timers, bumps the attempt and the retry counter. The
    /// re-broadcast back-off resets with the attempt — a fresh attempt
    /// means a server answered, so the network is evidently passable and
    /// the cadence starts over at its base.
    pub fn next_attempt(&mut self, ctx: &mut dyn Context) -> ResultId {
        self.cancel_all(ctx);
        self.rid = self.rid.next_attempt();
        self.retries += 1;
        self.rebroadcasts = 0;
        self.rid
    }

    /// Records one broadcast of the current attempt and returns how many
    /// came *before* it — the exponent of the bounded re-broadcast
    /// back-off (0 for the initial post-patience broadcast, so the first
    /// gap is the base cadence).
    pub fn note_rebroadcast(&mut self) -> u32 {
        let n = self.rebroadcasts;
        self.rebroadcasts = self.rebroadcasts.saturating_add(1);
        n
    }

    /// Counts a policy-level resend that did *not* advance the attempt
    /// (the baseline's naive resend under at-most-once semantics advances
    /// attempts; the e-Transaction re-broadcast does not — both want a
    /// budget).
    pub fn count_retry(&mut self) -> u32 {
        self.retries += 1;
        self.retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RequestId;
    use crate::value::RequestScript;

    fn req(seq: u64) -> Request {
        Request { id: RequestId { client: NodeId(0), seq }, script: RequestScript::default() }
    }

    #[test]
    fn issue_plan_walks_in_order_and_reports_next_seq() {
        // No Context needed for the pure parts.
        let p = IssuePlan::new(vec![req(1), req(2)]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.next_seq(), 1);
        assert!(!p.exhausted());
    }

    #[test]
    fn attempt_driver_chain_and_matching() {
        let d = AttemptDriver::new(req(3));
        assert_eq!(d.rid().attempt, 1);
        assert_eq!(d.retries(), 0);
        assert!(d.matches(d.rid()));
        assert!(d.same_request(d.rid().next_attempt()));
        assert!(!d.matches(d.rid().next_attempt()));
        let other = ResultId::first(RequestId { client: NodeId(9), seq: 3 });
        assert!(!d.same_request(other));
    }

    #[test]
    fn note_rebroadcast_returns_prior_count() {
        let mut d = AttemptDriver::new(req(1));
        assert_eq!(d.note_rebroadcast(), 0, "first broadcast gets the base gap");
        assert_eq!(d.note_rebroadcast(), 1);
        assert_eq!(d.note_rebroadcast(), 2);
    }

    #[test]
    fn count_retry_tracks_budget_without_attempt_advance() {
        let mut d = AttemptDriver::new(req(1));
        assert_eq!(d.count_retry(), 1);
        assert_eq!(d.count_retry(), 2);
        assert_eq!(d.rid().attempt, 1, "resend budget is independent of the attempt counter");
    }
}
