//! Deterministic pseudo-random number generation for the runtime backends.
//!
//! The simulation kernel deliberately does **not** use the `rand` crate:
//! simulation schedules must stay bit-identical across dependency upgrades,
//! because regression tests pin behaviour to seeds. SplitMix64 is tiny,
//! fast, passes BigCrush when used as a stream, and — most importantly — is
//! fully specified right here. The threaded backend reuses it for per-node
//! process randomness (deterministic per node, though thread interleaving
//! of course is not).

use crate::time::Dur;

/// A seedable SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds ⇒ equal streams, forever.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point without changing other seeds' streams.
        Rng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Uses rejection-free
    /// multiply-shift; bias is < 2⁻⁶⁴ per draw, irrelevant here.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        let span = hi - lo + 1;
        if span == 0 {
            // Full range requested (hi - lo + 1 wrapped): any u64.
            return self.next_u64();
        }
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform duration in `[lo, hi]`.
    pub fn range_dur(&mut self, lo: Dur, hi: Dur) -> Dur {
        Dur(self.range_u64(lo.0.min(hi.0), hi.0.max(lo.0)))
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Multiplicative jitter: scales `d` by a uniform factor in
    /// `[1 - frac, 1 + frac]`.
    pub fn jitter(&mut self, d: Dur, frac: f64) -> Dur {
        if frac <= 0.0 {
            return d;
        }
        let factor = 1.0 - frac + 2.0 * frac * self.next_f64();
        d.scaled(factor)
    }

    /// Derives an independent child generator (stream splitting for
    /// per-purpose determinism: faults vs. network vs. process randomness).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_inclusive() {
        let mut r = Rng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.range_u64(3, 5);
            assert!((3..=5).contains(&x));
            saw_lo |= x == 3;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi, "both endpoints should appear in 10k draws");
    }

    #[test]
    fn range_single_point() {
        let mut r = Rng::new(11);
        assert_eq!(r.range_u64(4, 4), 4);
        assert_eq!(r.range_dur(Dur(10), Dur(10)), Dur(10));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn jitter_within_band() {
        let mut r = Rng::new(17);
        let base = Dur::from_millis(100);
        for _ in 0..1000 {
            let j = r.jitter(base, 0.1);
            assert!(j >= Dur::from_millis(90) && j <= Dur::from_millis(110), "{j:?}");
        }
        assert_eq!(r.jitter(base, 0.0), base);
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_ne!(fa.next_u64(), a.next_u64());
    }

    #[test]
    fn mean_is_centered() {
        let mut r = Rng::new(23);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
