//! The runtime abstraction protocol state machines are written against.
//!
//! The paper's pseudo-code uses blocking threads (`cobegin`/`coend`,
//! `wait until`). This implementation turns every participant into an
//! event-driven state machine: a [`Process`] receives [`Event`]s (messages,
//! timers, lifecycle notifications) and reacts through a [`Context`]
//! (sending messages, arming timers, reading the clock, tracing).
//!
//! Writing protocols against `dyn Context` keeps them runtime-agnostic, and
//! the [`Host`] trait is the other half of that seam: a host owns node
//! registration, the run loop, and the trace sink. Two hosts exist — the
//! deterministic discrete-event simulator in `etx-sim` (virtual clock,
//! byte-identical replay) and the multi-threaded backend in `etx-rt` (one
//! OS thread and inbox per node, real monotonic clocks, wall-clock
//! numbers). The *identical* protocol state machines run on both, and
//! both implement the fault plane ([`Host::schedule_fault`]) — the sim
//! with simulated faults, the threaded backend with real ones.

use crate::fault::{CapabilityError, FaultOp, NemesisSchedule, NemesisWhen};
use crate::ids::{NodeId, RegId, ResultId, TimerId};
use crate::msg::Payload;
use crate::time::{Dur, Time};
use crate::trace::{MsgStats, Trace, TraceKind};
use crate::wal::StableRecord;

/// What a timer means when it fires. Like [`Payload`], timer vocabulary is
/// centralised so the simulation kernel stays monomorphic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerTag {
    /// Client back-off expired without a result: broadcast the request to
    /// all application servers (Figure 2 lines 5–6).
    ClientBackoff {
        /// Attempt the back-off was armed for.
        rid: ResultId,
    },
    /// Client periodic re-broadcast while still waiting (keeps liveness
    /// under crash/recovery without violating the paper's structure).
    ClientRebroadcast {
        /// Attempt being waited on.
        rid: ResultId,
    },
    /// Application server retransmits `[Decide]` until every database
    /// acknowledges (Figure 4 terminate() repeat-loop).
    TerminateRetry {
        /// Attempt being terminated.
        rid: ResultId,
    },
    /// Cleaner thread wake-up (Figure 6 is an infinite loop; here it is a
    /// periodic scan).
    CleanerTick,
    /// The application server's pipeline queue hit its time window: flush
    /// the accumulated outcomes into a decision-log slot even though the
    /// size threshold was not reached.
    BatchFlush,
    /// A shard follower re-requests a recovery snapshot from its primary
    /// until one arrives (intra-shard replication catch-up liveness).
    ReplSyncRetry,
    /// A shard primary's read-lease renewal tick: grant the followers a
    /// fresh lease (unless withheld) and re-arm. Armed only when
    /// [`crate::config::ReadLeaseConfig::enabled`] is set — a leases-off
    /// run schedules no such timer.
    LeaseRenewTick,
    /// A lease-granting primary's held cross-shard vote reaches its escape
    /// horizon: every lease that was outstanding when the vote was held has
    /// provably lapsed, so the vote may be released even though some
    /// follower never acknowledged the branch's intent (covers a crashed
    /// or partitioned follower without blocking commit liveness).
    VoteEscape {
        /// The branch whose vote was held.
        rid: ResultId,
    },
    /// An application server re-issues the unanswered calls of an in-flight
    /// fast-path read, falling back to the shard primaries (covers a read
    /// target that crashed with the request in flight).
    ReadRetry {
        /// The read-only attempt being retried.
        rid: ResultId,
    },
    /// Failure detector: send the next heartbeat round.
    FdHeartbeat,
    /// Failure detector: liveness check for peers.
    FdCheck,
    /// Consensus: coordinator of `round` made no progress; move on.
    ConsensusRound {
        /// Instance concerned.
        inst: RegId,
        /// Round whose coordinator timed out.
        round: u32,
    },
    /// Consensus: periodic re-broadcast of a decision or pull of a missing
    /// one (wo-register `read()` liveness).
    ConsensusResync,
    /// Deferred local work, used to model service-time costs (e.g. the ORB
    /// dispatch cost before the protocol acts on a request).
    Dispatch {
        /// Attempt the deferred work belongs to.
        rid: ResultId,
        /// Which stage to run; meaning is protocol-private.
        stage: u8,
    },
    /// Primary-backup baseline retransmissions / takeover checks.
    PbTick,
    /// 2PC coordinator recovery/retransmission tick.
    TpcTick,
}

/// An input delivered to a [`Process`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// First activation at the start of the run.
    Init,
    /// Re-activation after a crash: volatile state is gone, the stable
    /// storage is intact (§2: "the crash of a process has no impact on its
    /// stable storage").
    Recovered,
    /// A message arrived.
    Message {
        /// Sender.
        from: NodeId,
        /// Content.
        payload: Payload,
    },
    /// A timer armed through [`Context::set_timer`] fired.
    Timer {
        /// Handle returned when arming.
        id: TimerId,
        /// Meaning.
        tag: TimerTag,
    },
    /// Another node crashed. Only delivered to processes that subscribed via
    /// [`Context::subscribe_node_events`] — this is the *perfect* failure
    /// detector the primary-backup baseline requires (Appendix 3) and that
    /// the e-Transaction protocol pointedly does *not* use.
    NodeDown(NodeId),
    /// A crashed node recovered (same subscription).
    NodeUp(NodeId),
}

/// Capabilities a running process can use. Implemented by the simulator
/// (`etx-sim::SimContext`); protocols hold it only for the duration of one
/// event handler.
pub trait Context {
    /// Current time.
    fn now(&self) -> Time;

    /// This process's identity.
    fn me(&self) -> NodeId;

    /// Sends `payload` to `to` over the reliable channel (termination +
    /// integrity as defined in §4).
    fn send(&mut self, to: NodeId, payload: Payload);

    /// Sends after an extra local delay (models service time spent before
    /// the message leaves, e.g. SQL execution or a forced log write).
    fn send_after(&mut self, delay: Dur, to: NodeId, payload: Payload);

    /// Arms a one-shot timer `delay` from now.
    fn set_timer(&mut self, delay: Dur, tag: TimerTag) -> TimerId;

    /// Cancels a pending timer; no-op if it already fired or was cancelled.
    fn cancel_timer(&mut self, id: TimerId);

    /// Deterministic pseudo-randomness (seeded per run by the simulator).
    fn random_u64(&mut self) -> u64;

    /// Appends a record to one of this node's stable logs and returns the
    /// modelled duration of the write. If `forced` is true the duration is
    /// the synchronous-I/O cost from the cost model (the caller must delay
    /// its next protocol action by that much — see [`Context::send_after`]);
    /// otherwise the write is buffered and free.
    fn log_append(&mut self, log: &'static str, rec: StableRecord, forced: bool) -> Dur;

    /// Reads back a stable log (survives crashes).
    fn log_read(&self, log: &'static str) -> Vec<StableRecord>;

    /// Emits a trace event (observability + the experiment harness's raw
    /// data).
    fn trace(&mut self, kind: TraceKind);

    /// Causal depth of the event currently being handled (number of
    /// sequential communication steps since the client issued; Figure 7's
    /// unit of comparison).
    fn depth(&self) -> u32;

    /// Like [`Context::send`] but stamps an explicit causal depth, used when
    /// a protocol aggregates several incoming messages (the next step is
    /// causally after *all* of them, i.e. their max depth).
    fn send_at_depth(&mut self, depth: u32, to: NodeId, payload: Payload);

    /// Like [`Context::send_after`] with an explicit causal depth.
    fn send_after_at_depth(&mut self, depth: u32, delay: Dur, to: NodeId, payload: Payload);

    /// Subscribe to [`Event::NodeDown`]/[`Event::NodeUp`] — the simulator's
    /// perfect-failure-detector oracle. The e-Transaction protocol never
    /// calls this; the primary-backup baseline needs it.
    fn subscribe_node_events(&mut self);
}

/// Convenience helpers layered over the object-safe core.
impl dyn Context + '_ {
    /// Sends the same payload to every node in `dest` (the pseudo-code's
    /// multicast `send ... to alist`; no atomicity assumed, per Appendix 1).
    pub fn multicast(&mut self, dest: &[NodeId], payload: Payload) {
        for &d in dest {
            self.send(d, payload.clone());
        }
    }

    /// Multicast with an explicit causal depth.
    pub fn multicast_at_depth(&mut self, depth: u32, dest: &[NodeId], payload: Payload) {
        for &d in dest {
            self.send_at_depth(depth, d, payload.clone());
        }
    }
}

/// Draws a uniform `f64` in `[0, 1)` from the context's deterministic
/// randomness.
pub fn uniform_f64(ctx: &mut dyn Context) -> f64 {
    // 53 high-quality mantissa bits.
    (ctx.random_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Applies multiplicative jitter to a modelled service time: uniform in
/// `[1 - frac, 1 + frac]`. With `frac = 0` this is the identity, which keeps
/// step-count experiments bit-deterministic.
pub fn jittered(ctx: &mut dyn Context, d: Dur, frac: f64) -> Dur {
    if frac <= 0.0 {
        return d;
    }
    let factor = 1.0 - frac + 2.0 * frac * uniform_f64(ctx);
    d.scaled(factor)
}

/// A protocol participant: one state machine per hosted process.
///
/// `Send` is a supertrait because the threaded runtime backend moves each
/// process onto its own OS thread (and hands it back at shutdown for
/// post-run introspection). Processes are plain owned data, so this costs
/// implementors nothing.
pub trait Process: Send {
    /// Handles one event. All sends/timers go through `ctx`. The handler
    /// runs to completion instantaneously in simulated time; real elapsed
    /// work is modelled with [`Context::send_after`] / dispatch timers.
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event);

    /// Human-readable name for traces.
    fn name(&self) -> &'static str {
        "process"
    }

    /// Optional introspection hook: processes that want hosts (tests, the
    /// harness) to read their concrete state return `Some(self)`. The
    /// default opts out — protocol correctness must never depend on it.
    fn as_any(&self) -> Option<&dyn core::any::Any> {
        None
    }
}

/// A process factory: invoked at node creation and — on hosts that support
/// crash/recovery — again at every recovery (volatile state is rebuilt from
/// scratch; stable storage persists). `Send` because the threaded backend
/// moves factories onto node threads.
pub type NodeFactory = Box<dyn FnMut(NodeId) -> Box<dyn Process> + Send>;

/// Why a host run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The caller's predicate became true.
    Predicate,
    /// The event queue drained completely (simulator only; a threaded run
    /// always has live timers).
    Exhausted,
    /// The host's clock exceeded its configured limit.
    TimeLimit,
    /// More than the configured number of events were processed.
    EventLimit,
}

/// Which runtime backend hosts a scenario. The selector the harness's
/// `ScenarioBuilder::runtime` knob and the `ETX_RUNTIME` environment
/// variable resolve to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RuntimeKind {
    /// The deterministic discrete-event simulator (`etx-sim`): virtual
    /// clock, byte-identical replay per seed, first-class fault injection.
    /// The default — every deterministic test and golden trace lives here.
    #[default]
    Sim,
    /// The multi-threaded backend (`etx-rt`): one OS thread and inbox per
    /// node, real monotonic clocks, wall-clock throughput, and *real* fault
    /// injection — a crash joins the victim's OS thread, a pause parks it.
    /// Not deterministic — by design; golden traces stay on the simulator.
    Threaded,
}

impl RuntimeKind {
    /// Parses an `ETX_RUNTIME` value (`sim` | `threaded`; unknown values
    /// are ignored so a typo falls back rather than silently re-routing
    /// the whole suite).
    pub fn parse(v: &str) -> Option<RuntimeKind> {
        match v {
            "sim" => Some(RuntimeKind::Sim),
            "threaded" | "thread" | "rt" => Some(RuntimeKind::Threaded),
            _ => None,
        }
    }

    /// Stable label (diagnostics, bench tables).
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Sim => "sim",
            RuntimeKind::Threaded => "threaded",
        }
    }
}

/// A runtime backend hosting a set of [`Process`] state machines.
///
/// A host owns the four things the harness seam needs and nothing more:
/// **node registration** (ids contiguous in registration order, so
/// `Topology::new` layouts hold on every backend), the **run loop**, the
/// **trace/stats sink** the experiment accessors read, and the **fault
/// plane** ([`Host::schedule_fault`]) through which one nemesis-schedule
/// representation drives simulated *and* real faults. Everything beyond
/// this — virtual-time stepping, storage inspection mid-run — is a
/// backend capability exposed on the concrete type. Hosts that cannot
/// inject a given fault return [`CapabilityError`] rather than panicking,
/// and advertise themselves through [`Host::supports_fault_injection`].
pub trait Host {
    /// Registers a node. Ids are assigned contiguously in registration
    /// order. The factory builds the process at startup (and again at every
    /// recovery, on hosts that can crash nodes).
    fn add_node(&mut self, name: &'static str, factory: NodeFactory) -> NodeId;

    /// Current time on this host's clock (virtual for the simulator,
    /// monotonic-since-start for the threaded backend).
    fn host_now(&self) -> Time;

    /// Drives the system until `pred` over the collected trace holds, the
    /// host's own limits hit, or (simulator only) the event queue drains.
    fn run_trace_until(&mut self, pred: Box<dyn FnMut(&Trace) -> bool + '_>) -> RunOutcome;

    /// Lets in-flight background work (decide pushes, acks) drain for
    /// `extra` on this host's clock.
    fn quiesce_for(&mut self, extra: Dur);

    /// Read access to the trace sink. Callback-shaped because the threaded
    /// backend keeps the sink behind a lock.
    fn with_trace(&self, f: &mut dyn FnMut(&Trace));

    /// Read access to the message statistics sink.
    fn with_stats(&self, f: &mut dyn FnMut(&MsgStats));

    /// Whether this host can inject faults (crashes, pauses, link faults,
    /// partitions). Chaos tooling may probe this before building a
    /// schedule; [`Host::schedule_fault`] refuses with a typed error on
    /// hosts that answer `false`, so an unsupported backend can never
    /// silently turn a chaos run into a fault-free one.
    fn supports_fault_injection(&self) -> bool;

    /// Schedules one fault-plane operation. `when` decides the trigger
    /// (immediately, after a host-clock delay, or on the first matching
    /// trace event); `op` is what happens. The default implementation is
    /// the capability fence: it refuses with [`CapabilityError`].
    fn schedule_fault(&mut self, when: NemesisWhen, op: FaultOp) -> Result<(), CapabilityError> {
        let _ = when;
        Err(CapabilityError::new("this", op.label()))
    }

    /// Applies a whole [`NemesisSchedule`] in order. Stops at the first
    /// refused operation (all-or-nothing per prefix — a partially applied
    /// schedule is reported, never silently truncated).
    fn apply_schedule(&mut self, schedule: &NemesisSchedule) -> Result<(), CapabilityError> {
        for (when, op) in &schedule.events {
            self.schedule_fault(when.clone(), op.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RequestId;
    use crate::wal::{LOG_COORD, LOG_WAL};

    #[test]
    fn timer_tags_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let rid = ResultId::first(RequestId { client: NodeId(0), seq: 1 });
        let mut set = HashSet::new();
        set.insert(TimerTag::ClientBackoff { rid });
        set.insert(TimerTag::CleanerTick);
        set.insert(TimerTag::CleanerTick);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn log_name_constants_are_distinct() {
        assert_ne!(LOG_WAL, LOG_COORD);
    }
}
