//! Keyspace partitioning: shards and per-shard replica groups.
//!
//! The paper's three-tier model treats each database server as an
//! autonomous XA branch of a distributed transaction (§1–§2); nothing in
//! the protocol requires the back end to be a *single* resource manager.
//! This module supplies the addressing layer that turns the flat `dlist`
//! into a **sharded** tier: the keyspace is partitioned across a fixed
//! number of shards (hash or range partitioning), and each shard is served
//! by a replica group of database servers — a primary that owns the
//! shard's XA branches plus asynchronous followers.
//!
//! Routing is *pure data*: a [`ShardMap`] is built deterministically from a
//! [`ShardSpec`] and the ordered database-server list, so every
//! application-server replica derives the identical map and no coordination
//! is ever needed to agree on where a key lives. Rebuilding a map from the
//! same configuration yields the same routing — a property the test suite
//! checks exhaustively, because silent routing drift would split a key's
//! history across two shards.

use crate::ids::NodeId;
use core::fmt;

/// Identity of one shard (a partition of the keyspace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// How the keyspace is partitioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSpec {
    /// FNV-1a hash of the key, modulo `shards`. Spreads any keyspace
    /// uniformly; the default.
    Hash {
        /// Number of shards (≥ 1).
        shards: u32,
    },
    /// Range partitioning by key string: `boundaries` must be sorted
    /// ascending; a key belongs to the first boundary that exceeds it
    /// (shard count = `boundaries.len() + 1`). Models ordered keyspaces
    /// where locality matters.
    Range {
        /// Sorted split points. Key `k` lands in the first shard whose
        /// boundary is `> k`, or the last shard if none is.
        boundaries: Vec<String>,
    },
}

impl ShardSpec {
    /// Number of shards this spec produces.
    pub fn shard_count(&self) -> u32 {
        match self {
            ShardSpec::Hash { shards } => (*shards).max(1),
            ShardSpec::Range { boundaries } => boundaries.len() as u32 + 1,
        }
    }
}

/// FNV-1a — stable across platforms and releases; the routing function must
/// never change under a rebuild with the same config.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The complete sharding configuration of a run: the partitioning function
/// plus the assignment of database servers to per-shard replica groups.
///
/// Group `g` serves shard `g`; within a group, index 0 is the **primary**
/// (it executes and prepares the shard's XA branches) and the rest are
/// asynchronous followers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    spec: ShardSpec,
    groups: Vec<Vec<NodeId>>,
}

impl ShardMap {
    /// Builds a map by dealing `db_servers` into `spec.shard_count()`
    /// groups of `replication` servers each, in order: shard 0 takes the
    /// first `replication` servers, shard 1 the next, and so on.
    ///
    /// # Panics
    ///
    /// Panics if `db_servers.len() < shard_count * replication` or
    /// `replication == 0` — a shard without a full replica group is a
    /// configuration error, not a runtime condition.
    pub fn build(spec: ShardSpec, db_servers: &[NodeId], replication: usize) -> Self {
        assert!(replication > 0, "replication factor must be at least 1");
        let shards = spec.shard_count() as usize;
        assert!(
            db_servers.len() >= shards * replication,
            "need {} database servers for {shards} shards × {replication} replicas, have {}",
            shards * replication,
            db_servers.len()
        );
        let groups = (0..shards)
            .map(|g| db_servers[g * replication..(g + 1) * replication].to_vec())
            .collect();
        ShardMap { spec, groups }
    }

    /// The degenerate map every pre-sharding scenario implicitly used: each
    /// database server is its own single-replica shard, hash-partitioned.
    /// Explicitly-addressed scripts bypass routing entirely, so this exists
    /// only to give key-addressed scripts *some* home in small setups.
    pub fn one_per_db(db_servers: &[NodeId]) -> Self {
        ShardMap::build(ShardSpec::Hash { shards: db_servers.len().max(1) as u32 }, db_servers, 1)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.groups.len() as u32
    }

    /// Replication factor (replica-group size; uniform across shards).
    pub fn replication(&self) -> usize {
        self.groups.first().map_or(1, Vec::len)
    }

    /// The shard a key belongs to. Total: every key routes to exactly one
    /// shard (the router property tests pin this down).
    pub fn shard_of(&self, key: &str) -> ShardId {
        match &self.spec {
            ShardSpec::Hash { .. } => {
                ShardId((fnv1a(key.as_bytes()) % self.groups.len() as u64) as u32)
            }
            ShardSpec::Range { boundaries } => {
                let idx = boundaries.iter().position(|b| key < b.as_str());
                ShardId(idx.unwrap_or(boundaries.len()) as u32)
            }
        }
    }

    /// The replica group serving a shard (index 0 is the primary).
    pub fn replicas(&self, shard: ShardId) -> &[NodeId] {
        &self.groups[shard.0 as usize]
    }

    /// The primary of a shard: the replica that executes and prepares the
    /// shard's XA branches.
    pub fn primary(&self, shard: ShardId) -> NodeId {
        self.groups[shard.0 as usize][0]
    }

    /// All shard primaries, in shard order.
    pub fn primaries(&self) -> Vec<NodeId> {
        self.groups.iter().map(|g| g[0]).collect()
    }

    /// The shard a database server serves, if it belongs to any group.
    pub fn shard_of_node(&self, node: NodeId) -> Option<ShardId> {
        self.groups.iter().position(|g| g.contains(&node)).map(|i| ShardId(i as u32))
    }

    /// A node's shard peers: the other replicas of its group (empty for
    /// nodes outside every group, and for replication factor 1).
    pub fn peers_of(&self, node: NodeId) -> Vec<NodeId> {
        match self.shard_of_node(node) {
            Some(s) => self.replicas(s).iter().copied().filter(|&n| n != node).collect(),
            None => Vec::new(),
        }
    }

    /// The partitioning spec this map was built from.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (100..100 + n).map(NodeId).collect()
    }

    #[test]
    fn hash_map_deals_groups_in_order() {
        let dbs = nodes(6);
        let m = ShardMap::build(ShardSpec::Hash { shards: 3 }, &dbs, 2);
        assert_eq!(m.shard_count(), 3);
        assert_eq!(m.replication(), 2);
        assert_eq!(m.replicas(ShardId(0)), &dbs[0..2]);
        assert_eq!(m.replicas(ShardId(2)), &dbs[4..6]);
        assert_eq!(m.primary(ShardId(1)), dbs[2]);
        assert_eq!(m.primaries(), vec![dbs[0], dbs[2], dbs[4]]);
    }

    #[test]
    fn every_key_routes_inside_the_shard_space() {
        let m = ShardMap::build(ShardSpec::Hash { shards: 4 }, &nodes(4), 1);
        for i in 0..1000 {
            let s = m.shard_of(&format!("key{i}"));
            assert!(s.0 < 4);
        }
    }

    #[test]
    fn rebuild_with_same_config_routes_identically() {
        let dbs = nodes(8);
        let a = ShardMap::build(ShardSpec::Hash { shards: 4 }, &dbs, 2);
        let b = ShardMap::build(ShardSpec::Hash { shards: 4 }, &dbs, 2);
        assert_eq!(a, b);
        for i in 0..200 {
            let k = format!("acct{i}");
            assert_eq!(a.shard_of(&k), b.shard_of(&k));
        }
    }

    #[test]
    fn range_partitioning_respects_boundaries() {
        let m = ShardMap::build(
            ShardSpec::Range { boundaries: vec!["g".into(), "p".into()] },
            &nodes(3),
            1,
        );
        assert_eq!(m.shard_count(), 3);
        assert_eq!(m.shard_of("apple"), ShardId(0));
        assert_eq!(m.shard_of("grape"), ShardId(1));
        assert_eq!(m.shard_of("melon"), ShardId(1));
        assert_eq!(m.shard_of("pear"), ShardId(2));
        assert_eq!(m.shard_of("zebra"), ShardId(2));
    }

    #[test]
    fn node_to_shard_back_references() {
        let dbs = nodes(4);
        let m = ShardMap::build(ShardSpec::Hash { shards: 2 }, &dbs, 2);
        assert_eq!(m.shard_of_node(dbs[0]), Some(ShardId(0)));
        assert_eq!(m.shard_of_node(dbs[3]), Some(ShardId(1)));
        assert_eq!(m.shard_of_node(NodeId(9)), None);
        assert_eq!(m.peers_of(dbs[0]), vec![dbs[1]]);
        assert_eq!(m.peers_of(NodeId(9)), Vec::<NodeId>::new());
    }

    #[test]
    fn one_per_db_matches_flat_topologies() {
        let dbs = nodes(3);
        let m = ShardMap::one_per_db(&dbs);
        assert_eq!(m.shard_count(), 3);
        assert_eq!(m.replication(), 1);
        for (i, &db) in dbs.iter().enumerate() {
            assert_eq!(m.primary(ShardId(i as u32)), db);
            assert!(m.peers_of(db).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "need 8 database servers")]
    fn underprovisioned_group_is_a_config_error() {
        ShardMap::build(ShardSpec::Hash { shards: 4 }, &nodes(6), 2);
    }

    #[test]
    fn display_and_spec_accessors() {
        let m = ShardMap::one_per_db(&nodes(2));
        assert_eq!(format!("{}", ShardId(3)), "shard3");
        assert_eq!(m.spec().shard_count(), 2);
    }
}
