//! Simulated time.
//!
//! The simulation clock counts microseconds from the start of the run. The
//! paper reports latencies in milliseconds with one decimal (Figure 8), so
//! microsecond resolution is ample while keeping arithmetic in integers —
//! floating-point time is a classic source of non-determinism in discrete
//! event simulators.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The run origin.
    pub const ZERO: Time = Time(0);

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(earlier <= self, "since() called with a later instant");
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// A duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000)
    }

    /// A duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us)
    }

    /// A duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000)
    }

    /// A duration from fractional milliseconds (rounded to the nearest
    /// microsecond; negative inputs clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Dur {
        Dur((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// This duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Scales the duration by a factor (clamped at zero).
    pub fn scaled(self, factor: f64) -> Dur {
        Dur((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// Integer division (e.g. for halving back-off periods).
    #[allow(clippy::should_implement_trait)] // zero-divisor-clamping semantics, not ops::Div
    pub fn div(self, d: u64) -> Dur {
        Dur(self.0 / d.max(1))
    }

    /// Saturating sum of durations.
    pub fn saturating_add(self, other: Dur) -> Dur {
        Dur(self.0.saturating_add(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        self.since(rhs)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::ZERO + Dur::from_millis(5) + Dur::from_micros(250);
        assert_eq!(t, Time(5_250));
        assert_eq!(t - Time(250), Dur::from_millis(5));
        assert_eq!(t.as_millis_f64(), 5.25);
    }

    #[test]
    fn conversions() {
        assert_eq!(Dur::from_secs(2), Dur(2_000_000));
        assert_eq!(Dur::from_millis_f64(3.5), Dur(3_500));
        assert_eq!(Dur::from_millis_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_millis(4).as_millis_f64(), 4.0);
    }

    #[test]
    fn scaling_and_division() {
        assert_eq!(Dur::from_millis(10).scaled(1.5), Dur(15_000));
        assert_eq!(Dur::from_millis(10).scaled(-2.0), Dur::ZERO);
        assert_eq!(Dur::from_millis(10).div(4), Dur(2_500));
        assert_eq!(Dur::from_millis(10).div(0), Dur(10_000));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Time(1_500)), "1.500ms");
        assert_eq!(format!("{}", Dur::from_millis(2)), "2.000ms");
    }
}
