//! Trace events: the raw observable record of a run.
//!
//! Every run produces a totally ordered trace (simulated time, then a
//! deterministic tie-break). The experiment harness derives everything from
//! it: the Figure 8 latency breakdown, the Figure 7 step counts, and —
//! crucially — the *history* against which the e-Transaction properties
//! (T.1, T.2, A.1–A.3, V.1, V.2 of §3) are checked after the fact.

use crate::ids::{NodeId, RegId, RequestId, ResultId};
use crate::time::{Dur, Time};
use crate::value::{Outcome, Vote};
use core::fmt;

/// Latency components of the Figure 8 table. The paper attributes measured
/// client latency to these buckets; we do the same from trace spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Request dispatch at the application server ("start" row).
    Start,
    /// Reply marshalling at the application server ("end" row).
    End,
    /// Database commit processing.
    Commit,
    /// Database prepare processing (vote).
    Prepare,
    /// Business-logic / SQL execution at the database.
    Sql,
    /// Durable record of *processing started*: forced coordinator log write
    /// (2PC) or `regA` wo-register write (asynchronous replication).
    LogStart,
    /// Durable record of *the outcome*: forced coordinator log write (2PC)
    /// or `regD` wo-register write (asynchronous replication).
    LogOutcome,
}

impl Component {
    /// All components, in the paper's row order.
    pub const ALL: [Component; 7] = [
        Component::Start,
        Component::End,
        Component::Commit,
        Component::Prepare,
        Component::Sql,
        Component::LogStart,
        Component::LogOutcome,
    ];

    /// Row label used in Figure 8.
    pub fn label(self) -> &'static str {
        match self {
            Component::Start => "start",
            Component::End => "end",
            Component::Commit => "commit",
            Component::Prepare => "prepare",
            Component::Sql => "SQL",
            Component::LogStart => "log-start",
            Component::LogOutcome => "log-outcome",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened (simulated clock).
    pub at: Time,
    /// Where it happened.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// The vocabulary of observable happenings.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// Client invoked `issue()` (Figure 2).
    Issue {
        /// The request issued.
        request: RequestId,
    },
    /// Client delivered a result to the end user: `issue()` returned.
    Deliver {
        /// The attempt whose result was delivered.
        rid: ResultId,
        /// Outcome carried by the delivered decision (must be commit —
        /// property A.1 is checked from this).
        outcome: Outcome,
        /// Client-visible causal depth (communication steps, Figure 7).
        steps: u32,
    },
    /// A baseline client gave up with an exception (never emitted by the
    /// e-Transaction client).
    Exception {
        /// The failed request.
        request: RequestId,
    },
    /// The e-Transaction client observed an abort for `rid` and moved to
    /// the next attempt (Figure 2 line 10).
    ClientRetry {
        /// The aborted attempt.
        rid: ResultId,
    },
    /// An application server computed a result for a request (Figure 5
    /// line 8) — ground truth for validity V.1.
    Computed {
        /// The attempt computed.
        rid: ResultId,
    },
    /// A database voted on a branch (T.2's antecedent; V.2's evidence).
    DbVote {
        /// Branch voted on.
        rid: ResultId,
        /// The vote.
        vote: Vote,
    },
    /// A database applied a decision (commit/abort applied durably) —
    /// evidence for T.2, A.2, A.3.
    DbDecide {
        /// Branch decided.
        rid: ResultId,
        /// Applied outcome.
        outcome: Outcome,
    },
    /// An application server routed a key-addressed script into per-shard
    /// XA branches (evidence for fast-path and fan-out assertions).
    ShardRoute {
        /// The attempt routed.
        rid: ResultId,
        /// How many distinct shards its branches span.
        shards: u32,
    },
    /// A follower database applied replicated committed state from its
    /// shard primary (asynchronous intra-shard replication).
    DbReplicated {
        /// The branch whose commit was replicated.
        rid: ResultId,
    },
    /// An application server classified an attempt as read-only and routed
    /// it around the commit pipeline: no decision-log slot, no WAL append,
    /// no replica shipment — direct snapshot reads against the shard
    /// replicas (the read fast path).
    ReadFastPath {
        /// The read-only attempt.
        rid: ResultId,
        /// How many shard calls it fans out into.
        shards: u32,
    },
    /// A shard **follower** served a fast-path read locally: its applied
    /// replication position was at or past the read's freshness stamp.
    FollowerRead {
        /// The read-only attempt served.
        rid: ResultId,
    },
    /// A multi-shard fast-path read's collect disagreed with its
    /// predecessor (a shard's commit position moved, or a read key had an
    /// in-doubt write) and the issuer started another collect — the
    /// snapshot-validation loop that keeps cross-shard fan-out reads
    /// transactionally atomic.
    ReadSnapshotRound {
        /// The read-only attempt being re-collected.
        rid: ResultId,
        /// The collect round just issued (1 = first validation re-collect).
        round: u32,
    },
    /// A multi-shard fast-path read exhausted its snapshot-validation
    /// budget ([`crate::config::ReadPathConfig::max_snapshot_rounds`]) and
    /// fell back to the locking slow path (always live under contention).
    ReadFallback {
        /// The attempt re-routed through the commit machinery.
        rid: ResultId,
        /// Collects spent before giving up.
        rounds: u32,
    },
    /// A lagging shard follower refused to serve a fast-path read and
    /// forwarded it to its primary: its applied replication position was
    /// behind the read's freshness stamp (the read-your-writes gate).
    ReadForwarded {
        /// The read-only attempt forwarded.
        rid: ResultId,
        /// The follower's applied replication position.
        have: u64,
        /// The read's freshness stamp it fell short of.
        need: u64,
    },
    /// The issuer's retry backstop re-sent a fast-path read's unanswered
    /// calls (a crashed replica or a lost message must not stall an
    /// idempotent read). Only emitted by the read fast lane.
    ReadRetried {
        /// The read-only attempt being chased.
        rid: ResultId,
        /// Consecutive backstop firings without an intervening collect
        /// round (drives the exponential back-off; reset when a new
        /// snapshot-validation round starts).
        backoff: u32,
    },
    /// A shard primary's renewal timer granted its followers a fresh read
    /// lease: their applied prefixes are authoritative through `through`.
    /// (Piggybacked renewals on commit shipments are not traced — they
    /// ride existing messages; this event marks the timer-driven grants
    /// that keep leases alive through write-quiet stretches.)
    LeaseGrant {
        /// The instant the grant is valid through.
        through: Time,
    },
    /// A shard follower refused to serve a fast-path read because its read
    /// lease had expired (it forwards to the primary, like a stamp-gated
    /// lagging follower — `ReadForwarded` follows this event).
    LeaseExpired {
        /// The read-only attempt refused.
        rid: ResultId,
    },
    /// A lease-granting shard primary held its yes vote on a cross-shard
    /// branch until its followers acknowledged the branch's in-doubt
    /// intent (or every outstanding lease lapsed) — the handshake that
    /// keeps an in-lease follower from serving the stale half of a
    /// half-applied cross-shard transaction.
    VoteHeld {
        /// The branch whose vote was held.
        rid: ResultId,
    },
    /// A recovering shard primary installed its write-ack fence: commit
    /// acknowledgements are withheld until `until`, by which point every
    /// read lease the deposed incarnation could have granted has expired —
    /// the drain that keeps pre-crash in-lease follower reads consistent
    /// with what has been acknowledged.
    LeaseFence {
        /// When the fence lifts.
        until: Time,
    },
    /// A wo-register reached a decision at this node (first local knowledge).
    RegDecided {
        /// Which register.
        reg: RegId,
    },
    /// An application server applied a decided decision-log slot: `len`
    /// request outcomes became final in one consensus round. Emitted by the
    /// first in-order apply at each server (once per slot per server).
    BatchDecided {
        /// Log position of the slot.
        slot: u64,
        /// Number of first-occurrence outcomes the slot carried here.
        len: u32,
    },
    /// A database appended one group WAL record framing `len` member
    /// records (group commit: one durable append covers the whole batch).
    GroupAppend {
        /// Number of framed records.
        len: u32,
    },
    /// A shard primary speculatively executed a proposed pipeline batch
    /// against a snapshot overlay while the batch's decision-log slot was
    /// still running consensus: writes buffered per slot, nothing durable,
    /// nothing shipped.
    SpecExec {
        /// The decision-log slot the batch was proposed into.
        slot: u64,
        /// Number of proposed outcomes executed speculatively.
        len: u32,
    },
    /// The decided slot matched the speculated batch: the primary promoted
    /// the buffered writes with the ordinary (group) WAL append and
    /// released the stashed acknowledgements instantly.
    SpecHit {
        /// The decided slot.
        slot: u64,
        /// Number of outcomes whose speculative execution was promoted.
        len: u32,
    },
    /// The decided slot diverged from the speculated batch (another
    /// proposer won the slot, or first-occurrence filtering reordered the
    /// entries): the primary discarded the speculation buffer and replayed
    /// the decided batch on the decide-then-execute path.
    SpecAbort {
        /// The decided slot whose speculation was thrown away.
        slot: u64,
    },
    /// The proposing application server's decision-log window deepened to a
    /// new high-water mark of `open` concurrently undecided slots. Emitted
    /// only when `open >= 2`, so a depth-1 pipeline never traces it — the
    /// event marks genuine cross-slot overlap (and gives chaos runners a
    /// hook to crash a primary with multiple rounds in flight).
    PipelineWindow {
        /// Number of undecided slots in flight at this server.
        open: u32,
    },
    /// An application server compacted a fully settled decision-log slot's
    /// consensus instance to an empty batch (register-array GC, §5): every
    /// request the slot carried is below its client's watermark, so the
    /// original payload can never be needed again — but the slot stays
    /// decided, so a lagging replica can never re-open the position.
    SlotGc {
        /// Log position of the compacted slot.
        slot: u64,
    },
    /// A latency span attributed to a Figure 8 component. `dur` is modelled
    /// service time, recorded when incurred.
    Span {
        /// The attempt the work belongs to.
        rid: ResultId,
        /// Bucket.
        comp: Component,
        /// Modelled duration.
        dur: Dur,
    },
    /// Process crashed (kernel-emitted).
    Crash,
    /// Process recovered (kernel-emitted).
    Recover,
    /// Process paused by the fault plane (kernel-emitted): it stops
    /// processing but loses nothing — the SIGSTOP story. A paused node is
    /// the "arbitrarily slow process" §4's asynchrony assumption already
    /// covers, so no §3 property may depend on its absence.
    Pause,
    /// Process resumed after a pause (kernel-emitted): queued messages
    /// and overdue timers are processed from here, late.
    Resume,
    /// A failure detector started suspecting `peer`.
    Suspect {
        /// The suspected application server.
        peer: NodeId,
    },
    /// A failure detector stopped suspecting `peer` (it was alive after all).
    Unsuspect {
        /// The formerly suspected application server.
        peer: NodeId,
    },
    /// The cleaner began terminating an orphaned attempt (Figure 6).
    CleanerTakeover {
        /// Orphaned attempt.
        rid: ResultId,
        /// The suspected owner being cleaned up after.
        owner: NodeId,
    },
    /// Free-form annotation (tests and examples).
    Note(&'static str),
}

impl TraceEvent {
    /// Convenience constructor.
    pub fn new(at: Time, node: NodeId, kind: TraceKind) -> Self {
        TraceEvent { at, node, kind }
    }
}

/// The totally ordered record of everything observable that happened in a
/// run. Both runtime backends — the deterministic simulator and the
/// multi-threaded host — collect into this same type, which is what keeps
/// the experiment harness and the §3 property checker backend-neutral.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Appends an event. Host-internal: only runtime backends push; the
    /// harness and tests read.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events matching a predicate on the kind.
    pub fn count_kind(&self, mut pred: impl FnMut(&TraceKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// First event matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> Option<&TraceEvent> {
        self.events.iter().find(|e| pred(e))
    }
}

/// Message-volume accounting, used by the Figure 7 experiment ("total
/// messages exchanged") and by tests asserting protocol overheads. Like
/// [`Trace`], one per run, filled by whichever runtime backend hosts it.
#[derive(Debug, Default, Clone)]
pub struct MsgStats {
    per_label: std::collections::BTreeMap<&'static str, u64>,
    total: u64,
    background: u64,
    dropped_to_down: u64,
    dropped_on_link: u64,
}

impl MsgStats {
    /// Records one sent message. Host-internal.
    pub fn record_sent(&mut self, label: &'static str, background: bool) {
        *self.per_label.entry(label).or_insert(0) += 1;
        self.total += 1;
        if background {
            self.background += 1;
        }
    }

    /// Records a message whose receiver was down at delivery time.
    /// Host-internal.
    pub fn record_dropped_to_down(&mut self) {
        self.dropped_to_down += 1;
    }

    /// Records a message lost (or held) by a fault-plane link fault.
    /// Host-internal.
    pub fn record_dropped_on_link(&mut self) {
        self.dropped_on_link += 1;
    }

    /// Messages sent with the given label.
    pub fn sent(&self, label: &str) -> u64 {
        self.per_label.get(label).copied().unwrap_or(0)
    }

    /// All (label, count) pairs, alphabetically.
    pub fn by_label(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.per_label.iter().map(|(&l, &c)| (l, c))
    }

    /// Total messages sent (including background heartbeats).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Protocol messages only (heartbeats excluded).
    pub fn protocol_total(&self) -> u64 {
        self.total - self.background
    }

    /// Messages whose receiver was down at delivery time.
    pub fn dropped_to_down(&self) -> u64 {
        self.dropped_to_down
    }

    /// Messages lost (or held) by fault-plane link faults.
    pub fn dropped_on_link(&self) -> u64 {
        self.dropped_on_link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_rows_match_paper_order_and_labels() {
        let labels: Vec<&str> = Component::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["start", "end", "commit", "prepare", "SQL", "log-start", "log-outcome"]
        );
    }

    #[test]
    fn trace_event_construction() {
        let ev = TraceEvent::new(Time(42), NodeId(1), TraceKind::Note("hello"));
        assert_eq!(ev.at, Time(42));
        assert_eq!(ev.node, NodeId(1));
        assert_eq!(format!("{}", Component::Sql), "SQL");
    }

    #[test]
    fn trace_collects_in_order() {
        let mut t = Trace::default();
        assert!(t.is_empty());
        t.push(TraceEvent::new(Time(1), NodeId(0), TraceKind::Note("a")));
        t.push(TraceEvent::new(Time(2), NodeId(1), TraceKind::Note("b")));
        assert_eq!(t.len(), 2);
        assert_eq!(t.count_kind(|k| matches!(k, TraceKind::Note(_))), 2);
        assert_eq!(t.find(|e| e.node == NodeId(1)).unwrap().at, Time(2));
    }

    #[test]
    fn stats_classify_background() {
        let mut s = MsgStats::default();
        s.record_sent("Request", false);
        s.record_sent("Heartbeat", true);
        s.record_sent("Heartbeat", true);
        s.record_dropped_to_down();
        assert_eq!(s.total(), 3);
        assert_eq!(s.protocol_total(), 1);
        assert_eq!(s.sent("Heartbeat"), 2);
        assert_eq!(s.sent("nope"), 0);
        assert_eq!(s.dropped_to_down(), 1);
        assert_eq!(s.by_label().count(), 2);
    }
}
