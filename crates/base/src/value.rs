//! Requests, database operations, results, votes, outcomes and decisions.
//!
//! These model the paper's domains (§2): `Request`, `Result`,
//! `Vote = {yes, no}`, `Outcome = {commit, abort}`, and the pair
//! `(result, outcome)` the protocol calls a *decision* (the value stored in
//! `regD[j]`).
//!
//! The paper abstracts the business logic behind a non-deterministic
//! `compute()` function that manipulates the databases without committing.
//! Here a request carries a [`RequestScript`] — the sequence of database
//! calls the business logic performs — and the application server executes
//! it transactionally. The script's effects depend on current database state
//! (e.g. [`DbOp::Reserve`] may find a flight sold out), which is exactly the
//! non-determinism the paper's wo-registers exist to tame.

use crate::ids::{NodeId, RequestId, ResultId};
use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Instrumentation for the Arc-shared hot-path payloads: every time a
/// request script is cloned (client retransmissions, broadcast fan-out,
/// per-replica message copies) the op vectors are *shared* by reference
/// count instead of deep-copied. This counter records how many [`DbOp`]
/// elements were shared that way — i.e. how many element copies the
/// pre-Arc representation would have performed. Purely observational
/// (relaxed atomics, no effect on behaviour or determinism); the
/// `read_path` bench reports it in its notes.
static SHARED_OP_ELEMS: AtomicU64 = AtomicU64::new(0);

/// Total [`DbOp`] elements shared (not deep-copied) by script clones since
/// process start or the last [`reset_shared_op_elems`].
pub fn shared_op_elems() -> u64 {
    SHARED_OP_ELEMS.load(Ordering::Relaxed)
}

/// Resets the sharing counter (bench bookkeeping). Process-global: callers
/// measuring a single scenario should not run scenarios concurrently.
pub fn reset_shared_op_elems() {
    SHARED_OP_ELEMS.store(0, Ordering::Relaxed);
}

/// A database vote on a prepared transaction branch (§2): `yes` means the
/// database server agrees to commit the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vote {
    /// The branch is prepared durably; the server can commit it.
    Yes,
    /// The server refuses (unknown branch, doomed branch, constraint
    /// violation, or it crashed and lost the branch).
    No,
}

/// The fate of a result / transaction (§2): input and output domain of the
/// XA-style `decide()` primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// All effects are made durable.
    Commit,
    /// All effects are discarded.
    Abort,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Commit => "commit",
            Outcome::Abort => "abort",
        })
    }
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Vote::Yes => "yes",
            Vote::No => "no",
        })
    }
}

/// One logical operation inside the business logic's transactional
/// manipulation of a database.
///
/// Operations are deliberately domain-flavoured: `Reserve` models the
/// travel-booking example from the paper's introduction (book a seat if one
/// is available, otherwise report the problem *as a regular result* — the
/// paper's treatment of user-level aborts, §2 and footnote 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DbOp {
    /// Read a key (shared lock).
    Get { key: String },
    /// Overwrite a key (exclusive lock).
    Put { key: String, value: i64 },
    /// Read-modify-write: add `delta` to the key (exclusive lock). Missing
    /// keys read as 0.
    Add { key: String, delta: i64 },
    /// Decrement `key` by `qty` if at least `qty` remains; otherwise performs
    /// no write and reports [`OpOutput::SoldOut`]. This is a *user-level
    /// abort*: a regular result value, not a transaction failure.
    Reserve { key: String, qty: i64 },
    /// Declares the branch doomed: the database will vote **no** at prepare
    /// time. Models integrity-constraint violations discovered by the
    /// database; used by tests and fault-injection workloads.
    Doom,
}

impl DbOp {
    /// The key this operation touches, if any.
    pub fn key(&self) -> Option<&str> {
        match self {
            DbOp::Get { key }
            | DbOp::Put { key, .. }
            | DbOp::Add { key, .. }
            | DbOp::Reserve { key, .. } => Some(key),
            DbOp::Doom => None,
        }
    }

    /// Whether the operation needs an exclusive lock.
    pub fn is_write(&self) -> bool {
        matches!(self, DbOp::Put { .. } | DbOp::Add { .. } | DbOp::Reserve { .. })
    }

    /// Whether the operation is a pure read ([`DbOp::Get`]): no effect on
    /// database state, safe to execute against a committed snapshot without
    /// an XA branch. The read fast path exists for scripts made of these.
    pub fn is_read(&self) -> bool {
        matches!(self, DbOp::Get { .. })
    }
}

/// Result of one [`DbOp`], reported back to the application server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpOutput {
    /// Value read (or `None` if the key is absent).
    Value(Option<i64>),
    /// Value after an update (`Put`/`Add`).
    Updated(i64),
    /// Reservation succeeded; `remaining` units left.
    Reserved { remaining: i64 },
    /// Reservation failed — no stock. A regular (informative) result.
    SoldOut,
    /// `Doom` acknowledged.
    Doomed,
}

/// Result of executing a whole batch of operations at one database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecStatus {
    /// All operations executed; per-op outputs inside.
    Done(Vec<OpOutput>),
    /// A lock conflict with a concurrent transaction; the branch is doomed
    /// and will vote no. The client-side protocol will retry the request as
    /// a fresh attempt.
    Conflict,
}

/// One sequential step of the business logic: a batch of operations sent to
/// a single database server.
///
/// The op vector is [`Arc`]-shared: cloning a call (and therefore a script,
/// a request, or a message that carries one) bumps a reference count
/// instead of deep-copying every operation — client retries, broadcast
/// fan-out and read fan-out all reuse one allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbCall {
    /// Target database server.
    pub db: NodeId,
    /// Operations executed atomically within this request's branch there.
    pub ops: Arc<[DbOp]>,
}

impl DbCall {
    /// A call from an owned op vector (the vector becomes the shared
    /// allocation every subsequent clone reuses).
    pub fn new(db: NodeId, ops: Vec<DbOp>) -> Self {
        DbCall { db, ops: ops.into() }
    }
}

/// The transactional manipulation performed by `compute()` (Figure 5 line 8),
/// expressed as data so it can cross the simulated wire.
///
/// A script addresses the back end in one of two ways:
///
/// * **explicitly** — `calls` names a concrete database server per batch
///   (the original form; baselines and fixed-topology workloads use it);
/// * **by key** — `keyed_ops` carries operations without a destination;
///   the *application server* consults its shard map and splits them into
///   one XA branch per touched shard. This is what makes the back end
///   horizontally partitionable without the client knowing the layout.
///
/// A script uses one form or the other, never both.
#[derive(Debug, PartialEq, Eq, Default)]
pub struct RequestScript {
    /// Database calls, issued in order (each call may target a different
    /// database; all branches belong to the same distributed transaction).
    pub calls: Vec<DbCall>,
    /// Key-addressed operations, routed to shards by the application
    /// server. Empty for explicitly-addressed scripts.
    pub keyed_ops: Arc<[DbOp]>,
}

impl Clone for RequestScript {
    /// Clones share the op payloads by reference count (the hot-path
    /// representation change: retransmissions and broadcasts stop
    /// deep-copying op vectors). Each clone records how many [`DbOp`]
    /// elements were shared instead of copied — see [`shared_op_elems`].
    fn clone(&self) -> Self {
        let shared = self.calls.iter().map(|c| c.ops.len()).sum::<usize>() + self.keyed_ops.len();
        SHARED_OP_ELEMS.fetch_add(shared as u64, Ordering::Relaxed);
        RequestScript { calls: self.calls.clone(), keyed_ops: Arc::clone(&self.keyed_ops) }
    }
}

impl RequestScript {
    /// A script with a single call to one database.
    pub fn single(db: NodeId, ops: Vec<DbOp>) -> Self {
        RequestScript { calls: vec![DbCall::new(db, ops)], keyed_ops: Arc::from([]) }
    }

    /// An explicitly-addressed script from pre-built calls.
    pub fn from_calls(calls: Vec<DbCall>) -> Self {
        RequestScript { calls, keyed_ops: Arc::from([]) }
    }

    /// A key-addressed script: the application server's shard router
    /// decides which database servers run which operations.
    pub fn keyed(ops: Vec<DbOp>) -> Self {
        RequestScript { calls: Vec::new(), keyed_ops: ops.into() }
    }

    /// Whether this script still needs shard routing before execution.
    pub fn is_keyed(&self) -> bool {
        !self.keyed_ops.is_empty()
    }

    /// Whether every operation in the script is a pure read ([`DbOp::Get`])
    /// — and there is at least one, so the degenerate empty script keeps
    /// its historical route through the commit machinery. Read-only
    /// e-Transactions are idempotent: the write-once `regD` contract exists
    /// to make retries of *effectful* transactions safe, so these can skip
    /// it entirely (the read fast path).
    pub fn is_read_only(&self) -> bool {
        let mut ops = self.calls.iter().flat_map(|c| c.ops.iter()).chain(self.keyed_ops.iter());
        let mut any = false;
        for op in &mut ops {
            if !op.is_read() {
                return false;
            }
            any = true;
        }
        any
    }

    /// All distinct databases this script touches, in first-use order.
    /// Keyed scripts touch none until routed.
    pub fn databases(&self) -> Vec<NodeId> {
        let mut dbs = Vec::new();
        for c in &self.calls {
            if !dbs.contains(&c.db) {
                dbs.push(c.db);
            }
        }
        dbs
    }
}

/// A client request (§2 "Request" domain): uniquely identified, and carrying
/// the business-logic script to run on its behalf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Unique id (client + per-client sequence number).
    pub id: RequestId,
    /// What the business logic does.
    pub script: RequestScript,
}

/// A result value (§2 "Result" domain): information computed by the business
/// logic that must be returned to the user — reservation numbers, hotel
/// names, or an informative "sold out" notice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResultValue {
    /// Labelled fields, e.g. `("flight_seat", 41)` or `("sold_out", 1)`.
    pub entries: Vec<(String, i64)>,
}

impl ResultValue {
    /// Builds a result from labelled entries.
    pub fn new(entries: Vec<(String, i64)>) -> Self {
        ResultValue { entries }
    }

    /// Looks up a field by label.
    pub fn field(&self, label: &str) -> Option<i64> {
        self.entries.iter().find(|(l, _)| l == label).map(|&(_, v)| v)
    }

    /// True if the business logic reported a user-level problem (e.g. sold
    /// out). Still a perfectly committable result — see paper footnote 4.
    pub fn is_user_level_problem(&self) -> bool {
        self.field("sold_out").is_some() || self.field("conflict").is_some()
    }
}

impl fmt::Display for ResultValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// A decision — the pair `(result, outcome)` written into `regD[j]`
/// (Figure 5 line 10). The cleaner writes `(nil, abort)` (Figure 6 line 7),
/// hence the `Option`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The computed result; `None` for the cleaner's `(nil, abort)`.
    pub result: Option<ResultValue>,
    /// Commit or abort.
    pub outcome: Outcome,
}

impl Decision {
    /// The cleaner's decision: `(nil, abort)`.
    pub fn nil_abort() -> Self {
        Decision { result: None, outcome: Outcome::Abort }
    }

    /// A commit decision carrying a result.
    pub fn commit(result: ResultValue) -> Self {
        Decision { result: Some(result), outcome: Outcome::Commit }
    }

    /// An abort decision that still carries the (refused) result.
    pub fn abort(result: ResultValue) -> Self {
        Decision { result: Some(result), outcome: Outcome::Abort }
    }

    /// True iff the outcome is commit.
    pub fn is_commit(&self) -> bool {
        self.outcome == Outcome::Commit
    }
}

/// One position of the sequenced decision log: an ordered batch of request
/// outcomes decided by a single consensus round. The write-once register
/// contract makes a decided batch indivisible — either every entry is in
/// the slot or none is, which is what keeps mid-batch crashes from ever
/// splitting a request's fate.
pub type OutcomeBatch = Vec<(ResultId, Decision)>;

/// Post-commit key values of one shipped commit, [`Arc`]-shared so that a
/// primary broadcasting the same write set to every follower (and the
/// batched `ApplyBatch` frames that carry many of them) clones a reference
/// count, not the values.
pub type ShippedEntries = Arc<[(String, i64)]>;

/// One committed write set in ship order: `(ship position, branch,
/// post-commit key values)` — the unit of intra-shard replication, both in
/// the engine's outbox and on the wire ([`crate::msg::ReplMsg::ApplyBatch`]).
pub type ShippedCommit = (u64, ResultId, ShippedEntries);

/// Values storable in a write-once register: `regA` holds an application
/// server identity, `regD` holds a decision, a decision-log slot holds an
/// ordered batch of decisions. The batch is [`Arc`]-shared so the decision
/// log, the in-flight proposal window, and every consensus broadcast that
/// carries the slot value clone a reference count, not the outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegValue {
    /// An application-server identity (for `regA`).
    Server(NodeId),
    /// A decision (for `regD`).
    Decision(Decision),
    /// An ordered batch of per-attempt decisions (for `slot[k]`).
    Batch(Arc<OutcomeBatch>),
}

impl RegValue {
    /// Extracts the server identity, if this is a `regA` value.
    pub fn as_server(&self) -> Option<NodeId> {
        match self {
            RegValue::Server(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts the decision, if this is a `regD` value.
    pub fn as_decision(&self) -> Option<&Decision> {
        match self {
            RegValue::Decision(d) => Some(d),
            _ => None,
        }
    }

    /// Extracts the outcome batch, if this is a decision-log slot value.
    pub fn as_batch(&self) -> Option<&OutcomeBatch> {
        match self {
            RegValue::Batch(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts the outcome batch as a shared handle (a reference-count
    /// clone, never an entry copy), if this is a decision-log slot value.
    pub fn as_batch_shared(&self) -> Option<Arc<OutcomeBatch>> {
        match self {
            RegValue::Batch(b) => Some(Arc::clone(b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(DbOp::Put { key: "a".into(), value: 1 }.is_write());
        assert!(DbOp::Reserve { key: "a".into(), qty: 1 }.is_write());
        assert!(!DbOp::Get { key: "a".into() }.is_write());
        assert_eq!(DbOp::Doom.key(), None);
        assert_eq!(DbOp::Get { key: "xy".into() }.key(), Some("xy"));
    }

    #[test]
    fn script_database_dedup_preserves_order() {
        let (a, b) = (NodeId(10), NodeId(11));
        let script = RequestScript::from_calls(vec![
            DbCall::new(b, vec![]),
            DbCall::new(a, vec![]),
            DbCall::new(b, vec![]),
        ]);
        assert_eq!(script.databases(), vec![b, a]);
    }

    #[test]
    fn read_only_classification() {
        let get = |k: &str| DbOp::Get { key: k.into() };
        assert!(RequestScript::keyed(vec![get("a"), get("b")]).is_read_only());
        assert!(RequestScript::single(NodeId(4), vec![get("a")]).is_read_only());
        assert!(!RequestScript::keyed(vec![get("a"), DbOp::Add { key: "a".into(), delta: 1 }])
            .is_read_only());
        assert!(!RequestScript::keyed(vec![DbOp::Doom]).is_read_only());
        // The empty script keeps its historical route (vacuous commit).
        assert!(!RequestScript::default().is_read_only());
        // Multi-call explicit scripts classify over every call.
        let cross = RequestScript::from_calls(vec![
            DbCall::new(NodeId(5), vec![get("a")]),
            DbCall::new(NodeId(6), vec![get("b")]),
        ]);
        assert!(cross.is_read_only());
    }

    #[test]
    fn script_clones_share_op_payloads() {
        let script = RequestScript::keyed(vec![
            DbOp::Get { key: "a".into() },
            DbOp::Add { key: "a".into(), delta: 1 },
        ]);
        let before = shared_op_elems();
        let copy = script.clone();
        assert!(
            Arc::ptr_eq(&script.keyed_ops, &copy.keyed_ops),
            "clone must share the op allocation, not duplicate it"
        );
        assert!(shared_op_elems() >= before + 2, "sharing counter records the shared elements");
        let explicit = RequestScript::single(NodeId(1), vec![DbOp::Get { key: "k".into() }]);
        let copy2 = explicit.clone();
        assert!(Arc::ptr_eq(&explicit.calls[0].ops, &copy2.calls[0].ops));
    }

    #[test]
    fn keyed_scripts_classify_and_route_nowhere_until_materialized() {
        let s = RequestScript::keyed(vec![DbOp::Add { key: "a".into(), delta: 1 }]);
        assert!(s.is_keyed());
        assert!(s.databases().is_empty());
        let e = RequestScript::single(NodeId(4), vec![]);
        assert!(!e.is_keyed());
    }

    #[test]
    fn result_value_fields() {
        let r = ResultValue::new(vec![("seat".into(), 12), ("sold_out".into(), 1)]);
        assert_eq!(r.field("seat"), Some(12));
        assert_eq!(r.field("absent"), None);
        assert!(r.is_user_level_problem());
        assert_eq!(format!("{r}"), "{seat: 12, sold_out: 1}");
    }

    #[test]
    fn decision_constructors() {
        assert_eq!(Decision::nil_abort().result, None);
        assert_eq!(Decision::nil_abort().outcome, Outcome::Abort);
        let c = Decision::commit(ResultValue::default());
        assert!(c.is_commit());
        let a = Decision::abort(ResultValue::default());
        assert!(!a.is_commit());
        assert!(a.result.is_some());
    }

    #[test]
    fn regvalue_projections() {
        let s = RegValue::Server(NodeId(4));
        assert_eq!(s.as_server(), Some(NodeId(4)));
        assert!(s.as_decision().is_none());
        let d = RegValue::Decision(Decision::nil_abort());
        assert!(d.as_server().is_none());
        assert_eq!(d.as_decision().unwrap().outcome, Outcome::Abort);
        let rid = ResultId::first(RequestId { client: NodeId(0), seq: 1 });
        let b = RegValue::Batch(Arc::new(vec![(rid, Decision::nil_abort())]));
        assert!(b.as_server().is_none() && b.as_decision().is_none());
        assert_eq!(b.as_batch().unwrap().len(), 1);
        assert_eq!(b.as_batch_shared().unwrap().len(), 1);
    }
}
