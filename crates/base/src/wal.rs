//! Stable-storage record formats.
//!
//! Two kinds of durable logs exist in the system:
//!
//! * the **database write-ahead log** ([`LOG_WAL`]) — every database server
//!   forces a `Prepared` record (with the branch's write set) before voting
//!   yes, and an `Outcome` record when it learns commit/abort. Recovery
//!   replays this log: committed effects are reapplied, prepared-but-
//!   undecided branches are restored *with their locks* (they are in-doubt
//!   and must wait for a `Decide`, paper §2 / T.2);
//! * the **2PC coordinator log** ([`LOG_COORD`]) — the presumed-nothing
//!   two-phase-commit baseline forces a `Start` record before sending
//!   prepares and an `Outcome` record once the outcome is known
//!   (Appendix 3). The e-Transaction protocol never writes this log — that
//!   is precisely the forced I/O it replaces with wo-register round trips.

use crate::ids::ResultId;
use crate::value::{Outcome, ResultValue};

/// Name of the database write-ahead log within a node's stable storage.
pub const LOG_WAL: &str = "wal";
/// Name of the 2PC coordinator log within a node's stable storage.
pub const LOG_COORD: &str = "coord";

/// One durable record. A single enum covers both logs so the simulator's
/// stable storage stays untyped-but-safe.
#[derive(Debug, Clone, PartialEq)]
pub enum StableRecord {
    /// Database: branch `rid` is prepared; `writes` is its redo set
    /// (key, new value). Forced before voting yes.
    Prepared {
        /// Transaction branch.
        rid: ResultId,
        /// Redo information: key → new value.
        writes: Vec<(String, i64)>,
    },
    /// Database: branch `rid` was decided. Forced on commit; lazy on abort
    /// (presumed abort).
    DbOutcome {
        /// Transaction branch.
        rid: ResultId,
        /// Commit or abort.
        outcome: Outcome,
    },
    /// Database (shard follower): committed values received from the shard
    /// primary via asynchronous replication — either one branch's write set
    /// (`Apply`) or a recovery snapshot (`SyncState`). Buffered, not forced:
    /// replication is off the commit path, and a lost suffix is re-fetched
    /// from the primary on recovery.
    Replicated {
        /// Position in the primary's ship order (dense, starting at 1);
        /// replay restores the follower's replication cursor.
        seq: u64,
        /// The branch whose commit this replicates; snapshot catch-ups use
        /// [`ResultId::repl_snapshot`] as a marker.
        rid: ResultId,
        /// Post-commit key values.
        writes: Vec<(String, i64)>,
    },
    /// Group append: one durable record framing the records of a whole
    /// decided batch (commit/abort outcomes of one `DecideBatch`, or a
    /// follower's batched replication applies). The frame is what makes
    /// group commit pay **one** log force for N outcomes; recovery unfolds
    /// it and replays the members in order, so a batch is indivisible on
    /// disk — it replays completely or (if the append never happened) not
    /// at all, never partially.
    Group {
        /// The framed records, in batch order.
        records: Vec<StableRecord>,
    },
    /// 2PC coordinator: processing of `rid` started (presumed-nothing start
    /// record, forced).
    CoordStart {
        /// Transaction the coordinator began.
        rid: ResultId,
    },
    /// 2PC coordinator: outcome determined (forced), with the computed
    /// result so a recovering coordinator can still answer the client.
    CoordOutcome {
        /// Transaction decided.
        rid: ResultId,
        /// Commit or abort.
        outcome: Outcome,
        /// The result computed for the client (None when aborting).
        result: Option<ResultValue>,
    },
}

impl StableRecord {
    /// The transaction branch this record concerns. Group frames span many
    /// branches and answer with the reserved [`ResultId::group_marker`].
    pub fn rid(&self) -> ResultId {
        match self {
            StableRecord::Prepared { rid, .. }
            | StableRecord::DbOutcome { rid, .. }
            | StableRecord::Replicated { rid, .. }
            | StableRecord::CoordStart { rid }
            | StableRecord::CoordOutcome { rid, .. } => *rid,
            StableRecord::Group { .. } => ResultId::group_marker(),
        }
    }

    /// Flattens this record to its leaf records (a group frame yields its
    /// members in order; every other record yields itself). Recovery and
    /// log-inspection code iterate leaves so framing stays invisible to
    /// replay semantics.
    pub fn leaves(&self) -> Vec<&StableRecord> {
        match self {
            StableRecord::Group { records } => records.iter().flat_map(|r| r.leaves()).collect(),
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, RequestId};

    #[test]
    fn record_rid_projection() {
        let rid = ResultId::first(RequestId { client: NodeId(9), seq: 3 });
        let records = [
            StableRecord::Prepared { rid, writes: vec![("acct".into(), 10)] },
            StableRecord::DbOutcome { rid, outcome: Outcome::Commit },
            StableRecord::CoordStart { rid },
            StableRecord::CoordOutcome { rid, outcome: Outcome::Abort, result: None },
        ];
        for r in &records {
            assert_eq!(r.rid(), rid);
        }
    }

    #[test]
    fn group_frames_flatten_to_their_members_in_order() {
        let rid1 = ResultId::first(RequestId { client: NodeId(1), seq: 1 });
        let rid2 = ResultId::first(RequestId { client: NodeId(1), seq: 2 });
        let group = StableRecord::Group {
            records: vec![
                StableRecord::DbOutcome { rid: rid1, outcome: Outcome::Commit },
                StableRecord::DbOutcome { rid: rid2, outcome: Outcome::Abort },
            ],
        };
        assert_eq!(group.rid(), ResultId::group_marker());
        let leaves = group.leaves();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].rid(), rid1);
        assert_eq!(leaves[1].rid(), rid2);
        // A plain record is its own single leaf.
        assert_eq!(leaves[0].leaves().len(), 1);
    }
}
