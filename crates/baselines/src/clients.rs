//! Clients for the comparison protocols.
//!
//! Unlike the e-Transaction client, these surface failures to the end user:
//! a timeout or an abort becomes an *exception* whose meaning is exactly the
//! ambiguity the paper's introduction complains about — "this does not
//! convey what had actually happened, and whether the actual request was
//! indeed performed or not".
//!
//! [`RetryPolicy::NaiveResend`] models what end users actually do with such
//! exceptions: retry. Under 2PC that can execute the request twice (the
//! "charged twice" motivation, §1) — test `exactly_once.rs` demonstrates it
//! against an identical crash schedule where e-Transactions stay
//! exactly-once.
//!
//! The mechanical attempt bookkeeping — plan walking, the `Issue` trace,
//! current-attempt identity, timer validity, stale-result filtering — comes
//! from the shared [`etx_base::retry`] driver, the same machinery the
//! e-Transaction client runs on. Baselines and the batched protocol
//! therefore *measure the same thing*; only the policy differs (single
//! patience timeout + give-up/naive-resend here).

use etx_base::ids::{NodeId, RequestId};
use etx_base::msg::{AppMsg, Payload};
use etx_base::retry::{AttemptDriver, IssuePlan, RetryTimer};
use etx_base::runtime::{Context, Event, Process, TimerTag};
use etx_base::time::Dur;
use etx_base::trace::TraceKind;
use etx_base::value::Outcome;

/// What to do when `issue()` would raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// At-most-once discipline: give up (deliver the exception).
    GiveUp,
    /// What real users do: resubmit the request as a fresh transaction, up
    /// to `max_retries` times. Under non-exactly-once protocols this risks
    /// duplicate execution.
    NaiveResend {
        /// Resubmission budget.
        max_retries: u32,
    },
}

/// A baseline client: sends each request to one server, waits with a
/// timeout, and treats aborts/timeouts per its [`RetryPolicy`].
pub struct SimpleClient {
    server: NodeId,
    timeout: Dur,
    policy: RetryPolicy,
    plan: IssuePlan,
    flight: Option<AttemptDriver>,
}

impl std::fmt::Debug for SimpleClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimpleClient").field("server", &self.server).finish()
    }
}

impl SimpleClient {
    /// Creates a client talking to `server` with the given patience and
    /// retry policy.
    pub fn new(
        server: NodeId,
        timeout: Dur,
        policy: RetryPolicy,
        plan: Vec<etx_base::value::Request>,
    ) -> Self {
        SimpleClient { server, timeout, policy, plan: IssuePlan::new(plan), flight: None }
    }

    fn issue_next(&mut self, ctx: &mut dyn Context) {
        match self.plan.issue_next(ctx) {
            Some(request) => {
                self.flight = Some(AttemptDriver::new(request));
                self.send_attempt(ctx);
            }
            None => self.flight = None,
        }
    }

    /// Sends the current attempt and arms the patience timeout. The client
    /// is sequential, so its GC watermark is the current sequence number.
    fn send_attempt(&mut self, ctx: &mut dyn Context) {
        let server = self.server;
        let timeout = self.timeout;
        let Some(driver) = &mut self.flight else { return };
        let ack_below = driver.request().id.seq;
        driver.send_to(ctx, server, ack_below, &[]);
        let rid = driver.rid();
        driver.arm(ctx, RetryTimer::Primary, timeout, TimerTag::ClientBackoff { rid });
    }

    fn give_up(&mut self, ctx: &mut dyn Context, request: RequestId) {
        ctx.trace(TraceKind::Exception { request });
        self.issue_next(ctx);
    }
}

impl Process for SimpleClient {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init => self.issue_next(ctx),
            Event::Timer { id, tag: TimerTag::ClientBackoff { rid } } => {
                let Some(driver) = &mut self.flight else { return };
                if !driver.timer_is_current(RetryTimer::Primary, id, rid) {
                    return;
                }
                driver.clear(RetryTimer::Primary);
                let request = driver.request().id;
                match self.policy {
                    RetryPolicy::GiveUp => self.give_up(ctx, request),
                    RetryPolicy::NaiveResend { max_retries } => {
                        if driver.retries() < max_retries {
                            // The dangerous move: resubmit as a NEW attempt.
                            driver.next_attempt(ctx);
                            self.send_attempt(ctx);
                        } else {
                            self.give_up(ctx, request);
                        }
                    }
                }
            }
            Event::Message { payload: Payload::App(msg), .. } => match msg {
                AppMsg::Result { rid, decision, .. } => {
                    let Some(driver) = &mut self.flight else { return };
                    // Late results of earlier attempts still answer the
                    // request (at-most-once protocols have no attempt
                    // arbitration to wait for).
                    if !driver.same_request(rid) {
                        return;
                    }
                    driver.cancel_all(ctx);
                    match decision.outcome {
                        Outcome::Commit => {
                            ctx.trace(TraceKind::Deliver {
                                rid,
                                outcome: Outcome::Commit,
                                steps: ctx.depth(),
                            });
                        }
                        Outcome::Abort => {
                            // At-most-once protocols surface aborts to the
                            // user; there is no transparent retry here.
                            ctx.trace(TraceKind::Exception { request: rid.request });
                        }
                    }
                    self.issue_next(ctx);
                }
                AppMsg::Exception { request, .. } => {
                    let Some(driver) = &mut self.flight else { return };
                    if driver.request().id == request {
                        driver.cancel_all(ctx);
                        self.give_up(ctx, request);
                    }
                }
            },
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "simple-client"
    }
}
