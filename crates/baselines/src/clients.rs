//! Clients for the comparison protocols.
//!
//! Unlike the e-Transaction client, these surface failures to the end user:
//! a timeout or an abort becomes an *exception* whose meaning is exactly the
//! ambiguity the paper's introduction complains about — "this does not
//! convey what had actually happened, and whether the actual request was
//! indeed performed or not".
//!
//! [`RetryPolicy::NaiveResend`] models what end users actually do with such
//! exceptions: retry. Under 2PC that can execute the request twice (the
//! "charged twice" motivation, §1) — test `exactly_once.rs` demonstrates it
//! against an identical crash schedule where e-Transactions stay
//! exactly-once.

use etx_base::ids::{NodeId, ResultId, TimerId};
use etx_base::msg::{AppMsg, ClientMsg, Payload};
use etx_base::runtime::{Context, Event, Process, TimerTag};
use etx_base::time::Dur;
use etx_base::trace::TraceKind;
use etx_base::value::{Outcome, Request};

/// What to do when `issue()` would raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// At-most-once discipline: give up (deliver the exception).
    GiveUp,
    /// What real users do: resubmit the request as a fresh transaction, up
    /// to `max_retries` times. Under non-exactly-once protocols this risks
    /// duplicate execution.
    NaiveResend {
        /// Resubmission budget.
        max_retries: u32,
    },
}

/// A baseline client: sends each request to one server, waits with a
/// timeout, and treats aborts/timeouts per its [`RetryPolicy`].
pub struct SimpleClient {
    server: NodeId,
    timeout: Dur,
    policy: RetryPolicy,
    plan: Vec<Request>,
    next: usize,
    waiting: Option<Waiting>,
}

#[derive(Debug)]
struct Waiting {
    request: Request,
    rid: ResultId,
    timer: TimerId,
    retries: u32,
}

impl std::fmt::Debug for SimpleClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimpleClient").field("server", &self.server).finish()
    }
}

impl SimpleClient {
    /// Creates a client talking to `server` with the given patience and
    /// retry policy.
    pub fn new(server: NodeId, timeout: Dur, policy: RetryPolicy, plan: Vec<Request>) -> Self {
        SimpleClient { server, timeout, policy, plan, next: 0, waiting: None }
    }

    fn issue_next(&mut self, ctx: &mut dyn Context) {
        if self.next >= self.plan.len() {
            self.waiting = None;
            return;
        }
        let request = self.plan[self.next].clone();
        self.next += 1;
        ctx.trace(TraceKind::Issue { request: request.id });
        self.send_attempt(ctx, request, 1, 0);
    }

    fn send_attempt(
        &mut self,
        ctx: &mut dyn Context,
        request: Request,
        attempt: u32,
        retries: u32,
    ) {
        let rid = ResultId { request: request.id, attempt };
        ctx.send(
            self.server,
            Payload::Client(ClientMsg::Request { request: request.clone(), attempt }),
        );
        let timer = ctx.set_timer(self.timeout, TimerTag::ClientBackoff { rid });
        self.waiting = Some(Waiting { request, rid, timer, retries });
    }

    fn give_up(&mut self, ctx: &mut dyn Context, request: etx_base::ids::RequestId) {
        ctx.trace(TraceKind::Exception { request });
        self.issue_next(ctx);
    }
}

impl Process for SimpleClient {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init => self.issue_next(ctx),
            Event::Timer { id, tag: TimerTag::ClientBackoff { rid } } => {
                let Some(w) = &self.waiting else { return };
                if w.rid != rid || w.timer != id {
                    return;
                }
                let (request, retries) = (w.request.clone(), w.retries);
                match self.policy {
                    RetryPolicy::GiveUp => self.give_up(ctx, request.id),
                    RetryPolicy::NaiveResend { max_retries } => {
                        if retries < max_retries {
                            // The dangerous move: resubmit as a NEW attempt.
                            self.send_attempt(ctx, request, rid.attempt + 1, retries + 1);
                        } else {
                            self.give_up(ctx, request.id);
                        }
                    }
                }
            }
            Event::Message { payload: Payload::App(msg), .. } => match msg {
                AppMsg::Result { rid, decision } => {
                    let Some(w) = &self.waiting else { return };
                    if w.rid.request != rid.request {
                        return;
                    }
                    let timer = w.timer;
                    ctx.cancel_timer(timer);
                    match decision.outcome {
                        Outcome::Commit => {
                            ctx.trace(TraceKind::Deliver {
                                rid,
                                outcome: Outcome::Commit,
                                steps: ctx.depth(),
                            });
                        }
                        Outcome::Abort => {
                            // At-most-once protocols surface aborts to the
                            // user; there is no transparent retry here.
                            ctx.trace(TraceKind::Exception { request: rid.request });
                        }
                    }
                    self.issue_next(ctx);
                }
                AppMsg::Exception { request, .. } => {
                    if let Some(w) = &self.waiting {
                        if w.rid.request == request {
                            let timer = w.timer;
                            ctx.cancel_timer(timer);
                            self.give_up(ctx, request);
                        }
                    }
                }
            },
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "simple-client"
    }
}
