//! # etx-baselines — the comparison protocols of Appendix 3
//!
//! Three real, message-level protocols over the same simulated network and
//! the same XA databases as the e-Transaction protocol:
//!
//! * [`unreliable::BaselineServer`] — Figure 7a: no guarantees, the latency
//!   floor (the "cost of reliability" baseline);
//! * [`tpc::TpcServer`] — Figure 7b: presumed-nothing two-phase commit with
//!   eager coordinator logging: at-most-once, **blocking** on coordinator
//!   crash;
//! * [`pb::PbServer`] — Figure 7c: primary-backup e-Transactions, which
//!   needs a *perfect* failure detector (provided here by the simulator's
//!   crash oracle — no asynchronous network can offer one, which is the
//!   paper's argument for the wo-register design);
//! * [`clients::SimpleClient`] — the at-most-once client, with an optional
//!   naive-retry mode that reproduces the "charged twice" motivation.

pub mod clients;
pub mod pb;
pub mod tpc;
pub mod unreliable;

pub use clients::{RetryPolicy, SimpleClient};
pub use pb::{PbRole, PbServer};
pub use tpc::TpcServer;
pub use unreliable::BaselineServer;

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::config::CostModel;
    use etx_base::ids::{NodeId, RequestId, Topology};
    use etx_base::time::{Dur, Time};
    use etx_base::trace::TraceKind;
    use etx_base::value::{DbOp, Outcome, Request, RequestScript};
    use etx_core::DbServer;
    use etx_sim::{FaultAction, NetConfig, Sim, SimConfig};

    fn fast_net() -> NetConfig {
        NetConfig {
            min_delay: Dur::from_micros(100),
            max_delay: Dur::from_micros(300),
            ..NetConfig::default()
        }
    }

    fn bank_request(client: NodeId, seq: u64, db: NodeId) -> Request {
        Request {
            id: RequestId { client, seq },
            script: RequestScript::single(db, vec![DbOp::Add { key: "acct".into(), delta: 100 }]),
        }
    }

    enum Kind {
        Baseline,
        Tpc,
        Pb,
    }

    /// Builds a system with the given middle tier. Topology: 1 client,
    /// 1 or 2 app servers, 1 db.
    fn build(seed: u64, kind: Kind, policy: RetryPolicy, plan: Vec<Request>) -> (Sim, Topology) {
        let apps = if matches!(kind, Kind::Pb) { 2 } else { 1 };
        let topo = Topology::new(1, apps, 1);
        let mut cfg = SimConfig::with_seed(seed);
        cfg.cost = CostModel::fast_for_tests();
        cfg.net = fast_net();
        let mut sim = Sim::new(cfg);
        let server = topo.app_servers[0];
        {
            let plan = plan.clone();
            sim.add_node(
                "client",
                Box::new(move |_| {
                    Box::new(SimpleClient::new(server, Dur::from_millis(80), policy, plan.clone()))
                }),
            );
        }
        match kind {
            Kind::Baseline => {
                sim.add_node(
                    "baseline",
                    Box::new(move |_| Box::new(BaselineServer::new(CostModel::fast_for_tests()))),
                );
            }
            Kind::Tpc => {
                let dlist = topo.db_servers.clone();
                sim.add_node(
                    "tpc",
                    Box::new(move |_| {
                        Box::new(TpcServer::new(dlist.clone(), CostModel::fast_for_tests()))
                    }),
                );
            }
            Kind::Pb => {
                let dlist = topo.db_servers.clone();
                let (p, b) = (topo.app_servers[0], topo.app_servers[1]);
                let d2 = dlist.clone();
                sim.add_node(
                    "pb-primary",
                    Box::new(move |_| {
                        Box::new(PbServer::new(
                            PbRole::Primary,
                            b,
                            dlist.clone(),
                            CostModel::fast_for_tests(),
                        ))
                    }),
                );
                sim.add_node(
                    "pb-backup",
                    Box::new(move |_| {
                        Box::new(PbServer::new(
                            PbRole::Backup,
                            p,
                            d2.clone(),
                            CostModel::fast_for_tests(),
                        ))
                    }),
                );
            }
        }
        {
            let alist = topo.app_servers.clone();
            sim.add_node(
                "db",
                Box::new(move |_| {
                    Box::new(DbServer::new(
                        alist.clone(),
                        CostModel::fast_for_tests(),
                        vec![("acct".into(), 0)],
                    ))
                }),
            );
        }
        (sim, topo)
    }

    fn delivered(sim: &Sim) -> usize {
        sim.trace().count_kind(|k| matches!(k, TraceKind::Deliver { .. }))
    }

    fn db_commits(sim: &Sim) -> usize {
        sim.trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }))
    }

    #[test]
    fn baseline_happy_path_commits() {
        let topo = Topology::new(1, 1, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, _) = build(1, Kind::Baseline, RetryPolicy::GiveUp, vec![req]);
        let out = sim.run_until(|s| delivered(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate);
        assert_eq!(db_commits(&sim), 1);
    }

    #[test]
    fn baseline_server_crash_means_exception_and_no_answer() {
        let topo = Topology::new(1, 1, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build(2, Kind::Baseline, RetryPolicy::GiveUp, vec![req]);
        sim.crash_at(Time(0), topo.app_servers[0]);
        sim.run_until_time(Time(1_000_000));
        assert_eq!(delivered(&sim), 0);
        assert_eq!(
            sim.trace().count_kind(|k| matches!(k, TraceKind::Exception { .. })),
            1,
            "the user gets an exception — the ambiguity the paper complains about"
        );
    }

    #[test]
    fn tpc_happy_path_commits_with_two_forced_logs() {
        let topo = Topology::new(1, 1, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build(3, Kind::Tpc, RetryPolicy::GiveUp, vec![req]);
        let out = sim.run_until(|s| delivered(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate);
        assert_eq!(db_commits(&sim), 1);
        // Two forced coordinator records: start + outcome.
        use etx_base::wal::LOG_COORD;
        assert_eq!(sim.storage(topo.app_servers[0]).len(LOG_COORD), 2);
        // Span evidence for the Figure 8 log rows.
        let log_spans = sim.trace().count_kind(|k| {
            matches!(
                k,
                TraceKind::Span {
                    comp: etx_base::trace::Component::LogStart
                        | etx_base::trace::Component::LogOutcome,
                    ..
                }
            )
        });
        assert_eq!(log_spans, 2);
    }

    #[test]
    fn tpc_blocks_databases_while_coordinator_is_down() {
        // Crash the coordinator right after the database votes: the branch
        // stays in-doubt (locks held!) until the coordinator recovers —
        // 2PC's blocking weakness, which the e-Transaction protocol's T.2
        // specifically removes.
        let topo = Topology::new(1, 1, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build(4, Kind::Tpc, RetryPolicy::GiveUp, vec![req]);
        let coord = topo.app_servers[0];
        let db = topo.db_servers[0];
        sim.on_trace(
            move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbVote { .. }),
            FaultAction::Crash(coord),
        );
        // Run long past the client's timeout.
        sim.run_until_time(Time(2_000_000));
        assert_eq!(delivered(&sim), 0);
        assert_eq!(
            sim.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { .. })),
            0,
            "in-doubt branch blocked while the coordinator is down"
        );
        // Now let the coordinator recover: presumed-nothing recovery aborts
        // the in-doubt branch and unblocks the database.
        sim.recover_at(Time(2_100_000), coord);
        sim.run_until(|s| s.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { .. })) >= 1);
        let aborts = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Abort, .. }));
        assert_eq!(aborts, 1, "recovery resolves the in-doubt branch to abort");
    }

    #[test]
    fn tpc_naive_retry_can_execute_twice() {
        // The "charged twice" scenario (§1): coordinator crashes after
        // committing but before answering; the user's retry executes the
        // request again as a fresh transaction. Two commits for one logical
        // request — at-least-once, not exactly-once.
        let topo = Topology::new(1, 1, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) =
            build(5, Kind::Tpc, RetryPolicy::NaiveResend { max_retries: 3 }, vec![req]);
        let coord = topo.app_servers[0];
        let db = topo.db_servers[0];
        sim.on_trace(
            move |ev| {
                ev.node == db
                    && matches!(ev.kind, TraceKind::DbDecide { outcome: Outcome::Commit, .. })
            },
            // The outage outlasts the client's 80 ms patience, so the user
            // retries into the void first, then into the recovered (and
            // amnesiac, connection-wise) coordinator.
            FaultAction::CrashRecover(coord, Dur::from_millis(200)),
        );
        let out = sim.run_until(|s| db_commits(s) >= 2);
        assert_eq!(out, etx_sim::RunOutcome::Predicate, "naive retry duplicated the execution");
        // The account was charged twice — the motivation for e-Transactions.
    }

    #[test]
    fn pb_happy_path_commits_with_mirrored_state() {
        let topo = Topology::new(1, 2, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, _) = build(6, Kind::Pb, RetryPolicy::GiveUp, vec![req]);
        let out = sim.run_until(|s| delivered(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate);
        assert_eq!(db_commits(&sim), 1);
        // The two replication round trips are traced like log writes.
        let log_spans = sim.trace().count_kind(|k| {
            matches!(
                k,
                TraceKind::Span {
                    comp: etx_base::trace::Component::LogStart
                        | etx_base::trace::Component::LogOutcome,
                    ..
                }
            )
        });
        assert_eq!(log_spans, 2);
    }

    #[test]
    fn pb_backup_completes_after_primary_crash_with_outcome() {
        // Primary crashes right after recording the outcome at the backup:
        // the backup (perfect FD) pushes the decision to the database —
        // non-blocking, unlike 2PC.
        let topo = Topology::new(1, 2, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build(7, Kind::Pb, RetryPolicy::GiveUp, vec![req]);
        let primary = topo.app_servers[0];
        sim.on_trace(
            move |ev| {
                ev.node == primary
                    && matches!(
                        ev.kind,
                        TraceKind::Span { comp: etx_base::trace::Component::LogOutcome, .. }
                    )
            },
            FaultAction::Crash(primary),
        );
        let out = sim
            .run_until(|s| s.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { .. })) >= 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate, "backup must drive a decision");
    }

    #[test]
    fn pb_backup_aborts_unfinished_work_without_outcome() {
        // Primary crashes after Start but before Outcome: the backup must
        // abort the orphaned attempt (releasing any database locks).
        let topo = Topology::new(1, 2, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build(8, Kind::Pb, RetryPolicy::GiveUp, vec![req]);
        let primary = topo.app_servers[0];
        let db = topo.db_servers[0];
        sim.on_trace(
            move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbVote { .. }),
            FaultAction::Crash(primary),
        );
        let out = sim.run_until(|s| {
            s.trace()
                .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Abort, .. }))
                >= 1
        });
        assert_eq!(out, etx_sim::RunOutcome::Predicate);
        assert_eq!(db_commits(&sim), 0, "nothing commits without the outcome record");
    }
}
