//! Primary-backup e-Transactions (Appendix 3, Figure 7c).
//!
//! The comparison protocol the authors adapted from their tech report \[18\]:
//! a primary application server processes requests and synchronously ships
//! the *processing state* to a single backup — a `Start` record before
//! touching the databases and an `Outcome` record once the votes are in.
//! On a primary crash the backup finishes in-flight work: attempts with a
//! recorded outcome are completed, attempts without one are aborted.
//!
//! The catch — and the paper's point — is that this design **requires a
//! perfect failure detector**: if the backup takes over while the primary
//! is actually alive, both may decide, and with no wo-register to
//! arbitrate, they can decide *differently*. Here the perfection comes from
//! the simulator's crash oracle ([`Context::subscribe_node_events`]);
//! no real asynchronous network can provide it, which is why the paper's
//! protocol exists.
//!
//! Failure-free latency components are identical to the asynchronous
//! replication scheme (the paper skips measuring it for that reason): the
//! two backup round trips take the place of the two wo-register writes.

use etx_base::config::CostModel;
use etx_base::ids::{NodeId, RequestId, ResultId};
use etx_base::msg::{AppMsg, ClientMsg, DbMsg, DbReplyMsg, Payload, PbMsg};
use etx_base::runtime::{jittered, Context, Event, Process, TimerTag};
use etx_base::time::Time;
use etx_base::trace::{Component, TraceKind};
use etx_base::value::{Decision, ExecStatus, Outcome, Request, ResultValue, Vote};
use etx_core::resultbuild;
use std::collections::{HashMap, HashSet};

/// Role of a [`PbServer`] at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbRole {
    /// Handles requests.
    Primary,
    /// Mirrors the primary's processing state; takes over on its crash.
    Backup,
}

#[derive(Debug)]
enum Phase {
    AwaitingStartAck { request: Request, t0: Time },
    Executing { request: Request, call_idx: usize, acc: Vec<(String, i64)> },
    Preparing { result: ResultValue, involved: Vec<NodeId>, votes: HashMap<NodeId, Vote> },
    AwaitingOutcomeAck { decision: Decision, involved: Vec<NodeId>, t0: Time },
    Deciding { decision: Decision, targets: Vec<NodeId>, acked: HashSet<NodeId> },
    Done { decision: Decision },
}

/// One of the two application servers in the primary-backup scheme.
pub struct PbServer {
    role: PbRole,
    peer: NodeId,
    peer_up: bool,
    dlist: Vec<NodeId>,
    cost: CostModel,
    fsms: HashMap<ResultId, Phase>,
    /// Backup-side mirror of the primary's processing state.
    mirror_start: HashMap<ResultId, Request>,
    mirror_outcome: HashMap<ResultId, Decision>,
    committed_cache: HashMap<RequestId, (ResultId, Decision)>,
}

impl std::fmt::Debug for PbServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PbServer").field("role", &self.role).finish()
    }
}

impl PbServer {
    /// Creates a primary or backup over the given databases.
    pub fn new(role: PbRole, peer: NodeId, dlist: Vec<NodeId>, cost: CostModel) -> Self {
        PbServer {
            role,
            peer,
            peer_up: true,
            dlist,
            cost,
            fsms: HashMap::new(),
            mirror_start: HashMap::new(),
            mirror_outcome: HashMap::new(),
            committed_cache: HashMap::new(),
        }
    }

    // ---- primary side ------------------------------------------------------

    fn on_request(&mut self, ctx: &mut dyn Context, request: Request, attempt: u32) {
        if self.role == PbRole::Backup {
            // Not ours to serve (a broadcast reached us while the primary
            // is alive). If the primary is gone we have been promoted and
            // `role` is already Primary.
            return;
        }
        let rid = ResultId { request: request.id, attempt };
        if let Some((crid, decision)) = self.committed_cache.get(&request.id).cloned() {
            ctx.send(
                rid.request.client,
                Payload::App(AppMsg::Result { rid: crid, decision, stamps: Vec::new() }),
            );
            return;
        }
        match self.fsms.get(&rid) {
            Some(Phase::Done { decision }) => {
                let decision = decision.clone();
                ctx.send(
                    rid.request.client,
                    Payload::App(AppMsg::Result { rid, decision, stamps: Vec::new() }),
                );
                return;
            }
            Some(_) => return,
            None => {}
        }
        let dur = jittered(ctx, self.cost.start, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::Start, dur });
        self.fsms.insert(rid, Phase::AwaitingStartAck { request, t0: ctx.now() });
        ctx.set_timer(dur, TimerTag::Dispatch { rid, stage: 0 });
    }

    fn ship_start(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::AwaitingStartAck { request, .. }) = self.fsms.get_mut(&rid) else {
            return;
        };
        let request = request.clone();
        if let Some(Phase::AwaitingStartAck { t0, .. }) = self.fsms.get_mut(&rid) {
            *t0 = ctx.now();
        }
        if self.peer_up {
            ctx.send(self.peer, Payload::Pb(PbMsg::Start { rid, request }));
        } else {
            // Solo mode: no backup left to mirror to.
            self.begin_exec(ctx, rid);
        }
    }

    fn begin_exec(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::AwaitingStartAck { request, .. } | Phase::Executing { request, .. }) =
            self.fsms.get(&rid)
        else {
            return;
        };
        let request = request.clone();
        self.fsms.insert(rid, Phase::Executing { request, call_idx: 0, acc: Vec::new() });
        self.send_current_exec(ctx, rid);
    }

    fn send_current_exec(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Executing { request, call_idx, .. }) = self.fsms.get(&rid) else {
            return;
        };
        if *call_idx >= request.script.calls.len() {
            self.start_prepare(ctx, rid);
            return;
        }
        let call = request.script.calls[*call_idx].clone();
        ctx.send(call.db, Payload::Db(DbMsg::Exec { rid, ops: call.ops, xa: true }));
    }

    fn on_exec_reply(&mut self, ctx: &mut dyn Context, rid: ResultId, status: ExecStatus) {
        let Some(Phase::Executing { request, call_idx, acc }) = self.fsms.get_mut(&rid) else {
            return;
        };
        match status {
            ExecStatus::Done(outputs) => {
                let call = &request.script.calls[*call_idx];
                resultbuild::accumulate(call, &outputs, acc);
                *call_idx += 1;
                self.send_current_exec(ctx, rid);
            }
            ExecStatus::Conflict => {
                acc.push(("conflict".to_string(), 1));
                self.start_prepare(ctx, rid);
            }
        }
    }

    fn start_prepare(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Executing { request, acc, .. }) = self.fsms.get(&rid) else { return };
        let result = resultbuild::finish(acc.clone(), rid.attempt);
        let involved = request.script.databases();
        if involved.is_empty() {
            let decision = Decision { result: Some(result), outcome: Outcome::Commit };
            self.ship_outcome(ctx, rid, decision, Vec::new());
            return;
        }
        let cross = involved.len() > 1;
        for db in &involved {
            ctx.send(*db, Payload::Db(DbMsg::Prepare { rid, cross }));
        }
        self.fsms.insert(rid, Phase::Preparing { result, involved, votes: HashMap::new() });
    }

    fn on_vote(&mut self, ctx: &mut dyn Context, from: NodeId, rid: ResultId, vote: Vote) {
        let Some(Phase::Preparing { votes, involved, .. }) = self.fsms.get_mut(&rid) else {
            return;
        };
        if involved.contains(&from) {
            votes.insert(from, vote);
        }
        let Some(Phase::Preparing { result, involved, votes }) = self.fsms.get(&rid) else {
            return;
        };
        if votes.len() < involved.len() {
            return;
        }
        let outcome = if involved.iter().all(|d| votes.get(d) == Some(&Vote::Yes)) {
            Outcome::Commit
        } else {
            Outcome::Abort
        };
        let decision = Decision { result: Some(result.clone()), outcome };
        let involved = involved.clone();
        self.ship_outcome(ctx, rid, decision, involved);
    }

    fn ship_outcome(
        &mut self,
        ctx: &mut dyn Context,
        rid: ResultId,
        decision: Decision,
        involved: Vec<NodeId>,
    ) {
        self.fsms.insert(
            rid,
            Phase::AwaitingOutcomeAck { decision: decision.clone(), involved, t0: ctx.now() },
        );
        if self.peer_up {
            ctx.send(self.peer, Payload::Pb(PbMsg::Outcome { rid, decision }));
        } else {
            self.begin_decide(ctx, rid);
        }
    }

    fn begin_decide(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::AwaitingOutcomeAck { decision, involved, .. }) = self.fsms.get(&rid) else {
            return;
        };
        let (decision, targets) = (decision.clone(), involved.clone());
        if targets.is_empty() {
            self.fsms.insert(
                rid,
                Phase::Deciding {
                    decision: decision.clone(),
                    targets: Vec::new(),
                    acked: HashSet::new(),
                },
            );
            self.complete(ctx, rid);
            return;
        }
        for db in &targets {
            ctx.send(*db, Payload::Db(DbMsg::Decide { rid, outcome: decision.outcome }));
        }
        ctx.set_timer(etx_base::time::Dur::from_millis(150), TimerTag::PbTick);
        self.fsms.insert(rid, Phase::Deciding { decision, targets, acked: HashSet::new() });
    }

    fn on_ack_decide(&mut self, ctx: &mut dyn Context, from: NodeId, rid: ResultId) {
        let Some(Phase::Deciding { targets, acked, .. }) = self.fsms.get_mut(&rid) else {
            return;
        };
        if targets.contains(&from) {
            acked.insert(from);
            if acked.len() == targets.len() {
                self.complete(ctx, rid);
            }
        }
    }

    fn complete(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Deciding { decision, .. }) = self.fsms.get(&rid) else { return };
        let decision = decision.clone();
        if decision.outcome == Outcome::Commit {
            self.committed_cache.insert(rid.request, (rid, decision.clone()));
        }
        self.fsms.insert(rid, Phase::Done { decision: decision.clone() });
        let dur = jittered(ctx, self.cost.end, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::End, dur });
        ctx.send_after(
            dur,
            rid.request.client,
            Payload::App(AppMsg::Result { rid, decision, stamps: Vec::new() }),
        );
    }

    fn retry_decides(&mut self, ctx: &mut dyn Context) {
        let mut any = false;
        for (&rid, phase) in self.fsms.iter() {
            if let Phase::Deciding { decision, targets, acked } = phase {
                for db in targets {
                    if !acked.contains(db) {
                        ctx.send(
                            *db,
                            Payload::Db(DbMsg::Decide { rid, outcome: decision.outcome }),
                        );
                        any = true;
                    }
                }
            }
        }
        if any {
            ctx.set_timer(etx_base::time::Dur::from_millis(150), TimerTag::PbTick);
        }
    }

    // ---- backup side ---------------------------------------------------------

    fn on_pb(&mut self, ctx: &mut dyn Context, from: NodeId, msg: PbMsg) {
        match msg {
            PbMsg::Start { rid, request } => {
                self.mirror_start.insert(rid, request);
                ctx.send(from, Payload::Pb(PbMsg::AckStart { rid }));
            }
            PbMsg::Outcome { rid, decision } => {
                self.mirror_outcome.insert(rid, decision);
                ctx.send(from, Payload::Pb(PbMsg::AckOutcome { rid }));
            }
            PbMsg::AckStart { rid } => {
                if let Some(Phase::AwaitingStartAck { t0, .. }) = self.fsms.get(&rid) {
                    let dur = ctx.now().since(*t0);
                    ctx.trace(TraceKind::Span { rid, comp: Component::LogStart, dur });
                    self.begin_exec(ctx, rid);
                }
            }
            PbMsg::AckOutcome { rid } => {
                if let Some(Phase::AwaitingOutcomeAck { t0, .. }) = self.fsms.get(&rid) {
                    let dur = ctx.now().since(*t0);
                    ctx.trace(TraceKind::Span { rid, comp: Component::LogOutcome, dur });
                    self.begin_decide(ctx, rid);
                }
            }
        }
    }

    /// Fail-over (perfect-FD driven): complete mirrored work.
    fn take_over(&mut self, ctx: &mut dyn Context) {
        self.role = PbRole::Primary;
        self.peer_up = false;
        let rids: Vec<ResultId> = self.mirror_start.keys().copied().collect();
        for rid in rids {
            if self.fsms.contains_key(&rid) {
                continue;
            }
            let decision =
                self.mirror_outcome.get(&rid).cloned().unwrap_or_else(Decision::nil_abort);
            // Push the decision to every database (abort is presumed at
            // uninvolved servers; commit is vacuous there).
            let targets = self.dlist.clone();
            for db in &targets {
                ctx.send(*db, Payload::Db(DbMsg::Decide { rid, outcome: decision.outcome }));
            }
            self.fsms.insert(rid, Phase::Deciding { decision, targets, acked: HashSet::new() });
        }
        if !self.fsms.is_empty() {
            ctx.set_timer(etx_base::time::Dur::from_millis(150), TimerTag::PbTick);
        }
    }
}

impl Process for PbServer {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init => {
                // The perfect failure detector the scheme cannot live
                // without — only an oracle can provide it.
                ctx.subscribe_node_events();
            }
            Event::NodeDown(n) if n == self.peer => {
                self.peer_up = false;
                if self.role == PbRole::Backup {
                    self.take_over(ctx);
                }
            }
            Event::NodeUp(n) if n == self.peer => {
                // Crash-stop model for app servers: a recovered peer rejoins
                // as a cold backup only in extensions; ignore here.
            }
            Event::Message {
                payload: Payload::Client(ClientMsg::Request { request, attempt, .. }),
                ..
            } => self.on_request(ctx, request, attempt),
            Event::Message { from, payload: Payload::Pb(m) } => self.on_pb(ctx, from, m),
            Event::Message { from, payload: Payload::DbReply(reply) } => match reply {
                DbReplyMsg::ExecReply { rid, status } => self.on_exec_reply(ctx, rid, status),
                DbReplyMsg::Vote { rid, vote } => self.on_vote(ctx, from, rid, vote),
                DbReplyMsg::AckDecide { rid, .. } => self.on_ack_decide(ctx, from, rid),
                DbReplyMsg::Ready => self.retry_decides(ctx),
                _ => {}
            },
            Event::Timer { tag: TimerTag::Dispatch { rid, stage: 0 }, .. } => {
                self.ship_start(ctx, rid)
            }
            Event::Timer { tag: TimerTag::PbTick, .. } => self.retry_decides(ctx),
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "pb-server"
    }
}
