//! Presumed-nothing two-phase commit (Appendix 3, Figure 7b).
//!
//! One coordinator application server drives the classic protocol the paper
//! measures at +23% over the baseline:
//!
//! 1. **force-log a start record** (the "log-start" row: eager disk I/O);
//! 2. run the business logic;
//! 3. send `Prepare`, collect votes;
//! 4. **force-log the outcome** (the "log-outcome" row);
//! 5. send `Decide`, collect acks, answer the client.
//!
//! Guarantees: at-most-once. If the coordinator crashes between 3 and 5 the
//! databases stay **blocked** — prepared branches hold their locks until
//! the coordinator recovers and completes from its log (2PC is a blocking
//! protocol \[3\]). The client, meanwhile, has only a timeout. Both
//! weaknesses are demonstrated in the test-suite against identical fault
//! schedules where the e-Transaction protocol sails through.

use etx_base::config::CostModel;
use etx_base::ids::{NodeId, ResultId};
use etx_base::msg::{AppMsg, ClientMsg, DbMsg, DbReplyMsg, Payload};
use etx_base::runtime::{jittered, Context, Event, Process, TimerTag};
use etx_base::trace::{Component, TraceKind};
use etx_base::value::{Decision, ExecStatus, Outcome, Request, ResultValue, Vote};
use etx_base::wal::{StableRecord, LOG_COORD};
use etx_core::resultbuild;
use std::collections::{HashMap, HashSet};

#[derive(Debug)]
enum Phase {
    LoggingStart { request: Request },
    Executing { request: Request, call_idx: usize, acc: Vec<(String, i64)> },
    Preparing { result: ResultValue, involved: Vec<NodeId>, votes: HashMap<NodeId, Vote> },
    LoggingOutcome { decision: Decision, involved: Vec<NodeId> },
    Deciding { decision: Decision, targets: Vec<NodeId>, acked: HashSet<NodeId> },
    Done { decision: Decision },
}

/// The 2PC coordinator process (also the application server).
pub struct TpcServer {
    dlist: Vec<NodeId>,
    cost: CostModel,
    fsms: HashMap<ResultId, Phase>,
    /// Transactions completed by crash recovery: the client's connection
    /// died with the old incarnation, so no reply can be sent (the user is
    /// left with a timeout — the paper's §1 ambiguity).
    no_reply: std::collections::HashSet<ResultId>,
}

impl std::fmt::Debug for TpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpcServer").field("in_flight", &self.fsms.len()).finish()
    }
}

impl TpcServer {
    /// Creates a 2PC coordinator over the given database list.
    pub fn new(dlist: Vec<NodeId>, cost: CostModel) -> Self {
        TpcServer { dlist, cost, fsms: HashMap::new(), no_reply: std::collections::HashSet::new() }
    }

    fn on_request(&mut self, ctx: &mut dyn Context, request: Request, attempt: u32) {
        let rid = ResultId { request: request.id, attempt };
        match self.fsms.get(&rid) {
            Some(Phase::Done { decision }) => {
                let decision = decision.clone();
                ctx.send(
                    rid.request.client,
                    Payload::App(AppMsg::Result { rid, decision, stamps: Vec::new() }),
                );
                return;
            }
            Some(_) => return, // in flight
            None => {}
        }
        self.fsms.insert(rid, Phase::LoggingStart { request });
        let dur = jittered(ctx, self.cost.start, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::Start, dur });
        ctx.set_timer(dur, TimerTag::Dispatch { rid, stage: 0 });
    }

    /// Stage 0: the forced start record ("presumed nothing", the paper's
    /// log-start ≈ 12.5 ms).
    fn log_start(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::LoggingStart { .. }) = self.fsms.get(&rid) else { return };
        let dur = ctx.log_append(LOG_COORD, StableRecord::CoordStart { rid }, true);
        ctx.trace(TraceKind::Span { rid, comp: Component::LogStart, dur });
        ctx.set_timer(dur, TimerTag::Dispatch { rid, stage: 1 });
    }

    /// Stage 1: begin the business logic.
    fn begin_exec(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::LoggingStart { request }) = self.fsms.get(&rid) else { return };
        let request = request.clone();
        self.fsms.insert(rid, Phase::Executing { request, call_idx: 0, acc: Vec::new() });
        self.send_current_exec(ctx, rid);
    }

    fn send_current_exec(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Executing { request, call_idx, .. }) = self.fsms.get(&rid) else {
            return;
        };
        if *call_idx >= request.script.calls.len() {
            self.start_prepare(ctx, rid);
            return;
        }
        let call = request.script.calls[*call_idx].clone();
        ctx.send(call.db, Payload::Db(DbMsg::Exec { rid, ops: call.ops, xa: true }));
    }

    fn on_exec_reply(&mut self, ctx: &mut dyn Context, rid: ResultId, status: ExecStatus) {
        let Some(Phase::Executing { request, call_idx, acc }) = self.fsms.get_mut(&rid) else {
            return;
        };
        match status {
            ExecStatus::Done(outputs) => {
                let call = &request.script.calls[*call_idx];
                resultbuild::accumulate(call, &outputs, acc);
                *call_idx += 1;
                self.send_current_exec(ctx, rid);
            }
            ExecStatus::Conflict => {
                acc.push(("conflict".to_string(), 1));
                self.start_prepare(ctx, rid);
            }
        }
    }

    fn start_prepare(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Executing { request, acc, .. }) = self.fsms.get(&rid) else { return };
        let result = resultbuild::finish(acc.clone(), rid.attempt);
        let involved = request.script.databases();
        if involved.is_empty() {
            let decision = Decision { result: Some(result), outcome: Outcome::Commit };
            self.log_outcome(ctx, rid, decision, Vec::new());
            return;
        }
        let cross = involved.len() > 1;
        for db in &involved {
            ctx.send(*db, Payload::Db(DbMsg::Prepare { rid, cross }));
        }
        self.fsms.insert(rid, Phase::Preparing { result, involved, votes: HashMap::new() });
    }

    fn on_vote(&mut self, ctx: &mut dyn Context, from: NodeId, rid: ResultId, vote: Vote) {
        let Some(Phase::Preparing { votes, involved, .. }) = self.fsms.get_mut(&rid) else {
            return;
        };
        if involved.contains(&from) {
            votes.insert(from, vote);
        }
        let (all_in, involved_c) = {
            let Some(Phase::Preparing { votes, involved, .. }) = self.fsms.get(&rid) else {
                return;
            };
            (votes.len() == involved.len(), involved.clone())
        };
        if !all_in {
            return;
        }
        let Some(Phase::Preparing { result, involved, votes }) = self.fsms.get(&rid) else {
            return;
        };
        let outcome = if involved.iter().all(|d| votes.get(d) == Some(&Vote::Yes)) {
            Outcome::Commit
        } else {
            Outcome::Abort
        };
        let decision = Decision { result: Some(result.clone()), outcome };
        self.log_outcome(ctx, rid, decision, involved_c);
    }

    /// The forced outcome record (the paper's log-outcome ≈ 12.7 ms).
    fn log_outcome(
        &mut self,
        ctx: &mut dyn Context,
        rid: ResultId,
        decision: Decision,
        involved: Vec<NodeId>,
    ) {
        let dur = ctx.log_append(
            LOG_COORD,
            StableRecord::CoordOutcome {
                rid,
                outcome: decision.outcome,
                result: decision.result.clone(),
            },
            true,
        );
        ctx.trace(TraceKind::Span { rid, comp: Component::LogOutcome, dur });
        self.fsms.insert(rid, Phase::LoggingOutcome { decision, involved });
        ctx.set_timer(dur, TimerTag::Dispatch { rid, stage: 2 });
    }

    /// Stage 2: push the decision.
    fn begin_decide(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::LoggingOutcome { decision, involved }) = self.fsms.get(&rid) else {
            return;
        };
        let (decision, targets) = (decision.clone(), involved.clone());
        if targets.is_empty() {
            self.fsms.insert(
                rid,
                Phase::Deciding { decision, targets: Vec::new(), acked: HashSet::new() },
            );
            self.complete(ctx, rid);
            return;
        }
        for db in &targets {
            ctx.send(*db, Payload::Db(DbMsg::Decide { rid, outcome: decision.outcome }));
        }
        ctx.set_timer(self.retry_period(), TimerTag::TpcTick);
        self.fsms.insert(rid, Phase::Deciding { decision, targets, acked: HashSet::new() });
    }

    fn retry_period(&self) -> etx_base::time::Dur {
        etx_base::time::Dur::from_millis(150)
    }

    fn on_ack_decide(&mut self, ctx: &mut dyn Context, from: NodeId, rid: ResultId) {
        let Some(Phase::Deciding { targets, acked, .. }) = self.fsms.get_mut(&rid) else {
            return;
        };
        if targets.contains(&from) {
            acked.insert(from);
            if acked.len() == targets.len() {
                self.complete(ctx, rid);
            }
        }
    }

    fn complete(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Deciding { decision, .. }) = self.fsms.get(&rid) else { return };
        let decision = decision.clone();
        self.fsms.insert(rid, Phase::Done { decision: decision.clone() });
        if self.no_reply.contains(&rid) {
            // Completed during crash recovery: the client connection is
            // gone; the database is unblocked but the user hears nothing.
            return;
        }
        let dur = jittered(ctx, self.cost.end, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::End, dur });
        ctx.send_after(
            dur,
            rid.request.client,
            Payload::App(AppMsg::Result { rid, decision, stamps: Vec::new() }),
        );
    }

    fn retry_decides(&mut self, ctx: &mut dyn Context) {
        let mut any = false;
        for (&rid, phase) in self.fsms.iter() {
            if let Phase::Deciding { decision, targets, acked } = phase {
                for db in targets {
                    if !acked.contains(db) {
                        ctx.send(
                            *db,
                            Payload::Db(DbMsg::Decide { rid, outcome: decision.outcome }),
                        );
                        any = true;
                    }
                }
            }
        }
        if any {
            ctx.set_timer(self.retry_period(), TimerTag::TpcTick);
        }
    }

    /// Coordinator recovery (presumed nothing): a start record without an
    /// outcome means abort; an outcome record is pushed again until the
    /// databases acknowledge. This is what eventually *unblocks* the
    /// in-doubt databases — but only when the coordinator comes back.
    fn recover(&mut self, ctx: &mut dyn Context) {
        let log = ctx.log_read(LOG_COORD);
        let mut started: Vec<ResultId> = Vec::new();
        let mut outcomes: HashMap<ResultId, Decision> = HashMap::new();
        for rec in log {
            match rec {
                StableRecord::CoordStart { rid } => started.push(rid),
                StableRecord::CoordOutcome { rid, outcome, result } => {
                    outcomes.insert(rid, Decision { result, outcome });
                }
                _ => {}
            }
        }
        for rid in started {
            let decision =
                outcomes.remove(&rid).unwrap_or(Decision { result: None, outcome: Outcome::Abort });
            // Re-drive the decision; the involved set is unknown after the
            // crash, so push to every database (aborts are presumed and
            // commits are vacuous at uninvolved servers).
            self.no_reply.insert(rid);
            let targets = self.dlist.clone();
            for db in &targets {
                ctx.send(*db, Payload::Db(DbMsg::Decide { rid, outcome: decision.outcome }));
            }
            self.fsms.insert(rid, Phase::Deciding { decision, targets, acked: HashSet::new() });
        }
        if !self.fsms.is_empty() {
            ctx.set_timer(self.retry_period(), TimerTag::TpcTick);
        }
    }
}

impl Process for TpcServer {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Recovered => self.recover(ctx),
            Event::Message {
                payload: Payload::Client(ClientMsg::Request { request, attempt, .. }),
                ..
            } => self.on_request(ctx, request, attempt),
            Event::Message { from, payload: Payload::DbReply(reply) } => match reply {
                DbReplyMsg::ExecReply { rid, status } => self.on_exec_reply(ctx, rid, status),
                DbReplyMsg::Vote { rid, vote } => self.on_vote(ctx, from, rid, vote),
                DbReplyMsg::AckDecide { rid, .. } => self.on_ack_decide(ctx, from, rid),
                DbReplyMsg::Ready => {
                    // Treat like the e-Transaction server: missing votes
                    // become no; pending decides are re-pushed.
                    let rids: Vec<ResultId> = self.fsms.keys().copied().collect();
                    for rid in rids {
                        if let Some(Phase::Preparing { votes, involved, .. }) =
                            self.fsms.get_mut(&rid)
                        {
                            if involved.contains(&from) && !votes.contains_key(&from) {
                                votes.insert(from, Vote::No);
                                self.on_vote(ctx, from, rid, Vote::No);
                            }
                        }
                    }
                    self.retry_decides(ctx);
                }
                _ => {}
            },
            Event::Timer { tag: TimerTag::Dispatch { rid, stage }, .. } => match stage {
                0 => self.log_start(ctx, rid),
                1 => self.begin_exec(ctx, rid),
                2 => self.begin_decide(ctx, rid),
                _ => {}
            },
            Event::Timer { tag: TimerTag::TpcTick, .. } => self.retry_decides(ctx),
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "tpc-coordinator"
    }
}
