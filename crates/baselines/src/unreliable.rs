//! The unreliable baseline protocol (Appendix 3, Figure 7a).
//!
//! One application server, no replication, no voting, no logging: execute
//! the business logic and one-phase-commit at each database. It offers *no*
//! guarantee — a crash anywhere loses the request, and with several
//! databases it is not even atomic. It exists as the latency floor the
//! paper's "cost of reliability" row is computed against.

use etx_base::config::CostModel;
use etx_base::ids::{NodeId, ResultId};
use etx_base::msg::{AppMsg, ClientMsg, DbMsg, DbReplyMsg, Payload};
use etx_base::runtime::{jittered, Context, Event, Process, TimerTag};
use etx_base::trace::{Component, TraceKind};
use etx_base::value::{Decision, ExecStatus, Outcome, Request};
use etx_core::resultbuild;
use std::collections::{HashMap, HashSet};

#[derive(Debug)]
enum Phase {
    Executing {
        request: Request,
        call_idx: usize,
        acc: Vec<(String, i64)>,
    },
    Committing {
        result: etx_base::value::ResultValue,
        targets: Vec<NodeId>,
        acked: HashSet<NodeId>,
        any_failed: bool,
    },
    Done,
}

/// The Figure 7a server process.
pub struct BaselineServer {
    cost: CostModel,
    fsms: HashMap<ResultId, Phase>,
}

impl std::fmt::Debug for BaselineServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineServer").field("in_flight", &self.fsms.len()).finish()
    }
}

impl BaselineServer {
    /// Creates the baseline middle tier.
    pub fn new(cost: CostModel) -> Self {
        BaselineServer { cost, fsms: HashMap::new() }
    }

    fn on_request(&mut self, ctx: &mut dyn Context, request: Request, attempt: u32) {
        let rid = ResultId { request: request.id, attempt };
        if self.fsms.contains_key(&rid) {
            return; // duplicate in flight — baseline has no better answer
        }
        self.fsms.insert(rid, Phase::Executing { request, call_idx: 0, acc: Vec::new() });
        let dur = jittered(ctx, self.cost.start, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::Start, dur });
        ctx.set_timer(dur, TimerTag::Dispatch { rid, stage: 0 });
    }

    fn send_current_exec(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Executing { request, call_idx, .. }) = self.fsms.get(&rid) else {
            return;
        };
        if *call_idx >= request.script.calls.len() {
            self.start_commit(ctx, rid);
            return;
        }
        let call = request.script.calls[*call_idx].clone();
        // xa = false: the baseline's SQL path has no XA bracketing overhead.
        ctx.send(call.db, Payload::Db(DbMsg::Exec { rid, ops: call.ops, xa: false }));
    }

    fn on_exec_reply(&mut self, ctx: &mut dyn Context, rid: ResultId, status: ExecStatus) {
        let Some(Phase::Executing { request, call_idx, acc }) = self.fsms.get_mut(&rid) else {
            return;
        };
        match status {
            ExecStatus::Done(outputs) => {
                let call = &request.script.calls[*call_idx];
                resultbuild::accumulate(call, &outputs, acc);
                *call_idx += 1;
                self.send_current_exec(ctx, rid);
            }
            ExecStatus::Conflict => {
                // No retry machinery: surface the failure.
                let client = rid.request.client;
                self.fsms.insert(rid, Phase::Done);
                ctx.send(
                    client,
                    Payload::App(AppMsg::Exception {
                        request: rid.request,
                        reason: "lock conflict".into(),
                    }),
                );
            }
        }
    }

    fn start_commit(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Executing { request, acc, .. }) = self.fsms.get(&rid) else { return };
        let result = resultbuild::finish(acc.clone(), rid.attempt);
        let targets = request.script.databases();
        if targets.is_empty() {
            self.finish(ctx, rid, result, false);
            return;
        }
        for db in &targets {
            ctx.send(*db, Payload::Db(DbMsg::CommitOnePhase { rid }));
        }
        self.fsms.insert(
            rid,
            Phase::Committing { result, targets, acked: HashSet::new(), any_failed: false },
        );
    }

    fn on_commit_ack(&mut self, ctx: &mut dyn Context, from: NodeId, rid: ResultId, ok: bool) {
        let Some(Phase::Committing { targets, acked, any_failed, .. }) = self.fsms.get_mut(&rid)
        else {
            return;
        };
        if !targets.contains(&from) {
            return;
        }
        acked.insert(from);
        *any_failed |= !ok;
        if acked.len() == targets.len() {
            let (result, failed) = match self.fsms.get(&rid) {
                Some(Phase::Committing { result, any_failed, .. }) => (result.clone(), *any_failed),
                _ => unreachable!(),
            };
            self.finish(ctx, rid, result, failed);
        }
    }

    fn finish(
        &mut self,
        ctx: &mut dyn Context,
        rid: ResultId,
        result: etx_base::value::ResultValue,
        failed: bool,
    ) {
        self.fsms.insert(rid, Phase::Done);
        let dur = jittered(ctx, self.cost.end, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::End, dur });
        let payload = if failed {
            Payload::App(AppMsg::Exception { request: rid.request, reason: "commit failed".into() })
        } else {
            Payload::App(AppMsg::Result {
                rid,
                decision: Decision { result: Some(result), outcome: Outcome::Commit },
                stamps: Vec::new(),
            })
        };
        ctx.send_after(dur, rid.request.client, payload);
    }
}

impl Process for BaselineServer {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Message {
                payload: Payload::Client(ClientMsg::Request { request, attempt, .. }),
                ..
            } => self.on_request(ctx, request, attempt),
            Event::Message { from, payload: Payload::DbReply(reply) } => match reply {
                DbReplyMsg::ExecReply { rid, status } => self.on_exec_reply(ctx, rid, status),
                DbReplyMsg::AckCommitOnePhase { rid, ok } => self.on_commit_ack(ctx, from, rid, ok),
                _ => {}
            },
            Event::Timer { tag: TimerTag::Dispatch { rid, stage: 0 }, .. } => {
                self.send_current_exec(ctx, rid)
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "baseline-server"
    }
}
