//! X6 — the commit pipeline: batch size 1/8/64 at 1 and 16 shards,
//! with and without speculative queue-oriented execution — plus X6b, the
//! decision-log **window sweep**: the batch-64 speculative configuration
//! re-run at window depth 1/4/8 in the regime where the proposal cadence
//! outruns the consensus round.
//!
//! The same open-loop burst (16 clients × 12 requests fired concurrently)
//! drives three pipeline depths on a flat and a wide back end; the batched
//! depths run twice, once strict (decide-then-execute) and once
//! speculative (execute during the consensus round, promote on a matching
//! decision). Two views per configuration:
//!
//! * **simulated metrics** (printed table): committed requests per
//!   simulated second and mean issue→delivery latency — what batching,
//!   speculation and the slot window buy the *modelled* system as one
//!   consensus slot, one group WAL append and one replica shipment
//!   amortise over a whole batch, as execution overlaps the consensus
//!   round, and as consecutive rounds overlap each other;
//! * **host throughput** (criterion): wall-clock cost of simulating the
//!   workload — shows the pipeline bookkeeping itself stays cheap.
//!
//! The flush-window backstop is sized to the shard fan-out: a single
//! shard produces outcomes ~16× slower than sixteen, so it needs a
//! proportionally longer window before the queue can exceed the smaller
//! batch cap — with a 1 ms window the 1-shard queue drains at two or
//! three outcomes per flush and batch 8 and batch 64 coincide exactly
//! (the pre-PR-6 JSON rows). 5 ms at 1 shard and 1 ms at 16 lets every
//! depth actually fill.
//!
//! The window sweep inverts that sizing on purpose: a single undecided
//! slot only serialises anything when flushes arrive *faster* than the
//! ~3-hop write round decides (≈0.6–0.9 ms in the fast cost model), so
//! X6b tightens the flush window below the round — 700 µs at 16 shards,
//! and 500 µs under a deliberately light two-client load at 1 shard (the
//! 16-client burst saturates the single serial SQL device, which hides
//! the consensus round entirely — the JSON notes record that regime too).
//!
//! The driver records the printed rows in `BENCH_batching.json` so the
//! perf trajectory tracks the pipeline across PRs. The acceptance bars
//! are asserted here, so a regression fails the bench run instead of
//! silently aging the JSON:
//!
//! * batch 64 strictly out-commits batch 1 at 16 shards;
//! * batch 64 strictly beats batch 8 at 1 shard (the depths no longer
//!   coincide);
//! * speculation-on batch-64 mean committed latency is strictly below
//!   speculation-off at both 1 and 16 shards;
//! * 16-shard batch-64 commit/s holds the 5905 bar, speculation on or
//!   off;
//! * in the window sweep, depth ≥ 4 strictly beats depth 1 on 1-shard
//!   mean latency (the window unblocks flushes the single-slot log
//!   parks behind the undecided round) and holds the 6135 bar — the
//!   single-slot speculative ceiling — at 16 shards, where depth 1 at
//!   the same cadence stalls below it.

use criterion::{criterion_group, criterion_main, Criterion};
use etx_base::config::{BatchingConfig, PipelineConfig, SpeculationConfig};
use etx_base::time::Dur;
use etx_harness::{MiddleTier, ScenarioBuilder, Workload};
use std::hint::black_box;

const REQUESTS: u64 = 12;
const CLIENTS: usize = 16;

/// Flush-window backstop for a batched depth, sized to the outcome
/// arrival rate (see module docs).
fn flush_window(shards: u32) -> Dur {
    if shards == 1 {
        Dur::from_millis(5)
    } else {
        Dur::from_millis(1)
    }
}

/// One bench configuration: back-end width, offered load, batch cap with
/// its flush window, speculation mode and decision-log window depth.
#[derive(Clone, Copy, PartialEq)]
struct Cfg {
    shards: u32,
    clients: usize,
    batch: usize,
    window: Dur,
    spec: bool,
    depth: usize,
}

/// (mean latency ms, committed req per simulated second, SpecHit count).
fn run_once(cfg: Cfg, seed: u64) -> (f64, f64, usize) {
    let spec_cfg = if cfg.spec { SpeculationConfig::on() } else { SpeculationConfig::disabled() };
    let mut b = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(cfg.shards)
        .clients(cfg.clients)
        .workload(Workload::OpenLoopBurst { accounts: cfg.shards * 8, amount: 1 })
        .requests(REQUESTS)
        .speculation(spec_cfg)
        .pipeline(PipelineConfig::new(cfg.depth));
    if cfg.batch > 1 {
        b = b.batching(BatchingConfig::new(cfg.batch, cfg.window));
    }
    let mut s = b.build();
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, etx_sim::RunOutcome::Predicate, "pipeline bench run must settle");
    let lats = s.request_latencies_ms();
    let mean_ms = lats.iter().sum::<f64>() / lats.len() as f64;
    let span_s = s.now().as_millis_f64() / 1_000.0;
    (mean_ms, s.delivered_commits() as f64 / span_s, s.spec_hits())
}

fn bench_commit_pipeline(c: &mut Criterion) {
    // The sweep IS the experiment: the CI matrix hooks that pin every
    // scenario to one depth / one speculation mode would collapse it to a
    // single row. Batching, speculation and the window depth are set
    // explicitly per row (explicit always wins over the environment), but
    // batch-1 rows set no batching at all, so scrub the env to keep them
    // flat.
    std::env::remove_var("ETX_BATCH_SIZE");
    std::env::remove_var("ETX_SPECULATION");
    std::env::remove_var("ETX_READ_PATH");
    std::env::remove_var("ETX_PIPELINE_DEPTH");
    println!(
        "\n=== X6: commit pipeline (OpenLoopBurst, {CLIENTS} clients x {REQUESTS} requests) ===\n"
    );
    println!(
        "{:>8}{:>8}{:>8}{:>8}{:>10}{:>16}{:>16}{:>12}",
        "shards", "clients", "batch", "spec", "window", "latency ms", "sim commit/s", "spec hits"
    );
    let mut rows: Vec<(Cfg, (f64, f64, usize))> = Vec::new();
    let run_row = |c: &mut Criterion, cfg: Cfg, rows: &mut Vec<(Cfg, (f64, f64, usize))>| {
        let (lat, cps, hits) = run_once(cfg, 0xBA7C4);
        let mode = if cfg.spec { "on" } else { "off" };
        println!(
            "{:>8}{:>8}{:>8}{mode:>8}{:>10}{lat:>16.2}{cps:>16.1}{hits:>12}",
            cfg.shards,
            cfg.clients,
            cfg.batch,
            format!("{}", cfg.window),
        );
        rows.push((cfg, (lat, cps, hits)));
        let tag = if cfg.spec { "_spec" } else { "" };
        let dtag = if cfg.depth > 1 { format!("_w{}", cfg.depth) } else { String::new() };
        let name = format!("pipeline/{}shards_batch{}{tag}{dtag}", cfg.shards, cfg.batch);
        c.bench_function(&name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(cfg, seed))
            })
        });
    };
    for &shards in &[1u32, 16] {
        for &(batch, spec) in &[(1usize, false), (8, false), (8, true), (64, false), (64, true)] {
            let cfg = Cfg {
                shards,
                clients: CLIENTS,
                batch,
                window: flush_window(shards),
                spec,
                depth: 1,
            };
            run_row(c, cfg, &mut rows);
        }
    }
    println!("\n=== X6b: decision-log window sweep (batch 64, speculation on) ===\n");
    println!(
        "{:>8}{:>8}{:>8}{:>8}{:>10}{:>16}{:>16}{:>12}",
        "shards", "clients", "depth", "spec", "window", "latency ms", "sim commit/s", "spec hits"
    );
    let mut sweep_rows: Vec<(Cfg, (f64, f64, usize))> = Vec::new();
    for &(shards, clients, win_us) in &[(1u32, 2usize, 500u64), (16, CLIENTS, 700)] {
        for &depth in &[1usize, 4, 8] {
            let cfg = Cfg {
                shards,
                clients,
                batch: 64,
                window: Dur::from_micros(win_us),
                spec: true,
                depth,
            };
            let (lat, cps, hits) = run_once(cfg, 0xBA7C4);
            println!(
                "{shards:>8}{clients:>8}{depth:>8}{:>8}{:>10}{lat:>16.2}{cps:>16.1}{hits:>12}",
                "on",
                format!("{}", cfg.window),
            );
            sweep_rows.push((cfg, (lat, cps, hits)));
            c.bench_function(&format!("pipeline/window/{shards}shards_depth{depth}"), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_once(cfg, seed))
                })
            });
        }
    }
    let row = |shards: u32, batch: usize, spec: bool| {
        rows.iter()
            .find(|(k, _)| (k.shards, k.batch, k.spec) == (shards, batch, spec))
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert!(
        row(16, 64, false).1 > row(16, 1, false).1,
        "batch 64 must strictly out-commit batch 1 at 16 shards ({:.1} vs {:.1} commit/s)",
        row(16, 64, false).1,
        row(16, 1, false).1
    );
    assert!(
        row(1, 64, false).0 < row(1, 8, false).0,
        "the deepened burst must separate batch 64 from batch 8 at 1 shard \
         ({:.2} vs {:.2} ms)",
        row(1, 64, false).0,
        row(1, 8, false).0
    );
    for &shards in &[1u32, 16] {
        let (on, off) = (row(shards, 64, true), row(shards, 64, false));
        assert!(
            on.2 >= 1,
            "speculation-on batch-64 at {shards} shards must promote batches (0 SpecHits)"
        );
        assert!(
            on.0 < off.0,
            "speculation-on batch-64 latency must be strictly below speculation-off \
             at {shards} shards ({:.2} vs {:.2} ms)",
            on.0,
            off.0
        );
    }
    for &spec in &[false, true] {
        assert!(
            row(16, 64, spec).1 >= 5905.0,
            "16-shard batch-64 commit/s must hold the 5905 bar (spec {}: {:.1})",
            if spec { "on" } else { "off" },
            row(16, 64, spec).1
        );
    }
    let sweep = |shards: u32, depth: usize| {
        sweep_rows
            .iter()
            .find(|(k, _)| (k.shards, k.depth) == (shards, depth))
            .map(|(_, v)| *v)
            .unwrap()
    };
    for &depth in &[4usize, 8] {
        assert!(
            sweep(1, depth).0 < sweep(1, 1).0,
            "a depth-{depth} window must strictly beat the single-slot log on 1-shard \
             batch-64 mean latency at a sub-round flush cadence ({:.2} vs {:.2} ms)",
            sweep(1, depth).0,
            sweep(1, 1).0
        );
        assert!(
            sweep(16, depth).1 >= 6135.0,
            "16-shard batch-64 commit/s at depth {depth} must hold the 6135 bar \
             (the single-slot speculative ceiling): {:.1}",
            sweep(16, depth).1
        );
    }
}

criterion_group!(benches, bench_commit_pipeline);
criterion_main!(benches);
