//! X6 — the commit pipeline: batch size 1/8/64 at 1 and 16 shards.
//!
//! The same open-loop burst (16 clients × 12 requests fired concurrently)
//! drives three pipeline depths on a flat and a wide back end. Two views
//! per configuration:
//!
//! * **simulated metrics** (printed table): committed requests per
//!   simulated second and mean issue→delivery latency — what batching buys
//!   the *modelled* system as one consensus slot, one group WAL append and
//!   one replica shipment amortise over a whole batch;
//! * **host throughput** (criterion): wall-clock cost of simulating the
//!   workload — shows the pipeline bookkeeping itself stays cheap.
//!
//! The driver records the printed rows in `BENCH_batching.json` so the
//! perf trajectory tracks the pipeline across PRs. The acceptance bar —
//! batch 64 strictly out-commits batch 1 at 16 shards — is asserted here,
//! so a regression fails the bench run instead of silently aging the JSON.

use criterion::{criterion_group, criterion_main, Criterion};
use etx_base::time::Dur;
use etx_harness::{MiddleTier, ScenarioBuilder, Workload};
use std::hint::black_box;

const REQUESTS: u64 = 12;
const CLIENTS: usize = 16;

/// (mean latency ms, committed req per simulated second).
fn run_once(shards: u32, batch: usize, seed: u64) -> (f64, f64) {
    let mut b = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(shards)
        .clients(CLIENTS)
        .workload(Workload::OpenLoopBurst { accounts: shards * 8, amount: 1 })
        .requests(REQUESTS);
    if batch > 1 {
        b = b.batching(batch, Dur::from_millis(1));
    }
    let mut s = b.build();
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, etx_sim::RunOutcome::Predicate, "pipeline bench run must settle");
    let lats = s.request_latencies_ms();
    let mean_ms = lats.iter().sum::<f64>() / lats.len() as f64;
    let span_s = s.sim.now().as_millis_f64() / 1_000.0;
    (mean_ms, s.delivered_commits() as f64 / span_s)
}

fn bench_commit_pipeline(c: &mut Criterion) {
    // The sweep IS the experiment: ETX_BATCH_SIZE (the CI matrix hook that
    // pins every scenario to one depth) would collapse it to a single row.
    std::env::remove_var("ETX_BATCH_SIZE");
    println!(
        "\n=== X6: commit pipeline (OpenLoopBurst, {CLIENTS} clients x {REQUESTS} requests) ===\n"
    );
    println!("{:>8}{:>8}{:>16}{:>16}", "shards", "batch", "latency ms", "sim commit/s");
    let mut at_16 = Vec::new();
    for &shards in &[1u32, 16] {
        for &batch in &[1usize, 8, 64] {
            let (lat, cps) = run_once(shards, batch, 0xBA7C4);
            println!("{shards:>8}{batch:>8}{lat:>16.2}{cps:>16.1}");
            if shards == 16 {
                at_16.push((batch, cps));
            }
            c.bench_function(&format!("pipeline/{shards}shards_batch{batch}"), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_once(shards, batch, seed))
                })
            });
        }
    }
    let cps_of = |b: usize| at_16.iter().find(|(x, _)| *x == b).map(|(_, c)| *c).unwrap();
    assert!(
        cps_of(64) > cps_of(1),
        "batch 64 must strictly out-commit batch 1 at 16 shards ({:.1} vs {:.1} commit/s)",
        cps_of(64),
        cps_of(1)
    );
}

criterion_group!(benches, bench_commit_pipeline);
criterion_main!(benches);
