//! X3 — ablation: where does the paper's headline ("AR beats 2PC because
//! it replaces forced disk I/O with network round trips") flip? Sweeping
//! the forced-log cost shows 2PC winning once a forced write is cheaper
//! than a consensus round trip.

use etx_harness::sweeps::{crossover_sweep, render_crossover};

fn main() {
    println!("\n=== X3: forced-I/O cost vs protocol totals ===\n");
    let forces = [1.0, 2.0, 4.0, 8.0, 12.5, 20.0, 35.0, 50.0];
    let rows = crossover_sweep(12, 0xF1_C3, &forces);
    println!("{}", render_crossover(&rows));
    // At the paper's 12.5 ms force cost, AR must win.
    let at_paper = rows.iter().find(|r| (r.log_force_ms - 12.5).abs() < 1e-9).unwrap();
    assert!(at_paper.ar_ms < at_paper.tpc_ms, "paper's conclusion must hold at 12.5 ms");
    // With a very expensive disk, 2PC only gets worse.
    let slow = rows.last().unwrap();
    assert!(slow.tpc_ms > at_paper.tpc_ms);
    println!("shape checks: AR wins at the paper's 12.5 ms forced-write cost ✓");
}
