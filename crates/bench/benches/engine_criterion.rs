//! Criterion microbenchmarks of the substrates: how fast the simulator,
//! the transactional engine and the consensus machinery themselves run.
//! These measure *host* performance (events/sec), unlike the figure
//! benches which measure *simulated* latency.

use criterion::{criterion_group, criterion_main, Criterion};
use etx_base::config::CostModel;
use etx_base::ids::{NodeId, RequestId, ResultId};
use etx_base::value::{DbOp, Outcome};
use etx_harness::{MiddleTier, ScenarioBuilder};
use etx_store::Engine;
use std::hint::black_box;

fn rid(seq: u64) -> ResultId {
    ResultId::first(RequestId { client: NodeId(0), seq })
}

fn bench_store(c: &mut Criterion) {
    c.bench_function("store/execute_prepare_commit", |b| {
        b.iter_batched(
            Engine::new,
            |mut e| {
                for i in 0..100u64 {
                    let r = rid(i);
                    e.execute(r, &[DbOp::Add { key: format!("k{}", i % 10), delta: 1 }]);
                    e.vote(r);
                    e.decide(r, Outcome::Commit);
                }
                black_box(e.committed("k0"))
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("store/recovery_replay", |b| {
        // Build a 300-record log once; measure replay.
        let mut e = Engine::new();
        let mut log = Vec::new();
        for i in 0..100u64 {
            let r = rid(i);
            e.execute(r, &[DbOp::Put { key: format!("k{i}"), value: i as i64 }]);
            for w in e.vote(r).1 {
                log.push(w.rec);
            }
            for w in e.decide(r, Outcome::Commit).1 {
                log.push(w.rec);
            }
        }
        b.iter(|| black_box(Engine::recover(&log)).snapshot().len())
    });
}

fn bench_simulation(c: &mut Criterion) {
    c.bench_function("sim/full_etx_transaction", |b| {
        // A complete e-Transaction (3 app servers, consensus, XA commit)
        // under the fast cost model: measures kernel + protocol throughput.
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed).build();
            let out = s.run_until_settled(1);
            black_box((out, s.sim().processed()))
        })
    });

    c.bench_function("sim/full_baseline_transaction", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut s = ScenarioBuilder::fast(MiddleTier::Baseline, seed).build();
            let out = s.run_until_settled(1);
            black_box((out, s.sim().processed()))
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    c.bench_function("rng/jitter_stream", |b| {
        let mut rng = etx_sim::Rng::new(1);
        let cost = CostModel::default();
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.jitter(cost.sql, cost.jitter).0);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_store, bench_simulation, bench_cost_model);
criterion_main!(benches);
