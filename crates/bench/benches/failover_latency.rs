//! X1 — the evaluation the paper's §5 calls for: client-perceived response
//! time under "various failure alternatives" — primary crashes at each
//! protocol stage × failure-detector timeout settings.

use etx_base::time::Dur;
use etx_harness::sweeps::{failover_sweep, render_failover};

fn main() {
    println!("\n=== X1: fail-over latency (primary crash points × FD timeout) ===\n");
    let timeouts =
        [Dur::from_millis(40), Dur::from_millis(80), Dur::from_millis(160), Dur::from_millis(320)];
    let rows = failover_sweep(0xF161_u64, &timeouts);
    println!("{}", render_failover(&rows));
    // Shape: fail-over latency grows with the FD timeout; the failure-free
    // control row does not.
    let control: Vec<f64> = rows
        .iter()
        .filter(|r| matches!(r.crash, etx_harness::sweeps::CrashPoint::None))
        .map(|r| r.latency_ms)
        .collect();
    let spread = control.iter().cloned().fold(f64::MIN, f64::max)
        - control.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 60.0, "failure-free latency must not depend on the FD timeout");
    println!("shape checks: control rows flat across FD timeouts ✓");
}
