//! E3 — regenerates **Figure 1**: the four canonical executions of the
//! e-Transaction protocol (failure-free commit/abort, fail-over with
//! commit, fail-over with abort), with safety checked on each history.

use etx_harness::figures::figure1_all;

fn main() {
    println!("\n=== Figure 1: canonical executions ===\n");
    let report = figure1_all(0x000F_1601);
    println!("{report}");
    assert!(!report.contains("VIOLATED"), "safety violated in a canonical execution");
    println!("all four panels safe ✓");
}
