//! E2 — regenerates **Figure 7**'s comparison ("Analytic measures"):
//! client-visible communication steps and message counts in failure-free
//! executions of the four protocols.
//!
//! Steps are *measured* causal depth on the simulated wire, not hand
//! counts. Paper's claim: asynchronous replication introduces the same
//! number of communication steps as primary-backup, more than 2PC or the
//! unreliable baseline (which pay disk forces / unreliability instead).

use etx_harness::figures::{figure7, render_fig7};

fn main() {
    let rows = figure7(0x000F_1607);
    println!("\n=== Figure 7: communication steps in failure-free executions ===\n");
    println!("{}", render_fig7(&rows));
    let steps = |l: &str| rows.iter().find(|r| r.label == l).unwrap().steps;
    assert_eq!(steps("AR"), steps("PB"), "paper: AR has the same steps as primary-backup");
    assert!(steps("AR") > steps("2PC"), "paper: AR has more steps than 2PC");
    assert!(steps("2PC") > steps("baseline"));
    println!("shape checks: steps(AR) == steps(PB) > steps(2PC) > steps(baseline) ✓");
}
