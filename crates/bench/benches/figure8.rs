//! E1/E4 — regenerates **Figure 8**: "Comparing the latency of the
//! protocols (milliseconds)".
//!
//! 50 failure-free bank-update transactions per protocol under the paper's
//! environment constants; per-component attribution from trace spans; 90%
//! confidence intervals (paper requires width < 10% of the mean).
//!
//! Paper reference values: baseline 217.4 ms, AR 252.3 ms (+16%),
//! 2PC 266.5 ms (+23%).

use etx_harness::figures::figure8;

fn main() {
    let trials = 50;
    let table = figure8(trials, 0xF1608);
    println!("\n=== Figure 8: latency of the protocols (ms, {trials} trials each) ===\n");
    println!("{}", table.render());
    let base = table.column("baseline").expect("baseline column");
    let ar = table.column("AR").expect("AR column");
    let tpc = table.column("2PC").expect("2PC column");
    println!("paper reference:   baseline 217.4   AR 252.3 (+16%)   2PC 266.5 (+23%)");
    println!(
        "reproduced:        baseline {:.1}   AR {:.1} ({:+.0}%)   2PC {:.1} ({:+.0}%)",
        base.total.mean, ar.total.mean, ar.overhead_pct, tpc.total.mean, tpc.overhead_pct
    );
    // Shape assertions (the reproduction contract from DESIGN.md).
    assert!(ar.overhead_pct > 5.0 && ar.overhead_pct < 30.0, "AR overhead out of band");
    assert!(tpc.overhead_pct > ar.overhead_pct, "2PC must cost more than AR");
    for c in table.columns.iter() {
        assert!(
            c.total.ci90_rel_width() < 0.10,
            "{}: CI width {:.1}% exceeds the paper's 10% discipline",
            c.label,
            c.total.ci90_rel_width() * 100.0
        );
    }
    println!("\nshape checks: AR < 2PC overhead ✓, CI width < 10% ✓");
}
