//! X7 — the read fast lane: read fraction 0/50/90/99% at 1 and 16 shards,
//! down four read routes.
//!
//! The same open-loop `ReadMostly` mix (32 clients × 12 requests fired
//! concurrently, replication factor 2, commit pipeline at batch 8) runs
//! with the lane **off** (reads take the full commit machinery), **on**
//! against shard primaries only, **on with follower reads** (reads
//! spread over each shard's replica group, freshness-gated), and **on
//! with read leases** (in-lease followers additionally serve multi-shard
//! snapshot collects that follower mode forces to primaries). Two views
//! per configuration:
//!
//! * **simulated metrics** (printed table): committed requests per
//!   simulated second and mean issue→delivery latency — what skipping the
//!   decision log, the WAL and replica shipment buys the modelled system;
//! * **host throughput** (criterion): wall-clock cost of simulating the
//!   workload.
//!
//! The driver records the printed rows in `BENCH_reads.json`. The
//! acceptance bars — at 16 shards the 90%-read mix must commit ≥ 2× more
//! per simulated second with the lane on than off (primary, follower and
//! leased routes all clear it), follower reads must beat primary-only on
//! that same mix, and the leased route must beat plain follower reads at
//! the 99%-read mix it targets — are asserted here, so a regression fails
//! the bench run instead of silently aging the JSON. (Leased trails plain
//! follower by ~2% at 90% reads — the residual cost of the cross-shard
//! vote-hold handshake plus lease renewal traffic, within one seed's
//! noise band — and wins by ~12% at 99%; see `BENCH_reads.json` notes.)
//! The run also reports how many op-vector elements the Arc-shared
//! message payloads shared by refcount instead of deep-copying.

use criterion::{criterion_group, criterion_main, Criterion};
use etx_base::config::{BatchingConfig, ReadLeaseConfig, ReadPathConfig};
use etx_base::time::Dur;
use etx_harness::{MiddleTier, ScenarioBuilder, Workload};
use std::hint::black_box;

const REQUESTS: u64 = 12;
const CLIENTS: usize = 32;

#[derive(Clone, Copy, PartialEq)]
enum Route {
    Off,
    Primary,
    Follower,
    /// Follower reads plus time-bounded read leases: in-lease followers
    /// serve *multi-shard* collects too (no forward hop), at the price of
    /// the cross-shard vote-hold handshake on the write side.
    Leased,
}

impl Route {
    fn label(self) -> &'static str {
        match self {
            Route::Off => "off",
            Route::Primary => "primary",
            Route::Follower => "follower",
            Route::Leased => "leased",
        }
    }

    fn config(self) -> ReadPathConfig {
        match self {
            Route::Off => ReadPathConfig::disabled(),
            Route::Primary => ReadPathConfig::primary_only(),
            Route::Follower | Route::Leased => ReadPathConfig::follower_reads(),
        }
    }

    fn leases(self) -> ReadLeaseConfig {
        match self {
            Route::Leased => ReadLeaseConfig::on(),
            _ => ReadLeaseConfig::disabled(),
        }
    }
}

/// (mean latency ms, committed req per simulated second, ops shared).
fn run_once(shards: u32, read_pct: u8, route: Route, seed: u64) -> (f64, f64, u64) {
    etx_base::value::reset_shared_op_elems();
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(shards)
        .replication(2)
        .clients(CLIENTS)
        .requests(REQUESTS)
        .batching(BatchingConfig::new(8, Dur::from_millis(1)))
        .read_path(route.config())
        .read_leases(route.leases())
        .workload(Workload::ReadMostly { accounts: shards * 8, read_pct, amount: 1 })
        .build();
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, etx_sim::RunOutcome::Predicate, "read-path bench run must settle");
    let lats = s.request_latencies_ms();
    let mean_ms = lats.iter().sum::<f64>() / lats.len() as f64;
    let span_s = s.now().as_millis_f64() / 1_000.0;
    (mean_ms, s.delivered_commits() as f64 / span_s, etx_base::value::shared_op_elems())
}

fn bench_read_path(c: &mut Criterion) {
    // The sweep IS the experiment: the CI matrix hooks would pin every
    // scenario to one route / one pipeline depth and collapse it.
    std::env::remove_var("ETX_READ_PATH");
    std::env::remove_var("ETX_READ_LEASES");
    std::env::remove_var("ETX_BATCH_SIZE");
    println!(
        "\n=== X7: read fast lane (ReadMostly, {CLIENTS} clients x {REQUESTS} requests, \
         replication 2) ===\n"
    );
    println!(
        "{:>8}{:>8}{:>10}{:>16}{:>16}{:>14}",
        "shards", "read%", "route", "latency ms", "sim commit/s", "ops shared"
    );
    let mut at_16_90 = Vec::new();
    let mut at_16_99 = Vec::new();
    for &shards in &[1u32, 16] {
        for &read_pct in &[0u8, 50, 90, 99] {
            for &route in &[Route::Off, Route::Primary, Route::Follower, Route::Leased] {
                let (lat, cps, shared) = run_once(shards, read_pct, route, 0x0EAD);
                println!(
                    "{shards:>8}{read_pct:>8}{:>10}{lat:>16.2}{cps:>16.1}{shared:>14}",
                    route.label()
                );
                if shards == 16 && read_pct == 90 {
                    at_16_90.push((route.label(), cps));
                }
                if shards == 16 && read_pct == 99 {
                    at_16_99.push((route.label(), cps));
                }
                // Host-side timing only for the legs the acceptance bar
                // reads, to keep the bench run short.
                if read_pct == 90 {
                    c.bench_function(
                        &format!("read_path/{shards}shards_90pct_{}", route.label()),
                        |b| {
                            let mut seed = 0u64;
                            b.iter(|| {
                                seed += 1;
                                black_box(run_once(shards, read_pct, route, seed))
                            })
                        },
                    );
                }
            }
        }
    }
    let cps_of = |label: &str| {
        at_16_90.iter().find(|(l, _)| *l == label).map(|&(_, c)| c).expect("swept above")
    };
    assert!(
        cps_of("primary") >= 2.0 * cps_of("off"),
        "the fast lane must commit ≥2x more than the slow route at 16 shards / 90% reads \
         ({:.1} vs {:.1} commit/s)",
        cps_of("primary"),
        cps_of("off")
    );
    assert!(
        cps_of("follower") >= 2.0 * cps_of("off"),
        "follower reads must also clear the 2x bar ({:.1} vs {:.1} commit/s)",
        cps_of("follower"),
        cps_of("off")
    );
    assert!(
        cps_of("follower") > cps_of("primary"),
        "follower reads must beat primary-only on the same workload ({:.1} vs {:.1} commit/s)",
        cps_of("follower"),
        cps_of("primary")
    );
    assert!(
        cps_of("leased") >= 2.0 * cps_of("off"),
        "read leases must clear the 2x bar at 16 shards / 90% reads ({:.1} vs {:.1} commit/s)",
        cps_of("leased"),
        cps_of("off")
    );
    let cps99_of = |label: &str| {
        at_16_99.iter().find(|(l, _)| *l == label).map(|&(_, c)| c).expect("swept above")
    };
    // Leases earn their keep where collects dominate and write churn is
    // thin: at 99% reads every multi-shard snapshot spreads over the
    // replica group instead of queueing on primaries. (At 90% reads the
    // two routes sit within one seed's noise of each other; that
    // comparison is deliberately not asserted.)
    assert!(
        cps99_of("leased") > cps99_of("follower"),
        "read leases must beat plain follower reads at 16 shards / 99% reads \
         ({:.1} vs {:.1} commit/s)",
        cps99_of("leased"),
        cps99_of("follower")
    );
}

criterion_group!(benches, bench_read_path);
criterion_main!(benches);
