//! X8 — the runtime seam's price tag: the same workload hosted by the
//! deterministic simulator and by the multi-threaded backend, timed on
//! the *wall clock*.
//!
//! An open-loop burst (16 clients × 8 requests fired concurrently,
//! replication factor 2) runs at 1 and 16 hash shards on both runtimes.
//! Both legs use `CostModel::zeroed()`: with every modelled service time
//! at zero the simulator leg measures pure discrete-event dispatch, and
//! the threaded leg measures real thread/channel/lock overhead instead
//! of sleeping out the model — an honest hardware-bound comparison, not
//! a comparison of configured sleeps. (The threaded backend ignores the
//! simulated network model entirely; sends are real mpsc pushes.)
//!
//! The printed rows — wall-clock milliseconds to settle and committed
//! requests per wall second — are recorded in `BENCH_runtime.json`. The
//! acceptance bars are deliberately machine-independent: every leg must
//! settle completely (exactly-once, all requests committed) and no leg
//! may take longer than `WALL_CAP` — a regression that turns the
//! threaded backend pathological fails the bench instead of silently
//! aging the JSON.

use criterion::{criterion_group, criterion_main, Criterion};
use etx_base::config::CostModel;
use etx_base::fault::{FaultOp, NemesisWhen};
use etx_base::runtime::RuntimeKind;
use etx_base::time::Dur;
use etx_base::trace::TraceKind;
use etx_harness::{MiddleTier, ScenarioBuilder, Workload};
use std::hint::black_box;
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
const REQUESTS: u64 = 8;
/// Generous per-leg ceiling: a healthy run is orders of magnitude under
/// it on any hardware; only a pathological regression trips it.
const WALL_CAP: Duration = Duration::from_secs(20);

/// Builds, runs and settles one leg; returns (wall time of the run
/// itself, committed requests). Build and thread teardown are excluded —
/// they are setup cost, not protocol throughput.
fn run_once(kind: RuntimeKind, shards: u32, seed: u64) -> (Duration, usize) {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .runtime(kind)
        .shards(shards)
        .replication(2)
        .clients(CLIENTS)
        .requests(REQUESTS)
        .cost(CostModel::zeroed())
        .workload(Workload::OpenLoopBurst { accounts: shards * 8, amount: 1 })
        .build();
    let expected = s.requests as usize;
    let started = Instant::now();
    let out = s.run_until_settled(expected);
    let wall = started.elapsed();
    assert_eq!(out, etx_sim::RunOutcome::Predicate, "{} leg must settle", kind.label());
    s.quiesce(Dur::from_millis(20));
    s.stop();
    assert_eq!(s.delivered_commits(), expected, "{} leg must commit everything", kind.label());
    (wall, expected)
}

/// Best of three: thread scheduling noise makes single threaded-leg
/// timings jumpy; the minimum is the stable signal.
fn best_of(kind: RuntimeKind, shards: u32) -> (Duration, usize) {
    (0..3).map(|i| run_once(kind, shards, 0x17E + i)).min_by_key(|&(wall, _)| wall).unwrap()
}

/// How long the shard-0 primary stays dead in the crash-recovery leg.
const CRASH_DOWN_FOR: Duration = Duration::from_millis(10);

/// The crash-recovery leg: the same burst on the threaded backend, but
/// shard 0's primary database — a real OS thread — is killed on its first
/// commit vote and restarted 10 ms later from its surviving `LogStore`.
/// The wall time now includes the failover-and-replay detour, so the
/// difference against the fault-free threaded leg is the price of one
/// crash: retry traffic while the primary is down plus WAL replay on the
/// way back up.
fn run_crash_recovery(shards: u32, seed: u64) -> (Duration, usize) {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .runtime(RuntimeKind::Threaded)
        .shards(shards)
        .replication(2)
        .clients(CLIENTS)
        .requests(REQUESTS)
        .cost(CostModel::zeroed())
        .workload(Workload::OpenLoopBurst { accounts: shards * 8, amount: 1 })
        .build();
    let victim = s.shard_primary(0);
    s.schedule_fault(
        NemesisWhen::on_trace(move |ev| {
            ev.node == victim && matches!(ev.kind, TraceKind::DbVote { .. })
        }),
        FaultOp::CrashFor { node: victim, down_for: Dur(CRASH_DOWN_FOR.as_micros() as u64) },
    )
    .expect("the threaded backend supports fault injection");
    let expected = s.requests as usize;
    let started = Instant::now();
    let out = s.run_until_settled(expected);
    let wall = started.elapsed();
    assert_eq!(out, etx_sim::RunOutcome::Predicate, "crash-recovery leg must settle");
    s.quiesce(Dur::from_millis(20));
    s.stop();
    assert_eq!(s.trace().count_kind(|k| matches!(k, TraceKind::Crash)), 1, "crash must fire");
    assert_eq!(s.trace().count_kind(|k| matches!(k, TraceKind::Recover)), 1, "node must recover");
    assert_eq!(s.delivered_commits(), expected, "crash-recovery leg must commit everything");
    (wall, expected)
}

fn best_crash_recovery(shards: u32) -> (Duration, usize) {
    (0..3).map(|i| run_crash_recovery(shards, 0xC4A + i)).min_by_key(|&(wall, _)| wall).unwrap()
}

fn bench_runtime_wallclock(c: &mut Criterion) {
    // The sweep IS the experiment: the CI threaded job exports
    // ETX_RUNTIME=threaded, which would collapse the comparison.
    std::env::remove_var("ETX_RUNTIME");
    println!(
        "\n=== X8: runtime wall clock (OpenLoopBurst, {CLIENTS} clients x {REQUESTS} requests, \
         replication 2, zeroed cost model) ===\n"
    );
    println!("{:>8}{:>12}{:>14}{:>18}", "shards", "runtime", "wall ms", "commit/s (wall)");
    for &shards in &[1u32, 16] {
        for &kind in &[RuntimeKind::Sim, RuntimeKind::Threaded] {
            let (wall, committed) = best_of(kind, shards);
            assert!(
                wall < WALL_CAP,
                "{} leg at {shards} shard(s) took {wall:?} — pathological",
                kind.label()
            );
            let cps = committed as f64 / wall.as_secs_f64();
            println!(
                "{shards:>8}{:>12}{:>14.2}{cps:>18.0}",
                kind.label(),
                wall.as_secs_f64() * 1_000.0
            );
        }
    }
    // The crash-recovery row: threaded backend only (the point is a real
    // killed thread), 1 shard so the victim primary carries the whole
    // burst. Reported next to the fault-free threaded row above, the
    // extra wall time is the end-to-end cost of one primary crash —
    // client retries through the 10 ms outage plus WAL replay at restart.
    {
        let (wall, committed) = best_crash_recovery(1);
        assert!(wall < WALL_CAP, "crash-recovery leg took {wall:?} — pathological");
        let cps = committed as f64 / wall.as_secs_f64();
        println!(
            "{:>8}{:>12}{:>14.2}{cps:>18.0}   (primary crashed for {CRASH_DOWN_FOR:?} mid-run)",
            1,
            "thr+crash",
            wall.as_secs_f64() * 1_000.0
        );
    }
    // Host-side criterion timing on the 1-shard legs only: the threaded
    // leg spawns and joins a full node fleet per iteration, so the group
    // config below keeps the sample budget small.
    for &kind in &[RuntimeKind::Sim, RuntimeKind::Threaded] {
        c.bench_function(&format!("runtime_wallclock/1shard_{}", kind.label()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(kind, 1, seed))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2));
    targets = bench_runtime_wallclock
}
criterion_main!(benches);
