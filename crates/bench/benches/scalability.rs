//! X2 — ablation: replication degree (3/5/7 application servers) and
//! database fan-out (1–3 resource managers) for the e-Transaction protocol
//! on the travel workload.

use etx_harness::sweeps::{render_scalability, scalability_sweep};

fn main() {
    println!("\n=== X2: replication degree × database fan-out (travel workload) ===\n");
    let rows = scalability_sweep(8, 0xF1_C2, &[3, 5, 7], &[1, 2, 3]);
    println!("{}", render_scalability(&rows));
    // Messages grow with replication degree; latency should grow only
    // mildly (consensus is one round trip regardless of n in nice runs).
    let msgs = |apps: usize, dbs: usize| {
        rows.iter().find(|r| r.apps == apps && r.dbs == dbs).unwrap().msgs
    };
    assert!(msgs(7, 1) > msgs(3, 1), "message count grows with replication degree");
    println!("shape checks: messages grow with n, latency stays near-flat ✓");
}
