//! X5 — shard scale-out: the same key-addressed bank workload on 1, 4 and
//! 16 shards.
//!
//! Two views per shard count:
//!
//! * **host throughput** (criterion): wall-clock cost of simulating the
//!   whole workload — shows what the partitioned addressing layer itself
//!   costs;
//! * **simulated metrics** (printed table): client-perceived latency and
//!   simulated-time throughput, plus the observed cross-shard fraction —
//!   shows what sharding buys the *modelled* system as parallelism between
//!   shard primaries replaces queueing at a single database server.
//!
//! The driver records the printed rows in `BENCH_shards.json` so the perf
//! trajectory tracks scale-out across PRs.
//!
//! Offered load **scales with the shard count** (4 sequential clients per
//! shard): a fixed client population saturates one shard but leaves a
//! 16-shard tier mostly idle, which made earlier sweeps read as "flat
//! beyond 4 shards" when the back end was simply under-loaded. With
//! per-shard load held constant, per-request latency is the scale-out
//! signal: it stays flat while the tier absorbs proportionally more
//! traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use etx_base::config::BatchingConfig;
use etx_harness::{MiddleTier, ScenarioBuilder, Workload};
use std::hint::black_box;

const REQUESTS: u64 = 8;
const CLIENTS_PER_SHARD: usize = 4;
const CROSS_PCT: u8 = 20;

fn run_once(shards: u32, seed: u64) -> (f64, f64) {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(shards)
        .clients(CLIENTS_PER_SHARD * shards as usize)
        // The commit pipeline keeps the middle tier out of the way: with
        // per-request slots (batch 1), ordering hundreds of concurrent
        // outcomes serializes at the decision log and masks the back-end
        // scale-out this sweep exists to measure.
        .batching(BatchingConfig::new(16, etx_base::time::Dur::from_millis(1)))
        .workload(Workload::ShardedBank { accounts: shards * 8, cross_pct: CROSS_PCT, amount: 1 })
        .requests(REQUESTS)
        .build();
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, etx_sim::RunOutcome::Predicate, "shard bench run must settle");
    let lats = s.request_latencies_ms();
    let mean_ms = lats.iter().sum::<f64>() / lats.len() as f64;
    let span_s = s.now().as_millis_f64() / 1_000.0;
    (mean_ms, lats.len() as f64 / span_s)
}

fn bench_shard_scaling(c: &mut Criterion) {
    println!(
        "\n=== X5: shard scale-out (ShardedBank, {CROSS_PCT}% cross-shard, \
         {CLIENTS_PER_SHARD} clients/shard) ===\n"
    );
    println!("{:>8}{:>10}{:>16}{:>16}", "shards", "clients", "latency ms", "sim req/s");
    for &shards in &[1u32, 4, 16] {
        let (lat, rps) = run_once(shards, 0x5CA1E);
        let clients = CLIENTS_PER_SHARD * shards as usize;
        println!("{shards:>8}{clients:>10}{lat:>16.2}{rps:>16.1}");
        c.bench_function(&format!("shards/{shards}_host_throughput"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(shards, seed))
            })
        });
    }
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
