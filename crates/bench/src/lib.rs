//! # etx-bench — benchmark targets regenerating the paper's evaluation
//!
//! One bench target per table/figure (see `EXPERIMENTS.md` for the index):
//!
//! | target | artifact |
//! |---|---|
//! | `figure8` | Figure 8 — the latency table (E1/E4) |
//! | `figure7_steps` | Figure 7 — communication steps & messages (E2) |
//! | `figure1_scenarios` | Figure 1 — canonical executions (E3) |
//! | `failover_latency` | X1 — failure-case response time (§5's missing eval) |
//! | `crossover` | X3 — forced-I/O vs consensus-round-trip crossover |
//! | `scalability` | X2 — replication degree and database fan-out |
//! | `shard_scaling` | X5 — 1/4/16-shard scale-out on the sharded bank workload |
//! | `engine_criterion` | Criterion microbenches of the substrates |
//!
//! Run them all with `cargo bench --workspace`.
