//! The sequenced decision log: batched request outcomes over write-once
//! slots.
//!
//! The paper gives every attempt `j` its own decision register `regD[j]` —
//! one consensus instance per request outcome. This module generalises that
//! register array into a **log of consecutive slots** (`slot[0]`,
//! `slot[1]`, …), each a write-once register whose value is an *ordered
//! batch* of `(attempt, decision)` pairs. One consensus round now decides a
//! whole batch of requests; the single-request path is simply a batch of
//! one, so the degenerate configuration reproduces `regD` exactly.
//!
//! Three invariants carry the paper's properties over:
//!
//! * **Slot indivisibility** — a slot is a wo-register: either its whole
//!   batch is the decided value or none of it is. A primary crashing
//!   mid-batch can lose the proposal or land it, never split it.
//! * **In-order apply** — every server applies slots in log order
//!   (buffering slots decided ahead of a gap and pulling the gap), so all
//!   servers observe the same outcome sequence.
//! * **First occurrence wins** — an attempt may be proposed into several
//!   slots (an owner's commit and a cleaner's `(nil, abort)` race, or a
//!   losing batch is re-proposed); the entry in the *lowest* decided slot
//!   is the attempt's one true decision and every later entry for the same
//!   attempt is ignored. Because apply order is identical everywhere, this
//!   arbitration is exactly the write-once contract `regD[j]` provided.
//!
//! The log owns no consensus machinery: it sequences batches through the
//! same [`WoRegisters`] bank the owner-election registers use, so one
//! engine per application server keeps speaking for that server.

use crate::woreg::WoRegisters;
use crate::Suspects;
use etx_base::ids::{NodeId, RegId, ResultId};
use etx_base::runtime::Context;
use etx_base::value::{Decision, Outcome, OutcomeBatch, RegValue};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One decided slot's worth of *newly final* outcomes, in slot order.
/// Entries whose attempt already surfaced in an earlier slot are filtered
/// out (first occurrence wins), so every attempt appears in exactly one
/// applied slot per server — and in the same one on every server.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedSlot {
    /// Log position.
    pub slot: u64,
    /// First-occurrence `(attempt, decision)` pairs this slot made final.
    pub entries: OutcomeBatch,
}

/// One application server's view of the sequenced decision log.
#[derive(Debug)]
pub struct DecisionLog {
    /// Largest batch one slot proposal may carry — the configured pipeline
    /// depth. At 1 every slot holds exactly one outcome (the degenerate
    /// per-request configuration, the paper's `regD` behaviour); without
    /// the cap a backed-up pending queue would flow into a single slot and
    /// silently batch even in the degenerate configuration.
    max_batch: usize,
    /// Maximum undecided slots this server keeps in flight at once — the
    /// configured pipeline window. At 1 the log runs one consensus round
    /// at a time (the PR 6/7/8 behaviour, byte-for-byte); at `K` it
    /// proposes up to `K` consecutive slots whose rounds overlap.
    window: usize,
    /// Outcomes waiting to be proposed (or re-proposed) into a slot.
    pending: OutcomeBatch,
    /// Our in-flight proposals, slot → batch, at most `window` of them.
    /// Batches are [`Arc`]-shared with the register write (and hence the
    /// consensus broadcasts), so proposing copies no outcomes.
    inflight: BTreeMap<u64, Arc<OutcomeBatch>>,
    /// Next slot index to apply (everything below is applied).
    next_apply: u64,
    /// Slots decided ahead of a gap, waiting for in-order apply. Decides
    /// may land out of slot order under a pipelined window; this buffer
    /// (plus the `next_apply` low-water mark) is what keeps promotion and
    /// apply strictly in slot order regardless.
    decided_ahead: BTreeMap<u64, Arc<OutcomeBatch>>,
    /// Final decision per attempt (the first-occurrence arbitration).
    seen: BTreeMap<ResultId, Decision>,
    /// Per-client GC watermarks: every request below the watermark is
    /// settled forever. Entries for settled requests are dropped at apply
    /// time even after their `seen` record was garbage-collected —
    /// otherwise a late in-flight proposal (say, a slow cleaner's
    /// `(nil, abort)`) could re-surface a settled attempt as a fresh
    /// "first occurrence" with a conflicting outcome.
    watermarks: BTreeMap<NodeId, u64>,
    /// Full membership (with outcomes) of each applied slot that is not yet
    /// fully settled — the bookkeeping behind [`DecisionLog::gc_client`]'s
    /// return value, which is what lets the host compact a slot's consensus
    /// instance once no request in it can ever be asked about again.
    /// Outcomes ride along so the compacted placeholder can keep the slot's
    /// arbitration content (results dropped). Bounded by the clients'
    /// unsettled windows, like everything else here.
    applied_members: BTreeMap<u64, Vec<(ResultId, Outcome)>>,
}

impl Default for DecisionLog {
    /// An unbounded log view (no batch cap, single-slot window).
    fn default() -> Self {
        DecisionLog::new(usize::MAX, 1)
    }
}

impl DecisionLog {
    /// An empty log view (apply cursor at slot 0) whose slot proposals
    /// carry at most `max_batch` outcomes each and keep at most `window`
    /// undecided slots in flight at once (both clamped to ≥ 1).
    pub fn new(max_batch: usize, window: usize) -> Self {
        DecisionLog {
            max_batch: max_batch.max(1),
            window: window.max(1),
            pending: OutcomeBatch::default(),
            inflight: BTreeMap::new(),
            next_apply: 0,
            decided_ahead: BTreeMap::new(),
            seen: BTreeMap::new(),
            watermarks: BTreeMap::new(),
            applied_members: BTreeMap::new(),
        }
    }

    /// The final decision for `rid`, if some applied slot carried it — the
    /// log's `read()`: once `Some`, the answer never changes.
    pub fn decision_of(&self, rid: ResultId) -> Option<&Decision> {
        self.seen.get(&rid)
    }

    /// Next slot index this server will apply (diagnostics and tests).
    pub fn applied_up_to(&self) -> u64 {
        self.next_apply
    }

    /// Outcomes queued but not yet decided (diagnostics and tests).
    pub fn pending_len(&self) -> usize {
        self.pending.len() + self.inflight.values().map(|b| b.len()).sum::<usize>()
    }

    /// Number of our proposals currently awaiting a slot decision.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Our proposals currently awaiting a slot decision, in slot order:
    /// each the slot it went into and the batch it carries (a shared
    /// handle — a reference-count clone, never an entry copy). The
    /// speculation stage reads this right after [`DecisionLog::propose`]
    /// to learn where the flush landed — proposals that resolved
    /// synchronously are absent, because there is nothing left in flight
    /// and nothing worth speculating on.
    pub fn inflight_proposals(&self) -> Vec<(u64, Arc<OutcomeBatch>)> {
        self.inflight.iter().map(|(&slot, batch)| (slot, Arc::clone(batch))).collect()
    }

    /// Submits a batch of outcomes for sequencing and drives proposals.
    /// Entries already final (or already queued) are skipped. Returns any
    /// slots that became applied synchronously (single-replica quorums and
    /// already-decided slots resolve without waiting for the network).
    pub fn propose(
        &mut self,
        ctx: &mut dyn Context,
        regs: &mut WoRegisters,
        entries: OutcomeBatch,
        suspects: Suspects<'_>,
    ) -> Vec<AppliedSlot> {
        for (rid, decision) in entries {
            let queued = self.pending.iter().any(|(r, _)| *r == rid)
                || self.inflight.values().any(|b| b.iter().any(|(r, _)| *r == rid));
            if self.seen.contains_key(&rid) || self.settled(&rid) || queued {
                continue;
            }
            self.pending.push((rid, decision));
        }
        self.pump(ctx, regs, suspects)
    }

    /// Feeds a slot decision learned from the register bank (the owning
    /// process routes `WoEvent::Decided` for `slot[..]` registers here).
    /// Returns the slots that became applied, in order.
    pub fn on_slot_decided(
        &mut self,
        ctx: &mut dyn Context,
        regs: &mut WoRegisters,
        slot: u64,
        value: &RegValue,
        suspects: Suspects<'_>,
    ) -> Vec<AppliedSlot> {
        self.record_decided(slot, value);
        let mut out = self.drain_applied();
        self.request_gaps(ctx, regs);
        out.extend(self.pump(ctx, regs, suspects));
        out
    }

    /// Re-pulls undecided slots below the decided frontier (wo-register
    /// `read()` liveness for gaps): the owning process calls this on its
    /// consensus resync tick.
    pub fn request_gaps(&mut self, ctx: &mut dyn Context, regs: &mut WoRegisters) {
        let Some((&frontier, _)) = self.decided_ahead.iter().next_back() else { return };
        for k in self.next_apply..frontier {
            if !self.decided_ahead.contains_key(&k) {
                regs.pull(ctx, RegId::slot(k));
            }
        }
    }

    /// Drops the arbitration memory of every settled attempt of `client`
    /// below the `ack_below` watermark (server-side GC; safe because a
    /// settled request is never retransmitted, so its attempts can never be
    /// proposed again). Returns the applied slots that became **fully
    /// settled** — every member request below its client's watermark, in
    /// slot order — paired with an **outcomes-only tombstone batch** (the
    /// slot's entries with their result payloads dropped) for the host to
    /// compact each slot's consensus instance down to (§5's register-array
    /// cleanup). The tombstone must keep the `(attempt, outcome)` pairs:
    /// a server that resyncs the slot *after* compaction still needs the
    /// first-occurrence arbitration memory, because its cleaner — which
    /// never heard this client's watermark — may later re-propose a member
    /// attempt as `(nil, abort)`. Compacting to an empty batch erased that
    /// memory and let the conflicting abort surface as a fresh first
    /// occurrence (a real divergence: some databases applied the cleaner's
    /// abort after others applied the original commit). Only the results —
    /// the unbounded payload — are shed.
    pub fn gc_client(&mut self, client: NodeId, ack_below: u64) -> Vec<(u64, OutcomeBatch)> {
        let w = self.watermarks.entry(client).or_insert(0);
        *w = (*w).max(ack_below);
        let stale = |rid: &ResultId| rid.request.client == client && rid.request.seq < ack_below;
        self.seen.retain(|rid, _| !stale(rid));
        self.pending.retain(|(rid, _)| !stale(rid));
        let watermarks = &self.watermarks;
        let settled = |rid: &ResultId| {
            watermarks.get(&rid.request.client).is_some_and(|&w| rid.request.seq < w)
        };
        let mut forgettable = Vec::new();
        self.applied_members.retain(|&slot, members| {
            if members.iter().all(|(rid, _)| settled(rid)) {
                let tombstone = members
                    .iter()
                    .map(|&(rid, outcome)| (rid, Decision { result: None, outcome }))
                    .collect();
                forgettable.push((slot, tombstone));
                false
            } else {
                true
            }
        });
        forgettable
    }

    /// Whether `rid`'s request is below its client's GC watermark (settled
    /// forever; any late entry for it must be ignored).
    fn settled(&self, rid: &ResultId) -> bool {
        self.watermarks.get(&rid.request.client).is_some_and(|&w| rid.request.seq < w)
    }

    // ---- internals -------------------------------------------------------

    /// Proposes pending outcomes into the lowest open slots until the
    /// pipeline window is full or the queue is empty, looping while
    /// proposals resolve synchronously. At window 1 this is exactly the
    /// single-slot propose loop of PR 6/7/8: one round in flight, the
    /// next proposal only after it decides.
    fn pump(
        &mut self,
        ctx: &mut dyn Context,
        regs: &mut WoRegisters,
        suspects: Suspects<'_>,
    ) -> Vec<AppliedSlot> {
        let mut out = Vec::new();
        loop {
            let seen = &self.seen;
            let watermarks = &self.watermarks;
            self.pending.retain(|(rid, _)| {
                !seen.contains_key(rid)
                    && watermarks.get(&rid.request.client).is_none_or(|&w| rid.request.seq >= w)
            });
            if self.inflight.len() >= self.window || self.pending.is_empty() {
                return out;
            }
            let slot = self.lowest_open_slot(regs);
            let take = self.pending.len().min(self.max_batch);
            let batch: Arc<OutcomeBatch> = Arc::new(self.pending.drain(..take).collect());
            self.inflight.insert(slot, Arc::clone(&batch));
            match regs.write(ctx, RegId::slot(slot), RegValue::Batch(batch), suspects) {
                // Round in flight; the decision arrives via handle(). Keep
                // looping — the window may have room for the next slot.
                None => {}
                Some(value) => {
                    // Decided synchronously (single-replica quorum, or the
                    // slot was already taken): absorb and keep pumping.
                    self.record_decided(slot, &value);
                    out.extend(self.drain_applied());
                    self.request_gaps(ctx, regs);
                }
            }
        }
    }

    /// The lowest slot index with no decision known locally and no
    /// proposal of ours in flight: gaps are filled before new tail slots
    /// are opened, which is what keeps a crashed proposer's abandoned slot
    /// from stalling the log (the next proposal lands there and consensus
    /// arbitrates).
    fn lowest_open_slot(&self, regs: &WoRegisters) -> u64 {
        let mut k = self.next_apply;
        while self.decided_ahead.contains_key(&k)
            || self.inflight.contains_key(&k)
            || regs.read(RegId::slot(k)).is_some()
        {
            k += 1;
        }
        k
    }

    fn record_decided(&mut self, slot: u64, value: &RegValue) {
        let Some(batch) = value.as_batch_shared() else {
            debug_assert!(false, "slot[{slot}] decided a non-batch value");
            return;
        };
        if slot >= self.next_apply {
            self.decided_ahead.entry(slot).or_insert_with(|| Arc::clone(&batch));
        }
        // Our proposal for this slot is settled: if another batch won, the
        // outcomes we carried go back to pending for the next slot. Other
        // in-flight slots are untouched — their rounds are still running.
        if let Some(ours) = self.inflight.remove(&slot) {
            for (rid, decision) in ours.iter() {
                if !batch.iter().any(|(r, _)| r == rid)
                    && !self.seen.contains_key(rid)
                    && !self.settled(rid)
                {
                    self.pending.push((*rid, decision.clone()));
                }
            }
        }
    }

    fn drain_applied(&mut self) -> Vec<AppliedSlot> {
        let mut out = Vec::new();
        while let Some(batch) = self.decided_ahead.remove(&self.next_apply) {
            self.applied_members
                .insert(self.next_apply, batch.iter().map(|(rid, d)| (*rid, d.outcome)).collect());
            let mut firsts = Vec::new();
            for (rid, decision) in batch.iter() {
                if !self.seen.contains_key(rid) && !self.settled(rid) {
                    self.seen.insert(*rid, decision.clone());
                    firsts.push((*rid, decision.clone()));
                }
            }
            out.push(AppliedSlot { slot: self.next_apply, entries: firsts });
            self.next_apply += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::RequestId;
    use etx_base::value::Outcome;

    fn rid(seq: u64) -> ResultId {
        ResultId::first(RequestId { client: NodeId(0), seq })
    }

    fn commit() -> Decision {
        Decision::commit(Default::default())
    }

    fn batch(seqs: &[u64]) -> OutcomeBatch {
        seqs.iter().map(|&s| (rid(s), commit())).collect()
    }

    fn slot_value(seqs: &[u64]) -> RegValue {
        RegValue::Batch(Arc::new(batch(seqs)))
    }

    #[test]
    fn first_occurrence_wins_across_slots() {
        let mut log = DecisionLog::default();
        log.record_decided(0, &RegValue::Batch(Arc::new(vec![(rid(1), commit())])));
        log.record_decided(1, &RegValue::Batch(Arc::new(vec![(rid(1), Decision::nil_abort())])));
        let applied = log.drain_applied();
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].entries.len(), 1, "slot 0 carries the first occurrence");
        assert!(applied[1].entries.is_empty(), "slot 1's duplicate is filtered");
        assert_eq!(log.decision_of(rid(1)).unwrap().outcome, Outcome::Commit);
    }

    #[test]
    fn slots_apply_in_order_buffering_gaps() {
        let mut log = DecisionLog::default();
        log.record_decided(1, &slot_value(&[2]));
        assert!(log.drain_applied().is_empty(), "slot 1 waits for slot 0");
        assert_eq!(log.applied_up_to(), 0);
        log.record_decided(0, &slot_value(&[1]));
        let applied = log.drain_applied();
        assert_eq!(applied.len(), 2);
        assert_eq!((applied[0].slot, applied[1].slot), (0, 1));
        assert_eq!(log.applied_up_to(), 2);
    }

    #[test]
    fn losing_a_slot_requeues_unserved_outcomes() {
        let mut log = DecisionLog {
            inflight: BTreeMap::from([(0, Arc::new(batch(&[7, 8])))]),
            ..DecisionLog::default()
        };
        // Slot 0 decides with someone else's batch that covers 7 but not 8.
        log.record_decided(0, &slot_value(&[7]));
        log.drain_applied();
        assert!(log.inflight.is_empty());
        assert_eq!(log.pending, batch(&[8]), "only the unserved outcome is re-proposed");
        assert_eq!(log.decision_of(rid(7)).unwrap().outcome, Outcome::Commit);
    }

    #[test]
    fn out_of_order_decides_apply_in_slot_order_across_the_window() {
        // A pipelined window has slots 0 and 1 in flight; slot 1's round
        // finishes first. Nothing may apply until slot 0 decides, and the
        // apply order must be slot order, not decide order.
        let mut log = DecisionLog {
            window: 2,
            inflight: BTreeMap::from([(0, Arc::new(batch(&[1, 2]))), (1, Arc::new(batch(&[3])))]),
            ..DecisionLog::default()
        };
        log.record_decided(1, &slot_value(&[3]));
        assert!(log.drain_applied().is_empty(), "slot 1 buffers behind the gap at 0");
        assert_eq!(log.inflight_len(), 1, "slot 0's round is still running");
        assert_eq!(log.applied_up_to(), 0);
        log.record_decided(0, &slot_value(&[1, 2]));
        let applied = log.drain_applied();
        assert_eq!(applied.iter().map(|a| a.slot).collect::<Vec<_>>(), [0, 1]);
        assert!(log.inflight.is_empty() && log.pending.is_empty());
        assert_eq!(log.decision_of(rid(3)).unwrap().outcome, Outcome::Commit);
    }

    #[test]
    fn losing_a_mid_window_slot_requeues_only_that_slots_outcomes() {
        // Slot 0 is lost to another proposer's batch; slot 1's round (our
        // proposal) must stay in flight untouched, and only slot 0's
        // unserved outcomes go back to pending.
        let mut log = DecisionLog {
            window: 2,
            inflight: BTreeMap::from([(0, Arc::new(batch(&[7, 8]))), (1, Arc::new(batch(&[9])))]),
            ..DecisionLog::default()
        };
        log.record_decided(0, &slot_value(&[7]));
        log.drain_applied();
        assert_eq!(log.pending, batch(&[8]), "slot 0's unserved outcome is re-proposed");
        assert_eq!(
            log.inflight_proposals().iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            [1],
            "slot 1's proposal is untouched"
        );
    }

    #[test]
    fn gc_drops_settled_attempts_below_the_watermark() {
        let mut log = DecisionLog::default();
        log.record_decided(0, &slot_value(&[1, 2, 3]));
        log.drain_applied();
        log.gc_client(NodeId(0), 3);
        assert!(log.decision_of(rid(1)).is_none());
        assert!(log.decision_of(rid(2)).is_none());
        assert!(log.decision_of(rid(3)).is_some(), "watermark is exclusive");
        log.gc_client(NodeId(9), u64::MAX);
        assert!(log.decision_of(rid(3)).is_some(), "other clients untouched");
    }

    #[test]
    fn gc_reports_fully_settled_slots_exactly_once_in_order() {
        let mut log = DecisionLog::default();
        log.record_decided(0, &slot_value(&[1, 2]));
        log.record_decided(1, &slot_value(&[3]));
        log.drain_applied();
        assert!(log.gc_client(NodeId(0), 2).is_empty(), "slot 0 still carries unsettled request 2");
        let settled = log.gc_client(NodeId(0), 3);
        assert_eq!(settled.len(), 1, "slot 0 now fully settled");
        assert_eq!(settled[0].0, 0);
        assert_eq!(
            settled[0].1,
            vec![
                (rid(1), Decision { result: None, outcome: Outcome::Commit }),
                (rid(2), Decision { result: None, outcome: Outcome::Commit }),
            ],
            "tombstone keeps the outcomes, drops the results"
        );
        assert_eq!(log.gc_client(NodeId(0), 4).iter().map(|(s, _)| *s).collect::<Vec<_>>(), [1]);
        assert!(log.gc_client(NodeId(0), 10).is_empty(), "forgotten slots are not re-reported");
    }

    #[test]
    fn resynced_tombstone_slot_still_arbitrates_against_a_late_cleaner_abort() {
        // A server that resyncs a slot *after* its consensus instance was
        // compacted receives the outcomes-only tombstone. Its cleaner (which
        // never heard the client's watermark) may then propose `(nil, abort)`
        // for a member attempt — the tombstone's arbitration memory must
        // swallow it, or this server terminates the settled attempt with a
        // conflicting abort (an A.3 divergence across databases).
        let mut log = DecisionLog::default();
        let tombstone = vec![(rid(1), Decision { result: None, outcome: Outcome::Commit })];
        log.record_decided(0, &RegValue::Batch(Arc::new(tombstone)));
        let applied = log.drain_applied();
        assert_eq!(applied[0].entries.len(), 1, "tombstone entries apply as first occurrences");
        log.record_decided(1, &RegValue::Batch(Arc::new(vec![(rid(1), Decision::nil_abort())])));
        let applied = log.drain_applied();
        assert!(applied[0].entries.is_empty(), "late abort is a filtered duplicate");
        assert_eq!(log.decision_of(rid(1)).unwrap().outcome, Outcome::Commit);
    }

    #[test]
    fn late_entries_below_the_watermark_never_resurface() {
        // A settled request's seen-record is GC'd; a slow cleaner's
        // conflicting entry then arrives in a later slot. It must be
        // swallowed, not surfaced as a fresh first occurrence.
        let mut log = DecisionLog::default();
        log.record_decided(0, &RegValue::Batch(Arc::new(vec![(rid(1), commit())])));
        log.drain_applied();
        log.gc_client(NodeId(0), 2); // request 1 settled
        assert!(log.decision_of(rid(1)).is_none(), "arbitration memory GC'd");
        log.record_decided(1, &RegValue::Batch(Arc::new(vec![(rid(1), Decision::nil_abort())])));
        let applied = log.drain_applied();
        assert_eq!(applied.len(), 1);
        assert!(applied[0].entries.is_empty(), "settled attempt must not resurface");
        assert!(log.decision_of(rid(1)).is_none());
    }

    #[test]
    fn applied_cursor_and_pending_len_report_state() {
        let mut log = DecisionLog::default();
        assert_eq!(log.applied_up_to(), 0);
        assert_eq!(log.pending_len(), 0);
        log.pending = batch(&[1]);
        log.inflight.insert(0, Arc::new(batch(&[2, 3])));
        log.inflight.insert(1, Arc::new(batch(&[4])));
        assert_eq!(log.pending_len(), 4);
        assert_eq!(log.inflight_len(), 2);
    }
}
