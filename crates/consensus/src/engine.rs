//! Rotating-coordinator consensus, one instance per write-once register.
//!
//! The paper builds wo-registers from "a consensus protocol executed among
//! the application servers (e.g. \[4\])" — Chandra & Toueg's ◇S algorithm —
//! and Appendix 3 assumes the optimised variant where, in nice runs, "it
//! takes only a round trip message for the first primary to write into the
//! register". This module implements that family:
//!
//! * rounds `r = 0, 1, 2, …` with coordinator `alist[r mod n]`;
//! * **round 0 fast path**: every participant's adoption timestamp is still
//!   0, so the coordinator may propose the first estimate it knows (its own,
//!   if it is the writer) without collecting a majority — one round trip to
//!   decide;
//! * **rounds > 0**: the classic three phases — participants send their
//!   `(estimate, ts)` to the round's coordinator; the coordinator waits for
//!   a majority, picks the estimate with the highest `ts` (this is what
//!   preserves agreement across rounds), proposes it; participants adopt and
//!   ack, or nack if they have moved on;
//! * a coordinator with a majority of acks **decides** and broadcasts the
//!   decision; undecided replicas also **pull** decisions periodically
//!   (`DecideReq`), which implements the liveness half of the wo-register
//!   `read()` spec;
//! * round changes are driven *only* by failure-detector suspicion of the
//!   current coordinator (plus a patience re-check timer) — never by fixed
//!   timeouts — keeping the protocol asynchronous in the paper's sense.
//!
//! Safety (agreement, validity, integrity) holds under any failure-detector
//! behaviour; only termination needs ◇P accuracy and a correct majority,
//! mirroring the paper's §4/§5 discussion.

use etx_base::ids::{NodeId, RegId};
use etx_base::msg::{ConsensusMsg, Payload};
use etx_base::runtime::{Context, Event, TimerTag};
use etx_base::time::Dur;
use etx_base::trace::TraceKind;
use etx_base::value::RegValue;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Predicate type used to query the owner's failure detector.
pub type Suspects<'a> = &'a dyn Fn(NodeId) -> bool;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Re-check interval for coordinator suspicion while waiting in a round.
    pub patience: Dur,
    /// Period of the decision push/pull resync.
    pub resync: Dur,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { patience: Dur::from_millis(40), resync: Dur::from_millis(120) }
    }
}

#[derive(Debug, Default)]
struct Instance {
    round: u32,
    est: Option<RegValue>,
    /// Round in which `est` was adopted from a coordinator (0 = own/initial).
    ts: u32,
    decided: Option<RegValue>,
    /// Coordinator-side: estimates collected for the current round.
    estimates: HashMap<NodeId, (Option<RegValue>, u32)>,
    /// Coordinator-side: the value proposed in the current round.
    proposal: Option<RegValue>,
    /// Coordinator-side: acks collected for the current round.
    acks: HashSet<NodeId>,
    /// Participant-side: whether we already acked this round.
    acked: bool,
}

/// Multi-instance consensus engine. One per application server, embedded in
/// its process (it is a component, not a node).
#[derive(Debug)]
pub struct ConsensusEngine {
    me: NodeId,
    peers: Vec<NodeId>,
    majority: usize,
    cfg: EngineConfig,
    instances: BTreeMap<RegId, Instance>,
    /// Decisions reached since the last `handle`/`propose` drain.
    fresh: Vec<(RegId, RegValue)>,
    started: bool,
}

impl ConsensusEngine {
    /// Creates an engine for `me` among `peers` (which must include `me`).
    ///
    /// # Panics
    ///
    /// Panics if `peers` does not contain `me`.
    pub fn new(me: NodeId, peers: &[NodeId], cfg: EngineConfig) -> Self {
        assert!(peers.contains(&me), "engine peers must include the owner");
        ConsensusEngine {
            me,
            peers: peers.to_vec(),
            majority: peers.len() / 2 + 1,
            cfg,
            instances: BTreeMap::new(),
            fresh: Vec::new(),
            started: false,
        }
    }

    /// Starts the resync timer. Call from the owning process's `Init`.
    pub fn on_init(&mut self, ctx: &mut dyn Context) {
        if !self.started {
            self.started = true;
            ctx.set_timer(self.cfg.resync, TimerTag::ConsensusResync);
        }
    }

    fn coord(&self, round: u32) -> NodeId {
        self.peers[(round as usize) % self.peers.len()]
    }

    /// Locally known decision, if any (the wo-register `read()` fast path).
    pub fn decided(&self, inst: RegId) -> Option<&RegValue> {
        self.instances.get(&inst).and_then(|i| i.decided.as_ref())
    }

    /// Every instance this engine has ever seen traffic for — the cleaner
    /// uses this to discover attempts initiated by a suspected server.
    pub fn known_instances(&self) -> Vec<RegId> {
        self.instances.keys().copied().collect()
    }

    /// Proposes `value` for `inst`. If the instance is already decided
    /// locally, returns the decision immediately (the wo-register `write()`
    /// returning "some other value already written"); otherwise the outcome
    /// arrives later from [`Self::handle`].
    pub fn propose(
        &mut self,
        ctx: &mut dyn Context,
        inst: RegId,
        value: RegValue,
        suspects: Suspects<'_>,
    ) -> Option<RegValue> {
        if let Some(d) = self.instances.get(&inst).and_then(|i| i.decided.clone()) {
            return Some(d);
        }
        let me = self.me;
        let (round, est, ts) = {
            let i = self.instances.entry(inst).or_default();
            if i.est.is_none() {
                i.est = Some(value);
                i.ts = 0;
            }
            (i.round, i.est.clone(), i.ts)
        };
        let coord = self.coord(round);
        if coord == me {
            self.instances
                .get_mut(&inst)
                .expect("just created")
                .estimates
                .insert(me, (est.clone(), ts));
            if round > 0 {
                // Announce the round so peers join and contribute the
                // majority of estimates this round needs.
                self.send_estimates(ctx, inst, round, est, ts);
            }
            self.try_propose(ctx, inst);
        } else {
            self.send_estimates(ctx, inst, round, est, ts);
            ctx.set_timer(self.cfg.patience, TimerTag::ConsensusRound { inst, round });
        }
        // The coordinator might already be suspected; don't wait for the
        // patience timer in that case.
        self.reevaluate_instance(ctx, inst, suspects);
        // A degenerate quorum (single replica) can decide synchronously.
        if let Some(d) = self.instances.get(&inst).and_then(|i| i.decided.clone()) {
            self.fresh.retain(|(r, _)| *r != inst);
            return Some(d);
        }
        None
    }

    /// Broadcasts a pull for a decision (wo-register `read()` liveness: keep
    /// invoking and you eventually see the written value).
    pub fn pull(&mut self, ctx: &mut dyn Context, inst: RegId) {
        self.instances.entry(inst).or_default();
        for p in self.peers.clone() {
            if p != self.me {
                ctx.send(p, Payload::Consensus(ConsensusMsg::DecideReq { inst }));
            }
        }
    }

    /// Feeds one runtime event. Returns instances decided *by this call*.
    pub fn handle(
        &mut self,
        ctx: &mut dyn Context,
        event: &Event,
        suspects: Suspects<'_>,
    ) -> Vec<(RegId, RegValue)> {
        match event {
            Event::Message { from, payload: Payload::Consensus(m) } => {
                self.on_msg(ctx, *from, m.clone(), suspects);
            }
            Event::Timer { tag: TimerTag::ConsensusRound { inst, round }, .. } => {
                let (inst, round) = (*inst, *round);
                if let Some(i) = self.instances.get(&inst) {
                    if i.decided.is_none() && i.round == round {
                        self.reevaluate_instance(ctx, inst, suspects);
                        // Still undecided in the same round: keep watching.
                        if let Some(i) = self.instances.get(&inst) {
                            if i.decided.is_none() && i.round == round {
                                ctx.set_timer(
                                    self.cfg.patience,
                                    TimerTag::ConsensusRound { inst, round },
                                );
                            }
                        }
                    }
                }
            }
            Event::Timer { tag: TimerTag::ConsensusResync, .. } => {
                self.resync(ctx);
                ctx.set_timer(self.cfg.resync, TimerTag::ConsensusResync);
            }
            _ => {}
        }
        std::mem::take(&mut self.fresh)
    }

    /// Re-evaluates every undecided instance after a suspicion change (the
    /// owning server calls this on failure-detector transitions).
    pub fn on_suspicion_change(&mut self, ctx: &mut dyn Context, suspects: Suspects<'_>) {
        let insts: Vec<RegId> =
            self.instances.iter().filter(|(_, i)| i.decided.is_none()).map(|(&k, _)| k).collect();
        for inst in insts {
            self.reevaluate_instance(ctx, inst, suspects);
        }
    }

    // ---- internals -------------------------------------------------------

    /// If we are stuck waiting on a suspected coordinator, nack and advance
    /// (possibly across several suspected coordinators).
    fn reevaluate_instance(&mut self, ctx: &mut dyn Context, inst: RegId, suspects: Suspects<'_>) {
        for _ in 0..self.peers.len() {
            let Some(i) = self.instances.get(&inst) else { return };
            if i.decided.is_some() {
                return;
            }
            let round = i.round;
            let coord = self.coord(round);
            if coord == self.me || !suspects(coord) {
                return;
            }
            ctx.send(coord, Payload::Consensus(ConsensusMsg::Nack { inst, round }));
            self.enter_round(ctx, inst, round + 1);
        }
    }

    /// Moves an instance to `round` (> current), performing participant
    /// duties for the new round.
    fn enter_round(&mut self, ctx: &mut dyn Context, inst: RegId, round: u32) {
        let me = self.me;
        let coord = self.coord(round);
        let Some(i) = self.instances.get_mut(&inst) else { return };
        // Never called for round 0 (that entry happens in `propose`); only
        // forward moves are meaningful.
        if i.decided.is_some() || round <= i.round {
            return;
        }
        i.round = round;
        i.estimates.clear();
        i.acks.clear();
        i.proposal = None;
        i.acked = false;
        let est = i.est.clone();
        let ts = i.ts;
        if coord == me {
            i.estimates.insert(me, (est.clone(), ts));
            // enter_round is only called with round ≥ 1: announce so peers
            // join (they may never have heard of this instance).
            self.send_estimates(ctx, inst, round, est, ts);
            self.try_propose(ctx, inst);
        } else {
            self.send_estimates(ctx, inst, round, est, ts);
            ctx.set_timer(self.cfg.patience, TimerTag::ConsensusRound { inst, round });
        }
    }

    /// Sends this participant's estimate for `round`. Round 0 goes to the
    /// coordinator only (the fast path needs nothing more). Later rounds
    /// are **broadcast**: peers that have never heard of the instance must
    /// join the round and contribute estimates, or a coordinator could wait
    /// forever for a majority it cannot assemble (the original writers may
    /// all have crashed).
    fn send_estimates(
        &mut self,
        ctx: &mut dyn Context,
        inst: RegId,
        round: u32,
        est: Option<RegValue>,
        ts: u32,
    ) {
        let coord = self.coord(round);
        if round == 0 {
            ctx.send(coord, Payload::Consensus(ConsensusMsg::Estimate { inst, round, est, ts }));
            return;
        }
        for p in self.peers.clone() {
            if p != self.me {
                ctx.send(
                    p,
                    Payload::Consensus(ConsensusMsg::Estimate {
                        inst,
                        round,
                        est: est.clone(),
                        ts,
                    }),
                );
            }
        }
    }

    /// Coordinator-side: propose if this round's preconditions are met.
    fn try_propose(&mut self, ctx: &mut dyn Context, inst: RegId) {
        let me = self.me;
        let majority = self.majority;
        let Some(i) = self.instances.get_mut(&inst) else { return };
        if i.decided.is_some() || i.proposal.is_some() {
            return;
        }
        let round = i.round;
        // Pick the estimate with the highest adoption timestamp; ties broken
        // by sender id for determinism.
        let best = i
            .estimates
            .iter()
            .filter_map(|(&n, (e, ts))| e.clone().map(|v| (*ts, n, v)))
            .max_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)))
            .map(|(_, _, v)| v);
        let ready = if round == 0 {
            // Fast path: all timestamps are 0, any known estimate is safe.
            best.is_some()
        } else {
            i.estimates.len() >= majority && best.is_some()
        };
        if !ready {
            return;
        }
        let value = best.expect("checked is_some");
        i.proposal = Some(value.clone());
        // The coordinator adopts its own proposal and acks itself.
        i.est = Some(value.clone());
        i.ts = round;
        i.acks.insert(me);
        for p in self.peers.clone() {
            if p != me {
                ctx.send(
                    p,
                    Payload::Consensus(ConsensusMsg::Propose { inst, round, value: value.clone() }),
                );
            }
        }
        // Single-replica degenerate case decides instantly.
        self.try_decide(ctx, inst);
    }

    fn try_decide(&mut self, ctx: &mut dyn Context, inst: RegId) {
        let me = self.me;
        let majority = self.majority;
        let Some(i) = self.instances.get_mut(&inst) else { return };
        if i.decided.is_some() || i.acks.len() < majority {
            return;
        }
        let value = i.proposal.clone().expect("acks imply a proposal");
        i.decided = Some(value.clone());
        ctx.trace(TraceKind::RegDecided { reg: inst });
        self.fresh.push((inst, value.clone()));
        for p in self.peers.clone() {
            if p != me {
                ctx.send(
                    p,
                    Payload::Consensus(ConsensusMsg::Decide { inst, value: value.clone() }),
                );
            }
        }
    }

    fn learn(&mut self, ctx: &mut dyn Context, inst: RegId, value: RegValue) {
        let i = self.instances.entry(inst).or_default();
        if i.decided.is_none() {
            i.decided = Some(value.clone());
            ctx.trace(TraceKind::RegDecided { reg: inst });
            self.fresh.push((inst, value));
        }
    }

    fn on_msg(
        &mut self,
        ctx: &mut dyn Context,
        from: NodeId,
        msg: ConsensusMsg,
        suspects: Suspects<'_>,
    ) {
        match msg {
            ConsensusMsg::Estimate { inst, round, est, ts } => {
                if let Some(v) = self.decided(inst).cloned() {
                    ctx.send(from, Payload::Consensus(ConsensusMsg::Decide { inst, value: v }));
                    return;
                }
                let cur = self.instances.entry(inst).or_default().round;
                if round < cur {
                    ctx.send(from, Payload::Consensus(ConsensusMsg::Nack { inst, round }));
                    return;
                }
                if round > cur {
                    // Join the round we just learned about (this also sends
                    // our own estimate out).
                    self.enter_round(ctx, inst, round);
                }
                let i = self.instances.entry(inst).or_default();
                if i.round == round {
                    i.estimates.insert(from, (est, ts));
                }
                if self.coord(round) == self.me {
                    self.try_propose(ctx, inst);
                }
            }
            ConsensusMsg::Propose { inst, round, value } => {
                if let Some(v) = self.decided(inst).cloned() {
                    ctx.send(from, Payload::Consensus(ConsensusMsg::Decide { inst, value: v }));
                    return;
                }
                let cur = self.instances.entry(inst).or_default().round;
                if round < cur {
                    ctx.send(from, Payload::Consensus(ConsensusMsg::Nack { inst, round }));
                    return;
                }
                if round > cur {
                    self.enter_round(ctx, inst, round);
                }
                let i = self.instances.entry(inst).or_default();
                if i.round == round && !i.acked {
                    i.est = Some(value);
                    i.ts = round;
                    i.acked = true;
                    ctx.send(from, Payload::Consensus(ConsensusMsg::Ack { inst, round }));
                }
            }
            ConsensusMsg::Ack { inst, round } => {
                let Some(i) = self.instances.get_mut(&inst) else { return };
                if i.round == round && i.proposal.is_some() && i.decided.is_none() {
                    i.acks.insert(from);
                    self.try_decide(ctx, inst);
                }
            }
            ConsensusMsg::Nack { inst, round } => {
                let Some(i) = self.instances.get_mut(&inst) else { return };
                if i.round == round && i.decided.is_none() {
                    self.enter_round(ctx, inst, round + 1);
                    self.reevaluate_instance(ctx, inst, suspects);
                }
            }
            ConsensusMsg::Decide { inst, value } => {
                self.learn(ctx, inst, value);
            }
            ConsensusMsg::DecideReq { inst } => {
                if let Some(v) = self.decided(inst).cloned() {
                    ctx.send(from, Payload::Consensus(ConsensusMsg::Decide { inst, value: v }));
                }
            }
        }
    }

    /// Periodic decision resync: undecided instances pull, decided ones stay
    /// quiet (answers are demand-driven).
    fn resync(&mut self, ctx: &mut dyn Context) {
        let undecided: Vec<RegId> = self
            .instances
            .iter()
            .filter(|(_, i)| i.decided.is_none() && i.est.is_some())
            .map(|(&k, _)| k)
            .collect();
        for inst in undecided {
            for p in self.peers.clone() {
                if p != self.me {
                    ctx.send(p, Payload::Consensus(ConsensusMsg::DecideReq { inst }));
                }
            }
        }
    }

    /// Drops a decided instance's bookkeeping (garbage-collection hook; see
    /// the paper's §5 remark on cleaning the register arrays).
    pub fn forget(&mut self, inst: RegId) -> bool {
        match self.instances.get(&inst) {
            Some(i) if i.decided.is_some() => {
                self.instances.remove(&inst);
                true
            }
            _ => false,
        }
    }

    /// Compacts a *decided* instance to `placeholder`, dropping the round
    /// bookkeeping and the original payload but keeping the instance
    /// answerable. Unlike [`ConsensusEngine::forget`], a compacted instance
    /// still answers reads and pulls (with the placeholder) and still
    /// short-circuits proposals — the position can never be re-opened and
    /// re-decided by a replica that missed the original decision. The
    /// caller asserts the original value can no longer matter to anyone
    /// (e.g. a decision-log slot whose every request is settled).
    pub fn compact(&mut self, inst: RegId, placeholder: RegValue) -> bool {
        match self.instances.get_mut(&inst) {
            Some(i) if i.decided.is_some() => {
                *i = Instance { decided: Some(placeholder), ..Instance::default() };
                true
            }
            _ => false,
        }
    }
}
