//! # etx-consensus — consensus and write-once registers
//!
//! The synchronisation core of the e-Transaction protocol (§4): write-once
//! registers (`regA[j]`, `regD[j]`) built from rotating-coordinator
//! consensus among the application servers.
//!
//! * [`engine::ConsensusEngine`] — multi-instance Chandra–Toueg-style
//!   consensus with the round-0 fast path ("one round trip for the first
//!   primary") and FD-driven round changes;
//! * [`woreg::WoRegisters`] — the CD-ROM abstraction on top: `write()` once,
//!   `read()` many;
//! * [`declog::DecisionLog`] — the sequenced decision log over wo-register
//!   slots: ordered batches of request outcomes, one consensus round per
//!   batch, with first-occurrence arbitration replacing per-attempt `regD`.
//!
//! All are *components* owned by an application-server process; they are
//! driven by forwarding runtime events.

pub mod declog;
pub mod engine;
pub mod woreg;

pub use declog::{AppliedSlot, DecisionLog};
pub use engine::{ConsensusEngine, EngineConfig, Suspects};
pub use woreg::{WoEvent, WoRegisters};

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::config::FdConfig;
    use etx_base::ids::{NodeId, RegId, RequestId, ResultId};
    use etx_base::runtime::{Context, Event, Process};
    use etx_base::time::Time;
    use etx_base::value::RegValue;
    use etx_fd::{FailureDetector, HeartbeatFd};
    use etx_sim::{Sim, SimConfig};
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    /// Shared observation board the test hosts report decisions to.
    type Board = Arc<Mutex<HashMap<(NodeId, RegId), RegValue>>>;

    /// A host that proposes planned values and records every decision.
    struct RegHost {
        me: NodeId,
        fd: HeartbeatFd,
        regs: WoRegisters,
        planned: Vec<(Time, RegId, RegValue)>,
        board: Board,
    }

    impl RegHost {
        fn fire_due(&mut self, ctx: &mut dyn Context) {
            let now = ctx.now();
            let (fire, keep): (Vec<_>, Vec<_>) =
                self.planned.drain(..).partition(|(at, _, _)| *at <= now);
            self.planned = keep;
            for (_, reg, value) in fire {
                let fd = &self.fd;
                let sus = move |n: NodeId| fd.suspects(n);
                if let Some(v) = self.regs.write(ctx, reg, value, &sus) {
                    self.board.lock().unwrap().insert((self.me, reg), v);
                }
            }
        }
    }

    impl Process for RegHost {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            if matches!(event, Event::Init) {
                self.fd.on_init(ctx);
                self.regs.on_init(ctx);
            }
            let transitions = self.fd.handle(ctx, &event);
            let fd = &self.fd;
            let sus = move |n: NodeId| fd.suspects(n);
            if !transitions.is_empty() {
                self.regs.on_suspicion_change(ctx, &sus);
            }
            for ev in self.regs.handle(ctx, &event, &sus) {
                let WoEvent::Decided { reg, value } = ev;
                self.board.lock().unwrap().insert((self.me, reg), value);
            }
            self.fire_due(ctx);
        }
    }

    fn reg(seq: u64) -> RegId {
        RegId::owner(ResultId::first(RequestId { client: NodeId(99), seq }))
    }

    fn build(
        seed: u64,
        n: usize,
        plans: Vec<Vec<(Time, RegId, RegValue)>>,
    ) -> (Sim, Vec<NodeId>, Board) {
        let board: Board = Arc::new(Mutex::new(HashMap::new()));
        let mut sim = Sim::new(SimConfig::with_seed(seed));
        let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        for i in 0..n {
            let ids_c = ids.clone();
            let plan = plans.get(i).cloned().unwrap_or_default();
            let board_c = board.clone();
            sim.add_node(
                "reg",
                Box::new(move |me| {
                    Box::new(RegHost {
                        me,
                        fd: HeartbeatFd::new(me, &ids_c, FdConfig::default()),
                        regs: WoRegisters::new(me, &ids_c, EngineConfig::default()),
                        planned: plan.clone(),
                        board: board_c.clone(),
                    })
                }),
            );
        }
        (sim, ids, board)
    }

    fn decisions_for(board: &Board, reg: RegId) -> Vec<RegValue> {
        let b = board.lock().unwrap();
        b.iter().filter(|((_, r), _)| *r == reg).map(|(_, v)| v.clone()).collect()
    }

    #[test]
    fn single_writer_decides_own_value_fast() {
        let r = reg(1);
        let (mut sim, _ids, board) =
            build(1, 3, vec![vec![(Time::ZERO, r, RegValue::Server(NodeId(0)))]]);
        let board_c = board.clone();
        sim.run_until(move |_| decisions_for(&board_c, r).len() == 3);
        let vals = decisions_for(&board, r);
        assert_eq!(vals.len(), 3, "all replicas learn");
        for v in &vals {
            assert_eq!(v, &RegValue::Server(NodeId(0)), "validity: only the proposed value");
        }
        // Fast path: the writer is round 0's coordinator; one round trip to
        // decide plus one hop to disseminate.
        assert!(sim.now() < Time(10_000), "fast path too slow: {}", sim.now());
    }

    #[test]
    fn concurrent_writers_agree_on_one_value() {
        for seed in 0..20u64 {
            let r = reg(2);
            let plans = vec![
                vec![(Time::ZERO, r, RegValue::Server(NodeId(0)))],
                vec![(Time::ZERO, r, RegValue::Server(NodeId(1)))],
                vec![(Time::ZERO, r, RegValue::Server(NodeId(2)))],
            ];
            let (mut sim, _, board) = build(seed, 3, plans);
            let board_c = board.clone();
            sim.run_until(move |_| decisions_for(&board_c, r).len() == 3);
            let vals = decisions_for(&board, r);
            assert_eq!(vals.len(), 3);
            assert!(
                vals.windows(2).all(|w| w[0] == w[1]),
                "agreement violated at seed {seed}: {vals:?}"
            );
            assert!(
                matches!(vals[0], RegValue::Server(n) if n.0 <= 2),
                "validity violated at seed {seed}"
            );
        }
    }

    #[test]
    fn write_after_decide_returns_existing_value() {
        let r = reg(3);
        // Node 0 writes at t=0; node 1 writes the same register much later
        // and must get node 0's value back.
        let plans = vec![
            vec![(Time::ZERO, r, RegValue::Server(NodeId(0)))],
            vec![(Time(300_000), r, RegValue::Server(NodeId(1)))],
        ];
        let (mut sim, _, board) = build(7, 3, plans);
        let board_c = board.clone();
        sim.run_until(move |s| s.now() > Time(600_000) && decisions_for(&board_c, r).len() == 3);
        let vals = decisions_for(&board, r);
        assert!(vals.iter().all(|v| *v == RegValue::Server(NodeId(0))), "write-once: {vals:?}");
    }

    #[test]
    fn decision_survives_coordinator_crash_after_write() {
        // Writer/coordinator node 0 crashes right after its register
        // decides; the survivors must still converge on node 0's value.
        let r = reg(4);
        let (mut sim, ids, board) =
            build(11, 3, vec![vec![(Time::ZERO, r, RegValue::Server(NodeId(0)))]]);
        sim.on_trace(
            move |ev| matches!(ev.kind, etx_base::trace::TraceKind::RegDecided { reg } if reg == r),
            etx_sim::FaultAction::Crash(ids[0]),
        );
        let board_c = board.clone();
        sim.run_until(move |_| decisions_for(&board_c, r).len() >= 2);
        let vals = decisions_for(&board, r);
        assert!(vals.iter().all(|v| *v == RegValue::Server(NodeId(0))));
    }

    #[test]
    fn writer_cut_off_before_majority_lets_others_take_over() {
        // Node 1 proposes but is partitioned away, so its write cannot reach
        // anyone; node 2 later proposes its own value. The connected
        // majority must decide without node 1, and everyone must agree once
        // the partition heals.
        let r = reg(5);
        let plans = vec![
            vec![],
            vec![(Time::ZERO, r, RegValue::Server(NodeId(1)))],
            vec![(Time(500_000), r, RegValue::Server(NodeId(2)))],
        ];
        let (mut sim, ids, board) = build(13, 3, plans);
        sim.partition(&[ids[1]], &[ids[0], ids[2]], Time(5_000_000));
        let board_c = board.clone();
        let out = sim.run_until(move |_| {
            let b = board_c.lock().unwrap();
            b.contains_key(&(NodeId(0), r)) && b.contains_key(&(NodeId(2), r))
        });
        assert_eq!(out, etx_sim::RunOutcome::Predicate, "connected majority must decide");
        let vals = decisions_for(&board, r);
        assert!(vals.windows(2).all(|w| w[0] == w[1]), "{vals:?}");
    }

    #[test]
    fn many_instances_in_parallel() {
        let regs: Vec<RegId> = (0..10).map(reg).collect();
        let plans = vec![
            regs.iter().step_by(2).map(|&r| (Time::ZERO, r, RegValue::Server(NodeId(0)))).collect(),
            regs.iter()
                .skip(1)
                .step_by(2)
                .map(|&r| (Time::ZERO, r, RegValue::Server(NodeId(1))))
                .collect(),
            vec![],
        ];
        let (mut sim, _, board) = build(17, 3, plans);
        let board_c = board.clone();
        let regs_c = regs.clone();
        sim.run_until(move |_| {
            let b = board_c.lock().unwrap();
            regs_c.iter().all(|r| (0..3).all(|n| b.contains_key(&(NodeId(n), *r))))
        });
        for r in &regs {
            let vals = decisions_for(&board, *r);
            assert_eq!(vals.len(), 3);
            assert!(vals.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn late_replica_learns_via_delayed_delivery_or_pull() {
        // Node 2 is cut off while 0+1 decide; after the heal it must still
        // converge on the decided value (via the delayed Decide and/or its
        // periodic DecideReq pull).
        let r = reg(7);
        let (mut sim, ids, board) =
            build(19, 3, vec![vec![(Time::ZERO, r, RegValue::Server(NodeId(0)))]]);
        sim.partition(&[ids[2]], &[ids[0], ids[1]], Time(400_000));
        let board_c = board.clone();
        let out = sim.run_until(move |_| board_c.lock().unwrap().contains_key(&(NodeId(2), r)));
        assert_eq!(out, etx_sim::RunOutcome::Predicate);
        let vals = decisions_for(&board, r);
        assert!(vals.iter().all(|v| *v == RegValue::Server(NodeId(0))));
        assert!(sim.now() >= Time(400_000), "node 2 can only learn after the heal");
    }

    #[test]
    fn single_replica_quorum_decides_synchronously() {
        // peers = {me}: propose must decide immediately and forget() must
        // work right after.
        let r = reg(6);
        let out = Arc::new(Mutex::new(None));
        struct Once {
            r: RegId,
            out: Arc<Mutex<Option<bool>>>,
        }
        impl Process for Once {
            fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
                if matches!(event, Event::Init) {
                    let me = ctx.me();
                    let mut e = ConsensusEngine::new(me, &[me], EngineConfig::default());
                    let sus = |_: NodeId| false;
                    let v = e.propose(ctx, self.r, RegValue::Server(me), &sus);
                    assert_eq!(v, Some(RegValue::Server(me)));
                    assert!(!e.forget(reg(999)), "cannot forget unknown instance");
                    *self.out.lock().unwrap() = Some(e.forget(self.r));
                }
            }
        }
        let mut sim = Sim::new(SimConfig::with_seed(1));
        let out_c = out.clone();
        sim.add_node("x", Box::new(move |_| Box::new(Once { r, out: out_c.clone() })));
        sim.run_until(|_| false);
        assert_eq!(*out.lock().unwrap(), Some(true));
    }
}
