//! Write-once registers over consensus.
//!
//! §4 of the paper: *"A wo-register has two operations: read() and write().
//! If several processes try to write a value in the register, only one value
//! is written, and once it is written, no other value can be written."* The
//! paper sketches the construction this module implements verbatim: every
//! application server holds a copy; `write(v)` proposes `v` to a consensus
//! instance dedicated to the register; `read()` returns the consensus
//! decision or `⊥` if none was reached yet, with a pull mechanism providing
//! the "keep reading and you will eventually see the value" liveness.

use crate::engine::{ConsensusEngine, EngineConfig, Suspects};
use etx_base::ids::{NodeId, RegId};
use etx_base::runtime::{Context, Event};
use etx_base::value::RegValue;

/// Completion notices produced by [`WoRegisters::handle`].
#[derive(Debug, Clone, PartialEq)]
pub enum WoEvent {
    /// A register now has its (unique, final) value at this replica. Fires
    /// at most once per register per replica.
    Decided {
        /// Which register.
        reg: RegId,
        /// Its value, forever.
        value: RegValue,
    },
}

/// One application server's view of all write-once registers (`regA[..]`
/// and `regD[..]`, Figure 4).
#[derive(Debug)]
pub struct WoRegisters {
    engine: ConsensusEngine,
}

impl WoRegisters {
    /// Creates the register bank for `me` replicated across `alist`.
    pub fn new(me: NodeId, alist: &[NodeId], cfg: EngineConfig) -> Self {
        WoRegisters { engine: ConsensusEngine::new(me, alist, cfg) }
    }

    /// Call once from the owner's `Init`.
    pub fn on_init(&mut self, ctx: &mut dyn Context) {
        self.engine.on_init(ctx);
    }

    /// `write(input)`: attempts to write `value`. Returns the register's
    /// value immediately if it is already known at this replica (which may
    /// be `value` or an earlier writer's value — the wo-register contract);
    /// otherwise returns `None` and a [`WoEvent::Decided`] arrives later via
    /// [`Self::handle`].
    pub fn write(
        &mut self,
        ctx: &mut dyn Context,
        reg: RegId,
        value: RegValue,
        suspects: Suspects<'_>,
    ) -> Option<RegValue> {
        self.engine.propose(ctx, reg, value, suspects)
    }

    /// `read()`: the register's value, or `None` (the paper's `⊥`).
    pub fn read(&self, reg: RegId) -> Option<&RegValue> {
        self.engine.decided(reg)
    }

    /// Nudges the network for a decision we do not have locally ("keep
    /// invoking read()"): broadcasts a pull. Harmless if already decided.
    pub fn pull(&mut self, ctx: &mut dyn Context, reg: RegId) {
        if self.engine.decided(reg).is_none() {
            self.engine.pull(ctx, reg);
        }
    }

    /// Every register this replica has seen any traffic for. The cleaner
    /// scans this to find attempts owned by suspected servers (the paper's
    /// `while regA[j].read() ≠ ⊥` loop, generalised to sparse indices).
    pub fn known(&self) -> Vec<RegId> {
        self.engine.known_instances()
    }

    /// Feeds a runtime event; returns registers decided by this call.
    pub fn handle(
        &mut self,
        ctx: &mut dyn Context,
        event: &Event,
        suspects: Suspects<'_>,
    ) -> Vec<WoEvent> {
        self.engine
            .handle(ctx, event, suspects)
            .into_iter()
            .map(|(reg, value)| WoEvent::Decided { reg, value })
            .collect()
    }

    /// Re-evaluates stalled writes after a suspicion change.
    pub fn on_suspicion_change(&mut self, ctx: &mut dyn Context, suspects: Suspects<'_>) {
        self.engine.on_suspicion_change(ctx, suspects);
    }

    /// Garbage-collects a decided register's replication state (§5 notes GC
    /// is out of the paper's scope; this hook is the natural place for it).
    pub fn forget(&mut self, reg: RegId) -> bool {
        self.engine.forget(reg)
    }

    /// Compacts a decided register to `placeholder`: its payload and round
    /// state are dropped, but the register stays decided — reads, pulls and
    /// late writes are still answered, so a replica that missed the
    /// original decision can never re-open the position. Use this instead
    /// of [`WoRegisters::forget`] for registers other replicas may still
    /// ask about (decision-log slots); `forget` fits registers only their
    /// own attempt ever queries (`regA`).
    pub fn compact(&mut self, reg: RegId, placeholder: RegValue) -> bool {
        self.engine.compact(reg, placeholder)
    }
}
