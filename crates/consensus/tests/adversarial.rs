//! Adversarial consensus testing: the engine is driven *directly* (no
//! simulator) with proptest-chosen message interleavings, drops to a
//! crashed minority, and hostile suspicion oracles. Agreement and validity
//! must survive anything; termination must hold whenever a majority is
//! alive and the oracle eventually tells the truth.

use etx_base::ids::{NodeId, RegId, RequestId, ResultId, TimerId};
use etx_base::msg::Payload;
use etx_base::runtime::{Context, Event, TimerTag};
use etx_base::time::{Dur, Time};
use etx_base::trace::TraceKind;
use etx_base::value::RegValue;
use etx_base::wal::StableRecord;
use etx_consensus::{ConsensusEngine, EngineConfig};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A mock context that records outgoing messages for the adversary to
/// deliver (or not) in any order it likes.
struct MockCtx {
    me: NodeId,
    now: Time,
    out: Vec<(NodeId, Payload)>,
    timer_seq: u64,
}

impl MockCtx {
    fn new(me: NodeId) -> Self {
        MockCtx { me, now: Time::ZERO, out: Vec::new(), timer_seq: 0 }
    }
}

impl Context for MockCtx {
    fn now(&self) -> Time {
        self.now
    }
    fn me(&self) -> NodeId {
        self.me
    }
    fn send(&mut self, to: NodeId, payload: Payload) {
        self.out.push((to, payload));
    }
    fn send_after(&mut self, _d: Dur, to: NodeId, payload: Payload) {
        self.out.push((to, payload));
    }
    fn set_timer(&mut self, _d: Dur, _tag: TimerTag) -> TimerId {
        self.timer_seq += 1;
        TimerId(self.timer_seq)
    }
    fn cancel_timer(&mut self, _id: TimerId) {}
    fn random_u64(&mut self) -> u64 {
        0xDEAD_BEEF
    }
    fn log_append(&mut self, _log: &'static str, _rec: StableRecord, _forced: bool) -> Dur {
        Dur::ZERO
    }
    fn log_read(&self, _log: &'static str) -> Vec<StableRecord> {
        Vec::new()
    }
    fn trace(&mut self, _kind: TraceKind) {}
    fn depth(&self) -> u32 {
        0
    }
    fn send_at_depth(&mut self, _depth: u32, to: NodeId, payload: Payload) {
        self.out.push((to, payload));
    }
    fn send_after_at_depth(&mut self, _depth: u32, _d: Dur, to: NodeId, payload: Payload) {
        self.out.push((to, payload));
    }
    fn subscribe_node_events(&mut self) {}
}

fn inst() -> RegId {
    RegId::owner(ResultId::first(RequestId { client: NodeId(100), seq: 1 }))
}

/// A little world of `n` engines plus an in-flight message bag the
/// adversary controls.
struct World {
    engines: Vec<Option<ConsensusEngine>>,    // None = crashed
    bag: VecDeque<(NodeId, NodeId, Payload)>, // (from, to, payload)
    decided: Vec<Option<RegValue>>,
    crashed: Vec<NodeId>,
}

impl World {
    fn new(n: usize, crashed: Vec<usize>) -> Self {
        let peers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let engines = peers
            .iter()
            .map(|&p| {
                if crashed.contains(&(p.0 as usize)) {
                    None
                } else {
                    Some(ConsensusEngine::new(p, &peers, EngineConfig::default()))
                }
            })
            .collect();
        World {
            engines,
            bag: VecDeque::new(),
            decided: vec![None; n],
            crashed: crashed.into_iter().map(|i| NodeId(i as u32)).collect(),
        }
    }

    #[allow(dead_code)] // part of the World harness API; kept for ad-hoc debugging
    fn suspects(&self) -> impl Fn(NodeId) -> bool + '_ {
        let crashed = self.crashed.clone();
        move |n| crashed.contains(&n)
    }

    fn drain(&mut self, node: NodeId, ctx: MockCtx) {
        for (to, payload) in ctx.out {
            self.bag.push_back((node, to, payload));
        }
    }

    fn propose(&mut self, idx: usize, value: RegValue) {
        let me = NodeId(idx as u32);
        let mut ctx = MockCtx::new(me);
        let crashed = self.crashed.clone();
        let sus = move |n: NodeId| crashed.contains(&n);
        if let Some(engine) = self.engines[idx].as_mut() {
            if let Some(v) = engine.propose(&mut ctx, inst(), value, &sus) {
                self.decided[idx] = Some(v);
            }
        }
        self.drain(me, ctx);
    }

    /// Delivers the `k`-th in-flight message (adversary's pick); drops it
    /// silently if the target crashed.
    fn deliver_nth(&mut self, k: usize) {
        if self.bag.is_empty() {
            return;
        }
        let k = k % self.bag.len();
        let (from, to, payload) = self.bag.remove(k).expect("index in range");
        let idx = to.0 as usize;
        let Some(engine) = self.engines[idx].as_mut() else {
            return; // crashed target: message lost
        };
        let mut ctx = MockCtx::new(to);
        let crashed = self.crashed.clone();
        let sus = move |n: NodeId| crashed.contains(&n);
        let event = Event::Message { from, payload };
        for (reg, value) in engine.handle(&mut ctx, &event, &sus) {
            assert_eq!(reg, inst());
            self.decided[idx] = Some(value);
        }
        self.drain(to, ctx);
    }

    /// Fires the patience re-check at every live engine (models timers).
    fn tick_all(&mut self) {
        for idx in 0..self.engines.len() {
            let me = NodeId(idx as u32);
            let mut ctx = MockCtx::new(me);
            let crashed = self.crashed.clone();
            let sus = move |n: NodeId| crashed.contains(&n);
            if let Some(engine) = self.engines[idx].as_mut() {
                engine.on_suspicion_change(&mut ctx, &sus);
                // Resync pull as well (read liveness).
                let ev = Event::Timer { id: TimerId(0), tag: TimerTag::ConsensusResync };
                for (_, value) in engine.handle(&mut ctx, &ev, &sus) {
                    self.decided[idx] = Some(value);
                }
            }
            self.drain(me, ctx);
        }
    }

    fn live_decisions(&self) -> Vec<&RegValue> {
        self.decided.iter().flatten().collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Agreement + validity under arbitrary delivery orders, with up to a
    /// minority crashed from the start; termination given fair ticks.
    #[test]
    fn agreement_under_arbitrary_interleavings(
        n in prop_oneof![Just(3usize), Just(5usize)],
        crash_one in any::<bool>(),
        crash_pick in 0usize..5,
        proposers in proptest::collection::vec(any::<bool>(), 5),
        schedule in proptest::collection::vec(0usize..64, 0..200),
    ) {
        let crashed = if crash_one { vec![crash_pick % n] } else { vec![] };
        let mut w = World::new(n, crashed.clone());
        // Every live server marked as proposer proposes its own id; ensure
        // at least one proposer exists.
        let mut any_proposer = false;
        #[allow(clippy::needless_range_loop)] // i is a node id, not just an index
        for i in 0..n {
            if crashed.contains(&i) { continue; }
            if proposers[i] || !any_proposer {
                w.propose(i, RegValue::Server(NodeId(i as u32)));
                any_proposer = true;
            }
        }
        // Adversarial delivery.
        for k in &schedule {
            w.deliver_nth(*k);
        }
        // Fair closure: alternate ticks and full drains until quiescent.
        for _ in 0..(4 * n + 8) {
            w.tick_all();
            for _ in 0..200 {
                if w.bag.is_empty() { break; }
                w.deliver_nth(0);
            }
        }
        // Agreement: every decided replica agrees.
        let decisions = w.live_decisions();
        prop_assert!(
            decisions.windows(2).all(|p| p[0] == p[1]),
            "agreement violated: {decisions:?}"
        );
        // Validity: the decision is one of the proposed values.
        for d in &decisions {
            prop_assert!(matches!(d, RegValue::Server(s) if (s.0 as usize) < n));
        }
        // Termination: with a live majority and truthful oracle, every live
        // replica decides.
        let live = n - crashed.len();
        prop_assert_eq!(
            decisions.len(),
            live,
            "termination violated: only {} of {} live replicas decided",
            decisions.len(),
            live
        );
    }

    /// Write-once: a second value proposed after a decision never wins.
    #[test]
    fn write_once_under_late_proposals(
        late_proposer in 0usize..3,
        schedule in proptest::collection::vec(0usize..64, 0..100),
    ) {
        let mut w = World::new(3, vec![]);
        w.propose(0, RegValue::Server(NodeId(0)));
        // Fully settle the first write.
        for _ in 0..20 {
            w.tick_all();
            for _ in 0..200 {
                if w.bag.is_empty() { break; }
                w.deliver_nth(0);
            }
        }
        let first = w.decided[0].clone().expect("settled");
        // Now a late writer proposes something else.
        w.propose(late_proposer, RegValue::Server(NodeId(9)));
        for k in &schedule {
            w.deliver_nth(*k);
        }
        for _ in 0..20 {
            w.tick_all();
            for _ in 0..200 {
                if w.bag.is_empty() { break; }
                w.deliver_nth(0);
            }
        }
        for d in w.live_decisions() {
            prop_assert_eq!(d, &first, "write-once violated");
        }
    }
}

/// Compaction safety: a replica that missed a slot's decision and finds its
/// peers already compacted cannot re-open the position — its late proposal
/// resolves to the compacted placeholder, never to its own value.
#[test]
fn compacted_instance_answers_late_writers_instead_of_reopening() {
    let mut w = World::new(3, vec![]);
    w.propose(0, RegValue::Server(NodeId(0)));
    // Deliver everything except messages to node 2: the majority {0, 1}
    // decides; node 2 misses the decision entirely.
    for _ in 0..20 {
        w.tick_all();
        for _ in 0..400 {
            w.bag.retain(|(_, to, _)| *to != NodeId(2));
            if w.bag.is_empty() {
                break;
            }
            w.deliver_nth(0);
        }
    }
    w.bag.retain(|(_, to, _)| *to != NodeId(2));
    let original = w.decided[0].clone().expect("majority decided");
    assert_eq!(w.decided[1].as_ref(), Some(&original));
    assert_eq!(w.decided[2], None, "node 2 must have missed the decision");
    // Both deciders compact the instance (all its requests settled).
    let placeholder = RegValue::Batch(std::sync::Arc::new(Vec::new()));
    for idx in [0usize, 1] {
        assert!(
            w.engines[idx].as_mut().expect("live").compact(inst(), placeholder.clone()),
            "decided instances compact"
        );
    }
    // Node 2 now proposes its own value into the position it thinks is
    // open. Full connectivity again: it must learn the placeholder.
    w.propose(2, RegValue::Server(NodeId(2)));
    for _ in 0..20 {
        w.tick_all();
        for _ in 0..400 {
            if w.bag.is_empty() {
                break;
            }
            w.deliver_nth(0);
        }
    }
    assert_eq!(
        w.decided[2].as_ref(),
        Some(&placeholder),
        "the late writer must adopt the compacted decision, not re-decide the position"
    );
}
