//! The application-server protocol (Figures 4, 5, 6).
//!
//! The paper's middle tier is *stateless* with respect to the application
//! (no state survives across requests) but runs the replication machinery:
//!
//! * the **computation thread** (Figure 5) — on a client request, race for
//!   ownership of the attempt through `regA[j].write(self)`; the winner
//!   computes the result against the databases, runs the voting phase, and
//!   writes the decision into `regD[j]`;
//! * the **cleaning thread** (Figure 6) — when a peer is suspected, walk
//!   every attempt it owns and force each to a decision (writing
//!   `(nil, abort)` into `regD[j]`, which returns the owner's decision if
//!   one was already written) and terminate it;
//! * **terminate()** (Figure 4) — push the decision to every database until
//!   all acknowledge, then send the result to the client;
//! * **prepare()** (Figure 4) — collect votes; a `Ready` (crash-recovery
//!   notice) from a database counts as a refusal, since an unprepared
//!   branch did not survive.
//!
//! The pseudo-code's blocking threads become one state machine per attempt
//! (one `Phase` per attempt); `cobegin` concurrency becomes event interleaving.
//!
//! ## The commit pipeline
//!
//! The paper's per-attempt decision register `regD[j]` is generalised into
//! a sequenced **decision log** ([`etx_consensus::DecisionLog`]): instead
//! of one consensus instance per outcome, the server accumulates concurrent
//! outcomes in a bounded **pipeline queue** and proposes them as one batch
//! into the next log slot — one consensus round per batch. The queue
//! flushes when it reaches [`etx_base::BatchingConfig::max_batch`]
//! outcomes, when its time window expires, or eagerly when no other attempt
//! is mid-flight (so a lone sequential request never waits — the
//! single-request path is a batch of one). Termination then pushes each
//! slot's outcomes to the databases as per-database `DecideBatch` messages,
//! which the back end applies behind a single group WAL append.
//!
//! ## The read fast lane
//!
//! The write-once `regD` contract exists to make retries of *effectful*
//! transactions safe; a read-only script (all `Get`s) is idempotent and
//! needs none of it. With [`etx_base::config::ReadPathConfig::enabled`],
//! such scripts are classified after shard routing and sent around the
//! whole pipeline as direct snapshot reads against the shard replicas —
//! no ownership race, no votes, no decision-log slot, no termination
//! push. Follower reads are gated on a per-shard freshness stamp: the
//! highest commit-ship position this server has observed (decide
//! acknowledgements), max-folded with the client's causality token
//! (stamps carried on every request), so a lagging follower forwards
//! rather than serve stale state and read-your-writes survives client
//! failover. Multi-shard reads additionally run the snapshot-validation
//! loop documented on `ReadState`, which is what makes a cross-shard
//! fan-out read transactionally atomic rather than a fractured per-shard
//! sample; validation that cannot converge falls back to the locking slow
//! path.

use etx_base::config::{CostModel, ProtocolConfig};
use etx_base::ids::{NodeId, RegId, RequestId, ResultId, TimerId, Topology};
use etx_base::msg::{AppMsg, ClientMsg, DbMsg, DbReplyMsg, Payload, ReplMsg};
use etx_base::runtime::{jittered, Context, Event, Process, TimerTag};
use etx_base::shard::ShardMap;
use etx_base::time::{Dur, Time};
use etx_base::trace::{Component, TraceKind};
use etx_base::value::{
    DbCall, Decision, ExecStatus, OpOutput, Outcome, RegValue, Request, ResultValue, Vote,
};
use etx_consensus::{AppliedSlot, DecisionLog, EngineConfig, WoEvent, WoRegisters};
use etx_fd::FailureDetector;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Per-attempt protocol state (the paper's compute thread, unrolled).
#[derive(Debug)]
enum Phase {
    /// `regA[j].write(this)` issued (or about to be); awaiting the owner
    /// decision.
    WritingRegA { request: Request, written: bool },
    /// Another server owns this attempt; we only watch (and clean if it
    /// crashes).
    Watching,
    /// We own the attempt and are executing the business logic, one
    /// database call at a time.
    Computing { request: Request, call_idx: usize, acc: Vec<(String, i64)> },
    /// Votes are being collected (Figure 4 `prepare()`).
    Preparing { result: ResultValue, involved: Vec<NodeId>, votes: HashMap<NodeId, Vote> },
    /// `regD[j].write(decision)` issued; awaiting the decision register.
    WritingRegD,
    /// Pushing `[Decide]` until every target database acknowledges
    /// (Figure 4 `terminate()`).
    Terminating { decision: Decision, targets: Vec<NodeId>, acked: HashSet<NodeId> },
    /// Terminated; result sent to the client. Kept to answer duplicates.
    Done { decision: Decision },
}

/// One in-flight fast-path read: the routed calls of a read-only script
/// and the per-call outputs collected so far. No consensus state, no
/// termination targets — nothing here needs surviving this server, because
/// reads are idempotent and the client's retry machinery re-runs them
/// anywhere.
///
/// Multi-shard reads additionally run **snapshot validation** over the
/// collected rounds: a collect is accepted only when every shard's commit
/// position matches the previous collect and no read key had an in-doubt
/// write. Because a collect only starts after every reply of its
/// predecessor arrived, two agreeing collects bracket an instant at which
/// all returned values held simultaneously — and the in-doubt check rules
/// out a cross-shard transaction that had committed at some shards but was
/// still prepared at another. That is exactly the fractured read the
/// locking slow path forbids, forbidden here without locks.
#[derive(Debug)]
struct ReadState {
    /// The routed request (kept so an exhausted validation budget can
    /// re-route the attempt down the locking slow path).
    request: Request,
    /// Routed per-shard calls, in script order.
    calls: Vec<DbCall>,
    /// Outputs per call; `None` until the call's `ReadReply` arrives.
    outputs: Vec<Option<Vec<OpOutput>>>,
    /// Serving replica's commit position per call (valid where `outputs`
    /// is `Some`).
    positions: Vec<u64>,
    /// The freshness stamp each call was sent with (the position this
    /// server had observed for the shard at send time). If a reply's
    /// position still equals it, the shard committed nothing between the
    /// stamp's observation and the read — which lets the **first** collect
    /// accept without a validation round (see `on_read_reply`).
    sent_stamps: Vec<u64>,
    /// Per-call read-your-writes floor: the highest position the issuing
    /// *client's* causality token carried for the call's shard. In lease
    /// mode this — not the server-wide stamp — is the `min_seq` a
    /// follower-routed call is gated on: an in-lease follower's prefix is
    /// authoritative, so the only staleness that matters is relative to
    /// what this client has itself observed.
    floors: Vec<u64>,
    /// Whether any reply of the current collect flagged an in-doubt write
    /// on a read key.
    indoubt: bool,
    /// The previous completed collect's positions (`None` until one
    /// collect completes).
    prev_positions: Option<Vec<u64>>,
    /// Current collect round (0-based; echoed on the wire so replies from
    /// superseded rounds are dropped).
    round: u32,
    /// How many times the loss backstop has fired for this attempt (drives
    /// its exponential back-off).
    backoff: u32,
}

/// Deterministic follower choice for a fast-path read: all replicas
/// derive the same pick for the same attempt/call, and distinct attempts
/// spread over the shard's followers.
fn read_pick(rid: ResultId, call: usize, n: usize) -> usize {
    let mut z = (u64::from(rid.request.client.0) << 40)
        ^ rid.request.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(rid.attempt) << 17)
        ^ ((call as u64) << 3);
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^= z >> 33;
    (z % n as u64) as usize
}

/// The middle-tier process: computation thread + cleaning thread + the
/// wo-register machinery, as one event-driven state machine.
pub struct AppServer {
    me: NodeId,
    topo: Topology,
    cfg: ProtocolConfig,
    cost: CostModel,
    /// Back-end addressing: key-addressed scripts are split into per-shard
    /// XA branches against this map. Identical on every replica, so branch
    /// layout never depends on which replica wins `regA`.
    shards: ShardMap,
    fd: Box<dyn FailureDetector>,
    regs: WoRegisters,
    /// The sequenced decision log (replaces per-attempt `regD`).
    log: DecisionLog,
    /// Pipeline queue: outcomes accumulated for the next decision-log slot.
    batch_queue: Vec<(ResultId, Decision)>,
    /// Pending window-flush timer for the pipeline queue, if armed.
    batch_timer: Option<TimerId>,
    /// The decision-log slots whose in-flight proposals were already
    /// shipped for speculative execution (so each proposal is shipped at
    /// most once); pruned to the live proposal window on every shipment.
    spec_shipped: BTreeSet<u64>,
    /// High-water mark of concurrently undecided slots this server has had
    /// in flight — traced (once per new depth ≥ 2) as `PipelineWindow`, so
    /// a depth-1 run's trace is untouched.
    window_peak: u32,
    fsms: HashMap<ResultId, Phase>,
    /// In-flight fast-path reads (read-only scripts routed around the
    /// commit pipeline).
    reads: HashMap<ResultId, ReadState>,
    /// Highest commit-ship position observed per shard primary — the
    /// freshness stamp follower reads are gated on. Fed from two sides:
    /// decide acknowledgements this server received, and the causality
    /// token each client request carries (stamps from results delivered to
    /// that client, possibly by *other* servers) — the latter is what
    /// keeps read-your-writes intact across client failover. Ordered so
    /// stamp vectors serialize deterministically.
    shard_seq: BTreeMap<NodeId, u64>,
    /// Latest read-lease expiry advertised per shard primary (ridden on
    /// decide acknowledgements and primary-served read replies). While the
    /// advertisement is in force, the shard's followers hold a grant at
    /// most `renew_margin` older — so the read lane may route any call at
    /// them, including multi-shard snapshot-validation collects, without
    /// the forward hop. Only populated when leases are enabled.
    shard_lease: BTreeMap<NodeId, Time>,
    /// Latest applied position observed *per serving replica* (fed by
    /// read replies, keyed by the actual answering node — unlike
    /// [`AppServer::shard_seq`], which is keyed by shard primary and fed
    /// by commit acknowledgements too). A follower-routed call of a
    /// leased collect validates `fresh` against this: positions are
    /// monotone, so a reply matching the last position this replica ever
    /// reported proves the replica stood still from that observation to
    /// the sample — an interval containing the send instant, exactly the
    /// common-instant bracket the primary-stamp argument uses. (Without
    /// it, a follower lagging the primary-fed stamp by even one apply
    /// forces every leased collect into a second validation round.)
    replica_seq: BTreeMap<NodeId, u64>,
    /// Attempts whose `regD` write *we* initiated (owner or cleaner): we are
    /// responsible for termination once the register decides.
    initiators: HashSet<ResultId>,
    /// Databases each initiated termination must cover.
    terminate_targets: HashMap<ResultId, Vec<NodeId>>,
    /// The paper's `clist` (Figure 6): attempts already cleaned.
    cleaned: HashSet<ResultId>,
    /// Committed decisions we *finished terminating*, for answering client
    /// retransmissions (Figure 5 lines 3–4).
    committed_cache: HashMap<RequestId, (ResultId, Decision)>,
    /// Span bookkeeping for the Figure 8 log-start / log-outcome rows.
    rega_started: HashMap<ResultId, Time>,
    regd_started: HashMap<ResultId, Time>,
}

impl std::fmt::Debug for AppServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppServer")
            .field("me", &self.me)
            .field("attempts", &self.fsms.len())
            .finish()
    }
}

impl AppServer {
    /// Builds an application server over a flat (unsharded) back end:
    /// key-addressed scripts treat each database server as its own
    /// single-replica shard. Use [`AppServer::with_shards`] for partitioned
    /// deployments.
    ///
    /// `fd` is the eventually-perfect failure detector of §4;
    /// the wo-registers replicate across `topo.app_servers`.
    pub fn new(
        me: NodeId,
        topo: Topology,
        cfg: ProtocolConfig,
        cost: CostModel,
        fd: Box<dyn FailureDetector>,
    ) -> Self {
        let shards = ShardMap::one_per_db(&topo.db_servers);
        Self::with_shards(me, topo, cfg, cost, shards, fd)
    }

    /// Builds an application server that routes key-addressed scripts
    /// against an explicit shard map (partitioned keyspace, per-shard
    /// replica groups).
    pub fn with_shards(
        me: NodeId,
        topo: Topology,
        cfg: ProtocolConfig,
        cost: CostModel,
        shards: ShardMap,
        fd: Box<dyn FailureDetector>,
    ) -> Self {
        let engine_cfg =
            EngineConfig { patience: cfg.consensus_round_patience, resync: cfg.consensus_resync };
        let regs = WoRegisters::new(me, &topo.app_servers, engine_cfg);
        let log = DecisionLog::new(cfg.features.batching.max_batch, cfg.features.pipeline.window());
        AppServer {
            me,
            topo,
            cfg,
            cost,
            shards,
            fd,
            regs,
            log,
            batch_queue: Vec::new(),
            batch_timer: None,
            spec_shipped: BTreeSet::new(),
            window_peak: 0,
            fsms: HashMap::new(),
            reads: HashMap::new(),
            shard_seq: BTreeMap::new(),
            shard_lease: BTreeMap::new(),
            replica_seq: BTreeMap::new(),
            initiators: HashSet::new(),
            terminate_targets: HashMap::new(),
            cleaned: HashSet::new(),
            committed_cache: HashMap::new(),
            rega_started: HashMap::new(),
            regd_started: HashMap::new(),
        }
    }

    fn suspicion_snapshot(&self) -> Vec<NodeId> {
        self.fd.suspected()
    }

    /// Drops protocol state for every *terminated* attempt of `client` with
    /// a sequence number below the client's `ack_below` watermark:
    /// per-attempt FSMs, cached decisions, the wo-registers' replication
    /// state and the decision log's arbitration memory. Bounds memory to
    /// the client's in-flight window (plus one cached decision per client
    /// per unsettled request). Sequential clients send their current
    /// sequence number (everything earlier is implicitly acknowledged);
    /// open-loop clients send their lowest unfinished sequence number.
    fn gc_below(&mut self, ctx: &mut dyn Context, client: NodeId, ack_below: u64) {
        let stale: Vec<ResultId> = self
            .fsms
            .iter()
            .filter(|(rid, phase)| {
                rid.request.client == client
                    && rid.request.seq < ack_below
                    && matches!(phase, Phase::Done { .. } | Phase::Watching)
            })
            .map(|(&rid, _)| rid)
            .collect();
        for rid in stale {
            self.fsms.remove(&rid);
            self.cleaned.insert(rid);
            self.regs.forget(RegId::owner(rid));
            self.rega_started.remove(&rid);
            self.regd_started.remove(&rid);
            self.terminate_targets.remove(&rid);
        }
        // Slots whose every member is settled shed their consensus payload
        // too — without this the register bank retains one decided batch
        // (results included) per slot forever, unbounding memory with total
        // throughput. Compacted (not forgotten), and down to an
        // outcomes-only tombstone rather than an empty batch: a replica
        // that resyncs the slot after compaction still needs the
        // `(attempt, outcome)` pairs for first-occurrence arbitration — its
        // cleaner never heard this client's watermark and may re-propose a
        // member attempt as `(nil, abort)`, which must lose to the original
        // outcome everywhere. Only the result payloads are shed.
        for (slot, tombstone) in self.log.gc_client(client, ack_below) {
            if self.regs.compact(RegId::slot(slot), RegValue::Batch(Arc::new(tombstone))) {
                ctx.trace(TraceKind::SlotGc { slot });
            }
        }
        let fresh = |rid: &ResultId| rid.request.client != client || rid.request.seq >= ack_below;
        // Settled fast-path reads drop with the same watermark.
        self.reads.retain(|rid, _| fresh(rid));
        // Initiator bookkeeping for attempts that settled through another
        // server's slot never reaches apply_slots; drop it by watermark.
        self.initiators.retain(fresh);
        self.terminate_targets.retain(|rid, _| fresh(rid));
        self.regd_started.retain(|rid, _| fresh(rid));
        self.batch_queue.retain(|(rid, _)| fresh(rid));
        self.committed_cache.retain(|req, _| req.client != client || req.seq >= ack_below);
    }

    /// Number of per-attempt state machines currently held (observability /
    /// GC tests).
    pub fn in_flight_attempts(&self) -> usize {
        self.fsms.len()
    }

    // ---- computation thread (Figure 5) ------------------------------------

    fn on_request(
        &mut self,
        ctx: &mut dyn Context,
        request: Request,
        attempt: u32,
        ack_below: u64,
        stamps: Vec<(NodeId, u64)>,
    ) {
        let rid = ResultId { request: request.id, attempt };
        // Causality token first: whatever positions this client has
        // observed (through any server) bound the freshness of every read
        // this request may trigger here — including this very request. The
        // token itself is kept around: in lease mode it is the per-call
        // read-your-writes floor a fast-path read sends to followers.
        for &(db, seq) in &stamps {
            self.observe_shard_seq(db, seq);
        }
        let token = stamps;
        // Garbage collection (§5 leaves it open; this is the natural hook):
        // the client's watermark tells us which of its requests are settled
        // forever — their attempts can never be retransmitted again and
        // their register/log state can go.
        self.gc_below(ctx, request.id.client, ack_below);
        // Figure 5 line 3: if this request already committed, answer from
        // the cached decision.
        if let Some((crid, decision)) = self.committed_cache.get(&request.id).cloned() {
            let stamps = self.all_stamps();
            ctx.send(
                rid.request.client,
                Payload::App(AppMsg::Result { rid: crid, decision, stamps }),
            );
            return;
        }
        match self.fsms.get(&rid) {
            Some(Phase::Done { decision }) => {
                let decision = decision.clone();
                let stamps = self.all_stamps();
                ctx.send(
                    rid.request.client,
                    Payload::App(AppMsg::Result { rid, decision, stamps }),
                );
            }
            Some(_) => { /* already in progress; duplicates are absorbed */ }
            None => {
                // New attempt: resolve key-addressed scripts into per-shard
                // XA branches (deterministic — every replica derives the
                // same plan), charge the dispatch cost ("start" row), then
                // race for ownership.
                let (request, routed) = crate::router::materialize(request, &self.shards);
                if let Some(span) = routed {
                    ctx.trace(TraceKind::ShardRoute { rid, shards: span });
                }
                // Read fast lane: an all-Get script is idempotent, so it
                // needs none of the commit machinery the write-once regD
                // contract exists for. Route it around the pipeline as
                // direct snapshot reads (duplicates of an in-flight read
                // are absorbed like any other in-progress attempt).
                if self.cfg.features.read_path.enabled && request.script.is_read_only() {
                    if !self.reads.contains_key(&rid) {
                        self.start_read(ctx, rid, request, &token);
                    }
                    return;
                }
                self.fsms.insert(rid, Phase::WritingRegA { request, written: false });
                let dur = jittered(ctx, self.cost.start, self.cost.jitter);
                ctx.trace(TraceKind::Span { rid, comp: Component::Start, dur });
                ctx.set_timer(dur, TimerTag::Dispatch { rid, stage: 0 });
            }
        }
    }

    // ---- the read fast lane ------------------------------------------------

    /// Starts a fast-path read: records the routed calls, charges the
    /// dispatch cost and defers the fan-out behind it (stage-1 dispatch).
    fn start_read(
        &mut self,
        ctx: &mut dyn Context,
        rid: ResultId,
        request: Request,
        token: &[(NodeId, u64)],
    ) {
        let calls = request.script.calls.clone();
        ctx.trace(TraceKind::ReadFastPath { rid, shards: calls.len() as u32 });
        let dur = jittered(ctx, self.cost.start, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::Start, dur });
        let n = calls.len();
        let floors = calls
            .iter()
            .map(|c| {
                token.iter().filter(|(db, _)| *db == c.db).map(|&(_, seq)| seq).max().unwrap_or(0)
            })
            .collect();
        self.reads.insert(
            rid,
            ReadState {
                request,
                calls,
                outputs: vec![None; n],
                positions: vec![0; n],
                sent_stamps: vec![0; n],
                floors,
                indoubt: false,
                prev_positions: None,
                round: 0,
                backoff: 0,
            },
        );
        ctx.set_timer(dur, TimerTag::Dispatch { rid, stage: 1 });
    }

    /// Fans a fast-path read out: one `Read` message per routed call, then
    /// arms the retry backstop (covers read targets that crash with the
    /// request in flight). Multi-shard reads go straight to the shard
    /// primaries — snapshot validation needs the authoritative positions.
    fn dispatch_reads(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let calls = match self.reads.get(&rid) {
            Some(state) => state.calls.clone(),
            None => return,
        };
        let multi = calls.len() > 1;
        let mut stamps = Vec::with_capacity(calls.len());
        for (idx, call) in calls.iter().enumerate() {
            let to_primary = self.read_to_primary(ctx.now(), multi, call.db);
            stamps.push(self.send_read_call(ctx, rid, idx, call, 0, to_primary, 0));
        }
        if let Some(state) = self.reads.get_mut(&rid) {
            state.sent_stamps = stamps;
        }
        ctx.set_timer(self.cfg.terminate_retry, TimerTag::ReadRetry { rid });
    }

    /// Whether the shard's advertised lease is in force right now.
    fn lease_active(&self, now: Time, db: NodeId) -> bool {
        self.shard_lease.get(&db).is_some_and(|&through| through > now)
    }

    /// Folds a lease advertisement (ridden on a decide acknowledgement or
    /// a primary-served read reply) into the per-shard lease table.
    fn observe_shard_lease(&mut self, db: NodeId, lease: Option<Time>) {
        if let Some(through) = lease {
            let slot = self.shard_lease.entry(db).or_insert(Time::ZERO);
            if *slot < through {
                *slot = through;
            }
        }
    }

    /// First-dispatch routing rule for one call of a fast-path read.
    /// Single-shard reads spread over the replica group (when follower
    /// reads are on). Multi-shard collects historically went straight to
    /// the shard primaries — snapshot validation needed the authoritative
    /// positions — but an in-force lease makes the followers' positions
    /// authoritative too, so the collect may spread as well: that is the
    /// forward hop the lease exists to kill.
    fn read_to_primary(&self, now: Time, multi: bool, db: NodeId) -> bool {
        multi && !(self.cfg.features.read_leases.enabled && self.lease_active(now, db))
    }

    /// Sends one read call, stamped with the highest commit seq this server
    /// has observed for the target shard (client causality tokens folded
    /// in). With follower reads enabled (and `to_primary` not forced), the
    /// call spreads deterministically over the shard's **whole replica
    /// group** — every replica's read lane serves a slice of the read
    /// traffic, which is what multiplies read capacity with the
    /// replication factor. A chosen follower serves locally if it has
    /// caught up to the stamp and forwards to the primary otherwise.
    /// Returns the server-wide stamp observed at send time — what the
    /// collect's freshness validation compares reply positions against,
    /// regardless of what `min_seq` went on the wire.
    ///
    /// `salt` rotates the deterministic replica pick (0 on first dispatch;
    /// the retry backstop passes its back-off count so a re-send lands on
    /// a *different* replica than the one that went unanswered).
    #[allow(clippy::too_many_arguments)] // one knob per routing dimension
    fn send_read_call(
        &self,
        ctx: &mut dyn Context,
        rid: ResultId,
        idx: usize,
        call: &DbCall,
        round: u32,
        to_primary: bool,
        salt: u32,
    ) -> u64 {
        let stamp = self.shard_seq.get(&call.db).copied().unwrap_or(0);
        let leased = self.cfg.features.read_leases.enabled && self.lease_active(ctx.now(), call.db);
        let spread = !to_primary && (self.cfg.features.read_path.follower_reads || leased);
        let target = if !spread {
            call.db
        } else {
            match self.shards.shard_of_node(call.db) {
                Some(shard) => {
                    let replicas = self.shards.replicas(shard);
                    match replicas.len() {
                        0 => call.db,
                        n => replicas[(read_pick(rid, idx, n) + salt as usize) % n],
                    }
                }
                None => call.db,
            }
        };
        // In lease mode a follower-routed call is gated on the issuing
        // client's own causality floor, not the server-wide stamp: the
        // in-lease follower's prefix is authoritative, so the only
        // staleness that matters is read-your-writes relative to this
        // client. Everywhere else the server-wide stamp gates as before.
        let min_seq = if leased && target != call.db {
            self.reads.get(&rid).map_or(stamp, |s| s.floors[idx])
        } else {
            stamp
        };
        ctx.send(
            target,
            Payload::Db(DbMsg::Read {
                rid,
                call: idx as u32,
                round,
                ops: call.ops.clone(),
                min_seq,
                reply_to: self.me,
            }),
        );
        // The stamp `fresh` validates against is the last position the
        // *target node itself* reported: for a primary that is the
        // server-wide shard stamp; for a follower it is the replica's own
        // observed position (primary-fed stamps would run ahead of a
        // healthy follower by in-flight shipments and force a second
        // collect round). Either way the argument is the same — positions
        // are monotone, so a reply equal to a stamp observed before the
        // send proves the serving node stood still across an interval
        // containing the send instant.
        if target == call.db {
            stamp
        } else {
            self.replica_seq.get(&target).copied().unwrap_or(0)
        }
    }

    /// A read call answered. Replies from superseded collect rounds are
    /// dropped (their samples predate the current round's start and would
    /// unsound the validation argument). Once the round is complete, a
    /// single-shard read finishes immediately — it sampled one replica at
    /// one instant, atomic by construction. A multi-shard read finishes
    /// only when the collect is provably a snapshot (see `accept` below);
    /// otherwise it re-collects, and after
    /// [`etx_base::config::ReadPathConfig::max_snapshot_rounds`] collects
    /// it falls back to the locking slow path.
    #[allow(clippy::too_many_arguments)] // mirrors the ReadReply frame field-for-field
    fn on_read_reply(
        &mut self,
        ctx: &mut dyn Context,
        from: NodeId,
        rid: ResultId,
        call: u32,
        round: u32,
        outputs: Vec<OpOutput>,
        pos: u64,
        indoubt: bool,
        _leased: bool,
        lease: Option<Time>,
    ) {
        // A primary-served reply advertises the shard's current lease
        // offer (followers send `None`) — fold it in even if the read
        // itself has already settled.
        self.observe_shard_lease(from, lease);
        let Some(state) = self.reads.get_mut(&rid) else {
            return; // settled (or GC'd) read; late duplicate reply
        };
        if round != state.round {
            return; // a superseded collect's answer
        }
        let idx = call as usize;
        if idx >= state.outputs.len() || state.outputs[idx].is_some() {
            return;
        }
        state.outputs[idx] = Some(outputs);
        state.positions[idx] = pos;
        state.indoubt |= indoubt;
        let db = state.calls[idx].db;
        let done = !state.outputs.iter().any(Option::is_none);
        // Every reply is also a freshness observation of its shard — and
        // of the specific replica that answered.
        self.observe_shard_seq(db, pos);
        let slot = self.replica_seq.entry(from).or_insert(0);
        if *slot < pos {
            *slot = pos;
        }
        if !done {
            return;
        }
        // The collect is complete — decide its fate. It is an atomic
        // snapshot when every shard provably stood still across an
        // interval containing one common instant:
        //
        // * `fresh` — each position equals the stamp this server had
        //   *already observed* before sending, so the shard committed
        //   nothing between that observation and the read; the common
        //   instant is the send. This is the one-round happy path (reads
        //   fold their positions back into the stamps, keeping them
        //   exact while traffic is read-dominated).
        // * `stable` — each position equals the previous collect's, so
        //   nothing committed between the two non-overlapping collects.
        //
        // Either way, an in-doubt key vetoes: a cross-shard transaction
        // already committed elsewhere but still prepared here is
        // half-applied without moving this shard's position.
        let state = self.reads.get(&rid).expect("read still in flight");
        let multi = state.calls.len() > 1;
        let fresh = state.positions.iter().zip(&state.sent_stamps).all(|(p, s)| p == s);
        let stable = state.prev_positions.as_deref() == Some(&state.positions[..]);
        // Leases never weaken this rule: they only change *routing* (which
        // replica a call lands on), while acceptance stays
        // freshness/stability + the in-doubt veto. What makes the rule
        // sound against a follower that cannot see another shard's
        // prepared branches is server-side: a lease-granting primary
        // holds its yes vote on a cross-shard branch until its followers
        // acknowledge the branch's in-doubt intent (or every outstanding
        // lease lapses), so any collect observing the transaction's
        // effects anywhere postdates that release — and the stale shard's
        // in-lease follower then forwards into the primary's in-doubt
        // veto rather than serving the fractured half.
        let accept = !multi || (!state.indoubt && (fresh || stable));
        let exhausted = state.round + 1 >= self.cfg.features.read_path.snapshot_rounds();
        if accept {
            self.finish_read(ctx, rid);
        } else if exhausted {
            self.fallback_read(ctx, rid);
        } else {
            let state = self.reads.get_mut(&rid).expect("read still in flight");
            // Start the next collect: remember this round's positions,
            // clear the slate, and re-sample every shard primary. The loss
            // backstop's back-off deliberately does NOT reset here: a
            // collect that just completed proves the lane is answering, so
            // there is no loss evidence to cover — and under a saturated
            // burst, re-arming the backstop at its base period once per
            // validation round turns queued-but-coming replies into
            // duplicate sends that feed the very queue delaying them
            // (measured: −28% commit/s on the primary route's 99%-read
            // leg). A genuinely lost re-send is still covered, just at the
            // already-backed-off cadence.
            state.prev_positions = Some(state.positions.clone());
            state.round += 1;
            state.indoubt = false;
            for slot in &mut state.outputs {
                *slot = None;
            }
            let round = state.round;
            let calls = state.calls.clone();
            ctx.trace(TraceKind::ReadSnapshotRound { rid, round });
            // Re-collects follow first-dispatch routing: primaries by
            // default (authoritative positions make `stable` attainable),
            // in-lease followers when a lease is in force — a follower
            // standing still across two collects proves `stable` just as
            // soundly, since the vote-hold handshake pins any half-applied
            // cross-shard transaction behind its in-doubt veto. Each
            // re-send's freshly observed stamp replaces the stale one — a
            // shard that moved since the original dispatch can still prove
            // `fresh` against the position this server knows *now*.
            let mut stamps = Vec::with_capacity(calls.len());
            for (idx, call) in calls.iter().enumerate() {
                let to_primary = self.read_to_primary(ctx.now(), true, call.db);
                stamps.push(self.send_read_call(ctx, rid, idx, call, round, to_primary, 0));
            }
            let state = self.reads.get_mut(&rid).expect("read still in flight");
            state.sent_stamps = stamps;
        }
    }

    /// An accepted collect: the per-shard outputs merge into one result
    /// (the read-only analogue of `compute()` returning) and the commit
    /// decision goes straight to the client — no voting, no decision log,
    /// no termination push. The serving positions ride along as the
    /// client's causality stamps.
    fn finish_read(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(state) = self.reads.remove(&rid) else { return };
        let stamps: Vec<(NodeId, u64)> =
            state.calls.iter().zip(&state.positions).map(|(call, &pos)| (call.db, pos)).collect();
        let outs: Vec<Vec<OpOutput>> =
            state.outputs.into_iter().map(|o| o.expect("all calls answered")).collect();
        let result = crate::resultbuild::merge_read(&state.calls, &outs, rid.attempt);
        ctx.trace(TraceKind::Computed { rid });
        let decision = Decision::commit(result);
        self.committed_cache.insert(rid.request, (rid, decision.clone()));
        self.fsms.insert(rid, Phase::Done { decision: decision.clone() });
        let dur = jittered(ctx, self.cost.end, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::End, dur });
        ctx.send_after(
            dur,
            rid.request.client,
            Payload::App(AppMsg::Result { rid, decision, stamps }),
        );
    }

    /// Snapshot validation exhausted its collect budget (keys too hot to
    /// catch standing still): re-route the attempt through the locking
    /// slow path, whose XA read locks make it atomic under any contention.
    /// Everything downstream is the ordinary write machinery — ownership
    /// race, compute, votes — so liveness and exactly-once come for free.
    fn fallback_read(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(state) = self.reads.remove(&rid) else { return };
        ctx.trace(TraceKind::ReadFallback { rid, rounds: state.round + 1 });
        self.fsms.insert(rid, Phase::WritingRegA { request: state.request, written: false });
        let dur = jittered(ctx, self.cost.start, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::Start, dur });
        ctx.set_timer(dur, TimerTag::Dispatch { rid, stage: 0 });
    }

    /// Retry backstop for fast-path reads (a crashed replica or a lost
    /// message must not stall an idempotent read). Re-sends exactly the
    /// unanswered calls of the current collect, *within the same collect
    /// epoch and against their original stamps*. Every stamp of the round
    /// still dates from the one dispatch instant, so the freshness
    /// argument is untouched (a reply matching its stamp proves the shard
    /// stood still from that shared instant to the sample, re-sent or
    /// not), collected replies keep their progress, and — crucially — a
    /// backstop firing on replies that are merely *queued* behind a busy
    /// lane never abandons them: the originals still land and fill their
    /// slots, the duplicates are dropped by the per-call fill guard.
    /// (An earlier draft restarted a fully unanswered collect as a fresh
    /// wire epoch with refreshed stamps; under a saturated burst that
    /// orphans every queued reply of the old epoch and re-queues the whole
    /// fan-out each firing — measured at −20..28% commit/s on the
    /// saturated 16-shard legs. The price of keeping the epoch is that a
    /// genuinely lost call whose shard moved during the timeout fails
    /// `fresh` and costs one validation round — and *that* round refreshes
    /// every stamp at a single instant, in `on_read_reply`, which is the
    /// only place a refresh is sound: completing a partially answered
    /// collect against refreshed stamps would mix observation instants
    /// with no common point, exactly the fractured cross-shard read the
    /// validation exists to forbid.)
    ///
    /// Routing: the first re-send rotates to a *different* replica of the
    /// same shard — the unanswered one may be down, and its crash is
    /// invisible here by design — and from the second firing on it
    /// escalates to the shard primary, which is always eventually
    /// reachable. The timer re-arms with exponential back-off while
    /// anything is pending — a reply that is merely queued behind a busy
    /// read lane should not draw repeated duplicate load onto the
    /// primaries.
    fn on_read_retry(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(state) = self.reads.get_mut(&rid) else { return };
        state.backoff += 1;
        let backoff = state.backoff;
        let multi = state.calls.len() > 1;
        ctx.trace(TraceKind::ReadRetried { rid, backoff });
        let unanswered: Vec<usize> = state
            .outputs
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(idx, _)| idx)
            .collect();
        let round = state.round;
        let calls = state.calls.clone();
        for idx in unanswered {
            let call = &calls[idx];
            let to_primary = backoff > 1 || self.read_to_primary(ctx.now(), multi, call.db);
            self.send_read_call(ctx, rid, idx, call, round, to_primary, backoff);
        }
        let shift = self.reads[&rid].backoff.min(3);
        let delay = Dur(self.cfg.terminate_retry.0.saturating_mul(1 << shift));
        ctx.set_timer(delay, TimerTag::ReadRetry { rid });
    }

    /// Folds a decide acknowledgement's ship position into the per-shard
    /// freshness stamp.
    fn observe_shard_seq(&mut self, db: NodeId, seq: u64) {
        let slot = self.shard_seq.entry(db).or_insert(0);
        if *slot < seq {
            *slot = seq;
        }
    }

    /// Every per-shard position this server has observed, as result
    /// stamps (cached-decision replies, where the original targets are no
    /// longer tracked, send the whole map — any valid observation may ride
    /// a result).
    fn all_stamps(&self) -> Vec<(NodeId, u64)> {
        self.shard_seq.iter().map(|(&db, &seq)| (db, seq)).collect()
    }

    /// The observed positions for the given databases (termination replies
    /// stamp exactly the shards the decision touched).
    fn stamps_for(&self, dbs: &[NodeId]) -> Vec<(NodeId, u64)> {
        dbs.iter().filter_map(|db| self.shard_seq.get(db).map(|&seq| (*db, seq))).collect()
    }

    fn dispatch_rega(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::WritingRegA { written, .. }) = self.fsms.get_mut(&rid) else { return };
        if *written {
            return;
        }
        *written = true;
        self.rega_started.insert(rid, ctx.now());
        let sus_vec = self.suspicion_snapshot();
        let sus = move |n: NodeId| sus_vec.contains(&n);
        let me = self.me;
        if let Some(v) = self.regs.write(ctx, RegId::owner(rid), RegValue::Server(me), &sus) {
            self.on_decided(ctx, RegId::owner(rid), v);
        }
    }

    fn start_compute(&mut self, ctx: &mut dyn Context, rid: ResultId, request: Request) {
        self.fsms.insert(rid, Phase::Computing { request, call_idx: 0, acc: Vec::new() });
        self.send_current_exec(ctx, rid);
    }

    fn send_current_exec(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Computing { request, call_idx, .. }) = self.fsms.get(&rid) else {
            return;
        };
        let calls = &request.script.calls;
        if *call_idx >= calls.len() {
            // Empty script (or exhausted): finish compute with what we have.
            self.finish_compute(ctx, rid);
            return;
        }
        let call = calls[*call_idx].clone();
        ctx.send(call.db, Payload::Db(DbMsg::Exec { rid, ops: call.ops, xa: true }));
    }

    fn on_exec_reply(&mut self, ctx: &mut dyn Context, rid: ResultId, status: ExecStatus) {
        let Some(Phase::Computing { request, call_idx, acc }) = self.fsms.get_mut(&rid) else {
            return;
        };
        match status {
            ExecStatus::Done(outputs) => {
                let call = &request.script.calls[*call_idx];
                crate::resultbuild::accumulate(call, &outputs, acc);
                *call_idx += 1;
                if *call_idx < request.script.calls.len() {
                    self.send_current_exec(ctx, rid);
                } else {
                    self.finish_compute(ctx, rid);
                }
            }
            ExecStatus::Conflict => {
                acc.push(("conflict".to_string(), 1));
                self.finish_compute(ctx, rid);
            }
        }
    }

    /// `compute()` returned (Figure 5 line 8): build the (non-nil) result
    /// and move to the voting phase.
    fn finish_compute(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Computing { request, acc, .. }) = self.fsms.get(&rid) else { return };
        let result = crate::resultbuild::finish(acc.clone(), rid.attempt);
        let involved = request.script.databases();
        ctx.trace(TraceKind::Computed { rid });
        if involved.is_empty() {
            // Nothing to vote on: vacuously all-yes (degenerate scripts).
            let decision = Decision { result: Some(result), outcome: Outcome::Commit };
            self.submit_outcome(ctx, rid, decision, Vec::new());
            return;
        }
        self.fsms.insert(
            rid,
            Phase::Preparing { result, involved: involved.clone(), votes: HashMap::new() },
        );
        let cross = involved.len() > 1;
        for db in involved {
            ctx.send(db, Payload::Db(DbMsg::Prepare { rid, cross }));
        }
    }

    fn on_vote(&mut self, ctx: &mut dyn Context, from: NodeId, rid: ResultId, vote: Vote) {
        if let Some(Phase::Preparing { votes, involved, .. }) = self.fsms.get_mut(&rid) {
            if involved.contains(&from) {
                votes.insert(from, vote);
            }
        }
        self.check_votes(ctx, rid);
    }

    fn check_votes(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Preparing { result, involved, votes }) = self.fsms.get(&rid) else {
            return;
        };
        if votes.len() < involved.len() {
            return;
        }
        // Figure 4 prepare() line 5: commit iff every database voted yes.
        let outcome = if involved.iter().all(|d| votes.get(d) == Some(&Vote::Yes)) {
            Outcome::Commit
        } else {
            Outcome::Abort
        };
        let decision = Decision { result: Some(result.clone()), outcome };
        let targets = involved.clone();
        self.submit_outcome(ctx, rid, decision, targets);
    }

    /// Figure 5 line 10 / Figure 6 line 7: record the attempt's outcome for
    /// sequencing. The outcome enters the pipeline queue and is decided by
    /// the slot batch it flushes into (the paper's `regD[j].write`,
    /// amortised); if the log already holds a decision for this attempt
    /// (another initiator's slot applied first), termination starts
    /// immediately with that decision — the write-once return value.
    fn submit_outcome(
        &mut self,
        ctx: &mut dyn Context,
        rid: ResultId,
        decision: Decision,
        targets: Vec<NodeId>,
    ) {
        self.initiators.insert(rid);
        self.terminate_targets.insert(rid, targets);
        self.regd_started.insert(rid, ctx.now());
        if matches!(
            self.fsms.get(&rid),
            Some(Phase::Preparing { .. }) | Some(Phase::Computing { .. })
        ) {
            self.fsms.insert(rid, Phase::WritingRegD);
        }
        if let Some(final_decision) = self.log.decision_of(rid).cloned() {
            self.outcome_final(ctx, rid, final_decision);
            return;
        }
        if !self.batch_queue.iter().any(|(r, _)| *r == rid) {
            self.batch_queue.push((rid, decision));
        }
        // The queue flushes at the end of this event (size / idle policy)
        // or when the window timer fires — see `maybe_flush`.
    }

    // ---- the pipeline queue ------------------------------------------------

    /// Flush policy, evaluated once per handled event: flush when the queue
    /// hit the size threshold, when batching is off, or when no other
    /// attempt is mid-flight (nothing further could join the batch soon);
    /// otherwise arm the window timer as the latency backstop.
    fn maybe_flush(&mut self, ctx: &mut dyn Context) {
        if self.batch_queue.is_empty() {
            return;
        }
        let batching = self.cfg.features.batching;
        // Size and window checks are O(1); the idle check walks every
        // in-flight FSM, so it runs only when the cheap rules don't already
        // force a flush (they always do in the per-request configuration).
        let idle = || {
            !self.fsms.values().any(|p| {
                matches!(
                    p,
                    Phase::WritingRegA { .. } | Phase::Computing { .. } | Phase::Preparing { .. }
                )
            })
        };
        if self.batch_queue.len() >= batching.max_batch.max(1)
            || batching.window == Dur::ZERO
            || idle()
        {
            self.flush_batch(ctx);
        } else if self.batch_timer.is_none() {
            self.batch_timer = Some(ctx.set_timer(batching.window, TimerTag::BatchFlush));
        }
    }

    /// Proposes the queued outcomes as one decision-log slot.
    fn flush_batch(&mut self, ctx: &mut dyn Context) {
        if let Some(t) = self.batch_timer.take() {
            ctx.cancel_timer(t);
        }
        if self.batch_queue.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.batch_queue);
        let sus_vec = self.suspicion_snapshot();
        let sus = move |n: NodeId| sus_vec.contains(&n);
        let applied = self.log.propose(ctx, &mut self.regs, entries, &sus);
        // Speculation stage: ship the proposals to the shard primaries in
        // the same event that started their consensus rounds, so the
        // batches execute while the rounds run.
        self.ship_speculation(ctx);
        self.note_window(ctx);
        self.apply_slots(ctx, applied);
    }

    /// Ships every not-yet-shipped in-flight slot proposal to the shard
    /// primaries as `SpecExec` frames (at most once per slot): the
    /// primaries stack the batches as per-slot speculative buffers while
    /// the slots' consensus rounds run, and promote the buffered work
    /// slot by slot as decides land in order. Under a pipelined window
    /// several proposals may be in flight at once — all of them ship, not
    /// just the head. A proposal that resolved synchronously leaves
    /// nothing in flight — and nothing worth overlapping with.
    fn ship_speculation(&mut self, ctx: &mut dyn Context) {
        if !self.cfg.features.speculation.enabled {
            return;
        }
        let proposals = self.log.inflight_proposals();
        // Decided slots left the window; forget them so the set stays
        // bounded by the window depth.
        let live: BTreeSet<u64> = proposals.iter().map(|(slot, _)| *slot).collect();
        self.spec_shipped.retain(|slot| live.contains(slot));
        for (slot, batch) in proposals {
            if !self.spec_shipped.insert(slot) {
                continue;
            }
            // Split the proposal per database exactly as termination will
            // if the slot decides as proposed: same targets, same slot
            // order. Singleton splits are skipped — they would terminate
            // as bare `Decide` messages, which never consult the
            // speculation stash.
            let mut per_db: BTreeMap<NodeId, Vec<(ResultId, Outcome)>> = BTreeMap::new();
            for (rid, decision) in batch.iter() {
                let targets = self
                    .terminate_targets
                    .get(rid)
                    .cloned()
                    .unwrap_or_else(|| self.topo.db_servers.clone());
                for db in targets {
                    per_db.entry(db).or_default().push((*rid, decision.outcome));
                }
            }
            for (db, entries) in per_db {
                if entries.len() < 2 {
                    continue;
                }
                ctx.send(db, Payload::Db(DbMsg::SpecExec { slot, entries }));
            }
        }
    }

    /// Traces a new high-water mark of concurrently undecided slots. Only
    /// depths ≥ 2 are traced (and each new peak once), so a depth-1
    /// pipeline emits nothing — the PR 6/7/8 traces stay byte-identical —
    /// while pipelined runs leave a marker of genuine cross-slot overlap
    /// for tests and chaos runners to key on.
    fn note_window(&mut self, ctx: &mut dyn Context) {
        let open = self.log.inflight_len() as u32;
        if open >= 2 && open > self.window_peak {
            self.window_peak = open;
            ctx.trace(TraceKind::PipelineWindow { open });
        }
    }

    /// Processes decided, in-order slots: every first-occurrence outcome is
    /// final. Outcomes this server initiated terminate now — grouped, so
    /// one slot becomes one `DecideBatch` per involved database.
    fn apply_slots(&mut self, ctx: &mut dyn Context, applied: Vec<AppliedSlot>) {
        for slot in applied {
            ctx.trace(TraceKind::BatchDecided { slot: slot.slot, len: slot.entries.len() as u32 });
            let group: Vec<_> = slot
                .entries
                .into_iter()
                .filter_map(|(rid, decision)| self.claim_initiated(ctx, rid, decision))
                .collect();
            self.start_terminate_group(ctx, Some(slot.slot), group);
        }
    }

    /// An attempt whose decision was already final when this server became
    /// an initiator (the wo-register "write returns the earlier value").
    fn outcome_final(&mut self, ctx: &mut dyn Context, rid: ResultId, decision: Decision) {
        if let Some(item) = self.claim_initiated(ctx, rid, decision) {
            self.start_terminate_group(ctx, None, vec![item]);
        }
    }

    /// Resolves a finalised outcome into a termination work item if this
    /// server initiated it: consumes the initiator claim, closes the
    /// log-outcome span and takes the termination targets. `None` when some
    /// other server (or an earlier slot) already owns termination here.
    fn claim_initiated(
        &mut self,
        ctx: &mut dyn Context,
        rid: ResultId,
        decision: Decision,
    ) -> Option<(ResultId, Decision, Vec<NodeId>)> {
        if !self.initiators.remove(&rid) {
            return None;
        }
        if let Some(t0) = self.regd_started.remove(&rid) {
            ctx.trace(TraceKind::Span {
                rid,
                comp: Component::LogOutcome,
                dur: ctx.now().since(t0),
            });
        }
        let targets =
            self.terminate_targets.remove(&rid).unwrap_or_else(|| self.topo.db_servers.clone());
        Some((rid, decision, targets))
    }

    // ---- register decisions ------------------------------------------------

    fn on_decided(&mut self, ctx: &mut dyn Context, reg: RegId, value: RegValue) {
        let rid = reg.rid;
        match (reg.kind, value) {
            (etx_base::ids::RegKind::Owner, RegValue::Server(winner)) => {
                let phase = self.fsms.get(&rid);
                if let Some(Phase::WritingRegA { request, .. }) = phase {
                    let request = request.clone();
                    if winner == self.me {
                        if let Some(t0) = self.rega_started.remove(&rid) {
                            ctx.trace(TraceKind::Span {
                                rid,
                                comp: Component::LogStart,
                                dur: ctx.now().since(t0),
                            });
                        }
                        self.start_compute(ctx, rid, request);
                    } else {
                        self.fsms.insert(rid, Phase::Watching);
                    }
                }
            }
            // Decision-log slots are routed to the log before this point;
            // per-attempt `regD` registers no longer exist.
            _ => debug_assert!(false, "register kind/value mismatch for {reg}"),
        }
    }

    // ---- terminate() (Figure 4) --------------------------------------------

    /// Starts termination for a group of finalised attempts, coalescing
    /// their `[Decide]` pushes into one `DecideBatch` per database (a lone
    /// attempt keeps the paper's per-branch `Decide` message). Retries stay
    /// per-attempt — retransmission is the rare path.
    fn start_terminate_group(
        &mut self,
        ctx: &mut dyn Context,
        slot: Option<u64>,
        items: Vec<(ResultId, Decision, Vec<NodeId>)>,
    ) {
        let mut per_db: BTreeMap<NodeId, Vec<(ResultId, Outcome)>> = BTreeMap::new();
        for (rid, decision, targets) in items {
            if matches!(
                self.fsms.get(&rid),
                Some(Phase::Done { .. }) | Some(Phase::Terminating { .. })
            ) {
                continue; // already terminating/terminated here
            }
            let outcome = decision.outcome;
            self.fsms.insert(
                rid,
                Phase::Terminating { decision, targets: targets.clone(), acked: HashSet::new() },
            );
            if targets.is_empty() {
                self.complete_terminate(ctx, rid);
                continue;
            }
            for db in targets {
                per_db.entry(db).or_default().push((rid, outcome));
            }
            ctx.set_timer(self.cfg.terminate_retry, TimerTag::TerminateRetry { rid });
        }
        for (db, entries) in per_db {
            let payload = match entries.as_slice() {
                [(rid, outcome)] => Payload::Db(DbMsg::Decide { rid: *rid, outcome: *outcome }),
                _ => {
                    // Multi-entry groups only come from applied slots: a
                    // finalised singleton (`outcome_final`) never coalesces.
                    let slot = slot.expect("multi-entry terminate groups come from applied slots");
                    Payload::Db(DbMsg::DecideBatch { slot, entries })
                }
            };
            ctx.send(db, payload);
        }
    }

    fn on_ack_decide(&mut self, ctx: &mut dyn Context, from: NodeId, rid: ResultId) {
        if let Some(Phase::Terminating { targets, acked, .. }) = self.fsms.get_mut(&rid) {
            if targets.contains(&from) {
                acked.insert(from);
                if acked.len() == targets.len() {
                    self.complete_terminate(ctx, rid);
                }
            }
        }
    }

    fn complete_terminate(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        let Some(Phase::Terminating { decision, targets, .. }) = self.fsms.get(&rid) else {
            return;
        };
        let (decision, targets) = (decision.clone(), targets.clone());
        // Stamp the result with the positions this server observed for the
        // decision's shards — for a commit, those acks included the write
        // itself, so the client's causality token now covers it.
        let stamps = self.stamps_for(&targets);
        if decision.outcome == Outcome::Commit {
            self.committed_cache.insert(rid.request, (rid, decision.clone()));
        }
        self.fsms.insert(rid, Phase::Done { decision: decision.clone() });
        // Figure 4 terminate() line 7: reply to the client (charging the
        // "end" dispatch cost).
        let dur = jittered(ctx, self.cost.end, self.cost.jitter);
        ctx.trace(TraceKind::Span { rid, comp: Component::End, dur });
        ctx.send_after(
            dur,
            rid.request.client,
            Payload::App(AppMsg::Result { rid, decision, stamps }),
        );
    }

    fn on_terminate_retry(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        if let Some(Phase::Terminating { decision, targets, acked }) = self.fsms.get(&rid) {
            let outcome = decision.outcome;
            let missing: Vec<NodeId> =
                targets.iter().copied().filter(|d| !acked.contains(d)).collect();
            for db in missing {
                ctx.send(db, Payload::Db(DbMsg::Decide { rid, outcome }));
            }
            ctx.set_timer(self.cfg.terminate_retry, TimerTag::TerminateRetry { rid });
        }
    }

    // ---- Ready (database crash-recovery notifications) ---------------------

    fn on_ready(&mut self, ctx: &mut dyn Context, db: NodeId) {
        let rids: Vec<ResultId> = self.fsms.keys().copied().collect();
        for rid in rids {
            match self.fsms.get_mut(&rid) {
                Some(Phase::Computing { request, call_idx, .. }) => {
                    // If we were waiting on this database's Exec reply, the
                    // branch is gone; finish with a recovery notice — the
                    // vote phase will abort the attempt.
                    let waiting_on = request.script.calls.get(*call_idx).map(|c| c.db) == Some(db);
                    if waiting_on {
                        if let Some(Phase::Computing { acc, .. }) = self.fsms.get_mut(&rid) {
                            acc.push(("db_recovered".to_string(), 1));
                        }
                        self.finish_compute(ctx, rid);
                    }
                }
                Some(Phase::Preparing { votes, involved, .. })
                    // Figure 4 prepare() line 4: Ready counts as a reply —
                    // and an unprepared branch did not survive, so: no.
                    if involved.contains(&db) && !votes.contains_key(&db) => {
                        votes.insert(db, Vote::No);
                        self.check_votes(ctx, rid);
                    }
                Some(Phase::Terminating { decision, targets, acked })
                    // Figure 4 terminate() lines 4–5: a Ready re-triggers the
                    // Decide push to the recovered server.
                    if targets.contains(&db) && !acked.contains(&db) => {
                        let outcome = decision.outcome;
                        ctx.send(db, Payload::Db(DbMsg::Decide { rid, outcome }));
                    }
                _ => {}
            }
        }
    }

    // ---- cleaning thread (Figure 6) -----------------------------------------

    fn run_cleaner(&mut self, ctx: &mut dyn Context) {
        let suspected = self.suspicion_snapshot();
        if suspected.is_empty() {
            return;
        }
        for reg in self.regs.known() {
            if reg.kind != etx_base::ids::RegKind::Owner {
                continue;
            }
            let rid = reg.rid;
            if self.cleaned.contains(&rid) {
                continue;
            }
            match self.regs.read(reg).and_then(RegValue::as_server) {
                Some(owner) if suspected.contains(&owner) => {
                    if matches!(self.fsms.get(&rid), Some(Phase::Done { .. })) {
                        self.cleaned.insert(rid);
                        continue;
                    }
                    self.cleaned.insert(rid);
                    ctx.trace(TraceKind::CleanerTakeover { rid, owner });
                    // Figure 6 line 7: regD[j].write(nil, abort), now an
                    // entry proposed into the decision log; first occurrence
                    // in slot order arbitrates, so if the owner's decision
                    // got there first the cleaner terminates with it.
                    let targets = self.topo.db_servers.clone();
                    self.submit_outcome(ctx, rid, Decision::nil_abort(), targets);
                }
                None => {
                    // ⊥: keep reading (pull) until the register resolves.
                    self.regs.pull(ctx, reg);
                }
                Some(_) => {}
            }
        }
    }
}

impl Process for AppServer {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        if matches!(event, Event::Init) {
            self.fd.on_init(ctx);
            self.regs.on_init(ctx);
            ctx.set_timer(self.cfg.cleaner_interval, TimerTag::CleanerTick);
        }
        // 1. Failure detection first: everything downstream may consult it.
        let transitions = self.fd.handle(ctx, &event);
        let sus_vec = self.suspicion_snapshot();
        let newly_suspected =
            transitions.iter().any(|t| matches!(t, etx_fd::FdTransition::Suspect(_)));
        // 2. Registers: consensus traffic, round patience, resync. Slot
        //    decisions feed the decision log (which applies them in order);
        //    owner-register decisions feed the per-attempt machinery.
        let wo_events = {
            let sus = |n: NodeId| sus_vec.contains(&n);
            if !transitions.is_empty() {
                self.regs.on_suspicion_change(ctx, &sus);
            }
            self.regs.handle(ctx, &event, &sus)
        };
        for ev in wo_events {
            let WoEvent::Decided { reg, value } = ev;
            match reg.slot_index() {
                Some(slot) => {
                    let applied = {
                        let sus = |n: NodeId| sus_vec.contains(&n);
                        self.log.on_slot_decided(ctx, &mut self.regs, slot, &value, &sus)
                    };
                    // A decided slot lets the log pump the next pending
                    // batch into a fresh proposal — overlap that one too.
                    self.ship_speculation(ctx);
                    self.note_window(ctx);
                    self.apply_slots(ctx, applied);
                }
                None => self.on_decided(ctx, reg, value),
            }
        }
        // 3. A fresh suspicion triggers an immediate cleaning pass
        //    (Figure 6's loop reacts to suspect() turning true).
        if newly_suspected {
            self.run_cleaner(ctx);
        }
        // 4. Protocol messages and timers.
        match event {
            Event::Message {
                payload: Payload::Client(ClientMsg::Request { request, attempt, ack_below, stamps }),
                ..
            } => {
                self.on_request(ctx, request, attempt, ack_below, stamps);
            }
            Event::Message { from, payload: Payload::DbReply(reply) } => match reply {
                DbReplyMsg::ExecReply { rid, status } => self.on_exec_reply(ctx, rid, status),
                DbReplyMsg::Vote { rid, vote } => self.on_vote(ctx, from, rid, vote),
                DbReplyMsg::AckDecide { rid, seq, lease, .. } => {
                    self.observe_shard_seq(from, seq);
                    self.observe_shard_lease(from, lease);
                    self.on_ack_decide(ctx, from, rid);
                }
                DbReplyMsg::AckDecideBatch { entries, seq, lease } => {
                    self.observe_shard_seq(from, seq);
                    self.observe_shard_lease(from, lease);
                    for (rid, _) in entries {
                        self.on_ack_decide(ctx, from, rid);
                    }
                }
                DbReplyMsg::ReadReply {
                    rid,
                    call,
                    round,
                    outputs,
                    pos,
                    indoubt,
                    leased,
                    lease,
                } => {
                    self.on_read_reply(
                        ctx, from, rid, call, round, outputs, pos, indoubt, leased, lease,
                    );
                }
                DbReplyMsg::Ready => self.on_ready(ctx, from),
                DbReplyMsg::AckCommitOnePhase { .. } => { /* baseline-only message */ }
            },
            // A shard primary's bare lease grant (startup establishment or
            // the renewal heartbeat): fold the advert into the routing
            // table so collects spread at in-lease followers even on
            // workloads whose decide traffic would never piggyback one.
            Event::Message {
                from,
                payload: Payload::Repl(ReplMsg::LeaseRenew { through, floor: _ }),
            } => {
                self.observe_shard_lease(from, Some(through));
            }
            Event::Timer { tag, .. } => match tag {
                TimerTag::Dispatch { rid, stage: 0 } => self.dispatch_rega(ctx, rid),
                TimerTag::Dispatch { rid, stage: 1 } => self.dispatch_reads(ctx, rid),
                TimerTag::ReadRetry { rid } => self.on_read_retry(ctx, rid),
                TimerTag::TerminateRetry { rid } => self.on_terminate_retry(ctx, rid),
                TimerTag::BatchFlush => {
                    self.batch_timer = None;
                    self.flush_batch(ctx);
                }
                TimerTag::CleanerTick => {
                    self.run_cleaner(ctx);
                    ctx.set_timer(self.cfg.cleaner_interval, TimerTag::CleanerTick);
                }
                TimerTag::ConsensusResync => {
                    // The engine already re-armed itself; piggyback the
                    // decision log's gap pulls on the same cadence.
                    self.log.request_gaps(ctx, &mut self.regs);
                }
                _ => {}
            },
            _ => {}
        }
        // 5. Pipeline flush policy — once per event, after everything that
        //    could have queued an outcome or changed in-flight state.
        self.maybe_flush(ctx);
    }

    fn name(&self) -> &'static str {
        "appserver"
    }
}
