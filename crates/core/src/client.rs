//! The client protocol (Figure 2): `issue()` as a state machine.
//!
//! The client submits attempt `j` of its request to the default primary
//! `a1`, arms the back-off period, and — if no result arrives in time —
//! broadcasts the request to *all* application servers (Figure 2 lines 5–6),
//! then keeps re-broadcasting until it receives the attempt's result
//! (§4: "the client keeps retransmitting the request ... until it receives
//! back a committed result"; duplicates are absorbed by the servers'
//! idempotence). A commit result is **delivered** (`issue()` returns); an
//! abort result moves the client to attempt `j + 1`.
//!
//! The client is diskless and stateless across requests, as the three-tier
//! model demands — no stable storage is ever touched here.

use etx_base::config::ProtocolConfig;
use etx_base::ids::{NodeId, ResultId, TimerId};
use etx_base::msg::{AppMsg, ClientMsg, Payload};
use etx_base::runtime::{Context, Event, Process, TimerTag};
use etx_base::trace::TraceKind;
use etx_base::value::{Decision, Outcome, Request};

/// What the client is currently doing.
#[derive(Debug)]
enum ClientState {
    /// Nothing in flight.
    Idle,
    /// Waiting for the result of `rid`.
    Waiting {
        request: Request,
        rid: ResultId,
        backoff: Option<TimerId>,
        rebroadcast: Option<TimerId>,
        /// Adaptive-routing extension: the server that answered us last.
        preferred: Option<NodeId>,
    },
}

/// The e-Transaction client: issues each request in `plan` sequentially and
/// records deliveries. `issue()` never raises an exception — that is the
/// abstraction's contract.
pub struct EtxClient {
    alist: Vec<NodeId>,
    cfg: ProtocolConfig,
    plan: Vec<Request>,
    next: usize,
    state: ClientState,
    delivered: Vec<(ResultId, Decision)>,
    /// Adaptive-routing extension: last server that answered us (kept
    /// across requests; only consulted when the config flag is on).
    last_responder: Option<NodeId>,
}

impl std::fmt::Debug for EtxClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EtxClient")
            .field("next", &self.next)
            .field("delivered", &self.delivered.len())
            .finish()
    }
}

impl EtxClient {
    /// A client that will issue `plan` one request at a time against the
    /// application servers in `alist` (index 0 = default primary).
    pub fn new(alist: Vec<NodeId>, cfg: ProtocolConfig, plan: Vec<Request>) -> Self {
        EtxClient {
            alist,
            cfg,
            plan,
            next: 0,
            state: ClientState::Idle,
            delivered: Vec::new(),
            last_responder: None,
        }
    }

    /// Results delivered so far (for assertions via the process handle).
    pub fn delivered(&self) -> &[(ResultId, Decision)] {
        &self.delivered
    }

    fn issue_next(&mut self, ctx: &mut dyn Context) {
        if self.next >= self.plan.len() {
            self.state = ClientState::Idle;
            return;
        }
        let request = self.plan[self.next].clone();
        self.next += 1;
        ctx.trace(TraceKind::Issue { request: request.id });
        let rid = ResultId::first(request.id);
        let pref = self.last_responder;
        self.start_attempt(ctx, request, rid, pref);
    }

    fn start_attempt(
        &mut self,
        ctx: &mut dyn Context,
        request: Request,
        rid: ResultId,
        preferred: Option<NodeId>,
    ) {
        // Figure 2 line 2: send to the default primary first (or, with the
        // adaptive-routing extension enabled, to whoever answered us last).
        let first = match (self.cfg.route_to_last_responder, preferred) {
            (true, Some(p)) => p,
            _ => self.alist[0],
        };
        ctx.send(
            first,
            Payload::Client(ClientMsg::Request { request: request.clone(), attempt: rid.attempt }),
        );
        let backoff = ctx.set_timer(self.cfg.client_backoff, TimerTag::ClientBackoff { rid });
        self.state = ClientState::Waiting {
            request,
            rid,
            backoff: Some(backoff),
            rebroadcast: None,
            preferred,
        };
    }

    fn broadcast(&mut self, ctx: &mut dyn Context) {
        if let ClientState::Waiting { request, rid, rebroadcast, .. } = &mut self.state {
            let msg = Payload::Client(ClientMsg::Request {
                request: request.clone(),
                attempt: rid.attempt,
            });
            for a in self.alist.clone() {
                ctx.send(a, msg.clone());
            }
            let t = ctx
                .set_timer(self.cfg.client_rebroadcast, TimerTag::ClientRebroadcast { rid: *rid });
            *rebroadcast = Some(t);
        }
    }

    fn on_result(&mut self, ctx: &mut dyn Context, rid: ResultId, decision: Decision) {
        let (request, cur, backoff, rebroadcast, preferred) = match &self.state {
            ClientState::Waiting { request, rid, backoff, rebroadcast, preferred } => {
                (request.clone(), *rid, *backoff, *rebroadcast, *preferred)
            }
            ClientState::Idle => return, // late duplicate
        };
        if rid != cur {
            return; // stale attempt (an old abort arriving late)
        }
        if let Some(t) = backoff {
            ctx.cancel_timer(t);
        }
        if let Some(t) = rebroadcast {
            ctx.cancel_timer(t);
        }
        match decision.outcome {
            Outcome::Commit => {
                // Figure 2 lines 8–9: deliver and return.
                ctx.trace(TraceKind::Deliver { rid, outcome: Outcome::Commit, steps: ctx.depth() });
                self.delivered.push((rid, decision));
                self.issue_next(ctx);
            }
            Outcome::Abort => {
                // Figure 2 line 10: j := j + 1 and retry the same request.
                let _ = preferred;
                ctx.trace(TraceKind::ClientRetry { rid });
                let next_rid = cur.next_attempt();
                let pref = self.last_responder;
                self.start_attempt(ctx, request, next_rid, pref);
            }
        }
    }
}

impl Process for EtxClient {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init => self.issue_next(ctx),
            Event::Timer { id, tag: TimerTag::ClientBackoff { rid } } => {
                if let ClientState::Waiting { rid: cur, backoff, .. } = &mut self.state {
                    if *cur == rid && *backoff == Some(id) {
                        *backoff = None;
                        // Figure 2 lines 5–6: patience exhausted; go wide.
                        self.broadcast(ctx);
                    }
                }
            }
            Event::Timer { id, tag: TimerTag::ClientRebroadcast { rid } } => {
                if let ClientState::Waiting { rid: cur, rebroadcast, .. } = &mut self.state {
                    if *cur == rid && *rebroadcast == Some(id) {
                        self.broadcast(ctx);
                    }
                }
            }
            Event::Message { from, payload: Payload::App(AppMsg::Result { rid, decision }) } => {
                self.last_responder = Some(from);
                if let ClientState::Waiting { preferred, .. } = &mut self.state {
                    *preferred = Some(from);
                }
                self.on_result(ctx, rid, decision);
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "etx-client"
    }
}
