//! The client protocol (Figure 2): `issue()` as a state machine.
//!
//! The client submits attempt `j` of its request to the default primary
//! `a1`, arms the back-off period, and — if no result arrives in time —
//! broadcasts the request to *all* application servers (Figure 2 lines 5–6),
//! then keeps re-broadcasting until it receives the attempt's result
//! (§4: "the client keeps retransmitting the request ... until it receives
//! back a committed result"; duplicates are absorbed by the servers'
//! idempotence). A commit result is **delivered** (`issue()` returns); an
//! abort result moves the client to attempt `j + 1`.
//!
//! Attempt bookkeeping (current attempt id, timer validity, stale-result
//! filtering, the `Issue` trace) lives in the shared
//! [`etx_base::retry`] driver, so this client and the baseline clients
//! measure identically; only the policy here — back-off, broadcast,
//! transparent retry — is e-Transaction-specific.
//!
//! Two issue disciplines share the machinery:
//!
//! * **sequential** (the paper's Figure 2): one request in flight, the
//!   next issued when the previous delivers;
//! * **open-loop**: the whole plan is issued up front and every request
//!   runs its own attempt chain concurrently — the high-concurrency load
//!   shape that feeds the application server's commit pipeline.
//!
//! The client is diskless and stateless across requests, as the three-tier
//! model demands — no stable storage is ever touched here.

use etx_base::config::ProtocolConfig;
use etx_base::ids::{NodeId, RequestId, ResultId};
use etx_base::msg::{AppMsg, Payload};
use etx_base::retry::{AttemptDriver, IssuePlan, RetryTimer};
use etx_base::runtime::{Context, Event, Process, TimerTag};
use etx_base::time::Dur;
use etx_base::trace::TraceKind;
use etx_base::value::{Decision, Outcome, Request};
use std::collections::BTreeMap;

/// How the client walks its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueMode {
    /// One request in flight at a time (Figure 2's `issue()` loop).
    Sequential,
    /// Every request issued immediately; attempts run concurrently.
    OpenLoop,
}

/// The e-Transaction client: issues each request in its plan and records
/// deliveries. `issue()` never raises an exception — that is the
/// abstraction's contract.
pub struct EtxClient {
    alist: Vec<NodeId>,
    cfg: ProtocolConfig,
    mode: IssueMode,
    plan: IssuePlan,
    inflight: BTreeMap<RequestId, AttemptDriver>,
    delivered: Vec<(ResultId, Decision)>,
    /// Adaptive-routing extension: last server that answered us (kept
    /// across requests; only consulted when the config flag is on).
    last_responder: Option<NodeId>,
    /// Causality token: per shard primary, the highest commit-ship
    /// position any delivered result has carried. Sent with every request
    /// so whichever server handles it stamps this client's reads at least
    /// this fresh — read-your-writes and per-client monotonic reads hold
    /// even when retries land on a server that observed nothing.
    stamps: BTreeMap<NodeId, u64>,
}

impl std::fmt::Debug for EtxClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EtxClient")
            .field("mode", &self.mode)
            .field("inflight", &self.inflight.len())
            .field("delivered", &self.delivered.len())
            .finish()
    }
}

impl EtxClient {
    /// A sequential client issuing `plan` one request at a time against the
    /// application servers in `alist` (index 0 = default primary).
    pub fn new(alist: Vec<NodeId>, cfg: ProtocolConfig, plan: Vec<Request>) -> Self {
        Self::with_mode(alist, cfg, plan, IssueMode::Sequential)
    }

    /// An open-loop client: the whole plan is issued at start and every
    /// request retries independently until it commits.
    pub fn open_loop(alist: Vec<NodeId>, cfg: ProtocolConfig, plan: Vec<Request>) -> Self {
        Self::with_mode(alist, cfg, plan, IssueMode::OpenLoop)
    }

    /// A client with an explicit issue discipline.
    pub fn with_mode(
        alist: Vec<NodeId>,
        cfg: ProtocolConfig,
        plan: Vec<Request>,
        mode: IssueMode,
    ) -> Self {
        EtxClient {
            alist,
            cfg,
            mode,
            plan: IssuePlan::new(plan),
            inflight: BTreeMap::new(),
            delivered: Vec::new(),
            last_responder: None,
            stamps: BTreeMap::new(),
        }
    }

    /// Results delivered so far (for assertions via the process handle).
    pub fn delivered(&self) -> &[(ResultId, Decision)] {
        &self.delivered
    }

    /// GC watermark sent with every request: the lowest sequence number
    /// this client may still retransmit. With nothing in flight, everything
    /// below the next unissued request is settled.
    fn ack_below(&self) -> u64 {
        self.inflight.keys().next().map_or(self.plan.next_seq(), |req| req.seq)
    }

    fn issue_next(&mut self, ctx: &mut dyn Context) {
        if let Some(request) = self.plan.issue_next(ctx) {
            let id = request.id;
            self.inflight.insert(id, AttemptDriver::new(request));
            self.start_attempt(ctx, id);
        }
    }

    /// The causality token as it rides on the wire.
    fn stamp_vec(&self) -> Vec<(NodeId, u64)> {
        self.stamps.iter().map(|(&db, &seq)| (db, seq)).collect()
    }

    /// Max-folds the stamps a result carried into the causality token.
    fn fold_stamps(&mut self, stamps: Vec<(NodeId, u64)>) {
        for (db, seq) in stamps {
            let slot = self.stamps.entry(db).or_insert(0);
            if *slot < seq {
                *slot = seq;
            }
        }
    }

    fn start_attempt(&mut self, ctx: &mut dyn Context, id: RequestId) {
        let ack_below = self.ack_below();
        // Figure 2 line 2: send to the default primary first (or, with the
        // adaptive-routing extension enabled, to whoever answered us last).
        let first = match (self.cfg.route_to_last_responder, self.last_responder) {
            (true, Some(p)) => p,
            _ => self.alist[0],
        };
        let backoff = self.cfg.client_backoff;
        let stamps = self.stamp_vec();
        let Some(flight) = self.inflight.get_mut(&id) else { return };
        flight.send_to(ctx, first, ack_below, &stamps);
        let rid = flight.rid();
        flight.arm(ctx, RetryTimer::Primary, backoff, TimerTag::ClientBackoff { rid });
    }

    fn broadcast(&mut self, ctx: &mut dyn Context, id: RequestId) {
        let ack_below = self.ack_below();
        let alist = self.alist.clone();
        let base = self.cfg.client_rebroadcast;
        let max = self.cfg.client_rebroadcast_max;
        let stamps = self.stamp_vec();
        let Some(flight) = self.inflight.get_mut(&id) else { return };
        flight.broadcast(ctx, &alist, ack_below, &stamps);
        let rid = flight.rid();
        // Bounded back-off: the gap doubles per re-broadcast of this
        // attempt, capped at the ceiling (equal base and ceiling — the
        // default — is the paper's flat retransmission cadence). The
        // counter resets with the attempt, so an answered retry starts
        // over at the base.
        let n = flight.note_rebroadcast();
        let gap = Dur(base.0.checked_shl(n.min(16)).unwrap_or(u64::MAX).min(max.0));
        flight.arm(ctx, RetryTimer::Secondary, gap, TimerTag::ClientRebroadcast { rid });
    }

    fn on_result(&mut self, ctx: &mut dyn Context, rid: ResultId, decision: Decision) {
        let id = rid.request;
        let Some(flight) = self.inflight.get_mut(&id) else {
            return; // late duplicate of a settled request
        };
        if !flight.matches(rid) {
            return; // stale attempt (an old abort arriving late)
        }
        flight.cancel_all(ctx);
        match decision.outcome {
            Outcome::Commit => {
                // Figure 2 lines 8–9: deliver and return.
                ctx.trace(TraceKind::Deliver { rid, outcome: Outcome::Commit, steps: ctx.depth() });
                self.delivered.push((rid, decision));
                self.inflight.remove(&id);
                if self.mode == IssueMode::Sequential {
                    self.issue_next(ctx);
                }
            }
            Outcome::Abort => {
                // Figure 2 line 10: j := j + 1 and retry the same request.
                ctx.trace(TraceKind::ClientRetry { rid });
                flight.next_attempt(ctx);
                self.start_attempt(ctx, id);
            }
        }
    }
}

impl Process for EtxClient {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init => match self.mode {
                IssueMode::Sequential => self.issue_next(ctx),
                IssueMode::OpenLoop => {
                    while !self.plan.exhausted() {
                        self.issue_next(ctx);
                    }
                }
            },
            Event::Timer { id, tag: TimerTag::ClientBackoff { rid } } => {
                let key = rid.request;
                let current = self
                    .inflight
                    .get(&key)
                    .is_some_and(|f| f.timer_is_current(RetryTimer::Primary, id, rid));
                if current {
                    if let Some(f) = self.inflight.get_mut(&key) {
                        f.clear(RetryTimer::Primary);
                    }
                    // Figure 2 lines 5–6: patience exhausted; go wide.
                    self.broadcast(ctx, key);
                }
            }
            Event::Timer { id, tag: TimerTag::ClientRebroadcast { rid } } => {
                let key = rid.request;
                let current = self
                    .inflight
                    .get(&key)
                    .is_some_and(|f| f.timer_is_current(RetryTimer::Secondary, id, rid));
                if current {
                    self.broadcast(ctx, key);
                }
            }
            Event::Message {
                from,
                payload: Payload::App(AppMsg::Result { rid, decision, stamps }),
            } => {
                self.last_responder = Some(from);
                self.fold_stamps(stamps);
                self.on_result(ctx, rid, decision);
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "etx-client"
    }

    fn as_any(&self) -> Option<&dyn core::any::Any> {
        Some(self)
    }
}
