//! The database-server process (Figure 3).
//!
//! A *pure server*: it never calls anyone, it only answers. It hosts an
//! [`etx_store::Engine`] (the XA resource manager) and implements the
//! paper's loop:
//!
//! * `[Prepare, j]` → `vote(j)` → `[Vote, j, vote]`;
//! * `[Decide, j, outcome]` → `terminate(j, outcome)` → `[AckDecide, j]`;
//! * on recovery, broadcast `[Ready]` to all application servers (Figure 3
//!   line 2) — the crash-notification scheme §5 describes.
//!
//! Service times are modelled here, where the work happens: SQL execution,
//! prepare and commit costs are drawn from the cost model (with jitter) and
//! charged by delaying the reply; each charge is recorded as a latency
//! [`Component`] span so the harness can rebuild Figure 8's rows.

use etx_base::config::CostModel;
use etx_base::ids::{NodeId, ResultId};
use etx_base::msg::{DbMsg, DbReplyMsg, Payload};
use etx_base::runtime::{jittered, Context, Event, Process};
use etx_base::time::Dur;
use etx_base::trace::{Component, TraceKind};
use etx_base::value::Outcome;
use etx_base::wal::LOG_WAL;
use etx_store::Engine;

/// The back-end tier process: an XA engine behind the paper's Figure 3 loop.
pub struct DbServer {
    alist: Vec<NodeId>,
    cost: CostModel,
    engine: Engine,
    seed_data: Vec<(String, i64)>,
}

impl std::fmt::Debug for DbServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbServer").field("alist", &self.alist).finish()
    }
}

impl DbServer {
    /// Creates a database server that will notify `alist` on recovery and
    /// start from `seed_data` (the workload's initial table contents).
    pub fn new(alist: Vec<NodeId>, cost: CostModel, seed_data: Vec<(String, i64)>) -> Self {
        let engine = Engine::with_data(seed_data.clone());
        DbServer { alist, cost, engine, seed_data }
    }

    fn apply_log_writes(&mut self, ctx: &mut dyn Context, writes: Vec<etx_store::LogWrite>) {
        for w in writes {
            // Forced-ness is folded into the prepare/commit service costs
            // (as in Oracle, where the paper's 19 ms prepare and 18 ms
            // commit rows *include* the database's own log forces), so the
            // append itself is charged as unforced here.
            ctx.log_append(LOG_WAL, w.rec, false);
        }
    }

    fn on_db_msg(&mut self, ctx: &mut dyn Context, from: NodeId, msg: DbMsg) {
        match msg {
            DbMsg::Exec { rid, ops, xa } => {
                let status = self.engine.execute(rid, &ops);
                let mut dur = jittered(ctx, self.cost.sql, self.cost.jitter);
                if xa {
                    dur += jittered(ctx, self.cost.sql_xa_overhead, self.cost.jitter);
                }
                ctx.trace(TraceKind::Span { rid, comp: Component::Sql, dur });
                ctx.send_after(dur, from, Payload::DbReply(DbReplyMsg::ExecReply { rid, status }));
            }
            DbMsg::Prepare { rid } => {
                let (vote, writes) = self.engine.vote(rid);
                self.apply_log_writes(ctx, writes);
                let dur = jittered(ctx, self.cost.db_prepare, self.cost.jitter);
                ctx.trace(TraceKind::DbVote { rid, vote });
                ctx.trace(TraceKind::Span { rid, comp: Component::Prepare, dur });
                ctx.send_after(dur, from, Payload::DbReply(DbReplyMsg::Vote { rid, vote }));
            }
            DbMsg::Decide { rid, outcome } => {
                let already = self.engine.decision(rid).is_some();
                let (applied, writes) = self.engine.decide(rid, outcome);
                self.apply_log_writes(ctx, writes);
                let dur = if already {
                    // Re-delivery: answered from the memo, no re-processing.
                    Dur::ZERO
                } else {
                    ctx.trace(TraceKind::DbDecide { rid, outcome: applied });
                    match applied {
                        Outcome::Commit => {
                            let d = jittered(ctx, self.cost.db_commit, self.cost.jitter);
                            ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: d });
                            d
                        }
                        Outcome::Abort => jittered(ctx, self.cost.db_abort, self.cost.jitter),
                    }
                };
                ctx.send_after(
                    dur,
                    from,
                    Payload::DbReply(DbReplyMsg::AckDecide { rid, outcome: applied }),
                );
            }
            DbMsg::CommitOnePhase { rid } => {
                let already = self.engine.decision(rid) == Some(Outcome::Commit);
                let (ok, writes) = self.engine.commit_one_phase(rid);
                self.apply_log_writes(ctx, writes);
                let dur = if ok && !already {
                    ctx.trace(TraceKind::DbDecide { rid, outcome: Outcome::Commit });
                    let d = jittered(ctx, self.cost.db_commit, self.cost.jitter);
                    ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: d });
                    d
                } else {
                    Dur::ZERO
                };
                ctx.send_after(
                    dur,
                    from,
                    Payload::DbReply(DbReplyMsg::AckCommitOnePhase { rid, ok }),
                );
            }
        }
    }

    /// Committed value of a key (test / harness assertions through the
    /// process, without reaching into the engine).
    pub fn committed(&self, key: &str) -> Option<i64> {
        self.engine.committed(key)
    }

    /// Whether a branch is in-doubt right now.
    pub fn is_prepared(&self, rid: ResultId) -> bool {
        self.engine.is_prepared(rid)
    }
}

impl Process for DbServer {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init => {
                // Fresh start: nothing to announce (Figure 3 takes
                // `recovery = false` here).
            }
            Event::Recovered => {
                // Rebuild from the WAL over the seed data, then tell the
                // application servers we are back (Figure 3 lines 1–2).
                let log = ctx.log_read(LOG_WAL);
                self.engine = Engine::recover_with_seed(self.seed_data.clone(), &log);
                for a in self.alist.clone() {
                    ctx.send(a, Payload::DbReply(DbReplyMsg::Ready));
                }
            }
            Event::Message { from, payload: Payload::Db(m) } => self.on_db_msg(ctx, from, m),
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "dbserver"
    }
}
