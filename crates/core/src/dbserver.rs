//! The database-server process (Figure 3).
//!
//! A *pure server*: it never calls anyone, it only answers. It hosts an
//! [`etx_store::Engine`] (the XA resource manager) and implements the
//! paper's loop:
//!
//! * `[Prepare, j]` → `vote(j)` → `[Vote, j, vote]`;
//! * `[Decide, j, outcome]` → `terminate(j, outcome)` → `[AckDecide, j]`;
//! * on recovery, broadcast `[Ready]` to all application servers (Figure 3
//!   line 2) — the crash-notification scheme §5 describes.
//!
//! Service times are modelled here, where the work happens: SQL execution,
//! prepare and commit costs are drawn from the cost model (with jitter) and
//! charged by delaying the reply; each charge is recorded as a latency
//! [`Component`] span so the harness can rebuild Figure 8's rows.
//!
//! Two kinds of work are charged differently. SQL execution runs on the
//! database's many connections, so concurrent `Exec`s overlap freely.
//! Prepare and commit/abort processing *include the database's own log
//! force* (the paper's 19 ms prepare and 18 ms commit rows), and a log
//! device is a **serial** resource: concurrent commitment work queues
//! behind a per-server busy horizon. That serialisation is precisely why
//! group commit pays — a `DecideBatch` claims the log once for its whole
//! batch, where the same outcomes arriving as N separate `Decide`s would
//! occupy it N times.

use etx_base::config::{CostModel, SpeculationConfig};
use etx_base::ids::{NodeId, ResultId};
use etx_base::msg::{DbMsg, DbReplyMsg, Payload, ReplMsg};
use etx_base::runtime::{jittered, Context, Event, Process, TimerTag};
use etx_base::time::{Dur, Time};
use etx_base::trace::{Component, TraceKind};
use etx_base::value::Outcome;
use etx_base::wal::{StableRecord, LOG_WAL};
use etx_store::Engine;
use std::collections::{HashMap, HashSet};

/// A database server's place in its shard replica group.
///
/// The **primary** executes and prepares the shard's XA branches and ships
/// every committed write set to its followers asynchronously — replication
/// stays off the transaction's critical path, mirroring the paper's core
/// move of replacing synchronous I/O with asynchronous replication. A
/// **follower** applies shipped commits in sequence order and catches up
/// via a snapshot pull after recovering from a crash.
#[derive(Debug, Clone, Default)]
pub struct ReplRole {
    /// Followers to ship committed write sets to (primary role).
    pub followers: Vec<NodeId>,
    /// The shard primary to pull snapshots from (follower role; `None`
    /// when this server is the primary or the group has size 1).
    pub sync_from: Option<NodeId>,
    /// How often a catching-up follower re-requests a snapshot until one
    /// arrives (covers a primary that is itself down).
    pub sync_retry: Dur,
}

/// The back-end tier process: an XA engine behind the paper's Figure 3 loop.
pub struct DbServer {
    alist: Vec<NodeId>,
    cost: CostModel,
    engine: Engine,
    seed_data: Vec<(String, i64)>,
    repl: ReplRole,
    /// Follower role: a snapshot pull is in flight (cleared by `SyncState`).
    awaiting_sync: bool,
    /// When the serial commitment path (prepare/commit processing, i.e. the
    /// log device) frees up. Volatile: a crash empties the queue with the
    /// rest of the in-flight work.
    log_busy_until: Time,
    /// When the serial snapshot-read lane (the replica's query executor)
    /// frees up. Separate from the log device: reads never force the log,
    /// and commitment work never waits behind reads. This per-replica lane
    /// is what follower reads multiply — every replica serving reads adds
    /// one more lane.
    read_busy_until: Time,
    /// Speculative batch execution knobs. Off by default: a server that
    /// never receives `SpecExec` frames behaves exactly as before the
    /// speculation stage existed, and one that does but has this off
    /// ignores them (the frame is purely advisory).
    spec: SpeculationConfig,
    /// When each speculatively pre-paid slot's device work completes —
    /// the instant a matching decision can be acknowledged, regardless of
    /// what else has been charged on the device since. Volatile, like the
    /// device horizon itself.
    spec_ready: HashMap<u64, Time>,
}

impl std::fmt::Debug for DbServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbServer").field("alist", &self.alist).finish()
    }
}

impl DbServer {
    /// Creates a standalone database server (no replica group) that will
    /// notify `alist` on recovery and start from `seed_data` (the
    /// workload's initial table contents).
    pub fn new(alist: Vec<NodeId>, cost: CostModel, seed_data: Vec<(String, i64)>) -> Self {
        Self::with_replication(alist, cost, seed_data, ReplRole::default())
    }

    /// Creates a database server inside a shard replica group.
    pub fn with_replication(
        alist: Vec<NodeId>,
        cost: CostModel,
        seed_data: Vec<(String, i64)>,
        repl: ReplRole,
    ) -> Self {
        let engine = Engine::with_data(seed_data.clone());
        DbServer {
            alist,
            cost,
            engine,
            seed_data,
            repl,
            awaiting_sync: false,
            log_busy_until: Time::ZERO,
            read_busy_until: Time::ZERO,
            spec: SpeculationConfig::default(),
            spec_ready: HashMap::new(),
        }
    }

    /// Sets the speculative-execution knobs (builder style).
    pub fn with_speculation(mut self, spec: SpeculationConfig) -> Self {
        self.spec = spec;
        self
    }

    /// Ships any freshly committed write sets to this shard's followers
    /// (asynchronous; called after every engine interaction that may have
    /// committed). A group commit that put several write sets in the outbox
    /// at once ships them as one `ApplyBatch` per follower — batched
    /// replica shipping, mirroring the batched commit that produced them.
    fn ship_commits(&mut self, ctx: &mut dyn Context) {
        let batch = self.engine.take_repl_outbox();
        if self.repl.followers.is_empty() || batch.is_empty() {
            return;
        }
        match batch.as_slice() {
            [(seq, rid, entries)] => {
                for &f in &self.repl.followers {
                    ctx.send(
                        f,
                        Payload::Repl(ReplMsg::Apply {
                            seq: *seq,
                            rid: *rid,
                            entries: entries.clone(),
                        }),
                    );
                }
            }
            _ => {
                for &f in &self.repl.followers {
                    ctx.send(f, Payload::Repl(ReplMsg::ApplyBatch { items: batch.clone() }));
                }
            }
        }
    }

    /// Claims the serial commitment path (the log device) for `service`
    /// time: the work starts when the device frees up and the reply leaves
    /// when it finishes. Returns the reply delay relative to now (queueing
    /// wait + service time).
    fn charge_serial(&mut self, ctx: &dyn Context, service: Dur) -> Dur {
        let now = ctx.now();
        let start = if self.log_busy_until > now { self.log_busy_until } else { now };
        let done = start + service;
        self.log_busy_until = done;
        done.since(now)
    }

    /// Claims the serial snapshot-read lane for `service` time (same
    /// queueing discipline as [`DbServer::charge_serial`], independent
    /// horizon). Volatile, like everything else in-flight across a crash.
    fn charge_read(&mut self, ctx: &dyn Context, service: Dur) -> Dur {
        let now = ctx.now();
        let start = if self.read_busy_until > now { self.read_busy_until } else { now };
        let done = start + service;
        self.read_busy_until = done;
        done.since(now)
    }

    fn request_sync(&mut self, ctx: &mut dyn Context) {
        let Some(primary) = self.repl.sync_from else { return };
        if !self.awaiting_sync {
            self.awaiting_sync = true;
            ctx.set_timer(self.repl.sync_retry, TimerTag::ReplSyncRetry);
        }
        ctx.send(primary, Payload::Repl(ReplMsg::SyncReq));
    }

    fn on_repl_msg(&mut self, ctx: &mut dyn Context, from: NodeId, msg: ReplMsg) {
        match msg {
            ReplMsg::Apply { seq, rid, entries } => {
                let res = self.engine.apply_replicated(seq, rid, entries);
                for w in &res.writes {
                    ctx.trace(TraceKind::DbReplicated { rid: w.rec.rid() });
                }
                self.apply_log_writes(ctx, res.writes);
                if res.need_sync {
                    // The apply stream has a gap (commits shipped while we
                    // were down): pull a snapshot to jump over it.
                    self.request_sync(ctx);
                }
            }
            ReplMsg::ApplyBatch { items } => {
                let res = self.engine.apply_replicated_batch(items);
                for w in &res.writes {
                    ctx.trace(TraceKind::DbReplicated { rid: w.rec.rid() });
                }
                self.apply_log_writes_grouped(ctx, res.writes);
                if res.need_sync {
                    self.request_sync(ctx);
                }
            }
            ReplMsg::SyncReq => {
                let (seq, entries) = self.engine.repl_snapshot();
                ctx.send(from, Payload::Repl(ReplMsg::SyncState { seq, entries }));
            }
            ReplMsg::SyncState { seq, entries } => {
                self.awaiting_sync = false;
                let writes = self.engine.adopt_repl_snapshot(seq, entries);
                for w in &writes {
                    ctx.trace(TraceKind::DbReplicated { rid: w.rec.rid() });
                }
                self.apply_log_writes(ctx, writes);
            }
        }
    }

    fn apply_log_writes(&mut self, ctx: &mut dyn Context, writes: Vec<etx_store::LogWrite>) {
        for w in writes {
            // Forced-ness is folded into the prepare/commit service costs
            // (as in Oracle, where the paper's 19 ms prepare and 18 ms
            // commit rows *include* the database's own log forces), so the
            // append itself is charged as unforced here.
            ctx.log_append(LOG_WAL, w.rec, false);
        }
    }

    /// Like [`Self::apply_log_writes`], but several records are framed into
    /// one [`StableRecord::Group`] append — the durable unit of a batched
    /// replication apply.
    fn apply_log_writes_grouped(
        &mut self,
        ctx: &mut dyn Context,
        writes: Vec<etx_store::LogWrite>,
    ) {
        match writes.len() {
            0 => {}
            1 => self.apply_log_writes(ctx, writes),
            n => {
                ctx.trace(TraceKind::GroupAppend { len: n as u32 });
                // The frame is forced iff any member would have been — same
                // rule as Engine::decide_batch, so batching never weakens a
                // record's durability relative to the one-by-one path.
                let force = writes.iter().any(|w| w.force);
                let records = writes.into_iter().map(|w| w.rec).collect();
                ctx.log_append(LOG_WAL, StableRecord::Group { records }, force);
            }
        }
    }

    fn on_db_msg(&mut self, ctx: &mut dyn Context, from: NodeId, msg: DbMsg) {
        match msg {
            DbMsg::Exec { rid, ops, xa } => {
                let status = self.engine.execute(rid, &ops);
                let mut dur = jittered(ctx, self.cost.sql, self.cost.jitter);
                if xa {
                    dur += jittered(ctx, self.cost.sql_xa_overhead, self.cost.jitter);
                }
                ctx.trace(TraceKind::Span { rid, comp: Component::Sql, dur });
                ctx.send_after(dur, from, Payload::DbReply(DbReplyMsg::ExecReply { rid, status }));
            }
            DbMsg::Prepare { rid } => {
                let (vote, writes) = self.engine.vote(rid);
                self.apply_log_writes(ctx, writes);
                let service = jittered(ctx, self.cost.db_prepare, self.cost.jitter);
                let dur = self.charge_serial(ctx, service);
                ctx.trace(TraceKind::DbVote { rid, vote });
                ctx.trace(TraceKind::Span { rid, comp: Component::Prepare, dur: service });
                ctx.send_after(dur, from, Payload::DbReply(DbReplyMsg::Vote { rid, vote }));
            }
            DbMsg::Decide { rid, outcome } => {
                let already = self.engine.decision(rid).is_some();
                let (applied, writes) = self.engine.decide(rid, outcome);
                self.apply_log_writes(ctx, writes);
                let dur = if already {
                    // Re-delivery: answered from the memo, no re-processing.
                    Dur::ZERO
                } else {
                    ctx.trace(TraceKind::DbDecide { rid, outcome: applied });
                    let service = match applied {
                        Outcome::Commit => {
                            let d = jittered(ctx, self.cost.db_commit, self.cost.jitter);
                            ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: d });
                            d
                        }
                        Outcome::Abort => jittered(ctx, self.cost.db_abort, self.cost.jitter),
                    };
                    self.charge_serial(ctx, service)
                };
                let seq = self.engine.ship_position();
                ctx.send_after(
                    dur,
                    from,
                    Payload::DbReply(DbReplyMsg::AckDecide { rid, outcome: applied, seq }),
                );
            }
            DbMsg::SpecExec { slot, entries } => {
                // Speculation stage: the batch just got *proposed* into
                // `slot`; execute it now, against a snapshot overlay,
                // while consensus runs. Primary-only and purely advisory —
                // followers and speculation-off servers ignore the frame.
                if !self.spec.enabled || self.repl.sync_from.is_some() {
                    return;
                }
                let mut fresh_commits = 0usize;
                let mut fresh_aborts = 0usize;
                for &(rid, outcome) in &entries {
                    if self.engine.decision(rid).is_none() {
                        match outcome {
                            Outcome::Commit => fresh_commits += 1,
                            Outcome::Abort => fresh_aborts += 1,
                        }
                    }
                }
                let service = if fresh_commits > 0 {
                    jittered(ctx, self.cost.db_commit, self.cost.jitter)
                } else if fresh_aborts > 0 {
                    jittered(ctx, self.cost.db_abort, self.cost.jitter)
                } else {
                    Dur::ZERO
                };
                if !self.engine.speculate(slot, &entries, service, self.spec.inflight_cap()) {
                    return; // a stash for this slot already exists
                }
                // Pre-pay the commit processing on the serial log device
                // *now* — this is the overlap with the consensus round. If
                // the slot decides as proposed, the work is already done
                // (or at least already queued ahead of newer arrivals), and
                // the recorded completion instant — not the then-current
                // device horizon — is all the acknowledgement waits for.
                let queued = self.charge_serial(ctx, service);
                self.spec_ready.insert(slot, ctx.now() + queued);
                while self.spec_ready.len() > self.spec.inflight_cap() {
                    let oldest = *self.spec_ready.keys().min().expect("non-empty");
                    self.spec_ready.remove(&oldest);
                }
                ctx.trace(TraceKind::SpecExec { slot, len: entries.len() as u32 });
            }
            DbMsg::DecideBatch { slot, entries } => {
                // Group commit: the whole batch applies behind ONE durable
                // append and one commit-processing charge — the per-request
                // cost the pipeline amortises away. Per-branch semantics
                // (idempotent re-delivery, presumed abort, the §2 decide
                // contract) are exactly those of the single-Decide path.
                let already: HashSet<ResultId> = entries
                    .iter()
                    .filter(|(rid, _)| self.engine.decision(*rid).is_some())
                    .map(|&(rid, _)| rid)
                    .collect();
                // Speculation resolution: a stash whose proposal matches
                // the decided batch exactly is promoted (its device time
                // was pre-paid at SpecExec); a mismatched stash is
                // discarded and the batch replays on the ordinary path
                // below. With speculation off there is never a stash and
                // this is a no-op.
                let had_stash = self.engine.speculation(slot).is_some();
                let ready_at = self.spec_ready.remove(&slot);
                self.spec_ready.retain(|&s, _| s > slot);
                if let Some(p) = self.engine.promote_speculation(slot, &entries) {
                    ctx.trace(TraceKind::SpecHit { slot, len: p.acks.len() as u32 });
                    if let Some(w) = p.writes.first() {
                        if matches!(w.rec, StableRecord::Group { .. }) {
                            ctx.trace(TraceKind::GroupAppend { len: w.rec.leaves().len() as u32 });
                        }
                    }
                    self.apply_log_writes(ctx, p.writes);
                    let fresh_commits: Vec<ResultId> = p
                        .acks
                        .iter()
                        .filter(|(rid, o)| !already.contains(rid) && *o == Outcome::Commit)
                        .map(|&(rid, _)| rid)
                        .collect();
                    for (rid, outcome) in &p.acks {
                        if !already.contains(rid) {
                            ctx.trace(TraceKind::DbDecide { rid: *rid, outcome: *outcome });
                        }
                    }
                    if !fresh_commits.is_empty() {
                        // Attribute the pre-paid commit cost across the
                        // batch, like the ordinary path does with its own
                        // charge.
                        let share = p.cost.scaled(1.0 / fresh_commits.len() as f64);
                        for &rid in &fresh_commits {
                            ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: share });
                        }
                    }
                    // The device was claimed at SpecExec time; the reply
                    // waits only until *that* pre-paid work completes —
                    // later arrivals queued behind it are not its problem.
                    let now = ctx.now();
                    let dur = match ready_at {
                        Some(t) if t > now => t.since(now),
                        _ => Dur::ZERO,
                    };
                    let seq = self.engine.ship_position();
                    ctx.send_after(
                        dur,
                        from,
                        Payload::DbReply(DbReplyMsg::AckDecideBatch { entries: p.acks, seq }),
                    );
                    self.ship_commits(ctx);
                    return;
                }
                if had_stash {
                    // The decided batch diverged from the speculated one:
                    // the buffered execution is gone, and the DbDecide
                    // traces below are the replay.
                    ctx.trace(TraceKind::SpecAbort { slot });
                }
                let (acks, writes) = self.engine.decide_batch(&entries);
                // Trace only real group frames: a batch whose members yield
                // a single record appends it bare, like the replication path.
                if let Some(w) = writes.first() {
                    if matches!(w.rec, StableRecord::Group { .. }) {
                        ctx.trace(TraceKind::GroupAppend { len: w.rec.leaves().len() as u32 });
                    }
                }
                self.apply_log_writes(ctx, writes);
                let fresh_commits: Vec<ResultId> = acks
                    .iter()
                    .filter(|(rid, o)| !already.contains(rid) && *o == Outcome::Commit)
                    .map(|&(rid, _)| rid)
                    .collect();
                let fresh_aborts = acks
                    .iter()
                    .filter(|(rid, o)| !already.contains(rid) && *o == Outcome::Abort)
                    .count();
                for (rid, outcome) in &acks {
                    if !already.contains(rid) {
                        ctx.trace(TraceKind::DbDecide { rid: *rid, outcome: *outcome });
                    }
                }
                let dur = if !fresh_commits.is_empty() {
                    let d = jittered(ctx, self.cost.db_commit, self.cost.jitter);
                    // Attribute the shared commit cost across the batch so
                    // per-request latency breakdowns stay additive.
                    let share = d.scaled(1.0 / fresh_commits.len() as f64);
                    for &rid in &fresh_commits {
                        ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: share });
                    }
                    self.charge_serial(ctx, d)
                } else if fresh_aborts > 0 {
                    let d = jittered(ctx, self.cost.db_abort, self.cost.jitter);
                    self.charge_serial(ctx, d)
                } else {
                    Dur::ZERO // pure re-delivery: answered from the memo
                };
                let seq = self.engine.ship_position();
                ctx.send_after(
                    dur,
                    from,
                    Payload::DbReply(DbReplyMsg::AckDecideBatch { entries: acks, seq }),
                );
            }
            DbMsg::Read { rid, call, round, ops, min_seq, reply_to } => {
                // The read fast path: execute pure Gets against committed
                // state — no XA branch, no locks, no log traffic. A
                // follower behind the read's freshness stamp must not
                // serve stale state: it forwards the message (reply_to
                // preserved) to its primary, whose committed state is the
                // source of truth the stamp was observed against.
                let is_follower = self.repl.sync_from.is_some();
                if is_follower && self.engine.repl_position() < min_seq {
                    let primary = self.repl.sync_from.expect("follower has a primary");
                    ctx.trace(TraceKind::ReadForwarded {
                        rid,
                        have: self.engine.repl_position(),
                        need: min_seq,
                    });
                    ctx.send(
                        primary,
                        Payload::Db(DbMsg::Read { rid, call, round, ops, min_seq, reply_to }),
                    );
                    return;
                }
                if is_follower {
                    ctx.trace(TraceKind::FollowerRead { rid });
                }
                // Values, position and in-doubt flag are sampled at one
                // instant (this event), which is what the issuer's
                // snapshot validation reasons about; the read-lane charge
                // below only delays when the reply *leaves*.
                let outputs = self.engine.read_only(&ops);
                let pos = if is_follower {
                    self.engine.repl_position()
                } else {
                    self.engine.ship_position()
                };
                let indoubt = self.engine.indoubt_read_conflict(&ops);
                let service = jittered(ctx, self.cost.sql_read, self.cost.jitter);
                let dur = self.charge_read(ctx, service);
                ctx.trace(TraceKind::Span { rid, comp: Component::Sql, dur: service });
                ctx.send_after(
                    dur,
                    reply_to,
                    Payload::DbReply(DbReplyMsg::ReadReply {
                        rid,
                        call,
                        round,
                        outputs,
                        pos,
                        indoubt,
                    }),
                );
            }
            DbMsg::CommitOnePhase { rid } => {
                let already = self.engine.decision(rid) == Some(Outcome::Commit);
                let (ok, writes) = self.engine.commit_one_phase(rid);
                self.apply_log_writes(ctx, writes);
                let dur = if ok && !already {
                    ctx.trace(TraceKind::DbDecide { rid, outcome: Outcome::Commit });
                    let d = jittered(ctx, self.cost.db_commit, self.cost.jitter);
                    ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: d });
                    self.charge_serial(ctx, d)
                } else {
                    Dur::ZERO
                };
                ctx.send_after(
                    dur,
                    from,
                    Payload::DbReply(DbReplyMsg::AckCommitOnePhase { rid, ok }),
                );
            }
        }
        // Anything the engine just committed ships to the shard's followers
        // (a no-op for standalone servers and non-commit messages).
        self.ship_commits(ctx);
    }

    /// Committed value of a key (test / harness assertions through the
    /// process, without reaching into the engine).
    pub fn committed(&self, key: &str) -> Option<i64> {
        self.engine.committed(key)
    }

    /// Whether a branch is in-doubt right now.
    pub fn is_prepared(&self, rid: ResultId) -> bool {
        self.engine.is_prepared(rid)
    }
}

impl Process for DbServer {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init => {
                // Fresh start: nothing to announce (Figure 3 takes
                // `recovery = false` here).
            }
            Event::Recovered => {
                // Rebuild from the WAL over the seed data, then tell the
                // application servers we are back (Figure 3 lines 1–2).
                let log = ctx.log_read(LOG_WAL);
                self.engine = Engine::recover_with_seed(self.seed_data.clone(), &log);
                for a in self.alist.clone() {
                    ctx.send(a, Payload::DbReply(DbReplyMsg::Ready));
                }
                // Follower role: pull a snapshot to recover the commits the
                // primary shipped while this replica was down.
                self.awaiting_sync = false;
                self.request_sync(ctx);
            }
            Event::Message { from, payload: Payload::Db(m) } => self.on_db_msg(ctx, from, m),
            Event::Message { from, payload: Payload::Repl(m) } => self.on_repl_msg(ctx, from, m),
            Event::Timer { tag: TimerTag::ReplSyncRetry, .. } if self.awaiting_sync => {
                if let Some(primary) = self.repl.sync_from {
                    ctx.send(primary, Payload::Repl(ReplMsg::SyncReq));
                }
                ctx.set_timer(self.repl.sync_retry, TimerTag::ReplSyncRetry);
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "dbserver"
    }
}
