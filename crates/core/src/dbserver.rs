//! The database-server process (Figure 3).
//!
//! A *pure server*: it never calls anyone, it only answers. It hosts an
//! [`etx_store::Engine`] (the XA resource manager) and implements the
//! paper's loop:
//!
//! * `[Prepare, j]` → `vote(j)` → `[Vote, j, vote]`;
//! * `[Decide, j, outcome]` → `terminate(j, outcome)` → `[AckDecide, j]`;
//! * on recovery, broadcast `[Ready]` to all application servers (Figure 3
//!   line 2) — the crash-notification scheme §5 describes.
//!
//! Service times are modelled here, where the work happens: SQL execution,
//! prepare and commit costs are drawn from the cost model (with jitter) and
//! charged by delaying the reply; each charge is recorded as a latency
//! [`Component`] span so the harness can rebuild Figure 8's rows.
//!
//! Two kinds of work are charged differently. SQL execution runs on the
//! database's many connections, so concurrent `Exec`s overlap freely.
//! Prepare and commit/abort processing *include the database's own log
//! force* (the paper's 19 ms prepare and 18 ms commit rows), and a log
//! device is a **serial** resource: concurrent commitment work queues
//! behind a per-server busy horizon. That serialisation is precisely why
//! group commit pays — a `DecideBatch` claims the log once for its whole
//! batch, where the same outcomes arriving as N separate `Decide`s would
//! occupy it N times.

use etx_base::config::{CostModel, PipelineConfig, ReadLeaseConfig, SpeculationConfig};
use etx_base::ids::{NodeId, ResultId};
use etx_base::msg::{DbMsg, DbReplyMsg, Payload, ReplMsg};
use etx_base::runtime::{jittered, Context, Event, Process, TimerTag};
use etx_base::time::{Dur, Time};
use etx_base::trace::{Component, TraceKind};
use etx_base::value::{Outcome, Vote};
use etx_base::wal::{StableRecord, LOG_WAL};
use etx_store::Engine;
use std::collections::{HashMap, HashSet};

/// A database server's place in its shard replica group.
///
/// The **primary** executes and prepares the shard's XA branches and ships
/// every committed write set to its followers asynchronously — replication
/// stays off the transaction's critical path, mirroring the paper's core
/// move of replacing synchronous I/O with asynchronous replication. A
/// **follower** applies shipped commits in sequence order and catches up
/// via a snapshot pull after recovering from a crash.
#[derive(Debug, Clone, Default)]
pub struct ReplRole {
    /// Followers to ship committed write sets to (primary role).
    pub followers: Vec<NodeId>,
    /// The shard primary to pull snapshots from (follower role; `None`
    /// when this server is the primary or the group has size 1).
    pub sync_from: Option<NodeId>,
    /// How often a catching-up follower re-requests a snapshot until one
    /// arrives (covers a primary that is itself down).
    pub sync_retry: Dur,
}

/// The back-end tier process: an XA engine behind the paper's Figure 3 loop.
pub struct DbServer {
    alist: Vec<NodeId>,
    cost: CostModel,
    engine: Engine,
    seed_data: Vec<(String, i64)>,
    repl: ReplRole,
    /// Follower role: a snapshot pull is in flight (cleared by `SyncState`).
    awaiting_sync: bool,
    /// When the serial commitment path (prepare/commit processing, i.e. the
    /// log device) frees up. Volatile: a crash empties the queue with the
    /// rest of the in-flight work.
    log_busy_until: Time,
    /// When the serial snapshot-read lane (the replica's query executor)
    /// frees up. Separate from the log device: reads never force the log,
    /// and commitment work never waits behind reads. This per-replica lane
    /// is what follower reads multiply — every replica serving reads adds
    /// one more lane.
    read_busy_until: Time,
    /// Speculative batch execution knobs. Off by default: a server that
    /// never receives `SpecExec` frames behaves exactly as before the
    /// speculation stage existed, and one that does but has this off
    /// ignores them (the frame is purely advisory).
    spec: SpeculationConfig,
    /// When each speculatively pre-paid slot's device work completes —
    /// the instant a matching decision can be acknowledged, regardless of
    /// what else has been charged on the device since. Volatile, like the
    /// device horizon itself. Kept in **lockstep** with the engine's
    /// stash set ([`etx_store::Engine::spec_slot_ids`]): an inflight-cap
    /// eviction that dropped the buffer must drop the pre-paid instant
    /// too, and vice versa.
    spec_ready: HashMap<u64, Time>,
    /// Decision-log pipelining knobs of the application tier, mirrored
    /// here so the speculation-buffer cap can be floored at the window
    /// depth — a cap below the depth would cascade-evict the whole stack
    /// on every deep proposal.
    pipeline: PipelineConfig,
    /// Read-lease knobs. Off by default: no grants, no renewal timer, no
    /// lease fields on any outgoing message — byte-identical behavior to
    /// the stamp-gated read path.
    leases: ReadLeaseConfig,
    /// Primary role: the latest lease expiry offered to this shard's
    /// followers (what decide acknowledgements and primary-served read
    /// replies advertise to application servers). Volatile — which is why
    /// recovery installs [`DbServer::lease_fence`] instead of trusting it.
    lease_granted: Time,
    /// Follower role: the instant through which this replica's applied
    /// prefix is authoritative (granted by the primary, renewed by
    /// piggyback on commit shipments and by bare `LeaseRenew` frames).
    /// Serving a fast-path read past this instant is forbidden.
    lease_through: Time,
    /// Primary role, recovery only: commit acknowledgements are withheld
    /// until this instant, by which point every lease the pre-crash
    /// incarnation could have granted has expired — a deposed primary's
    /// leases drain before the recovered one acknowledges its first write.
    lease_fence: Time,
    /// Primary role: cross-shard XA branches currently live here (from
    /// `Prepare` until their decide arrives), plus WAL-recovered prepared
    /// branches after a crash. Lease renewal is **withheld** while this is
    /// non-empty: a grant minted mid-branch would extend the window a
    /// held vote must wait out, and the intent-staleness rule (a renewal
    /// clears intents older than its mint) leans on every mint postdating
    /// the settlement of everything prepared before it. Only populated
    /// when leases are enabled.
    unsettled_xa: HashSet<ResultId>,
    /// Primary role: yes votes on cross-shard branches being withheld
    /// until every follower acknowledges the branch's [`ReplMsg::Intent`]
    /// — or until the escape horizon at which every lease outstanding
    /// when the vote was computed has provably lapsed. This is the
    /// soundness linchpin of follower-served collects: a decide can only
    /// postdate its votes, so by the time *any* shard applies the
    /// transaction, every in-lease follower of this shard either knows
    /// the branch is in doubt (and forwards reads into the primary's
    /// in-doubt veto) or holds no valid lease at all. Volatile: a crash
    /// drops held votes with the rest of the in-flight work, and the
    /// cleaner aborts the orphaned branches.
    held_votes: HashMap<ResultId, HeldVote>,
    /// Follower role: cross-shard branches announced as in doubt by this
    /// shard's primary ([`ReplMsg::Intent`]) and not yet resolved. While
    /// any intent is live the follower forwards fast-path reads to the
    /// primary — the coarse, conservative counterpart of the primary's
    /// key-level in-doubt veto. An intent resolves when the branch's
    /// commit applies here, or when a lease renewal minted after the
    /// branch settled arrives (which is how aborts — whose outcome never
    /// ships — get cleared). Volatile, like the lease it guards.
    live_intents: HashMap<ResultId, Time>,
    /// Follower role: the grant floor of the lease held ([`ReplMsg::
    /// LeaseRenew::floor`]): serving under the lease additionally requires
    /// the applied position to have reached it, so a bare renewal can
    /// never re-authorize a prefix that lost a commit shipment.
    lease_floor: u64,
}

/// A yes vote a lease-granting primary is withholding on a cross-shard
/// branch until its followers acknowledge the branch's in-doubt intent.
struct HeldVote {
    /// Where the vote reply goes (the preparing application server).
    to: NodeId,
    /// The withheld vote (always `Yes` — no votes are never held).
    vote: Vote,
    /// When the vote reply would have left without the hold (prepare
    /// service time was charged normally); releasing never sends earlier
    /// than this.
    send_at: Time,
    /// Followers that have acknowledged the intent so far.
    acks: HashSet<NodeId>,
}

impl std::fmt::Debug for DbServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbServer").field("alist", &self.alist).finish()
    }
}

impl DbServer {
    /// Creates a standalone database server (no replica group) that will
    /// notify `alist` on recovery and start from `seed_data` (the
    /// workload's initial table contents).
    pub fn new(alist: Vec<NodeId>, cost: CostModel, seed_data: Vec<(String, i64)>) -> Self {
        Self::with_replication(alist, cost, seed_data, ReplRole::default())
    }

    /// Creates a database server inside a shard replica group.
    pub fn with_replication(
        alist: Vec<NodeId>,
        cost: CostModel,
        seed_data: Vec<(String, i64)>,
        repl: ReplRole,
    ) -> Self {
        let engine = Engine::with_data(seed_data.clone());
        DbServer {
            alist,
            cost,
            engine,
            seed_data,
            repl,
            awaiting_sync: false,
            log_busy_until: Time::ZERO,
            read_busy_until: Time::ZERO,
            spec: SpeculationConfig::default(),
            spec_ready: HashMap::new(),
            pipeline: PipelineConfig::default(),
            leases: ReadLeaseConfig::default(),
            lease_granted: Time::ZERO,
            lease_through: Time::ZERO,
            lease_fence: Time::ZERO,
            unsettled_xa: HashSet::new(),
            held_votes: HashMap::new(),
            live_intents: HashMap::new(),
            lease_floor: 0,
        }
    }

    /// Sets the speculative-execution knobs (builder style).
    pub fn with_speculation(mut self, spec: SpeculationConfig) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the read-lease knobs (builder style).
    pub fn with_read_leases(mut self, leases: ReadLeaseConfig) -> Self {
        self.leases = leases;
        self
    }

    /// Sets the decision-log pipelining knobs (builder style).
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// The speculation-buffer cap actually enforced: the configured cap,
    /// floored at the pipeline window so a deep window's stacked stashes
    /// fit (see the `pipeline` field for why).
    fn spec_cap(&self) -> usize {
        self.spec.inflight_cap().max(self.pipeline.window())
    }

    /// Prunes the pre-paid completion instants to the engine's live stash
    /// set — the lockstep rule. Run after anything that can evict stashes
    /// (inflight-cap eviction at `SpecExec`, below-slot GC and the
    /// mismatch cascade at `DecideBatch`): a dangling instant would
    /// acknowledge a future decide at a time pre-paid for work that was
    /// thrown away, and an instant-less stash could promote for free.
    fn sync_spec_ready(&mut self) {
        let live: HashSet<u64> = self.engine.spec_slot_ids().into_iter().collect();
        self.spec_ready.retain(|s, _| live.contains(s));
    }

    /// Whether this server grants leases at all: a lease-enabled shard
    /// primary with at least one follower to grant to.
    fn grants_leases(&self) -> bool {
        self.leases.enabled && self.repl.sync_from.is_none() && !self.repl.followers.is_empty()
    }

    /// Whether a grant may be (re)issued right now. Renewal is withheld
    /// while any cross-shard XA branch is live on this primary — see
    /// [`etx_base::config::ReadLeaseConfig`] for why that timing is what
    /// keeps in-lease follower collects transactionally atomic.
    fn lease_safe(&self) -> bool {
        self.grants_leases() && self.unsettled_xa.is_empty()
    }

    /// Issues a grant valid through `now + duration` (when permitted) and
    /// records it as the latest offer. Returns what should ride the
    /// outgoing message: the fresh grant, or `None` when withheld.
    fn mint_lease(&mut self, now: Time) -> Option<Time> {
        if !self.lease_safe() {
            return None;
        }
        let through = now + self.leases.duration;
        if through > self.lease_granted {
            self.lease_granted = through;
        }
        Some(through)
    }

    /// Mints a grant (when safe) and pushes it as a bare `LeaseRenew`
    /// frame to every follower — and to every application server, whose
    /// routing table is what actually steers collects at followers: fed
    /// only by piggybacked adverts, a read-only workload would stay blind
    /// to the leases and keep routing collects at the primary. The startup
    /// establishment and the renewal heartbeat both come through here.
    fn grant_lease_now(&mut self, ctx: &mut dyn Context) {
        if let Some(through) = self.mint_lease(ctx.now()) {
            let floor = self.engine.ship_position();
            ctx.trace(TraceKind::LeaseGrant { through });
            for f in self.repl.followers.clone() {
                ctx.send(f, Payload::Repl(ReplMsg::LeaseRenew { through, floor }));
            }
            for a in self.alist.clone() {
                ctx.send(a, Payload::Repl(ReplMsg::LeaseRenew { through, floor }));
            }
        }
    }

    /// The escape horizon for a vote held right now: the instant by which
    /// every lease this primary has outstanding — including any the
    /// pre-crash incarnation could have granted, which is exactly what the
    /// recovery fence bounds — has provably expired. Minting is withheld
    /// while the branch is unsettled, so the horizon cannot move while a
    /// hold is waiting on it.
    fn vote_horizon(&self) -> Time {
        self.lease_granted.max(self.lease_fence)
    }

    /// Releases a held cross-shard vote (all intents acknowledged, or the
    /// escape horizon passed). No-op if the vote was already released —
    /// the escape timer always fires eventually, acks or not. The vote
    /// goes out no earlier than the instant its network delay would have
    /// delivered it unheld; if the handshake outlasted that (an intent
    /// ack round trip usually does), it goes out immediately.
    fn release_vote(&mut self, ctx: &mut dyn Context, rid: ResultId) {
        if let Some(h) = self.held_votes.remove(&rid) {
            let dur = if h.send_at > ctx.now() { h.send_at.since(ctx.now()) } else { Dur::ZERO };
            ctx.send_after(dur, h.to, Payload::DbReply(DbReplyMsg::Vote { rid, vote: h.vote }));
        }
    }

    /// The lease advertisement a primary attaches to decide
    /// acknowledgements and read replies: the latest *offered* expiry, if
    /// still in force. Advertising only what followers were actually
    /// offered (rather than minting here) keeps application servers from
    /// routing reads at followers whose own grants are older.
    fn advertised_lease(&self, now: Time) -> Option<Time> {
        if self.grants_leases() && self.lease_granted > now {
            Some(self.lease_granted)
        } else {
            None
        }
    }

    /// Applies the recovery write-ack fence to a commit acknowledgement's
    /// reply delay: until every pre-crash lease has provably expired, no
    /// decide may be acknowledged (the drain that keeps still-leased
    /// followers' pre-crash prefixes consistent with everything any
    /// application server has observed).
    fn fence_ack(&self, ctx: &dyn Context, dur: Dur) -> Dur {
        let now = ctx.now();
        if self.lease_fence > now {
            dur.max(self.lease_fence.since(now))
        } else {
            dur
        }
    }

    /// Ships any freshly committed write sets to this shard's followers
    /// (asynchronous; called after every engine interaction that may have
    /// committed). A group commit that put several write sets in the outbox
    /// at once ships them as one `ApplyBatch` per follower — batched
    /// replica shipping, mirroring the batched commit that produced them.
    fn ship_commits(&mut self, ctx: &mut dyn Context) {
        let batch = self.engine.take_repl_outbox();
        if self.repl.followers.is_empty() || batch.is_empty() {
            return;
        }
        // Lease renewal rides the shipment itself: the follower that
        // applies this batch is, at that instant, exactly as caught up as
        // the grant asserts. Withheld (None) while a cross-shard branch is
        // live — the follower's lease then simply runs out its term.
        let lease = self.mint_lease(ctx.now());
        match batch.as_slice() {
            [(seq, rid, entries)] => {
                for &f in &self.repl.followers {
                    ctx.send(
                        f,
                        Payload::Repl(ReplMsg::Apply {
                            seq: *seq,
                            rid: *rid,
                            entries: entries.clone(),
                            lease,
                        }),
                    );
                }
            }
            _ => {
                for &f in &self.repl.followers {
                    ctx.send(f, Payload::Repl(ReplMsg::ApplyBatch { items: batch.clone(), lease }));
                }
            }
        }
    }

    /// Claims the serial commitment path (the log device) for `service`
    /// time: the work starts when the device frees up and the reply leaves
    /// when it finishes. Returns the reply delay relative to now (queueing
    /// wait + service time).
    fn charge_serial(&mut self, ctx: &dyn Context, service: Dur) -> Dur {
        let now = ctx.now();
        let start = if self.log_busy_until > now { self.log_busy_until } else { now };
        let done = start + service;
        self.log_busy_until = done;
        done.since(now)
    }

    /// Claims the serial snapshot-read lane for `service` time (same
    /// queueing discipline as [`DbServer::charge_serial`], independent
    /// horizon). Volatile, like everything else in-flight across a crash.
    fn charge_read(&mut self, ctx: &dyn Context, service: Dur) -> Dur {
        let now = ctx.now();
        let start = if self.read_busy_until > now { self.read_busy_until } else { now };
        let done = start + service;
        self.read_busy_until = done;
        done.since(now)
    }

    fn request_sync(&mut self, ctx: &mut dyn Context) {
        let Some(primary) = self.repl.sync_from else { return };
        if !self.awaiting_sync {
            self.awaiting_sync = true;
            ctx.set_timer(self.repl.sync_retry, TimerTag::ReplSyncRetry);
        }
        ctx.send(primary, Payload::Repl(ReplMsg::SyncReq));
    }

    /// Follower role: adopts a (piggybacked or bare) lease renewal carrying
    /// grant floor `floor`, and expires intents the renewal settles.
    fn renew_lease(&mut self, lease: Option<Time>, floor: u64) {
        if let Some(through) = lease {
            if self.leases.enabled && through > self.lease_through {
                self.lease_through = through;
                self.lease_floor = self.lease_floor.max(floor);
                // A grant is minted only while no cross-shard branch is
                // unsettled at the primary, so a branch whose intent was
                // recorded strictly before this grant's mint instant
                // (`through - duration`) had already been decided there:
                // a commit is covered by the grant's floor, and an abort
                // never becomes visible at all. Either way the intent is
                // resolved.
                let dur = self.leases.duration;
                self.live_intents.retain(|_, at| *at + dur >= through);
            }
        }
    }

    fn on_repl_msg(&mut self, ctx: &mut dyn Context, from: NodeId, msg: ReplMsg) {
        match msg {
            ReplMsg::Apply { seq, rid, entries, lease } => {
                let res = self.engine.apply_replicated(seq, rid, entries);
                for w in &res.writes {
                    ctx.trace(TraceKind::DbReplicated { rid: w.rec.rid() });
                    // An applied commit resolves its in-doubt intent: the
                    // transaction is now in this replica's served prefix.
                    self.live_intents.remove(&w.rec.rid());
                }
                self.apply_log_writes(ctx, res.writes);
                if res.need_sync {
                    // The apply stream has a gap (commits shipped while we
                    // were down): pull a snapshot to jump over it.
                    self.request_sync(ctx);
                }
                // Adopt the piggybacked renewal only after applying, with
                // the shipment's own position as its floor — the grant
                // asserts exactly "caught up through this shipment", so a
                // lost or gapped apply leaves the lease unservable rather
                // than re-authorizing a stale prefix.
                self.renew_lease(lease, seq);
            }
            ReplMsg::ApplyBatch { items, lease } => {
                let floor = items.iter().map(|(seq, _, _)| *seq).max().unwrap_or(0);
                let res = self.engine.apply_replicated_batch(items);
                for w in &res.writes {
                    ctx.trace(TraceKind::DbReplicated { rid: w.rec.rid() });
                    self.live_intents.remove(&w.rec.rid());
                }
                self.apply_log_writes_grouped(ctx, res.writes);
                if res.need_sync {
                    self.request_sync(ctx);
                }
                self.renew_lease(lease, floor);
            }
            ReplMsg::LeaseRenew { through, floor } => {
                self.renew_lease(Some(through), floor);
            }
            ReplMsg::Intent { rid, at } => {
                // Record the in-doubt branch and release the primary's held
                // vote. Only meaningful on a lease-holding follower; a
                // primary never receives intents (it sends them).
                if self.leases.enabled && self.repl.sync_from.is_some() {
                    self.live_intents.insert(rid, at);
                    ctx.send(from, Payload::Repl(ReplMsg::IntentAck { rid }));
                }
            }
            ReplMsg::IntentAck { rid } => {
                let release = match self.held_votes.get_mut(&rid) {
                    Some(h) => {
                        h.acks.insert(from);
                        h.acks.len() >= self.repl.followers.len()
                    }
                    None => false,
                };
                if release {
                    self.release_vote(ctx, rid);
                }
            }
            ReplMsg::SyncReq => {
                let (seq, entries) = self.engine.repl_snapshot();
                ctx.send(from, Payload::Repl(ReplMsg::SyncState { seq, entries }));
            }
            ReplMsg::SyncState { seq, entries } => {
                self.awaiting_sync = false;
                let writes = self.engine.adopt_repl_snapshot(seq, entries);
                for w in &writes {
                    ctx.trace(TraceKind::DbReplicated { rid: w.rec.rid() });
                }
                self.apply_log_writes(ctx, writes);
            }
        }
    }

    fn apply_log_writes(&mut self, ctx: &mut dyn Context, writes: Vec<etx_store::LogWrite>) {
        for w in writes {
            // Forced-ness is folded into the prepare/commit service costs
            // (as in Oracle, where the paper's 19 ms prepare and 18 ms
            // commit rows *include* the database's own log forces), so the
            // append itself is charged as unforced here.
            ctx.log_append(LOG_WAL, w.rec, false);
        }
    }

    /// Like [`Self::apply_log_writes`], but several records are framed into
    /// one [`StableRecord::Group`] append — the durable unit of a batched
    /// replication apply.
    fn apply_log_writes_grouped(
        &mut self,
        ctx: &mut dyn Context,
        writes: Vec<etx_store::LogWrite>,
    ) {
        match writes.len() {
            0 => {}
            1 => self.apply_log_writes(ctx, writes),
            n => {
                ctx.trace(TraceKind::GroupAppend { len: n as u32 });
                // The frame is forced iff any member would have been — same
                // rule as Engine::decide_batch, so batching never weakens a
                // record's durability relative to the one-by-one path.
                let force = writes.iter().any(|w| w.force);
                let records = writes.into_iter().map(|w| w.rec).collect();
                ctx.log_append(LOG_WAL, StableRecord::Group { records }, force);
            }
        }
    }

    fn on_db_msg(&mut self, ctx: &mut dyn Context, from: NodeId, msg: DbMsg) {
        match msg {
            DbMsg::Exec { rid, ops, xa } => {
                let status = self.engine.execute(rid, &ops);
                let mut dur = jittered(ctx, self.cost.sql, self.cost.jitter);
                if xa {
                    dur += jittered(ctx, self.cost.sql_xa_overhead, self.cost.jitter);
                }
                ctx.trace(TraceKind::Span { rid, comp: Component::Sql, dur });
                ctx.send_after(dur, from, Payload::DbReply(DbReplyMsg::ExecReply { rid, status }));
            }
            DbMsg::Prepare { rid, cross } => {
                // Lease bookkeeping: from here until its decide arrives, a
                // cross-shard branch is (or is about to be) in doubt on
                // this primary, so lease renewal is withheld. Gated on the
                // leases knob — the set stays empty (and renewal logic
                // untouched) otherwise.
                if self.leases.enabled
                    && cross
                    && self.repl.sync_from.is_none()
                    && self.engine.decision(rid).is_none()
                {
                    self.unsettled_xa.insert(rid);
                }
                let (vote, writes) = self.engine.vote(rid);
                self.apply_log_writes(ctx, writes);
                let service = jittered(ctx, self.cost.db_prepare, self.cost.jitter);
                let dur = self.charge_serial(ctx, service);
                ctx.trace(TraceKind::DbVote { rid, vote });
                ctx.trace(TraceKind::Span { rid, comp: Component::Prepare, dur: service });
                if self.held_votes.contains_key(&rid) {
                    // Duplicate Prepare while the vote is held: the pending
                    // release will answer it.
                } else if vote == Vote::Yes
                    && cross
                    && self.grants_leases()
                    && self.vote_horizon() > ctx.now()
                {
                    // Cross-shard vote hold: no coordinator may learn this
                    // yes — and therefore no sibling shard may commit the
                    // transaction — until every follower knows the branch
                    // is in doubt, or every lease outstanding right now
                    // has lapsed. Any later `fresh`/`stable` collect that
                    // observes the transaction's effects at some shard
                    // necessarily postdates this release, so an in-lease
                    // follower here either forwards into the in-doubt veto
                    // or is no longer leased. Intents are not
                    // retransmitted: a lost one just rides out the escape
                    // horizon (minting is withheld while the branch is
                    // unsettled, so the horizon cannot grow meanwhile).
                    ctx.trace(TraceKind::VoteHeld { rid });
                    let at = ctx.now();
                    self.held_votes.insert(
                        rid,
                        HeldVote { to: from, vote, send_at: ctx.now() + dur, acks: HashSet::new() },
                    );
                    for f in self.repl.followers.clone() {
                        ctx.send(f, Payload::Repl(ReplMsg::Intent { rid, at }));
                    }
                    ctx.set_timer(
                        self.vote_horizon().since(ctx.now()),
                        TimerTag::VoteEscape { rid },
                    );
                } else {
                    ctx.send_after(dur, from, Payload::DbReply(DbReplyMsg::Vote { rid, vote }));
                }
            }
            DbMsg::Decide { rid, outcome } => {
                self.unsettled_xa.remove(&rid);
                // A decision makes a held vote moot (the cleaner can abort
                // a branch whose vote never arrived): drop it unsent.
                self.held_votes.remove(&rid);
                let already = self.engine.decision(rid).is_some();
                let (applied, writes) = self.engine.decide(rid, outcome);
                self.apply_log_writes(ctx, writes);
                let dur = if already {
                    // Re-delivery: answered from the memo, no re-processing.
                    Dur::ZERO
                } else {
                    ctx.trace(TraceKind::DbDecide { rid, outcome: applied });
                    let service = match applied {
                        Outcome::Commit => {
                            let d = jittered(ctx, self.cost.db_commit, self.cost.jitter);
                            ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: d });
                            d
                        }
                        Outcome::Abort => jittered(ctx, self.cost.db_abort, self.cost.jitter),
                    };
                    self.charge_serial(ctx, service)
                };
                let seq = self.engine.ship_position();
                let dur = self.fence_ack(ctx, dur);
                let lease = self.advertised_lease(ctx.now());
                ctx.send_after(
                    dur,
                    from,
                    Payload::DbReply(DbReplyMsg::AckDecide { rid, outcome: applied, seq, lease }),
                );
            }
            DbMsg::SpecExec { slot, entries } => {
                // Speculation stage: the batch just got *proposed* into
                // `slot`; execute it now, against a snapshot overlay,
                // while consensus runs. Primary-only and purely advisory —
                // followers and speculation-off servers ignore the frame.
                if !self.spec.enabled || self.repl.sync_from.is_some() {
                    return;
                }
                let mut fresh_commits = 0usize;
                let mut fresh_aborts = 0usize;
                for &(rid, outcome) in &entries {
                    if self.engine.decision(rid).is_none() {
                        match outcome {
                            Outcome::Commit => fresh_commits += 1,
                            Outcome::Abort => fresh_aborts += 1,
                        }
                    }
                }
                let service = if fresh_commits > 0 {
                    jittered(ctx, self.cost.db_commit, self.cost.jitter)
                } else if fresh_aborts > 0 {
                    jittered(ctx, self.cost.db_abort, self.cost.jitter)
                } else {
                    Dur::ZERO
                };
                if !self.engine.speculate(slot, &entries, service, self.spec_cap()) {
                    return; // a stash for this slot already exists
                }
                // Pre-pay the commit processing on the serial log device
                // *now* — this is the overlap with the consensus round. If
                // the slot decides as proposed, the work is already done
                // (or at least already queued ahead of newer arrivals), and
                // the recorded completion instant — not the then-current
                // device horizon — is all the acknowledgement waits for.
                let queued = self.charge_serial(ctx, service);
                self.spec_ready.insert(slot, ctx.now() + queued);
                // Lockstep with the engine's inflight-cap eviction: the
                // stash set is authoritative, so whatever `speculate`
                // evicted to make room is dropped here too. Evicting from
                // `spec_ready` alone would leave the engine holding a
                // buffer that could later promote with no pre-paid
                // instant — or leak forever on a never-decided slot.
                self.sync_spec_ready();
                debug_assert!(self.spec_ready.contains_key(&slot));
                ctx.trace(TraceKind::SpecExec { slot, len: entries.len() as u32 });
            }
            DbMsg::DecideBatch { slot, entries } => {
                for (rid, _) in &entries {
                    self.unsettled_xa.remove(rid);
                    self.held_votes.remove(rid);
                }
                // Group commit: the whole batch applies behind ONE durable
                // append and one commit-processing charge — the per-request
                // cost the pipeline amortises away. Per-branch semantics
                // (idempotent re-delivery, presumed abort, the §2 decide
                // contract) are exactly those of the single-Decide path.
                let already: HashSet<ResultId> = entries
                    .iter()
                    .filter(|(rid, _)| self.engine.decision(*rid).is_some())
                    .map(|&(rid, _)| rid)
                    .collect();
                // Speculation resolution: a stash whose proposal matches
                // the decided batch exactly is promoted (its device time
                // was pre-paid at SpecExec); a mismatched stash is
                // discarded and the batch replays on the ordinary path
                // below. With speculation off there is never a stash and
                // this is a no-op.
                let had_stash = self.engine.speculation(slot).is_some();
                let ready_at = self.spec_ready.remove(&slot);
                let promoted = self.engine.promote_speculation(slot, &entries);
                // Lockstep with whatever the resolution just evicted: the
                // below-slot GC always, and — on a mismatch — the cascade
                // over every stash above the slot (they were executed
                // against a base this decide just invalidated).
                self.sync_spec_ready();
                if let Some(p) = promoted {
                    ctx.trace(TraceKind::SpecHit { slot, len: p.acks.len() as u32 });
                    if let Some(w) = p.writes.first() {
                        if matches!(w.rec, StableRecord::Group { .. }) {
                            ctx.trace(TraceKind::GroupAppend { len: w.rec.leaves().len() as u32 });
                        }
                    }
                    self.apply_log_writes(ctx, p.writes);
                    let fresh_commits: Vec<ResultId> = p
                        .acks
                        .iter()
                        .filter(|(rid, o)| !already.contains(rid) && *o == Outcome::Commit)
                        .map(|&(rid, _)| rid)
                        .collect();
                    for (rid, outcome) in &p.acks {
                        if !already.contains(rid) {
                            ctx.trace(TraceKind::DbDecide { rid: *rid, outcome: *outcome });
                        }
                    }
                    if !fresh_commits.is_empty() {
                        // Attribute the pre-paid commit cost across the
                        // batch, like the ordinary path does with its own
                        // charge.
                        let share = p.cost.scaled(1.0 / fresh_commits.len() as f64);
                        for &rid in &fresh_commits {
                            ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: share });
                        }
                    }
                    // The device was claimed at SpecExec time; the reply
                    // waits only until *that* pre-paid work completes —
                    // later arrivals queued behind it are not its problem.
                    let now = ctx.now();
                    let dur = match ready_at {
                        Some(t) if t > now => t.since(now),
                        _ => Dur::ZERO,
                    };
                    let seq = self.engine.ship_position();
                    let dur = self.fence_ack(ctx, dur);
                    let lease = self.advertised_lease(ctx.now());
                    ctx.send_after(
                        dur,
                        from,
                        Payload::DbReply(DbReplyMsg::AckDecideBatch {
                            entries: p.acks,
                            seq,
                            lease,
                        }),
                    );
                    self.ship_commits(ctx);
                    return;
                }
                if had_stash {
                    // The decided batch diverged from the speculated one:
                    // the buffered execution is gone, and the DbDecide
                    // traces below are the replay.
                    ctx.trace(TraceKind::SpecAbort { slot });
                }
                let (acks, writes) = self.engine.decide_batch(&entries);
                // Trace only real group frames: a batch whose members yield
                // a single record appends it bare, like the replication path.
                if let Some(w) = writes.first() {
                    if matches!(w.rec, StableRecord::Group { .. }) {
                        ctx.trace(TraceKind::GroupAppend { len: w.rec.leaves().len() as u32 });
                    }
                }
                self.apply_log_writes(ctx, writes);
                let fresh_commits: Vec<ResultId> = acks
                    .iter()
                    .filter(|(rid, o)| !already.contains(rid) && *o == Outcome::Commit)
                    .map(|&(rid, _)| rid)
                    .collect();
                let fresh_aborts = acks
                    .iter()
                    .filter(|(rid, o)| !already.contains(rid) && *o == Outcome::Abort)
                    .count();
                for (rid, outcome) in &acks {
                    if !already.contains(rid) {
                        ctx.trace(TraceKind::DbDecide { rid: *rid, outcome: *outcome });
                    }
                }
                let dur = if !fresh_commits.is_empty() {
                    let d = jittered(ctx, self.cost.db_commit, self.cost.jitter);
                    // Attribute the shared commit cost across the batch so
                    // per-request latency breakdowns stay additive.
                    let share = d.scaled(1.0 / fresh_commits.len() as f64);
                    for &rid in &fresh_commits {
                        ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: share });
                    }
                    self.charge_serial(ctx, d)
                } else if fresh_aborts > 0 {
                    let d = jittered(ctx, self.cost.db_abort, self.cost.jitter);
                    self.charge_serial(ctx, d)
                } else {
                    Dur::ZERO // pure re-delivery: answered from the memo
                };
                let seq = self.engine.ship_position();
                let dur = self.fence_ack(ctx, dur);
                let lease = self.advertised_lease(ctx.now());
                ctx.send_after(
                    dur,
                    from,
                    Payload::DbReply(DbReplyMsg::AckDecideBatch { entries: acks, seq, lease }),
                );
            }
            DbMsg::Read { rid, call, round, ops, min_seq, reply_to } => {
                // The read fast path: execute pure Gets against committed
                // state — no XA branch, no locks, no log traffic. A
                // follower behind the read's freshness stamp must not
                // serve stale state: it forwards the message (reply_to
                // preserved) to its primary, whose committed state is the
                // source of truth the stamp was observed against.
                let is_follower = self.repl.sync_from.is_some();
                // Lease mode: an in-lease follower's applied prefix is
                // authoritative, so the only stamp it must still honour is
                // the issuing client's own causality floor (read-your-writes
                // across a lease boundary). Past expiry it behaves exactly
                // like a stamp-gated lagging follower: forward to the
                // primary.
                let lease_expired =
                    self.leases.enabled && is_follower && ctx.now() >= self.lease_through;
                // Even inside the grant window, serving is refused when the
                // applied prefix has not reached the grant's floor (a bare
                // renewal must not paper over a lost commit shipment) or
                // when any cross-shard branch is announced in doubt here —
                // the forward lands the read on the primary, whose
                // key-level in-doubt check vetoes fractured snapshots.
                let lease_blocked = self.leases.enabled
                    && is_follower
                    && !lease_expired
                    && (self.engine.repl_position() < self.lease_floor
                        || !self.live_intents.is_empty());
                if is_follower
                    && (lease_expired || lease_blocked || self.engine.repl_position() < min_seq)
                {
                    let primary = self.repl.sync_from.expect("follower has a primary");
                    if lease_expired {
                        ctx.trace(TraceKind::LeaseExpired { rid });
                    }
                    ctx.trace(TraceKind::ReadForwarded {
                        rid,
                        have: self.engine.repl_position(),
                        need: min_seq,
                    });
                    ctx.send(
                        primary,
                        Payload::Db(DbMsg::Read { rid, call, round, ops, min_seq, reply_to }),
                    );
                    return;
                }
                if is_follower {
                    ctx.trace(TraceKind::FollowerRead { rid });
                }
                // Values, position and in-doubt flag are sampled at one
                // instant (this event), which is what the issuer's
                // snapshot validation reasons about; the read-lane charge
                // below only delays when the reply *leaves*.
                let outputs = self.engine.read_only(&ops);
                let pos = if is_follower {
                    self.engine.repl_position()
                } else {
                    self.engine.ship_position()
                };
                let indoubt = self.engine.indoubt_read_conflict(&ops);
                let service = jittered(ctx, self.cost.sql_read, self.cost.jitter);
                let dur = self.charge_read(ctx, service);
                ctx.trace(TraceKind::Span { rid, comp: Component::Sql, dur: service });
                // `leased` marks a lease-covered serve (a follower inside
                // its grant, or the granting primary itself) — the issuer's
                // snapshot validation accepts an all-leased collect without
                // the position-stability rule. Only primaries advertise
                // grants onward.
                let leased =
                    self.leases.enabled && (!is_follower || ctx.now() < self.lease_through);
                let lease = if is_follower { None } else { self.advertised_lease(ctx.now()) };
                ctx.send_after(
                    dur,
                    reply_to,
                    Payload::DbReply(DbReplyMsg::ReadReply {
                        rid,
                        call,
                        round,
                        outputs,
                        pos,
                        indoubt,
                        leased,
                        lease,
                    }),
                );
            }
            DbMsg::CommitOnePhase { rid } => {
                self.unsettled_xa.remove(&rid);
                let already = self.engine.decision(rid) == Some(Outcome::Commit);
                let (ok, writes) = self.engine.commit_one_phase(rid);
                self.apply_log_writes(ctx, writes);
                let dur = if ok && !already {
                    ctx.trace(TraceKind::DbDecide { rid, outcome: Outcome::Commit });
                    let d = jittered(ctx, self.cost.db_commit, self.cost.jitter);
                    ctx.trace(TraceKind::Span { rid, comp: Component::Commit, dur: d });
                    self.charge_serial(ctx, d)
                } else {
                    Dur::ZERO
                };
                let dur = self.fence_ack(ctx, dur);
                ctx.send_after(
                    dur,
                    from,
                    Payload::DbReply(DbReplyMsg::AckCommitOnePhase { rid, ok }),
                );
            }
        }
        // Anything the engine just committed ships to the shard's followers
        // (a no-op for standalone servers and non-commit messages).
        self.ship_commits(ctx);
    }

    /// Committed value of a key (test / harness assertions through the
    /// process, without reaching into the engine).
    pub fn committed(&self, key: &str) -> Option<i64> {
        self.engine.committed(key)
    }

    /// Whether a branch is in-doubt right now.
    pub fn is_prepared(&self, rid: ResultId) -> bool {
        self.engine.is_prepared(rid)
    }
}

impl Process for DbServer {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            // Fresh start: nothing to announce (Figure 3 takes
            // `recovery = false` here). A lease-granting primary
            // establishes leases immediately — a read burst that lands
            // before the first heartbeat must find the followers
            // already authoritative — then starts its renewal clock so
            // grants stay alive through write-quiet stretches.
            Event::Init if self.grants_leases() => {
                self.grant_lease_now(ctx);
                ctx.set_timer(self.leases.renew_period(), TimerTag::LeaseRenewTick);
            }
            Event::Init => {}
            Event::Recovered => {
                // Rebuild from the WAL over the seed data, then tell the
                // application servers we are back (Figure 3 lines 1–2).
                let log = ctx.log_read(LOG_WAL);
                self.engine = Engine::recover_with_seed(self.seed_data.clone(), &log);
                // The speculation pre-pay ledger is volatile device state;
                // the rebuilt engine holds no speculation buffers either,
                // so clearing keeps the two in lockstep across a crash.
                self.spec_ready.clear();
                // Prepared branches recovered from the WAL are live
                // cross-shard work: lease renewal stays withheld until
                // their decides arrive.
                if self.leases.enabled {
                    self.unsettled_xa = self.engine.prepared_rids().into_iter().collect();
                }
                // The pre-crash incarnation's grants are unknown (volatile
                // bookkeeping): fence commit acknowledgements for one full
                // lease term so every lease it could have granted provably
                // expires before the recovered primary acks a write.
                self.lease_granted = Time::ZERO;
                self.lease_through = Time::ZERO;
                // Held votes and in-doubt intents are volatile too: a lost
                // vote is aborted by the cleaner, and a recovered follower
                // cannot serve anything until a fresh renewal (whose floor
                // forces full catch-up) arrives anyway.
                self.held_votes.clear();
                self.live_intents.clear();
                self.lease_floor = 0;
                if self.grants_leases() {
                    self.lease_fence = ctx.now() + self.leases.duration;
                    ctx.trace(TraceKind::LeaseFence { until: self.lease_fence });
                    // Fresh grants are safe straight away — a lease only
                    // authorizes serving the follower's *applied prefix*;
                    // it is the write acknowledgements the fence delays.
                    // (Minting is still withheld while WAL-recovered
                    // prepared branches are unsettled, via `lease_safe`.)
                    self.grant_lease_now(ctx);
                    ctx.set_timer(self.leases.renew_period(), TimerTag::LeaseRenewTick);
                }
                for a in self.alist.clone() {
                    ctx.send(a, Payload::DbReply(DbReplyMsg::Ready));
                }
                // Follower role: pull a snapshot to recover the commits the
                // primary shipped while this replica was down.
                self.awaiting_sync = false;
                self.request_sync(ctx);
            }
            Event::Message { from, payload: Payload::Db(m) } => self.on_db_msg(ctx, from, m),
            Event::Message { from, payload: Payload::Repl(m) } => self.on_repl_msg(ctx, from, m),
            Event::Timer { tag: TimerTag::ReplSyncRetry, .. } if self.awaiting_sync => {
                if let Some(primary) = self.repl.sync_from {
                    ctx.send(primary, Payload::Repl(ReplMsg::SyncReq));
                }
                ctx.set_timer(self.repl.sync_retry, TimerTag::ReplSyncRetry);
            }
            Event::Timer { tag: TimerTag::VoteEscape { rid }, .. } => {
                // Escape horizon reached: every lease outstanding when the
                // vote was held has lapsed, so releasing is safe even if
                // some follower never acknowledged the intent.
                self.release_vote(ctx, rid);
            }
            Event::Timer { tag: TimerTag::LeaseRenewTick, .. } => {
                // Renewal heartbeat: grant when safe (withheld while a
                // cross-shard branch is live — the follower's lease then
                // runs out its term and reads forward to the primary's
                // in-doubt veto), and always re-arm.
                self.grant_lease_now(ctx);
                ctx.set_timer(self.leases.renew_period(), TimerTag::LeaseRenewTick);
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "dbserver"
    }
}
