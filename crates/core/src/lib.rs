//! # etx-core — the e-Transaction protocol
//!
//! The paper's primary contribution: exactly-once transactions for
//! three-tier architectures through asynchronous replication of the
//! *transaction-processing state* among stateless application servers.
//!
//! The protocol's three parts map onto three process types:
//!
//! | Paper | Module |
//! |---|---|
//! | Figure 2 — client `issue()` | [`client::EtxClient`] |
//! | Figures 4–6 — application server (compute + clean + terminate) | [`appserver::AppServer`] |
//! | Figure 3 — database server | [`dbserver::DbServer`] |
//!
//! The guarantees (§3) are: **termination** (T.1 the client eventually
//! delivers a result, T.2 every voted branch eventually commits or aborts),
//! **agreement** (A.1 only committed results are delivered, A.2 at most one
//! result commits per request, A.3 databases never disagree) and
//! **validity** (V.1 delivered results were really computed, V.2 commits
//! require unanimous yes votes). The integration and chaos test-suites
//! check all seven on recorded histories.

pub mod appserver;
pub mod client;
pub mod dbserver;
pub mod resultbuild;
pub mod router;

pub use appserver::AppServer;
pub use client::{EtxClient, IssueMode};
pub use dbserver::{DbServer, ReplRole};
pub use router::{route, RoutedPlan};

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::config::{CostModel, FdConfig, ProtocolConfig};
    use etx_base::ids::{NodeId, RequestId, Topology};
    use etx_base::time::{Dur, Time};
    use etx_base::trace::TraceKind;
    use etx_base::value::{DbOp, Outcome, Request, RequestScript};
    use etx_fd::HeartbeatFd;
    use etx_sim::{FaultAction, NetConfig, Sim, SimConfig};

    /// Builds a full three-tier system: 1 client, `apps` app servers,
    /// `dbs` databases; the client issues `plan`.
    fn build_system(
        seed: u64,
        apps: usize,
        dbs: usize,
        plan: Vec<Request>,
        seed_data: Vec<(String, i64)>,
    ) -> (Sim, Topology) {
        let topo = Topology::new(1, apps, dbs);
        let mut cfg = SimConfig::with_seed(seed);
        cfg.cost = CostModel::fast_for_tests();
        cfg.net = NetConfig {
            min_delay: Dur::from_micros(100),
            max_delay: Dur::from_micros(300),
            ..NetConfig::default()
        };
        let mut sim = Sim::new(cfg);
        let pcfg = ProtocolConfig {
            client_backoff: Dur::from_millis(30),
            client_rebroadcast: Dur::from_millis(20),
            client_rebroadcast_max: Dur::from_millis(20),
            terminate_retry: Dur::from_millis(10),
            cleaner_interval: Dur::from_millis(5),
            consensus_resync: Dur::from_millis(8),
            consensus_round_patience: Dur::from_millis(4),
            route_to_last_responder: false,
            features: etx_base::config::FeatureSet::default(),
        };
        let fd_cfg = FdConfig {
            heartbeat_every: Dur::from_millis(2),
            initial_timeout: Dur::from_millis(8),
            timeout_increment: Dur::from_millis(4),
            max_timeout: Dur::from_millis(200),
        };

        // Client first (ids must match Topology::new order).
        {
            let alist = topo.app_servers.clone();
            let pcfg = pcfg.clone();
            let plan = plan.clone();
            sim.add_node(
                "client",
                Box::new(move |_| {
                    Box::new(EtxClient::new(alist.clone(), pcfg.clone(), plan.clone()))
                }),
            );
        }
        for _ in 0..apps {
            let topo_c = topo.clone();
            let pcfg = pcfg.clone();
            sim.add_node(
                "app",
                Box::new(move |me| {
                    Box::new(AppServer::new(
                        me,
                        topo_c.clone(),
                        pcfg.clone(),
                        CostModel::fast_for_tests(),
                        Box::new(HeartbeatFd::new(me, &topo_c.app_servers, fd_cfg)),
                    ))
                }),
            );
        }
        for _ in 0..dbs {
            let alist = topo.app_servers.clone();
            let data = seed_data.clone();
            sim.add_node(
                "db",
                Box::new(move |_| {
                    Box::new(DbServer::new(
                        alist.clone(),
                        CostModel::fast_for_tests(),
                        data.clone(),
                    ))
                }),
            );
        }
        (sim, topo)
    }

    fn bank_request(client: NodeId, seq: u64, db: NodeId) -> Request {
        Request {
            id: RequestId { client, seq },
            script: RequestScript::single(db, vec![DbOp::Add { key: "acct".into(), delta: 100 }]),
        }
    }

    fn delivered_commits(sim: &Sim) -> usize {
        sim.trace().count_kind(|k| matches!(k, TraceKind::Deliver { outcome: Outcome::Commit, .. }))
    }

    #[test]
    fn failure_free_commit_delivers_exactly_once() {
        let topo = Topology::new(1, 3, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, _) = build_system(1, 3, 1, vec![req], vec![("acct".into(), 0)]);
        let out = sim.run_until(|s| delivered_commits(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate, "T.1: client must deliver");
        let commits = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }));
        assert_eq!(commits, 1, "A.2: exactly one committed result");
        let aborts = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Abort, .. }));
        assert_eq!(aborts, 0, "nice run needs no aborts");
    }

    #[test]
    fn doomed_branch_keeps_aborting_and_never_delivers() {
        let topo = Topology::new(1, 3, 1);
        let client = topo.clients[0];
        let db = topo.db_servers[0];
        let req = Request {
            id: RequestId { client, seq: 1 },
            script: RequestScript::single(db, vec![DbOp::Doom]),
        };
        let (mut sim, _) = build_system(3, 3, 1, vec![req], vec![]);
        sim.run_until_time(Time(400_000));
        let aborts = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Abort, .. }));
        assert!(aborts >= 2, "client must retry aborted attempts (got {aborts} aborts)");
        assert_eq!(delivered_commits(&sim), 0, "a doomed script can never commit");
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Deliver { .. })), 0);
    }

    #[test]
    fn sold_out_is_delivered_exactly_once_as_a_result() {
        // Reserving from an empty inventory must still commit and deliver an
        // informative result (paper footnote 4).
        let topo = Topology::new(1, 3, 1);
        let client = topo.clients[0];
        let db = topo.db_servers[0];
        let req = Request {
            id: RequestId { client, seq: 1 },
            script: RequestScript::single(db, vec![DbOp::Reserve { key: "seats".into(), qty: 1 }]),
        };
        let (mut sim, _) = build_system(5, 3, 1, vec![req], vec![("seats".into(), 0)]);
        let out = sim.run_until(|s| delivered_commits(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate);
        assert_eq!(
            sim.trace()
                .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. })),
            1
        );
    }

    #[test]
    fn multiple_sequential_requests_all_commit() {
        let topo = Topology::new(1, 3, 1);
        let client = topo.clients[0];
        let db = topo.db_servers[0];
        let plan: Vec<Request> = (1..=5).map(|i| bank_request(client, i, db)).collect();
        let (mut sim, _) = build_system(7, 3, 1, plan, vec![("acct".into(), 0)]);
        let out = sim.run_until(|s| delivered_commits(s) == 5);
        assert_eq!(out, etx_sim::RunOutcome::Predicate);
        let commits = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }));
        assert_eq!(commits, 5);
    }

    #[test]
    fn primary_crash_before_request_fails_over_via_backoff_broadcast() {
        let topo = Topology::new(1, 3, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build_system(9, 3, 1, vec![req], vec![("acct".into(), 0)]);
        sim.crash_at(Time(0), topo.app_servers[0]);
        let out = sim.run_until(|s| delivered_commits(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate, "back-off broadcast must fail over");
        let commits = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }));
        assert_eq!(commits, 1, "A.2 under fail-over");
    }

    #[test]
    fn owner_crash_after_rega_is_cleaned_with_abort_then_retry_commits() {
        // Figure 1(d): the owner crashes right after winning regA (before
        // computing). The cleaner must abort the attempt; the client retries
        // and the retry commits. Exactly one commit overall.
        let topo = Topology::new(1, 3, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build_system(11, 3, 1, vec![req], vec![("acct".into(), 0)]);
        let a1 = topo.app_servers[0];
        sim.on_trace(
            move |ev| {
                ev.node == a1
                    && matches!(
                        ev.kind,
                        TraceKind::Span { comp: etx_base::trace::Component::LogStart, .. }
                    )
            },
            FaultAction::Crash(a1),
        );
        let out = sim.run_until(|s| delivered_commits(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate, "cleaner + retry must finish the job");
        let commits = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }));
        assert_eq!(commits, 1, "A.2: still exactly one commit");
        let delivered_attempt = sim
            .trace()
            .events()
            .iter()
            .find_map(|e| match e.kind {
                TraceKind::Deliver { rid, .. } => Some(rid.attempt),
                _ => None,
            })
            .unwrap();
        assert!(delivered_attempt >= 2, "first attempt was owned by the crashed primary");
        assert!(sim.trace().count_kind(|k| matches!(k, TraceKind::CleanerTakeover { .. })) >= 1);
    }

    #[test]
    fn owner_crash_after_regd_commit_is_finished_by_cleaner_fig1c() {
        // Figure 1(c): the owner crashes after regD decides commit but
        // before terminating. The cleaner's write returns (result, commit)
        // and must FINISH the commitment — the client delivers attempt 1.
        let topo = Topology::new(1, 3, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build_system(13, 3, 1, vec![req], vec![("acct".into(), 0)]);
        let a1 = topo.app_servers[0];
        sim.on_trace(
            move |ev| {
                ev.node == a1
                    && matches!(
                        ev.kind,
                        TraceKind::Span { comp: etx_base::trace::Component::LogOutcome, .. }
                    )
            },
            FaultAction::Crash(a1),
        );
        let out = sim.run_until(|s| delivered_commits(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate, "fail-over with commit must deliver");
        let (delivered_attempt, outcome) = sim
            .trace()
            .events()
            .iter()
            .find_map(|e| match e.kind {
                TraceKind::Deliver { rid, outcome, .. } => Some((rid.attempt, outcome)),
                _ => None,
            })
            .unwrap();
        assert_eq!(outcome, Outcome::Commit);
        assert_eq!(delivered_attempt, 1, "the ORIGINAL attempt's commit is delivered");
        let commits = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }));
        assert_eq!(commits, 1);
    }

    #[test]
    fn db_crash_recovery_mid_protocol_does_not_lose_exactly_once() {
        // Crash the database right after it votes; it recovers with the
        // prepared branch in-doubt and must still terminate (T.2).
        let topo = Topology::new(1, 3, 1);
        let req = bank_request(topo.clients[0], 1, topo.db_servers[0]);
        let (mut sim, topo) = build_system(15, 3, 1, vec![req], vec![("acct".into(), 0)]);
        let db = topo.db_servers[0];
        sim.on_trace(
            move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbVote { .. }),
            FaultAction::CrashRecover(db, Dur::from_millis(20)),
        );
        let out = sim.run_until(|s| delivered_commits(s) >= 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate, "client must eventually deliver");
        let commits = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }));
        assert_eq!(commits, 1, "A.2 across database crash-recovery");
    }

    #[test]
    fn multi_database_transaction_commits_atomically() {
        let topo = Topology::new(1, 3, 2);
        let client = topo.clients[0];
        let (d1, d2) = (topo.db_servers[0], topo.db_servers[1]);
        let req = Request {
            id: RequestId { client, seq: 1 },
            script: RequestScript::from_calls(vec![
                etx_base::value::DbCall::new(
                    d1,
                    vec![DbOp::Add { key: "checking".into(), delta: -50 }],
                ),
                etx_base::value::DbCall::new(
                    d2,
                    vec![DbOp::Add { key: "savings".into(), delta: 50 }],
                ),
            ]),
        };
        let (mut sim, _) = build_system(
            17,
            3,
            2,
            vec![req],
            vec![("checking".into(), 100), ("savings".into(), 0)],
        );
        let out = sim.run_until(|s| delivered_commits(s) == 1);
        assert_eq!(out, etx_sim::RunOutcome::Predicate);
        let commits = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }));
        assert_eq!(commits, 2, "both branches commit (A.3)");
    }
}
