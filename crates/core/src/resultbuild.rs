//! Turning database-operation outputs into a user-facing [`ResultValue`].
//!
//! The paper's `compute()` returns "information computed by the business
//! logic, such as reservation number and hotel name" (§2). Our generic
//! business logic labels each operation's outcome with the key it touched,
//! so a travel booking yields entries like `("booked:flight-LH100", 41)` and
//! a failed reservation yields the user-level `("sold_out", 1)` notice.
//! Every protocol in the workspace (e-Transactions and all three baselines)
//! builds results the same way, so latency comparisons compare like with
//! like.

use etx_base::value::{DbCall, OpOutput, ResultValue};

/// Folds one call's outputs into the accumulating result entries.
pub fn accumulate(call: &DbCall, outputs: &[OpOutput], acc: &mut Vec<(String, i64)>) {
    for (op, out) in call.ops.iter().zip(outputs.iter()) {
        match (op.key(), out) {
            (Some(k), OpOutput::Value(v)) => acc.push((k.to_string(), v.unwrap_or(-1))),
            (Some(k), OpOutput::Updated(v)) => acc.push((k.to_string(), *v)),
            (Some(k), OpOutput::Reserved { remaining }) => {
                acc.push((format!("booked:{k}"), *remaining));
            }
            (_, OpOutput::SoldOut) => acc.push(("sold_out".to_string(), 1)),
            (_, OpOutput::Doomed) => acc.push(("doomed".to_string(), 1)),
            _ => {}
        }
    }
}

/// Finishes a result: appends the attempt number (a visible, unique
/// confirmation element) and wraps up.
pub fn finish(mut acc: Vec<(String, i64)>, attempt: u32) -> ResultValue {
    acc.push(("attempt".to_string(), attempt as i64));
    ResultValue::new(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::NodeId;
    use etx_base::value::DbOp;

    #[test]
    fn accumulate_labels_outputs() {
        let call = DbCall {
            db: NodeId(5),
            ops: vec![
                DbOp::Get { key: "hotel".into() },
                DbOp::Reserve { key: "seat".into(), qty: 1 },
                DbOp::Reserve { key: "car".into(), qty: 1 },
            ],
        };
        let outputs =
            vec![OpOutput::Value(Some(3)), OpOutput::Reserved { remaining: 9 }, OpOutput::SoldOut];
        let mut acc = Vec::new();
        accumulate(&call, &outputs, &mut acc);
        let result = finish(acc, 2);
        assert_eq!(result.field("hotel"), Some(3));
        assert_eq!(result.field("booked:seat"), Some(9));
        assert_eq!(result.field("sold_out"), Some(1));
        assert_eq!(result.field("attempt"), Some(2));
        assert!(result.is_user_level_problem());
    }

    #[test]
    fn missing_value_reads_as_minus_one() {
        let call = DbCall { db: NodeId(0), ops: vec![DbOp::Get { key: "nope".into() }] };
        let mut acc = Vec::new();
        accumulate(&call, &[OpOutput::Value(None)], &mut acc);
        assert_eq!(acc, vec![("nope".to_string(), -1)]);
    }
}
