//! Turning database-operation outputs into a user-facing [`ResultValue`].
//!
//! The paper's `compute()` returns "information computed by the business
//! logic, such as reservation number and hotel name" (§2). Our generic
//! business logic labels each operation's outcome with the key it touched,
//! so a travel booking yields entries like `("booked:flight-LH100", 41)` and
//! a failed reservation yields the user-level `("sold_out", 1)` notice.
//! Every protocol in the workspace (e-Transactions and all three baselines)
//! builds results the same way, so latency comparisons compare like with
//! like.

use etx_base::value::{DbCall, OpOutput, ResultValue};

/// Folds one call's outputs into the accumulating result entries.
pub fn accumulate(call: &DbCall, outputs: &[OpOutput], acc: &mut Vec<(String, i64)>) {
    for (op, out) in call.ops.iter().zip(outputs.iter()) {
        match (op.key(), out) {
            (Some(k), OpOutput::Value(v)) => acc.push((k.to_string(), v.unwrap_or(-1))),
            (Some(k), OpOutput::Updated(v)) => acc.push((k.to_string(), *v)),
            (Some(k), OpOutput::Reserved { remaining }) => {
                acc.push((format!("booked:{k}"), *remaining));
            }
            (_, OpOutput::SoldOut) => acc.push(("sold_out".to_string(), 1)),
            (_, OpOutput::Doomed) => acc.push(("doomed".to_string(), 1)),
            _ => {}
        }
    }
}

/// Finishes a result: appends the attempt number (a visible, unique
/// confirmation element) and wraps up.
pub fn finish(mut acc: Vec<(String, i64)>, attempt: u32) -> ResultValue {
    acc.push(("attempt".to_string(), attempt as i64));
    ResultValue::new(acc)
}

/// Merges the per-shard outputs of a fan-out **fast-path read** into one
/// user-facing result: each call's outputs accumulate in script order —
/// exactly the labelling the slow path performs call by call during
/// `compute()`. The caller only invokes this with an *accepted* collect
/// (single-shard, or a snapshot-validated multi-shard round — see
/// `AppServer`'s read lane), so the merged values are ones a committed
/// read-only transaction could have returned: the fan-out never leaks a
/// fractured cross-shard state into a result.
pub fn merge_read(calls: &[DbCall], outputs: &[Vec<OpOutput>], attempt: u32) -> ResultValue {
    debug_assert_eq!(calls.len(), outputs.len(), "one output batch per routed call");
    let mut acc = Vec::new();
    for (call, outs) in calls.iter().zip(outputs) {
        accumulate(call, outs, &mut acc);
    }
    finish(acc, attempt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::NodeId;
    use etx_base::value::DbOp;

    #[test]
    fn accumulate_labels_outputs() {
        let call = DbCall::new(
            NodeId(5),
            vec![
                DbOp::Get { key: "hotel".into() },
                DbOp::Reserve { key: "seat".into(), qty: 1 },
                DbOp::Reserve { key: "car".into(), qty: 1 },
            ],
        );
        let outputs =
            vec![OpOutput::Value(Some(3)), OpOutput::Reserved { remaining: 9 }, OpOutput::SoldOut];
        let mut acc = Vec::new();
        accumulate(&call, &outputs, &mut acc);
        let result = finish(acc, 2);
        assert_eq!(result.field("hotel"), Some(3));
        assert_eq!(result.field("booked:seat"), Some(9));
        assert_eq!(result.field("sold_out"), Some(1));
        assert_eq!(result.field("attempt"), Some(2));
        assert!(result.is_user_level_problem());
    }

    #[test]
    fn missing_value_reads_as_minus_one() {
        let call = DbCall::new(NodeId(0), vec![DbOp::Get { key: "nope".into() }]);
        let mut acc = Vec::new();
        accumulate(&call, &[OpOutput::Value(None)], &mut acc);
        assert_eq!(acc, vec![("nope".to_string(), -1)]);
    }

    #[test]
    fn merge_read_folds_calls_in_script_order() {
        let calls = vec![
            DbCall::new(NodeId(10), vec![DbOp::Get { key: "a".into() }]),
            DbCall::new(NodeId(11), vec![DbOp::Get { key: "b".into() }]),
        ];
        let outputs = vec![vec![OpOutput::Value(Some(1))], vec![OpOutput::Value(Some(2))]];
        let merged = merge_read(&calls, &outputs, 3);
        assert_eq!(merged.field("a"), Some(1));
        assert_eq!(merged.field("b"), Some(2));
        assert_eq!(merged.field("attempt"), Some(3));
        assert_eq!(merged.entries[0].0, "a", "script order preserved across the fan-out");
    }
}
