//! Shard routing: turning key-addressed scripts into per-shard XA branches.
//!
//! The paper's application server calls `compute()`, which "manipulates the
//! databases" (Figure 5) — *which* databases is an addressing concern the
//! protocol is agnostic about. This module is that addressing layer for a
//! partitioned back end: given a [`ShardMap`], a key-addressed script is
//! split into one [`DbCall`] per touched shard, each aimed at the shard's
//! primary replica. The resulting explicit calls flow through the existing
//! compute → prepare → decide machinery unchanged, which is exactly what
//! makes every shard an autonomous XA branch of the same distributed
//! transaction.
//!
//! Routing is deterministic and local: every application-server replica
//! holds the same map, so an attempt's branch layout never depends on
//! which replica wins `regA`. Single-shard transactions produce a single
//! call — byte-for-byte the plan an unsharded scenario would have used, so
//! the paper's one-database fast path (one Exec, one Prepare, one Decide)
//! is preserved.

use etx_base::shard::{ShardId, ShardMap};
use etx_base::value::{DbCall, DbOp, Request, RequestScript};

/// A routed plan: explicit per-shard calls plus the shards they span.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedPlan {
    /// One call per touched shard, in first-touch order, each addressed to
    /// the shard's primary replica.
    pub calls: Vec<DbCall>,
    /// The touched shards, aligned with `calls`.
    pub shards: Vec<ShardId>,
}

/// Splits key-addressed operations into per-shard batches.
///
/// Grouping is by the shard of each operation's key, in first-touch order;
/// the relative order of operations within a shard is preserved. Keyless
/// operations ([`DbOp::Doom`]) stick to the shard of the most recent keyed
/// operation (or the first shard of the map when the script leads with
/// one) — dooming is a branch-local statement, so it belongs to whichever
/// branch the business logic was talking to.
pub fn route(ops: &[DbOp], map: &ShardMap) -> RoutedPlan {
    let mut shards: Vec<ShardId> = Vec::new();
    let mut batches: Vec<Vec<DbOp>> = Vec::new();
    let mut current = ShardId(0);
    for op in ops {
        let shard = match op.key() {
            Some(key) => map.shard_of(key),
            None => current,
        };
        current = shard;
        let idx = match shards.iter().position(|&s| s == shard) {
            Some(i) => i,
            None => {
                shards.push(shard);
                batches.push(Vec::new());
                shards.len() - 1
            }
        };
        batches[idx].push(op.clone());
    }
    let calls = shards
        .iter()
        .zip(batches)
        .map(|(&shard, ops)| DbCall::new(map.primary(shard), ops))
        .collect();
    RoutedPlan { calls, shards }
}

/// Materializes a request for execution: key-addressed scripts are routed
/// into explicit per-shard calls (returning how many shards the
/// transaction spans); explicitly-addressed scripts pass through untouched
/// (`None` — no routing happened).
pub fn materialize(request: Request, map: &ShardMap) -> (Request, Option<u32>) {
    if !request.script.is_keyed() {
        return (request, None);
    }
    let plan = route(&request.script.keyed_ops, map);
    let span = plan.shards.len() as u32;
    let routed = Request { id: request.id, script: RequestScript::from_calls(plan.calls) };
    (routed, Some(span))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::{NodeId, RequestId};
    use etx_base::shard::ShardSpec;

    fn map(shards: u32) -> ShardMap {
        let dbs: Vec<NodeId> = (10..10 + shards).map(NodeId).collect();
        ShardMap::build(ShardSpec::Hash { shards }, &dbs, 1)
    }

    fn add(key: &str) -> DbOp {
        DbOp::Add { key: key.into(), delta: 1 }
    }

    #[test]
    fn single_shard_scripts_route_to_one_call() {
        let m = map(4);
        let plan = route(&[add("k"), DbOp::Get { key: "k".into() }], &m);
        assert_eq!(plan.calls.len(), 1);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.calls[0].db, m.primary(plan.shards[0]));
        assert_eq!(plan.calls[0].ops.len(), 2);
    }

    #[test]
    fn ops_group_by_shard_preserving_order() {
        let m = map(8);
        // Find two keys on different shards.
        let (mut a, mut b) = (String::new(), String::new());
        for i in 0..64 {
            let k = format!("key{i}");
            if a.is_empty() {
                a = k;
            } else if m.shard_of(&k) != m.shard_of(&a) {
                b = k;
                break;
            }
        }
        assert!(!b.is_empty(), "hash must spread 64 keys over 8 shards");
        let plan = route(&[add(&a), add(&b), DbOp::Get { key: a.clone() }], &m);
        assert_eq!(plan.calls.len(), 2, "two shards, two branches");
        assert_eq!(plan.shards[0], m.shard_of(&a), "first-touch order");
        assert_eq!(plan.calls[0].ops.len(), 2, "both ops on a's shard batched together");
        assert_eq!(plan.calls[1].ops.len(), 1);
        let total: usize = plan.calls.iter().map(|c| c.ops.len()).sum();
        assert_eq!(total, 3, "every op routed exactly once");
    }

    #[test]
    fn doom_sticks_to_the_current_branch() {
        let m = map(4);
        let plan = route(&[add("x"), DbOp::Doom], &m);
        assert_eq!(plan.calls.len(), 1, "doom joins x's branch");
        let leading = route(&[DbOp::Doom], &m);
        assert_eq!(leading.shards, vec![ShardId(0)], "leading doom lands on shard 0");
    }

    #[test]
    fn materialize_keyed_and_passthrough() {
        let m = map(2);
        let id = RequestId { client: NodeId(0), seq: 1 };
        let keyed = Request { id, script: RequestScript::keyed(vec![add("k")]) };
        let (routed, span) = materialize(keyed, &m);
        assert!(!routed.script.is_keyed());
        assert_eq!(span, Some(1));
        assert_eq!(routed.script.calls.len(), 1);

        let explicit = Request { id, script: RequestScript::single(NodeId(11), vec![add("k")]) };
        let (same, span) = materialize(explicit.clone(), &m);
        assert_eq!(same, explicit, "explicit scripts bypass routing");
        assert_eq!(span, None);
    }

    #[test]
    fn routing_is_deterministic_across_rebuilt_maps() {
        let ops: Vec<DbOp> = (0..20).map(|i| add(&format!("acct{i}"))).collect();
        let p1 = route(&ops, &map(4));
        let p2 = route(&ops, &map(4));
        assert_eq!(p1, p2);
    }
}
