//! # etx-fd — failure detectors for the application-server tier
//!
//! The e-Transaction protocol assumes an **eventually perfect (◇P)** failure
//! detector among application servers (§4): *completeness* (a crashed server
//! is eventually suspected by every correct server, permanently) and
//! *eventual accuracy* (there is a time after which no correct server is
//! suspected). Suspicion mistakes are tolerated — they may cost aborted
//! attempts, never safety.
//!
//! [`HeartbeatFd`] implements ◇P the standard way: periodic heartbeats and a
//! per-peer **adaptive timeout** that grows whenever a suspicion turns out
//! to be false, so in runs where message delays are eventually bounded and
//! crashes stop, suspicions eventually stabilise to exactly the crashed set.
//!
//! [`ScriptedFd`] wraps any detector and forces suspicion windows — the
//! instrument used by tests to drive the protocol into its
//! multiple-concurrent-primaries regime ("active replication mode", §5).
//!
//! The detector is a *component*, not a process: the application server owns
//! one and forwards runtime events to it. The primary-backup baseline does
//! **not** use this crate — it needs a *perfect* detector, which only the
//! simulator's crash oracle can provide (that fragility is the paper's
//! point).

use etx_base::config::FdConfig;
use etx_base::ids::NodeId;
use etx_base::msg::{FdMsg, Payload};
use etx_base::runtime::{Context, Event, TimerTag};
use etx_base::time::Time;
use etx_base::trace::TraceKind;
use std::collections::{HashMap, HashSet};

/// A suspicion-state change, reported so callers can trace and react.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdTransition {
    /// `peer` is now suspected.
    Suspect(NodeId),
    /// `peer` is no longer suspected (we heard from it again).
    Unsuspect(NodeId),
}

/// Interface the application server programs against (the paper's
/// `suspect()` predicate, Appendix 1).
///
/// `Send` because the owning process may be hosted on the threaded runtime
/// backend, which runs each process on its own OS thread.
pub trait FailureDetector: Send {
    /// Called once from the owning process's `Init`.
    fn on_init(&mut self, ctx: &mut dyn Context);

    /// Feeds a runtime event to the detector. Returns any suspicion
    /// transitions it caused. Non-FD events are ignored.
    fn handle(&mut self, ctx: &mut dyn Context, event: &Event) -> Vec<FdTransition>;

    /// The paper's `suspect(a_i)` predicate.
    fn suspects(&self, peer: NodeId) -> bool;

    /// Current suspicion set (for the cleaner's scan).
    fn suspected(&self) -> Vec<NodeId>;
}

/// Heartbeat-based ◇P detector with adaptive per-peer timeouts.
#[derive(Debug)]
pub struct HeartbeatFd {
    cfg: FdConfig,
    peers: Vec<NodeId>,
    last_heard: HashMap<NodeId, Time>,
    timeout: HashMap<NodeId, etx_base::time::Dur>,
    suspected: HashSet<NodeId>,
    seq: u64,
    started: bool,
}

impl HeartbeatFd {
    /// Creates a detector for `me` monitoring `peers` (our own id is
    /// filtered out defensively).
    pub fn new(me: NodeId, peers: &[NodeId], cfg: FdConfig) -> Self {
        let peers: Vec<NodeId> = peers.iter().copied().filter(|&p| p != me).collect();
        let timeout = peers.iter().map(|&p| (p, cfg.initial_timeout)).collect();
        HeartbeatFd {
            cfg,
            peers,
            last_heard: HashMap::new(),
            timeout,
            suspected: HashSet::new(),
            seq: 0,
            started: false,
        }
    }

    fn beat(&mut self, ctx: &mut dyn Context) {
        self.seq += 1;
        for &p in &self.peers {
            ctx.send(p, Payload::Fd(FdMsg::Heartbeat { seq: self.seq }));
        }
        ctx.set_timer(self.cfg.heartbeat_every, TimerTag::FdHeartbeat);
    }

    fn check(&mut self, ctx: &mut dyn Context) -> Vec<FdTransition> {
        let now = ctx.now();
        let mut out = Vec::new();
        for &p in &self.peers {
            if self.suspected.contains(&p) {
                continue;
            }
            let heard = self.last_heard.get(&p).copied().unwrap_or(Time::ZERO);
            let timeout = self.timeout[&p];
            if now.since(heard) > timeout {
                self.suspected.insert(p);
                ctx.trace(TraceKind::Suspect { peer: p });
                out.push(FdTransition::Suspect(p));
            }
        }
        ctx.set_timer(self.cfg.heartbeat_every, TimerTag::FdCheck);
        out
    }

    fn heard_from(&mut self, ctx: &mut dyn Context, from: NodeId) -> Vec<FdTransition> {
        if !self.peers.contains(&from) {
            return Vec::new();
        }
        self.last_heard.insert(from, ctx.now());
        if self.suspected.remove(&from) {
            // False suspicion: be more patient with this peer from now on —
            // the adaptation that yields eventual accuracy.
            if let Some(t) = self.timeout.get_mut(&from) {
                *t = (*t + self.cfg.timeout_increment).min(self.cfg.max_timeout);
            }
            ctx.trace(TraceKind::Unsuspect { peer: from });
            vec![FdTransition::Unsuspect(from)]
        } else {
            Vec::new()
        }
    }
}

impl FailureDetector for HeartbeatFd {
    fn on_init(&mut self, ctx: &mut dyn Context) {
        if self.started {
            return;
        }
        self.started = true;
        let now = ctx.now();
        for &p in &self.peers {
            self.last_heard.insert(p, now);
        }
        self.beat(ctx);
        ctx.set_timer(self.cfg.heartbeat_every, TimerTag::FdCheck);
    }

    fn handle(&mut self, ctx: &mut dyn Context, event: &Event) -> Vec<FdTransition> {
        match event {
            Event::Timer { tag: TimerTag::FdHeartbeat, .. } => {
                self.beat(ctx);
                Vec::new()
            }
            Event::Timer { tag: TimerTag::FdCheck, .. } => self.check(ctx),
            Event::Message { from, payload: Payload::Fd(FdMsg::Heartbeat { .. }) } => {
                self.heard_from(ctx, *from)
            }
            // Any protocol message from a peer is also a proof of life.
            Event::Message { from, payload } if !payload.is_background() => {
                self.heard_from(ctx, *from)
            }
            _ => Vec::new(),
        }
    }

    fn suspects(&self, peer: NodeId) -> bool {
        self.suspected.contains(&peer)
    }

    fn suspected(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.suspected.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

/// A forced-suspicion window for fault-injection tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedSuspicion {
    /// Who to falsely suspect.
    pub peer: NodeId,
    /// Window start (inclusive).
    pub from: Time,
    /// Window end (exclusive).
    pub until: Time,
}

/// Wraps an inner detector and adds scripted false-suspicion windows. Used
/// by tests to exercise the protocol's tolerance of unreliable failure
/// detection (multiple concurrent primaries, cleaner-vs-owner races).
pub struct ScriptedFd<I> {
    inner: I,
    forced: Vec<ForcedSuspicion>,
    now: Time,
}

impl<I: std::fmt::Debug> std::fmt::Debug for ScriptedFd<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedFd")
            .field("inner", &self.inner)
            .field("forced", &self.forced)
            .finish()
    }
}

impl<I: FailureDetector> ScriptedFd<I> {
    /// Wraps `inner`, forcing the given suspicion windows.
    pub fn new(inner: I, forced: Vec<ForcedSuspicion>) -> Self {
        ScriptedFd { inner, forced, now: Time::ZERO }
    }

    fn forced_now(&self, peer: NodeId) -> bool {
        self.forced.iter().any(|w| w.peer == peer && w.from <= self.now && self.now < w.until)
    }
}

impl<I: FailureDetector> FailureDetector for ScriptedFd<I> {
    fn on_init(&mut self, ctx: &mut dyn Context) {
        self.now = ctx.now();
        self.inner.on_init(ctx);
    }

    fn handle(&mut self, ctx: &mut dyn Context, event: &Event) -> Vec<FdTransition> {
        self.now = ctx.now();
        self.inner.handle(ctx, event)
    }

    fn suspects(&self, peer: NodeId) -> bool {
        self.forced_now(peer) || self.inner.suspects(peer)
    }

    fn suspected(&self) -> Vec<NodeId> {
        let mut v = self.inner.suspected();
        for w in &self.forced {
            if w.from <= self.now && self.now < w.until && !v.contains(&w.peer) {
                v.push(w.peer);
            }
        }
        v.sort_unstable();
        v
    }
}

/// A detector that never suspects anyone. Useful for failure-free
/// experiments where FD noise would only add trace volume.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullFd;

impl FailureDetector for NullFd {
    fn on_init(&mut self, _: &mut dyn Context) {}
    fn handle(&mut self, _: &mut dyn Context, _: &Event) -> Vec<FdTransition> {
        Vec::new()
    }
    fn suspects(&self, _: NodeId) -> bool {
        false
    }
    fn suspected(&self) -> Vec<NodeId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::runtime::Process;
    use etx_sim::{Sim, SimConfig};

    /// Host process that just runs a detector and nothing else.
    struct FdHost {
        fd: Box<dyn FailureDetector>,
    }
    impl Process for FdHost {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            if matches!(event, Event::Init) {
                self.fd.on_init(ctx);
            } else {
                self.fd.handle(ctx, &event);
            }
        }
    }

    fn three_hosts(seed: u64) -> (Sim, Vec<NodeId>) {
        let mut sim = Sim::new(SimConfig::with_seed(seed));
        let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
        for _ in 0..3 {
            let peers = ids.clone();
            sim.add_node(
                "fd",
                Box::new(move |me| {
                    Box::new(FdHost {
                        fd: Box::new(HeartbeatFd::new(me, &peers, FdConfig::default())),
                    })
                }),
            );
        }
        (sim, ids)
    }

    #[test]
    fn no_suspicions_without_crashes() {
        let (mut sim, _) = three_hosts(1);
        sim.run_until_time(Time(2_000_000));
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Suspect { .. })), 0);
    }

    #[test]
    fn completeness_crashed_peer_gets_suspected_by_all() {
        let (mut sim, ids) = three_hosts(2);
        sim.crash_at(Time(500_000), ids[0]);
        sim.run_until_time(Time(2_000_000));
        let suspects_of_crashed = sim
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Suspect { peer } if peer == ids[0]))
            .map(|e| e.node)
            .collect::<std::collections::HashSet<_>>();
        assert_eq!(suspects_of_crashed.len(), 2, "both survivors must suspect the crashed node");
        // And never unsuspect it.
        assert_eq!(
            sim.trace()
                .count_kind(|k| matches!(k, TraceKind::Unsuspect { peer } if *peer == ids[0])),
            0
        );
    }

    #[test]
    fn eventual_accuracy_after_transient_partition() {
        let (mut sim, ids) = three_hosts(3);
        // Cut node 0 off for 400 ms — long enough to trigger suspicion with
        // the 80 ms initial timeout.
        sim.partition(&[ids[0]], &[ids[1], ids[2]], Time(400_000));
        sim.run_until_time(Time(3_000_000));
        let false_suspicions =
            sim.trace().count_kind(|k| matches!(k, TraceKind::Suspect { peer } if *peer == ids[0]));
        assert!(false_suspicions >= 1, "partition should cause false suspicion");
        let unsuspects = sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::Unsuspect { peer } if *peer == ids[0]));
        assert!(unsuspects >= 1, "suspicion must be withdrawn after heal");
        // After things settle, nobody suspects anybody: no transitions in
        // the last second.
        let late_suspects = sim
            .trace()
            .events()
            .iter()
            .filter(|e| e.at > Time(2_000_000))
            .filter(|e| matches!(e.kind, TraceKind::Suspect { .. }))
            .count();
        assert_eq!(late_suspects, 0, "no suspicions once delays are bounded again");
    }

    #[test]
    fn adaptive_timeout_grows_on_false_suspicion() {
        let cfg = FdConfig::default();
        let mut sim = Sim::new(SimConfig::with_seed(4));
        let ids: Vec<NodeId> = (0..2).map(NodeId).collect();
        for _ in 0..2 {
            let peers = ids.clone();
            sim.add_node(
                "fd",
                Box::new(move |me| {
                    Box::new(FdHost { fd: Box::new(HeartbeatFd::new(me, &peers, cfg)) })
                }),
            );
        }
        // Repeated short partitions: each false suspicion should bump the
        // timeout, so the *number* of suspicions should be sub-linear in the
        // number of partitions.
        for i in 0..6u64 {
            let start = Time(200_000 + i * 400_000);
            let heal = Time(start.0 + 150_000);
            sim.partition(&[ids[0]], &[ids[1]], heal);
        }
        sim.run_until_time(Time(4_000_000));
        let suspicions =
            sim.trace().count_kind(|k| matches!(k, TraceKind::Suspect { peer } if *peer == ids[0]));
        assert!(
            suspicions < 6,
            "adaptation should eliminate later false suspicions (got {suspicions})"
        );
    }

    #[test]
    fn scripted_fd_forces_windows() {
        let mut fd = ScriptedFd::new(
            NullFd,
            vec![ForcedSuspicion { peer: NodeId(7), from: Time(100), until: Time(200) }],
        );
        // Before the window.
        assert!(!fd.suspects(NodeId(7)));
        fd.now = Time(150);
        assert!(fd.suspects(NodeId(7)));
        assert_eq!(fd.suspected(), vec![NodeId(7)]);
        fd.now = Time(250);
        assert!(!fd.suspects(NodeId(7)));
    }

    #[test]
    fn null_fd_is_silent() {
        let fd = NullFd;
        assert!(!fd.suspects(NodeId(0)));
        assert!(fd.suspected().is_empty());
    }

    #[test]
    fn own_id_filtered_from_peers() {
        let fd =
            HeartbeatFd::new(NodeId(1), &[NodeId(0), NodeId(1), NodeId(2)], FdConfig::default());
        assert_eq!(fd.peers, vec![NodeId(0), NodeId(2)]);
    }
}
