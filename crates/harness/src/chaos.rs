//! Randomized fault-schedule exploration ("chaos testing").
//!
//! A seed deterministically generates a fault schedule — application-server
//! crashes (bounded by the minority assumption), database crash/recovery
//! cycles, false-suspicion windows, message loss — and the runner checks
//! the full e-Transaction specification on the resulting history. Every
//! failure is reproducible from its seed.
//!
//! Faults are expressed through the backend-neutral fault plane
//! ([`Scenario::schedule_fault`] / [`etx_base::fault::FaultOp`]), so one
//! nemesis schedule drives either runtime: on the simulator it replays the
//! historical direct-call schedules byte-identically, and the `*_on`
//! runners accept a [`RuntimeKind`] to run the same schedule against the
//! multi-threaded host — real threads, real crashes, the same §3 judge.

use crate::properties::{check, LivenessChecks, PropertyReport};
use crate::scenario::{MiddleTier, Scenario, ScenarioBuilder};
use crate::workloads::Workload;
use etx_base::config::{BatchingConfig, ReadPathConfig, SpeculationConfig};
use etx_base::fault::{FaultOp, NemesisWhen};
use etx_base::runtime::RuntimeKind;
use etx_base::time::{Dur, Time};
use etx_base::trace::TraceKind;
use etx_fd::ForcedSuspicion;
use etx_sim::{NetConfig, Rng, RunOutcome};

/// Knobs of the chaos generator.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Application-server replicas (3 or 5 keep a crashable minority).
    pub apps: usize,
    /// Databases.
    pub dbs: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub requests: u64,
    /// Maximum app-server crashes (clamped to a minority).
    pub max_app_crashes: usize,
    /// Maximum database crash/recovery cycles.
    pub max_db_cycles: usize,
    /// Maximum forced false-suspicion windows.
    pub max_false_suspicions: usize,
    /// Message-loss probability (absorbed by reliable channels as delay).
    pub loss_rate: f64,
    /// Sharded back end: partition the keyspace over this many shards and
    /// run key-addressed workloads. `None` keeps the flat `dbs` tier and
    /// the original explicitly-addressed workloads.
    pub shards: Option<u32>,
    /// Replica-group size per shard (only meaningful with `shards`).
    pub replication: usize,
    /// Seed of the **fault schedule**, independent of the scenario seed.
    /// `None` derives it from the run seed (the reproducible default).
    /// Keeping chaos randomness out of the workload/scenario stream is what
    /// makes parameter sweeps (e.g. `.shards()`) comparable across chaos
    /// on/off: the same run seed drives the same workload either way.
    pub chaos_seed: Option<u64>,
    /// Commit-pipeline depth for the scenario (1 = per-request slots).
    pub batch_size: usize,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            apps: 3,
            dbs: 1,
            clients: 1,
            requests: 2,
            max_app_crashes: 1,
            max_db_cycles: 2,
            max_false_suspicions: 2,
            loss_rate: 0.05,
            shards: None,
            replication: 1,
            chaos_seed: None,
            batch_size: 1,
        }
    }
}

/// Result of a chaos run.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Seed it was generated from (reproduction handle).
    pub seed: u64,
    /// How the run loop ended.
    pub run: RunOutcome,
    /// Whether every client settled all its requests.
    pub settled: bool,
    /// Property-check report.
    pub report: PropertyReport,
    /// Faults injected, human-readable (diagnostics on failure).
    pub faults: Vec<String>,
    /// Decision-log slots that carried more than one request (evidence
    /// that a run genuinely exercised the batched commit path).
    pub batched_slots: usize,
    /// Fast-path reads a lagging follower forwarded to its primary
    /// (evidence that a run genuinely exercised the freshness gate).
    pub forwarded_reads: usize,
    /// Decided slots whose speculatively executed batch was promoted
    /// (evidence that a run genuinely overlapped execution with consensus).
    pub spec_hits: usize,
    /// Decided slots whose speculation buffer was discarded and replayed
    /// (evidence that a run genuinely exercised mis-speculation recovery).
    pub spec_aborts: usize,
    /// Read leases minted by shard primaries (evidence that a run
    /// genuinely had leases outstanding when its faults landed).
    pub lease_grants: usize,
    /// Follower reads refused because the replica's lease had lapsed
    /// (evidence that the staleness bound, not luck, kept reads fresh).
    pub lease_expired_reads: usize,
}

impl ChaosOutcome {
    /// Panics with full context if the run violated the specification.
    pub fn assert_ok(&self) {
        assert!(
            self.report.ok() && self.settled,
            "chaos seed {} failed (settled={}, run={:?}):\nfaults: {:#?}\nviolations: {:#?}",
            self.seed,
            self.settled,
            self.run,
            self.faults,
            self.report.violations,
        );
    }
}

/// Shared tail of every chaos runner: run to settlement, drain background
/// work, stop the backend (joining node threads and surfacing node-thread
/// panics on the threaded host; a no-op on the simulator), check the full
/// §3 specification, and assemble the outcome.
fn settle_and_check(mut scenario: Scenario, seed: u64, faults: Vec<String>) -> ChaosOutcome {
    let expected = scenario.requests as usize;
    let run = scenario.run_until_settled(expected);
    let settled = run == RunOutcome::Predicate;
    // Give retransmissions / terminate loops time to finish (T.2 needs it).
    scenario.quiesce(Dur::from_millis(400));
    scenario.stop();

    let report = check(
        scenario.trace().events(),
        &scenario.topo.clients,
        LivenessChecks { t1: settled, t2: settled },
    );
    ChaosOutcome {
        seed,
        run,
        settled,
        report,
        faults,
        batched_slots: scenario.batched_slots(),
        forwarded_reads: scenario.reads_forwarded(),
        spec_hits: scenario.spec_hits(),
        spec_aborts: scenario.spec_aborts(),
        lease_grants: scenario.lease_grants(),
        lease_expired_reads: scenario.lease_expired_reads(),
    }
}

/// Every built-in backend implements the fault plane, so a refusal here is
/// a wiring bug, not a runtime condition.
const FAULT_PLANE: &str = "both built-in backends implement the fault plane";

/// Runs one chaos schedule derived from `seed`.
///
/// Two independent RNG streams are in play: the **workload stream**
/// (derived from `seed` alone) picks what the clients run, and the **chaos
/// stream** (derived from [`ChaosOptions::chaos_seed`], defaulting to
/// `seed`) times the faults. The split means chaos on/off — or a different
/// fault budget — never changes which workload a given seed exercises, so
/// sweeps stay comparable.
///
/// Pinned to the simulator: the schedule leans on the simulated network
/// (message loss as delay) that the threaded host does not model.
pub fn run_chaos(seed: u64, opts: &ChaosOptions) -> ChaosOutcome {
    let mut wl_rng = Rng::new(seed ^ 0x3B0B_10AD); // workload stream
    let mut rng = Rng::new(opts.chaos_seed.unwrap_or(seed) ^ 0xC0FFEE); // chaos stream
    let horizon_ms = 200u64; // fault window (fast cost model timescale)
    let mut faults = Vec::new();

    // Fault plan -----------------------------------------------------------
    let minority = (opts.apps - 1) / 2;
    let app_crashes = (rng.range_u64(0, opts.max_app_crashes as u64) as usize).min(minority);
    let db_cycles = rng.range_u64(0, opts.max_db_cycles as u64) as usize;
    let suspicions = rng.range_u64(0, opts.max_false_suspicions as u64) as usize;

    let workload = match opts.shards {
        // Sharded runs draw from the key-addressed families so routing,
        // the multi-branch decide path and replication all get exercised.
        Some(shards) => match wl_rng.range_u64(0, 2) {
            0 => Workload::ShardedBank { accounts: shards * 4, cross_pct: 40, amount: 10 },
            1 => Workload::ShardedBank { accounts: shards * 4, cross_pct: 100, amount: 10 },
            _ => Workload::HotShard { accounts: shards * 4, hot_pct: 80, amount: 10 },
        },
        None => match wl_rng.range_u64(0, 2) {
            0 => Workload::BankUpdate { amount: 10 },
            1 => Workload::Travel,
            _ => Workload::HotSpot,
        },
    };

    let mut forced = Vec::new();
    let mut builder = ScenarioBuilder::fast(MiddleTier::Etx { apps: opts.apps }, seed)
        .runtime(RuntimeKind::Sim)
        .dbs(opts.dbs)
        .clients(opts.clients)
        .requests(opts.requests)
        .workload(workload.clone());
    if let Some(shards) = opts.shards {
        builder = builder.shards(shards).replication(opts.replication);
    }
    if opts.batch_size > 1 {
        builder = builder.batching(BatchingConfig::new(opts.batch_size, Dur::from_millis(1)));
    }
    if opts.loss_rate > 0.0 {
        builder = builder.net(NetConfig {
            min_delay: Dur::from_micros(100),
            max_delay: Dur::from_micros(300),
            loss_rate: opts.loss_rate,
            retransmit_gap: Dur::from_millis(2),
        });
    }

    // Forced suspicion windows must be known before building (they live
    // inside each server's ScriptedFd).
    let topo_preview = etx_base::ids::Topology::new(opts.clients, opts.apps, opts.dbs);
    for _ in 0..suspicions {
        let peer_idx = rng.range_u64(0, opts.apps as u64 - 1) as usize;
        let from = Time(rng.range_u64(0, horizon_ms) * 1_000);
        let until = from + Dur::from_millis(rng.range_u64(5, 40));
        let peer = topo_preview.app_servers[peer_idx];
        forced.push(ForcedSuspicion { peer, from, until });
        faults.push(format!("false-suspect {peer} in [{from}, {until})"));
    }
    if !forced.is_empty() {
        builder = builder.force_suspicions(forced);
    }

    let mut scenario = builder.build();

    // App-server crashes (crash-stop; bounded by the minority assumption,
    // and never the consensus-critical majority).
    let mut crashed = Vec::new();
    for _ in 0..app_crashes {
        let idx = rng.range_u64(0, opts.apps as u64 - 1) as usize;
        let node = scenario.topo.app_servers[idx];
        if crashed.contains(&node) {
            continue;
        }
        crashed.push(node);
        let at = Time(rng.range_u64(0, horizon_ms) * 1_000);
        scenario
            .schedule_fault(NemesisWhen::After(Dur(at.0)), FaultOp::Crash(node))
            .expect(FAULT_PLANE);
        faults.push(format!("crash app {node} at {at}"));
    }

    // Database crash/recovery cycles (good databases: always recover).
    let db_count = scenario.topo.db_servers.len() as u64;
    for _ in 0..db_cycles {
        let idx = rng.range_u64(0, db_count - 1) as usize;
        let node = scenario.topo.db_servers[idx];
        let at = Time(rng.range_u64(0, horizon_ms) * 1_000);
        let back = at + Dur::from_millis(rng.range_u64(5, 60));
        scenario
            .schedule_fault(NemesisWhen::After(Dur(at.0)), FaultOp::Crash(node))
            .expect(FAULT_PLANE);
        scenario
            .schedule_fault(NemesisWhen::After(Dur(back.0)), FaultOp::Recover(node))
            .expect(FAULT_PLANE);
        faults.push(format!("cycle db {node} at {at} → {back}"));
    }

    settle_and_check(scenario, seed, faults)
}

/// The hot-shard chaos scenario: a skewed key-addressed workload hammers
/// one shard while that shard's replicas are crash/recovery-cycled
/// **mid-commit** (the first crash triggers off the hot primary's first
/// vote, i.e. between prepare and decide); the other shards' traffic
/// proceeds throughout. Checks the full §3 specification afterwards — in
/// particular that every request still terminates with a single outcome
/// delivered exactly once.
///
/// `runtime` picks the backend: the simulator replays the historical
/// schedule byte-identically; the threaded host runs the same nemesis
/// schedule against real threads (timed faults land on the wall clock,
/// trace-triggered ones fire off the same events).
pub fn run_hot_shard_chaos_on(
    seed: u64,
    opts: &ChaosOptions,
    runtime: RuntimeKind,
) -> ChaosOutcome {
    // Fault timing comes from the chaos stream only — the scenario (and
    // its workload RNG, seeded by `seed`) is identical with chaos on or
    // off, so `.shards()` sweeps compare like for like.
    let mut rng = Rng::new(opts.chaos_seed.unwrap_or(seed) ^ 0x5AD_C0DE);
    let shards = opts.shards.unwrap_or(4).max(2);
    let replication = opts.replication.max(1);
    let workload = Workload::HotShard { accounts: shards * 4, hot_pct: 70, amount: 10 };
    let mut builder = ScenarioBuilder::fast(MiddleTier::Etx { apps: opts.apps }, seed)
        .runtime(runtime)
        .shards(shards)
        .replication(replication)
        .clients(opts.clients)
        .requests(opts.requests)
        .workload(workload);
    if opts.batch_size > 1 {
        builder = builder.batching(BatchingConfig::new(opts.batch_size, Dur::from_millis(1)));
    }
    let mut scenario = builder.build();

    let mut faults = Vec::new();
    // The hot key is acct0; its shard is where the skew lands.
    let hot_shard = scenario.shard_map.shard_of("acct0");
    let hot_replicas: Vec<_> = scenario.shard_map.replicas(hot_shard).to_vec();
    let hot_primary = hot_replicas[0];

    // Crash the hot primary right after it votes (mid-commit: the branch
    // is prepared/in-doubt, the decision push is about to land) and bring
    // it back shortly after — the paper's good-database model.
    let down_for = Dur::from_millis(rng.range_u64(10, 40));
    scenario
        .schedule_fault(
            NemesisWhen::on_trace(move |ev| {
                ev.node == hot_primary && matches!(ev.kind, TraceKind::DbVote { .. })
            }),
            FaultOp::CrashFor { node: hot_primary, down_for },
        )
        .expect(FAULT_PLANE);
    faults.push(format!("crash hot-shard primary {hot_primary} on first vote, back {down_for}"));

    // Cycle the hot shard's followers too, while the other shards proceed.
    for &f in hot_replicas.iter().skip(1) {
        let at = Time(rng.range_u64(0, 100) * 1_000);
        let back = at + Dur::from_millis(rng.range_u64(5, 50));
        scenario
            .schedule_fault(NemesisWhen::After(Dur(at.0)), FaultOp::Crash(f))
            .expect(FAULT_PLANE);
        scenario
            .schedule_fault(NemesisWhen::After(Dur(back.0)), FaultOp::Recover(f))
            .expect(FAULT_PLANE);
        faults.push(format!("cycle hot-shard follower {f} at {at} → {back}"));
    }

    settle_and_check(scenario, seed, faults)
}

/// [`run_hot_shard_chaos_on`] pinned to the simulator (the historical
/// entry point; byte-identical to the pre-fault-plane schedule).
pub fn run_hot_shard_chaos(seed: u64, opts: &ChaosOptions) -> ChaosOutcome {
    run_hot_shard_chaos_on(seed, opts, RuntimeKind::Sim)
}

/// The mid-batch chaos scenario for the commit pipeline: an open-loop
/// burst fills the application server's pipeline queue so decision-log
/// slots carry real batches, then
///
/// * the default primary `a1` is **crashed the moment it applies its first
///   multi-request batch** — the decided slot is final but termination has
///   barely started, so the surviving replicas' cleaners must finish every
///   request in the batch with the *decided* outcomes;
/// * a shard primary is crash/recovery-cycled on its first multi-record
///   **group WAL append**, so recovery replays a group frame written
///   mid-stream.
///
/// The full §3 specification is checked afterwards. What this certifies is
/// the batch atomicity claim: a decided batch is all-or-nothing per
/// request — every request in it terminates with its slot outcome exactly
/// once, and none is duplicated or split by the crashes.
pub fn run_mid_batch_chaos_on(
    seed: u64,
    opts: &ChaosOptions,
    runtime: RuntimeKind,
) -> ChaosOutcome {
    let mut rng = Rng::new(opts.chaos_seed.unwrap_or(seed) ^ 0x0BA7_C4A0);
    let shards = opts.shards.unwrap_or(4).max(1);
    let batch = opts.batch_size.max(8);
    let workload = Workload::OpenLoopBurst { accounts: shards * 8, amount: 1 };
    let mut scenario = ScenarioBuilder::fast(MiddleTier::Etx { apps: opts.apps }, seed)
        .runtime(runtime)
        .shards(shards)
        .replication(opts.replication.max(1))
        .clients(opts.clients)
        .requests(opts.requests)
        .batching(BatchingConfig::new(batch, Dur::from_millis(1)))
        .workload(workload)
        .build();

    let mut faults = Vec::new();
    let a1 = scenario.topo.primary();
    scenario
        .schedule_fault(
            NemesisWhen::on_trace(move |ev| {
                ev.node == a1 && matches!(ev.kind, TraceKind::BatchDecided { len, .. } if len >= 2)
            }),
            FaultOp::Crash(a1),
        )
        .expect(FAULT_PLANE);
    faults.push(format!("crash primary {a1} on its first applied multi-request batch"));

    let victim_shard = rng.range_u64(0, u64::from(shards) - 1) as u32;
    let victim = scenario.shard_primary(victim_shard);
    let down_for = Dur::from_millis(rng.range_u64(5, 30));
    scenario
        .schedule_fault(
            NemesisWhen::on_trace(move |ev| {
                ev.node == victim && matches!(ev.kind, TraceKind::GroupAppend { len } if len >= 2)
            }),
            FaultOp::CrashFor { node: victim, down_for },
        )
        .expect(FAULT_PLANE);
    faults.push(format!(
        "cycle shard-{victim_shard} primary {victim} on its first group append, back {down_for}"
    ));

    settle_and_check(scenario, seed, faults)
}

/// [`run_mid_batch_chaos_on`] pinned to the simulator (the historical
/// entry point; byte-identical to the pre-fault-plane schedule).
pub fn run_mid_batch_chaos(seed: u64, opts: &ChaosOptions) -> ChaosOutcome {
    run_mid_batch_chaos_on(seed, opts, RuntimeKind::Sim)
}

/// The speculation chaos scenario: an open-loop burst fills the pipeline
/// with real batches under speculative execution, and a shard primary is
/// **crash/recovery-cycled the moment it stashes its first speculative
/// batch** — strictly between `SpecExec` and the slot's decision. The
/// crash wipes the (volatile) speculation buffer, so the decided slot
/// arrives at a recovered primary with nothing stashed and must replay on
/// the ordinary decide-then-execute path.
///
/// The full §3 specification is checked afterwards. What this certifies
/// is the speculation stage's durability claim: a speculatively buffered
/// batch is *not yet state* — it writes no WAL frame, ships nothing to
/// followers, and a crash at the worst moment leaves exactly the
/// recovery obligations of the non-speculative pipeline.
pub fn run_speculation_chaos_on(
    seed: u64,
    opts: &ChaosOptions,
    runtime: RuntimeKind,
) -> ChaosOutcome {
    let mut rng = Rng::new(opts.chaos_seed.unwrap_or(seed) ^ 0x5BEC_0DE5);
    let shards = opts.shards.unwrap_or(4).max(1);
    let batch = opts.batch_size.max(8);
    let workload = Workload::OpenLoopBurst { accounts: shards * 8, amount: 1 };
    let mut scenario = ScenarioBuilder::fast(MiddleTier::Etx { apps: opts.apps }, seed)
        .runtime(runtime)
        .shards(shards)
        .replication(opts.replication.max(1))
        .clients(opts.clients)
        .requests(opts.requests)
        .batching(BatchingConfig::new(batch, Dur::from_millis(1)))
        .speculation(SpeculationConfig::on())
        .workload(workload)
        .build();

    let mut faults = Vec::new();
    let victim_shard = rng.range_u64(0, u64::from(shards) - 1) as u32;
    let victim = scenario.shard_primary(victim_shard);
    let down_for = Dur::from_millis(rng.range_u64(5, 30));
    scenario
        .schedule_fault(
            NemesisWhen::on_trace(move |ev| {
                ev.node == victim && matches!(ev.kind, TraceKind::SpecExec { .. })
            }),
            FaultOp::CrashFor { node: victim, down_for },
        )
        .expect(FAULT_PLANE);
    faults.push(format!(
        "cycle shard-{victim_shard} primary {victim} on its first speculative batch, \
         back {down_for}"
    ));

    settle_and_check(scenario, seed, faults)
}

/// [`run_speculation_chaos_on`] pinned to the simulator (the historical
/// entry point; byte-identical to the pre-fault-plane schedule).
pub fn run_speculation_chaos(seed: u64, opts: &ChaosOptions) -> ChaosOutcome {
    run_speculation_chaos_on(seed, opts, RuntimeKind::Sim)
}

/// The read-path chaos scenario: a read-dominated open-loop workload runs
/// with the fast lane and follower reads enabled while
///
/// * one shard's follower is **crash/recovery-cycled the moment the first
///   fast-path read is classified** — reads in flight to it vanish and the
///   application server's retry backstop must finish them against the
///   shard primary;
/// * another shard's follower is **starved of its primary's replication
///   stream** (the primary→follower link is blocked for a window) while
///   writes keep committing — every stamped read aimed at it during the
///   window must take the forward path rather than serve stale state.
///
/// The full §3 specification is checked afterwards. What this certifies is
/// the fast lane's safety claim: consensus-free reads stay exactly-once
/// *observable* (one delivery per request, committed results only) and
/// never surface state older than the issuing server has observed.
pub fn run_read_path_chaos(seed: u64, opts: &ChaosOptions) -> ChaosOutcome {
    let mut rng = Rng::new(opts.chaos_seed.unwrap_or(seed) ^ 0xFA57_1A4E);
    let shards = opts.shards.unwrap_or(4).max(2);
    let replication = opts.replication.max(2);
    // Sequential write→read pairs: each read is issued only after its
    // write delivered, so the issuing server holds a fresh stamp for the
    // write's shard — the precondition that makes a starved follower
    // actually *lag* (and therefore forward) rather than trivially serve.
    let workload = Workload::ReadAfterWrite { accounts: shards * 8, amount: 10 };
    let mut builder = ScenarioBuilder::fast(MiddleTier::Etx { apps: opts.apps }, seed)
        .runtime(RuntimeKind::Sim)
        .shards(shards)
        .replication(replication)
        .clients(opts.clients)
        .requests(opts.requests)
        .read_path(ReadPathConfig::follower_reads())
        .workload(workload);
    if opts.batch_size > 1 {
        builder = builder.batching(BatchingConfig::new(opts.batch_size, Dur::from_millis(1)));
    }
    let mut scenario = builder.build();

    let mut faults = Vec::new();

    // Fault 1: cycle shard 0's follower on the first classified fast-path
    // read — a read racing a crashing replica.
    let crash_victim = scenario.shard_replicas(0)[1];
    let down_for = Dur::from_millis(rng.range_u64(5, 30));
    scenario
        .schedule_fault(
            NemesisWhen::on_trace(move |ev| matches!(ev.kind, TraceKind::ReadFastPath { .. })),
            FaultOp::CrashFor { node: crash_victim, down_for },
        )
        .expect(FAULT_PLANE);
    faults.push(format!(
        "cycle shard-0 follower {crash_victim} on the first fast-path read, back {down_for}"
    ));

    // Fault 2: starve shard 1's follower of replication for a window —
    // commits during the window make it lag, so stamped reads aimed at it
    // must forward to the primary instead of serving stale state.
    let lag_primary = scenario.shard_replicas(1)[0];
    let lag_follower = scenario.shard_replicas(1)[1];
    let heal = Time(rng.range_u64(60, 150) * 1_000);
    scenario
        .fault(FaultOp::BlockLink { from: lag_primary, to: lag_follower, heal_after: Dur(heal.0) })
        .expect(FAULT_PLANE);
    faults.push(format!(
        "block replication {lag_primary} → {lag_follower} until {heal} (lagging follower)"
    ));

    settle_and_check(scenario, seed, faults)
}

/// The read-lease chaos scenario: the lease fast path (follower reads
/// served with **no stamp check and no forward hop** while the replica's
/// lease is live) runs under the two faults that attack its soundness
/// argument directly:
///
/// * shard 0's **primary** — the lease grantor — is crash/recovery-cycled
///   the moment the first fast-path read is classified, with leases
///   outstanding at every replica and appserver. Recovery must fence its
///   write acknowledgements until every lease its previous incarnation
///   could have granted has lapsed (the failover drain), or a pre-crash
///   in-lease read could contradict a post-crash acknowledged write;
/// * shard 1's **replication stream** (primary → follower) is blocked for
///   a window. Lease renewals ride that stream, so the follower must fall
///   out of lease and start forwarding (`LeaseExpired`) no later than one
///   lease duration after the partition — the staleness bound.
///
/// The full §3 specification is checked afterwards: exactly-once delivery,
/// committed results only, and read-your-writes all have to survive the
/// lease machinery's consensus-free serving.
pub fn run_read_lease_chaos(seed: u64, opts: &ChaosOptions) -> ChaosOutcome {
    use etx_base::config::ReadLeaseConfig;
    let mut rng = Rng::new(opts.chaos_seed.unwrap_or(seed) ^ 0x1EA5_EFA1);
    let shards = opts.shards.unwrap_or(4).max(2);
    let replication = opts.replication.max(2);
    let workload = Workload::ReadAfterWrite { accounts: shards * 8, amount: 10 };
    let mut builder = ScenarioBuilder::fast(MiddleTier::Etx { apps: opts.apps }, seed)
        .runtime(RuntimeKind::Sim)
        .shards(shards)
        .replication(replication)
        .clients(opts.clients)
        .requests(opts.requests)
        .read_path(ReadPathConfig::follower_reads())
        .read_leases(ReadLeaseConfig::fast_for_tests())
        .workload(workload);
    if opts.batch_size > 1 {
        builder = builder.batching(BatchingConfig::new(opts.batch_size, Dur::from_millis(1)));
    }
    let mut scenario = builder.build();

    let mut faults = Vec::new();

    // Fault 1: cycle shard 0's PRIMARY on the first classified fast-path
    // read — the grantor dies with its leases still outstanding, so the
    // post-recovery fence is what stands between in-lease follower serves
    // and the recovered primary's fresh acknowledgements.
    let grantor = scenario.shard_replicas(0)[0];
    let down_for = Dur::from_millis(rng.range_u64(5, 30));
    scenario
        .schedule_fault(
            NemesisWhen::on_trace(move |ev| matches!(ev.kind, TraceKind::ReadFastPath { .. })),
            FaultOp::CrashFor { node: grantor, down_for },
        )
        .expect(FAULT_PLANE);
    faults.push(format!(
        "cycle shard-0 primary {grantor} on the first fast-path read, back {down_for}"
    ));

    // Fault 2: block shard 1's replication stream — renewals stop with it,
    // so the follower's lease lapses and its reads must forward instead of
    // serving what is now unboundedly stale state.
    let lag_primary = scenario.shard_replicas(1)[0];
    let lag_follower = scenario.shard_replicas(1)[1];
    let heal = Time(rng.range_u64(60, 150) * 1_000);
    scenario
        .fault(FaultOp::BlockLink { from: lag_primary, to: lag_follower, heal_after: Dur(heal.0) })
        .expect(FAULT_PLANE);
    faults.push(format!(
        "block replication {lag_primary} → {lag_follower} until {heal} (lease starvation)"
    ));

    settle_and_check(scenario, seed, faults)
}
