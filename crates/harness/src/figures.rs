//! Regenerating the paper's evaluation artifacts: Figure 8 (the latency
//! table), Figure 7 (communication steps / message counts) and Figure 1
//! (the four canonical executions).

use crate::latency::breakdown_for;
use crate::scenario::{MiddleTier, Scenario, ScenarioBuilder};
use crate::stats::Summary;
use crate::workloads::Workload;
use etx_base::config::CostModel;
use etx_base::ids::RequestId;
use etx_base::runtime::RuntimeKind;
use etx_base::time::Dur;
use etx_base::trace::{Component, TraceKind};
use etx_base::value::Outcome;
use etx_sim::{FaultAction, NetConfig, RunOutcome};
use std::collections::BTreeMap;

/// One protocol column of the Figure 8 table.
#[derive(Debug, Clone)]
pub struct Fig8Column {
    /// Column header ("baseline", "AR", "2PC").
    pub label: &'static str,
    /// Mean per-component milliseconds.
    pub components: BTreeMap<Component, f64>,
    /// Mean "other" (unaccounted) milliseconds.
    pub other: f64,
    /// Total latency summary over all trials.
    pub total: Summary,
    /// Overhead vs. the baseline column, in percent.
    pub overhead_pct: f64,
}

/// The regenerated Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Table {
    /// Columns in paper order: baseline, AR, 2PC.
    pub columns: Vec<Fig8Column>,
    /// Trials per column.
    pub trials: usize,
}

/// Runs one failure-free trial of `tier` and returns the latency breakdown.
fn one_trial(tier: MiddleTier, seed: u64, cost: CostModel) -> Option<crate::latency::Breakdown> {
    let mut scenario =
        ScenarioBuilder::new(tier, seed).runtime(RuntimeKind::Sim).cost(cost).requests(1).build();
    let out = scenario.run_until_settled(1);
    if out != RunOutcome::Predicate {
        return None;
    }
    let client = scenario.topo.clients[0];
    breakdown_for(scenario.trace().events(), RequestId { client, seq: 1 })
}

/// Regenerates Figure 8: `trials` failure-free bank-update runs per
/// protocol under the paper's cost model.
pub fn figure8(trials: usize, base_seed: u64) -> Fig8Table {
    figure8_with_cost(trials, base_seed, CostModel::default())
}

/// [`figure8`] with a custom cost model (used by the cross-over sweep).
pub fn figure8_with_cost(trials: usize, base_seed: u64, cost: CostModel) -> Fig8Table {
    let tiers = [MiddleTier::Baseline, MiddleTier::Etx { apps: 3 }, MiddleTier::Tpc];
    let mut columns = Vec::new();
    let mut baseline_mean = 0.0;
    for tier in tiers {
        let mut totals = Vec::new();
        let mut comp_sums: BTreeMap<Component, f64> = BTreeMap::new();
        let mut other_sum = 0.0;
        for t in 0..trials {
            let seed = base_seed.wrapping_mul(1_000_003).wrapping_add(t as u64);
            if let Some(b) = one_trial(tier, seed, cost.clone()) {
                totals.push(b.total);
                for (c, v) in &b.per {
                    *comp_sums.entry(*c).or_insert(0.0) += v;
                }
                other_sum += b.other;
            }
        }
        let n = totals.len().max(1) as f64;
        let components: BTreeMap<Component, f64> =
            comp_sums.into_iter().map(|(c, v)| (c, v / n)).collect();
        let total = Summary::of(&totals);
        if tier == MiddleTier::Baseline {
            baseline_mean = total.mean;
        }
        let overhead_pct =
            if baseline_mean > 0.0 { (total.mean / baseline_mean - 1.0) * 100.0 } else { 0.0 };
        columns.push(Fig8Column {
            label: tier.label(),
            components,
            other: other_sum / n,
            total,
            overhead_pct,
        });
    }
    Fig8Table { columns, trials }
}

impl Fig8Table {
    /// Renders the table in the paper's layout (milliseconds).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = 12usize;
        out.push_str(&format!("{:<14}", "protocol"));
        for c in &self.columns {
            out.push_str(&format!("{:>w$}", c.label));
        }
        out.push('\n');
        for comp in Component::ALL {
            // Paper row order: start, end, commit, prepare, SQL, log-start,
            // log-outcome.
            out.push_str(&format!("{:<14}", comp.label()));
            for c in &self.columns {
                out.push_str(&format!("{:>w$.1}", c.components.get(&comp).copied().unwrap_or(0.0)));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<14}", "other"));
        for c in &self.columns {
            out.push_str(&format!("{:>w$.1}", c.other));
        }
        out.push('\n');
        out.push_str(&format!("{:<14}", "total"));
        for c in &self.columns {
            out.push_str(&format!("{:>w$.1}", c.total.mean));
        }
        out.push('\n');
        out.push_str(&format!("{:<14}", "90% CI ±"));
        for c in &self.columns {
            out.push_str(&format!("{:>w$.1}", c.total.ci90_half));
        }
        out.push('\n');
        out.push_str(&format!("{:<14}", "reliability"));
        for c in &self.columns {
            out.push_str(&format!("{:>w$}", format!("{:+.0}%", c.overhead_pct)));
        }
        out.push('\n');
        out
    }

    /// Column by label.
    pub fn column(&self, label: &str) -> Option<&Fig8Column> {
        self.columns.iter().find(|c| c.label == label)
    }
}

/// One row of the Figure 7 comparison.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Protocol label.
    pub label: &'static str,
    /// Client-visible communication steps (measured causal depth).
    pub steps: u32,
    /// Protocol messages sent until delivery (heartbeats excluded).
    pub protocol_msgs: u64,
    /// Total messages (background included).
    pub total_msgs: u64,
}

/// Regenerates the Figure 7 comparison: failure-free, zero-jitter runs of
/// all four protocols; steps are *measured* causal depth, not hand counts.
pub fn figure7(base_seed: u64) -> Vec<Fig7Row> {
    let tiers =
        [MiddleTier::Baseline, MiddleTier::Tpc, MiddleTier::Pb, MiddleTier::Etx { apps: 3 }];
    let mut rows = Vec::new();
    for tier in tiers {
        let mut scenario = ScenarioBuilder::new(tier, base_seed)
            .runtime(RuntimeKind::Sim)
            .cost(CostModel::default().without_jitter())
            .net(NetConfig::deterministic())
            .requests(1)
            .build();
        let out = scenario.run_until_settled(1);
        assert_eq!(out, RunOutcome::Predicate, "{}: failure-free run must deliver", tier.label());
        let steps = scenario.deliveries().first().map(|(_, _, s, _)| *s).expect("delivered");
        rows.push(Fig7Row {
            label: tier.label(),
            steps,
            protocol_msgs: scenario.stats().protocol_total(),
            total_msgs: scenario.stats().total(),
        });
    }
    rows
}

/// Renders the Figure 7 rows.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12}{:>8}{:>16}{:>14}\n",
        "protocol", "steps", "protocol msgs", "total msgs"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>8}{:>16}{:>14}\n",
            r.label, r.steps, r.protocol_msgs, r.total_msgs
        ));
    }
    out
}

/// The four canonical executions of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig1Scenario {
    /// (a) failure-free run with commit.
    FailureFreeCommit,
    /// (b) failure-free run with abort (databases refuse).
    FailureFreeAbort,
    /// (c) fail-over with commit: owner crashes after `regD` decides.
    FailoverCommit,
    /// (d) fail-over with abort: owner crashes after `regA` decides.
    FailoverAbort,
}

impl Fig1Scenario {
    /// Panel label.
    pub fn label(&self) -> &'static str {
        match self {
            Fig1Scenario::FailureFreeCommit => "1(a) failure-free commit",
            Fig1Scenario::FailureFreeAbort => "1(b) failure-free abort",
            Fig1Scenario::FailoverCommit => "1(c) fail-over with commit",
            Fig1Scenario::FailoverAbort => "1(d) fail-over with abort",
        }
    }
}

/// What happened in a Figure 1 run.
#[derive(Debug, Clone)]
pub struct Fig1Report {
    /// Which panel.
    pub scenario: Fig1Scenario,
    /// Attempt number whose outcome reached the client first (commit) or
    /// that aborted first (abort panels).
    pub attempt: u32,
    /// Final client-visible outcome of that attempt.
    pub outcome: Outcome,
    /// Whether a cleaner takeover happened.
    pub cleaner_used: bool,
    /// End-to-end duration until the reported event, ms.
    pub millis: f64,
    /// All §3 safety properties held.
    pub safety_ok: bool,
}

/// Runs one Figure 1 scenario under the paper's cost model and reports.
pub fn figure1(scenario: Fig1Scenario, seed: u64) -> Fig1Report {
    let workload = match scenario {
        Fig1Scenario::FailureFreeAbort => Workload::AlwaysDoomed,
        _ => Workload::BankUpdate { amount: 100 },
    };
    let mut s = ScenarioBuilder::new(MiddleTier::Etx { apps: 3 }, seed)
        .runtime(RuntimeKind::Sim)
        .workload(workload)
        .requests(1)
        .build();
    let a1 = s.topo.primary();
    match scenario {
        Fig1Scenario::FailoverCommit => {
            s.sim_mut().on_trace(
                move |ev| {
                    ev.node == a1
                        && matches!(ev.kind, TraceKind::Span { comp: Component::LogOutcome, .. })
                },
                FaultAction::Crash(a1),
            );
        }
        Fig1Scenario::FailoverAbort => {
            s.sim_mut().on_trace(
                move |ev| {
                    ev.node == a1
                        && matches!(ev.kind, TraceKind::Span { comp: Component::LogStart, .. })
                },
                FaultAction::Crash(a1),
            );
        }
        _ => {}
    }
    // Run until the client observes the first decisive event.
    let deadline = match scenario {
        Fig1Scenario::FailureFreeAbort => {
            // Run until the client has seen the abort of attempt 1.
            s.sim_mut().run_until(|sim| {
                sim.trace().count_kind(|k| matches!(k, TraceKind::ClientRetry { .. })) >= 1
            })
        }
        Fig1Scenario::FailoverAbort => s.sim_mut().run_until(|sim| {
            sim.trace().count_kind(|k| {
                matches!(k, TraceKind::ClientRetry { .. } | TraceKind::Deliver { .. })
            }) >= 1
        }),
        _ => s.sim_mut().run_until(|sim| {
            sim.trace().count_kind(|k| matches!(k, TraceKind::Deliver { .. })) >= 1
        }),
    };
    assert_eq!(deadline, RunOutcome::Predicate, "{}: run must settle", scenario.label());
    let trace = s.trace().events();
    let (attempt, outcome, at) = trace
        .iter()
        .find_map(|e| match e.kind {
            TraceKind::Deliver { rid, outcome, .. } => Some((rid.attempt, outcome, e.at)),
            TraceKind::ClientRetry { rid } => Some((rid.attempt, Outcome::Abort, e.at)),
            _ => None,
        })
        .expect("decisive client event");
    let cleaner_used = s.trace().count_kind(|k| matches!(k, TraceKind::CleanerTakeover { .. })) > 0;
    let safety_ok = crate::properties::check(
        trace,
        &s.topo.clients,
        crate::properties::LivenessChecks::default(),
    )
    .ok();
    Fig1Report { scenario, attempt, outcome, cleaner_used, millis: at.as_millis_f64(), safety_ok }
}

/// Runs all four Figure 1 panels and renders a summary.
pub fn figure1_all(seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30}{:>9}{:>9}{:>10}{:>12}{:>9}\n",
        "scenario", "attempt", "outcome", "cleaner", "ms", "safety"
    ));
    for sc in [
        Fig1Scenario::FailureFreeCommit,
        Fig1Scenario::FailureFreeAbort,
        Fig1Scenario::FailoverCommit,
        Fig1Scenario::FailoverAbort,
    ] {
        let r = figure1(sc, seed);
        out.push_str(&format!(
            "{:<30}{:>9}{:>9}{:>10}{:>12.1}{:>9}\n",
            r.scenario.label(),
            r.attempt,
            r.outcome.to_string(),
            if r.cleaner_used { "yes" } else { "no" },
            r.millis,
            if r.safety_ok { "ok" } else { "VIOLATED" },
        ));
    }
    out
}

/// Scales every service-time knob for quick test runs.
pub fn quiesce_scenario(s: &mut Scenario) {
    s.quiesce(Dur::from_millis(500));
}
