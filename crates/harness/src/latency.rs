//! Extracting the Figure 8 latency breakdown from a run's trace.
//!
//! The paper measures end-to-end client latency and "allocates portions of
//! this time to specific software components". We do the same: the modelled
//! service-time spans recorded during the run are summed per component for
//! the delivered request; everything unaccounted for is "other" — which, as
//! in the paper, is dominated by client-server communication.

use etx_base::ids::RequestId;
use etx_base::trace::{Component, TraceEvent, TraceKind};
use std::collections::BTreeMap;

/// Per-request latency breakdown, all values in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Per-component totals (absent components read 0).
    pub per: BTreeMap<Component, f64>,
    /// End-to-end latency (issue → deliver).
    pub total: f64,
    /// `total − Σ components` — communication and queueing.
    pub other: f64,
}

impl Breakdown {
    /// Value for one component (0 if absent).
    pub fn component(&self, c: Component) -> f64 {
        self.per.get(&c).copied().unwrap_or(0.0)
    }
}

/// Computes the breakdown for `request`, if it was issued and delivered.
///
/// All spans attributed to any attempt of the request between issue and
/// delivery are summed. In failure-free single-database runs (the paper's
/// Figure 8 configuration) this equals the critical path exactly.
pub fn breakdown_for(events: &[TraceEvent], request: RequestId) -> Option<Breakdown> {
    let issue = events.iter().find_map(|e| match e.kind {
        TraceKind::Issue { request: r } if r == request => Some(e.at),
        _ => None,
    })?;
    let deliver = events.iter().find_map(|e| match e.kind {
        TraceKind::Deliver { rid, .. } if rid.request == request => Some(e.at),
        _ => None,
    })?;
    let mut per: BTreeMap<Component, f64> = BTreeMap::new();
    for e in events {
        if e.at < issue || e.at > deliver {
            continue;
        }
        if let TraceKind::Span { rid, comp, dur } = &e.kind {
            if rid.request == request {
                *per.entry(*comp).or_insert(0.0) += dur.as_millis_f64();
            }
        }
    }
    let total = deliver.since(issue).as_millis_f64();
    let accounted: f64 = per.values().sum();
    Some(Breakdown { per, total, other: total - accounted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::{NodeId, ResultId};
    use etx_base::time::{Dur, Time};
    use etx_base::value::Outcome;

    #[test]
    fn breakdown_sums_spans_and_computes_other() {
        let req = RequestId { client: NodeId(0), seq: 1 };
        let rid = ResultId::first(req);
        let events = vec![
            TraceEvent::new(Time(0), NodeId(0), TraceKind::Issue { request: req }),
            TraceEvent::new(
                Time(1_000),
                NodeId(1),
                TraceKind::Span { rid, comp: Component::Start, dur: Dur::from_millis(3) },
            ),
            TraceEvent::new(
                Time(5_000),
                NodeId(4),
                TraceKind::Span { rid, comp: Component::Sql, dur: Dur::from_millis(180) },
            ),
            TraceEvent::new(
                Time(200_000),
                NodeId(0),
                TraceKind::Deliver { rid, outcome: Outcome::Commit, steps: 6 },
            ),
        ];
        let b = breakdown_for(&events, req).unwrap();
        assert_eq!(b.total, 200.0);
        assert_eq!(b.component(Component::Start), 3.0);
        assert_eq!(b.component(Component::Sql), 180.0);
        assert_eq!(b.component(Component::Commit), 0.0);
        assert!((b.other - 17.0).abs() < 1e-9);
    }

    #[test]
    fn missing_delivery_yields_none() {
        let req = RequestId { client: NodeId(0), seq: 1 };
        let events = vec![TraceEvent::new(Time(0), NodeId(0), TraceKind::Issue { request: req })];
        assert!(breakdown_for(&events, req).is_none());
    }

    #[test]
    fn spans_of_other_requests_are_excluded() {
        let req1 = RequestId { client: NodeId(0), seq: 1 };
        let req2 = RequestId { client: NodeId(0), seq: 2 };
        let events = vec![
            TraceEvent::new(Time(0), NodeId(0), TraceKind::Issue { request: req1 }),
            TraceEvent::new(
                Time(10),
                NodeId(1),
                TraceKind::Span {
                    rid: ResultId::first(req2),
                    comp: Component::Sql,
                    dur: Dur::from_millis(99),
                },
            ),
            TraceEvent::new(
                Time(1_000),
                NodeId(0),
                TraceKind::Deliver {
                    rid: ResultId::first(req1),
                    outcome: Outcome::Commit,
                    steps: 6,
                },
            ),
        ];
        let b = breakdown_for(&events, req1).unwrap();
        assert_eq!(b.component(Component::Sql), 0.0);
    }
}
