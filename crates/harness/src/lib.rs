//! # etx-harness — experiments, workloads, chaos and the property checker
//!
//! Everything needed to *evaluate* the protocols:
//!
//! * [`scenario`] — one-call construction of a full three-tier system under
//!   any middle tier (e-Transactions, baseline, 2PC, primary-backup);
//! * [`workloads`] — the bank-update experiment of Appendix 3, a
//!   two-database transfer, the intro's travel booking, and adversarial
//!   workloads (hot-spot contention, always-doomed);
//! * [`properties`] — the §3 specification (T.1, T.2, A.1–A.3, V.1, V.2)
//!   checked against recorded histories;
//! * [`figures`] — regenerates Figure 8 (latency table), Figure 7
//!   (communication steps) and Figure 1 (canonical executions);
//! * [`sweeps`] — fail-over latency (the evaluation §5 calls for),
//!   forced-I/O crossover, replication-degree scalability;
//! * [`chaos`] — seed-derived randomized fault schedules with full
//!   specification checking;
//! * [`stats`] — means and 90% confidence intervals (the paper's
//!   methodology);
//! * [`latency`] — per-component breakdowns from trace spans.

pub mod chaos;
pub mod figures;
pub mod latency;
pub mod properties;
pub mod scenario;
pub mod stats;
pub mod sweeps;
pub mod workloads;

pub use chaos::{
    run_chaos, run_hot_shard_chaos, run_hot_shard_chaos_on, run_mid_batch_chaos,
    run_mid_batch_chaos_on, run_read_lease_chaos, run_read_path_chaos, run_speculation_chaos,
    run_speculation_chaos_on, ChaosOptions, ChaosOutcome,
};
pub use figures::{figure1, figure1_all, figure7, figure8, Fig1Scenario, Fig8Table};
pub use latency::{breakdown_for, Breakdown};
pub use properties::{check, LivenessChecks, PropertyReport};
pub use scenario::{MiddleTier, Scenario, ScenarioBuilder};
pub use stats::Summary;
pub use sweeps::{cross_shard_sweep, render_cross_shard, CrossShardPoint};
pub use workloads::Workload;
