//! The e-Transaction property checker (§3 of the paper).
//!
//! Takes a finished run's trace, reconstructs the history (issues,
//! deliveries, votes, decides, computations), and checks every property the
//! paper proves in Appendix 2:
//!
//! * **T.1** every issued request is eventually delivered (checked only
//!   when the run reached quiescence with a correct client);
//! * **T.2** every voted branch is eventually decided at that database
//!   (same caveat — these are liveness properties);
//! * **A.1** no result delivered unless committed by every involved
//!   database (safety: checked unconditionally, with commit-before-deliver
//!   ordering);
//! * **A.2** at most one attempt per request ever commits, and the client
//!   delivers at most one result per request;
//! * **A.3** no two databases decide differently on the same attempt;
//! * **V.1** every delivered result was computed by an application server
//!   from a request the client issued;
//! * **V.2** nothing commits if any database voted no for it.

use etx_base::ids::{NodeId, RequestId, ResultId};
use etx_base::time::Time;
use etx_base::trace::{TraceEvent, TraceKind};
use etx_base::value::{Outcome, Vote};
use std::collections::{BTreeMap, BTreeSet};

/// Which liveness checks to run (safety is always checked).
#[derive(Debug, Clone, Copy, Default)]
pub struct LivenessChecks {
    /// Check T.1 (requires: client correct, run quiesced).
    pub t1: bool,
    /// Check T.2 (requires: run quiesced well past retransmission periods).
    pub t2: bool,
}

/// Outcome of checking a run.
#[derive(Debug, Default)]
pub struct PropertyReport {
    /// Human-readable violations; empty means the run satisfied everything.
    pub violations: Vec<String>,
}

impl PropertyReport {
    /// True when no property was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the violation list if any property failed (test helper).
    pub fn assert_ok(&self) {
        assert!(self.ok(), "e-Transaction properties violated:\n{}", self.violations.join("\n"));
    }
}

#[derive(Debug, Default)]
struct History {
    issues: BTreeMap<RequestId, Time>,
    delivers: Vec<(ResultId, Outcome, Time)>,
    computed: BTreeSet<ResultId>,
    votes: BTreeMap<(NodeId, ResultId), (Vote, Time)>,
    decides: BTreeMap<(NodeId, ResultId), (Outcome, Time)>,
    client_crashes: BTreeSet<NodeId>,
}

fn extract(events: &[TraceEvent], clients: &[NodeId]) -> History {
    let mut h = History::default();
    for e in events {
        match &e.kind {
            TraceKind::Issue { request } => {
                h.issues.entry(*request).or_insert(e.at);
            }
            TraceKind::Deliver { rid, outcome, .. } => h.delivers.push((*rid, *outcome, e.at)),
            TraceKind::Computed { rid } => {
                h.computed.insert(*rid);
            }
            TraceKind::DbVote { rid, vote } => {
                h.votes.entry((e.node, *rid)).or_insert((*vote, e.at));
            }
            TraceKind::DbDecide { rid, outcome } => {
                h.decides.entry((e.node, *rid)).or_insert((*outcome, e.at));
            }
            TraceKind::Crash if clients.contains(&e.node) => {
                h.client_crashes.insert(e.node);
            }
            _ => {}
        }
    }
    h
}

/// Checks all properties over a finished run's trace.
///
/// `clients` identifies the client nodes (so client crashes relax T.1).
pub fn check(
    events: &[TraceEvent],
    clients: &[NodeId],
    liveness: LivenessChecks,
) -> PropertyReport {
    let h = extract(events, clients);
    let mut report = PropertyReport::default();
    let mut violate = |msg: String| report.violations.push(msg);

    // ---- A.1: delivered ⇒ committed at every involved database, before
    // delivery. "Involved" = the databases that voted for the attempt.
    for (rid, outcome, at) in &h.delivers {
        if *outcome != Outcome::Commit {
            violate(format!("A.1: client delivered non-commit outcome for {rid}"));
            continue;
        }
        let voters: Vec<NodeId> =
            h.votes.keys().filter(|(_, r)| r == rid).map(|(d, _)| *d).collect();
        for d in voters {
            match h.decides.get(&(d, *rid)) {
                Some((Outcome::Commit, t)) if t <= at => {}
                Some((Outcome::Commit, t)) => {
                    violate(format!("A.1: {rid} delivered at {at} before db {d} committed at {t}"))
                }
                Some((Outcome::Abort, _)) => {
                    violate(format!("A.1: {rid} delivered but db {d} aborted it"))
                }
                None => violate(format!("A.1: {rid} delivered but db {d} never decided it")),
            }
        }
    }

    // ---- A.2: per request, at most one attempt commits anywhere; and the
    // client delivers at most once per request.
    let mut committed_attempts: BTreeMap<RequestId, BTreeSet<u32>> = BTreeMap::new();
    for ((_, rid), (outcome, _)) in &h.decides {
        if *outcome == Outcome::Commit {
            committed_attempts.entry(rid.request).or_default().insert(rid.attempt);
        }
    }
    for (req, attempts) in &committed_attempts {
        if attempts.len() > 1 {
            violate(format!(
                "A.2: request {req} committed {} different results: {attempts:?}",
                attempts.len()
            ));
        }
    }
    let mut delivered_per_request: BTreeMap<RequestId, usize> = BTreeMap::new();
    for (rid, _, _) in &h.delivers {
        *delivered_per_request.entry(rid.request).or_insert(0) += 1;
    }
    for (req, n) in &delivered_per_request {
        if *n > 1 {
            violate(format!("A.2: request {req} delivered {n} times"));
        }
    }

    // ---- A.3: per attempt, all databases that decided agree.
    let mut outcomes_per_rid: BTreeMap<ResultId, BTreeSet<&'static str>> = BTreeMap::new();
    for ((_, rid), (outcome, _)) in &h.decides {
        let tag = match outcome {
            Outcome::Commit => "commit",
            Outcome::Abort => "abort",
        };
        outcomes_per_rid.entry(*rid).or_default().insert(tag);
    }
    for (rid, set) in &outcomes_per_rid {
        if set.len() > 1 {
            violate(format!("A.3: databases disagree on {rid}: {set:?}"));
        }
    }

    // ---- V.1: delivered results were computed, for issued requests.
    for (rid, _, _) in &h.delivers {
        if !h.computed.contains(rid) {
            violate(format!("V.1: {rid} delivered but never computed by any app server"));
        }
        if !h.issues.contains_key(&rid.request) {
            violate(format!("V.1: {rid} delivered but request was never issued"));
        }
    }

    // ---- V.2: committed ⇒ nobody voted no.
    for (rid, set) in &outcomes_per_rid {
        if set.contains("commit") {
            for ((d, r), (vote, _)) in &h.votes {
                if r == rid && *vote == Vote::No {
                    violate(format!("V.2: {rid} committed but db {d} voted no"));
                }
            }
        }
    }

    // ---- T.1 (opt-in liveness).
    if liveness.t1 {
        for req in h.issues.keys() {
            if h.client_crashes.contains(&req.client) {
                continue; // "unless it crashes"
            }
            if !h.delivers.iter().any(|(rid, _, _)| rid.request == *req) {
                violate(format!("T.1: request {req} issued but never delivered"));
            }
        }
    }

    // ---- T.2 (opt-in liveness).
    if liveness.t2 {
        for (d, rid) in h.votes.keys() {
            if !h.decides.contains_key(&(*d, *rid)) {
                violate(format!("T.2: db {d} voted for {rid} but never decided it"));
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::{NodeId, RequestId};

    fn rid(attempt: u32) -> ResultId {
        ResultId { request: RequestId { client: NodeId(0), seq: 1 }, attempt }
    }

    fn ev(at: u64, node: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent::new(Time(at), NodeId(node), kind)
    }

    fn full_liveness() -> LivenessChecks {
        LivenessChecks { t1: true, t2: true }
    }

    #[test]
    fn clean_commit_history_passes() {
        let events = vec![
            ev(0, 0, TraceKind::Issue { request: rid(1).request }),
            ev(1, 1, TraceKind::Computed { rid: rid(1) }),
            ev(2, 4, TraceKind::DbVote { rid: rid(1), vote: Vote::Yes }),
            ev(3, 4, TraceKind::DbDecide { rid: rid(1), outcome: Outcome::Commit }),
            ev(4, 0, TraceKind::Deliver { rid: rid(1), outcome: Outcome::Commit, steps: 12 }),
        ];
        check(&events, &[NodeId(0)], full_liveness()).assert_ok();
    }

    #[test]
    fn deliver_before_commit_violates_a1() {
        let events = vec![
            ev(0, 0, TraceKind::Issue { request: rid(1).request }),
            ev(1, 1, TraceKind::Computed { rid: rid(1) }),
            ev(2, 4, TraceKind::DbVote { rid: rid(1), vote: Vote::Yes }),
            ev(3, 0, TraceKind::Deliver { rid: rid(1), outcome: Outcome::Commit, steps: 12 }),
            ev(4, 4, TraceKind::DbDecide { rid: rid(1), outcome: Outcome::Commit }),
        ];
        let r = check(&events, &[NodeId(0)], LivenessChecks::default());
        assert!(!r.ok());
        assert!(r.violations[0].contains("A.1"));
    }

    #[test]
    fn two_committed_attempts_violate_a2() {
        let events = vec![
            ev(0, 4, TraceKind::DbDecide { rid: rid(1), outcome: Outcome::Commit }),
            ev(1, 4, TraceKind::DbDecide { rid: rid(2), outcome: Outcome::Commit }),
        ];
        let r = check(&events, &[NodeId(0)], LivenessChecks::default());
        assert!(r.violations.iter().any(|v| v.contains("A.2")));
    }

    #[test]
    fn db_disagreement_violates_a3() {
        let events = vec![
            ev(0, 4, TraceKind::DbDecide { rid: rid(1), outcome: Outcome::Commit }),
            ev(1, 5, TraceKind::DbDecide { rid: rid(1), outcome: Outcome::Abort }),
        ];
        let r = check(&events, &[NodeId(0)], LivenessChecks::default());
        assert!(r.violations.iter().any(|v| v.contains("A.3")));
    }

    #[test]
    fn uncomputed_delivery_violates_v1() {
        let events = vec![
            ev(0, 0, TraceKind::Issue { request: rid(1).request }),
            ev(2, 4, TraceKind::DbVote { rid: rid(1), vote: Vote::Yes }),
            ev(3, 4, TraceKind::DbDecide { rid: rid(1), outcome: Outcome::Commit }),
            ev(4, 0, TraceKind::Deliver { rid: rid(1), outcome: Outcome::Commit, steps: 1 }),
        ];
        let r = check(&events, &[NodeId(0)], LivenessChecks::default());
        assert!(r.violations.iter().any(|v| v.contains("V.1")));
    }

    #[test]
    fn commit_with_no_vote_violates_v2() {
        let events = vec![
            ev(0, 4, TraceKind::DbVote { rid: rid(1), vote: Vote::No }),
            ev(1, 5, TraceKind::DbVote { rid: rid(1), vote: Vote::Yes }),
            ev(2, 5, TraceKind::DbDecide { rid: rid(1), outcome: Outcome::Commit }),
        ];
        let r = check(&events, &[NodeId(0)], LivenessChecks::default());
        assert!(r.violations.iter().any(|v| v.contains("V.2")));
    }

    #[test]
    fn undelivered_request_violates_t1_unless_client_crashed() {
        let events = vec![ev(0, 0, TraceKind::Issue { request: rid(1).request })];
        let r = check(&events, &[NodeId(0)], full_liveness());
        assert!(r.violations.iter().any(|v| v.contains("T.1")));
        // With a client crash, T.1 is vacuous.
        let events2 = vec![
            ev(0, 0, TraceKind::Issue { request: rid(1).request }),
            ev(1, 0, TraceKind::Crash),
        ];
        check(&events2, &[NodeId(0)], full_liveness()).assert_ok();
    }

    #[test]
    fn unresolved_vote_violates_t2() {
        let events = vec![ev(0, 4, TraceKind::DbVote { rid: rid(1), vote: Vote::Yes })];
        let r = check(&events, &[NodeId(0)], full_liveness());
        assert!(r.violations.iter().any(|v| v.contains("T.2")));
    }

    #[test]
    fn abort_then_retry_commit_is_legal() {
        let events = vec![
            ev(0, 0, TraceKind::Issue { request: rid(1).request }),
            ev(1, 4, TraceKind::DbVote { rid: rid(1), vote: Vote::No }),
            ev(2, 4, TraceKind::DbDecide { rid: rid(1), outcome: Outcome::Abort }),
            ev(3, 1, TraceKind::Computed { rid: rid(2) }),
            ev(4, 4, TraceKind::DbVote { rid: rid(2), vote: Vote::Yes }),
            ev(5, 4, TraceKind::DbDecide { rid: rid(2), outcome: Outcome::Commit }),
            ev(6, 0, TraceKind::Deliver { rid: rid(2), outcome: Outcome::Commit, steps: 9 }),
        ];
        check(&events, &[NodeId(0)], full_liveness()).assert_ok();
    }
}
