//! Scenario construction: one call builds a complete three-tier system
//! under any of the four middle-tier protocols, on either runtime backend,
//! ready to run and observe.

use crate::workloads::Workload;
use etx_base::config::{
    env_override, BatchingConfig, CostModel, FdConfig, FeatureExplicit, FeatureSet, PipelineConfig,
    ProtocolConfig, ReadLeaseConfig, ReadPathConfig, SpeculationConfig,
};
use etx_base::fault::{CapabilityError, FaultOp, NemesisSchedule, NemesisWhen};
use etx_base::ids::{NodeId, ResultId, Topology};
use etx_base::runtime::{Host, RuntimeKind};
use etx_base::shard::{ShardId, ShardMap, ShardSpec};
use etx_base::time::{Dur, Time};
use etx_base::trace::{MsgStats, Trace, TraceKind};
use etx_base::value::Outcome;
use etx_baselines::{BaselineServer, PbRole, PbServer, RetryPolicy, SimpleClient, TpcServer};
use etx_core::{AppServer, DbServer, EtxClient, IssueMode, ReplRole};
use etx_fd::{ForcedSuspicion, HeartbeatFd, ScriptedFd};
use etx_rt::{ThreadedConfig, ThreadedHost};
use etx_sim::{NetConfig, RunOutcome, Sim, SimConfig};

/// Which protocol runs the middle tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiddleTier {
    /// The paper's asynchronous-replication e-Transaction protocol with
    /// `apps` replicas (the paper's evaluation uses 3).
    Etx {
        /// Number of application-server replicas.
        apps: usize,
    },
    /// Unreliable baseline (Figure 7a): one server.
    Baseline,
    /// Presumed-nothing 2PC (Figure 7b): one coordinator.
    Tpc,
    /// Primary-backup (Figure 7c): primary + backup.
    Pb,
}

impl MiddleTier {
    /// Number of application servers this tier deploys.
    pub fn app_count(&self) -> usize {
        match self {
            MiddleTier::Etx { apps } => *apps,
            MiddleTier::Baseline | MiddleTier::Tpc => 1,
            MiddleTier::Pb => 2,
        }
    }

    /// Row label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            MiddleTier::Etx { .. } => "AR",
            MiddleTier::Baseline => "baseline",
            MiddleTier::Tpc => "2PC",
            MiddleTier::Pb => "PB",
        }
    }
}

/// Everything needed to build a run.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    tier: MiddleTier,
    clients: usize,
    dbs: usize,
    /// Sharded back end: `Some((shards, replication))` spawns
    /// `shards × replication` database servers organised into per-shard
    /// replica groups; `None` keeps the flat `dbs` tier.
    sharding: Option<(u32, usize)>,
    requests: u64,
    workload: Workload,
    cost: CostModel,
    net: NetConfig,
    pcfg: ProtocolConfig,
    fd: FdConfig,
    client_timeout: Dur,
    client_retry: RetryPolicy,
    forced_suspicions: Vec<ForcedSuspicion>,
    /// Run-time ceiling: wall clock for the threaded backend's watchdog,
    /// virtual time for the simulator's `max_time` stop. `None` keeps each
    /// backend's default.
    wall_limit: Option<Dur>,
    /// Which runtime backend hosts the scenario (default: the simulator).
    runtime: RuntimeKind,
    /// Whether [`ScenarioBuilder::runtime`] was called: an explicit
    /// backend always wins over the `ETX_RUNTIME` process-wide override
    /// (a chaos test that needs fault injection means the simulator).
    runtime_explicit: bool,
    /// Which feature knobs were set explicitly: an explicit builder call
    /// always wins over the per-knob environment variable, so
    /// knob-specific tests keep meaning what they say under the CI
    /// matrix. See [`FeatureSet`] for the one precedence rule.
    explicit: FeatureExplicit,
}

impl ScenarioBuilder {
    /// A scenario with the paper's environment constants (Appendix 3) and
    /// the bank-update workload.
    pub fn new(tier: MiddleTier, seed: u64) -> Self {
        ScenarioBuilder {
            seed,
            tier,
            clients: 1,
            dbs: 1,
            sharding: None,
            requests: 1,
            workload: Workload::BankUpdate { amount: 100 },
            cost: CostModel::default(),
            net: NetConfig::paper_lan(),
            pcfg: ProtocolConfig::default(),
            fd: FdConfig::default(),
            client_timeout: Dur::from_millis(800),
            client_retry: RetryPolicy::GiveUp,
            forced_suspicions: Vec::new(),
            wall_limit: None,
            runtime: RuntimeKind::Sim,
            runtime_explicit: false,
            explicit: FeatureExplicit::default(),
        }
    }

    /// A scenario with miniature service times for fast tests.
    pub fn fast(tier: MiddleTier, seed: u64) -> Self {
        let mut b = Self::new(tier, seed);
        b.cost = CostModel::fast_for_tests();
        b.net = NetConfig {
            min_delay: Dur::from_micros(100),
            max_delay: Dur::from_micros(300),
            ..NetConfig::default()
        };
        b.pcfg = ProtocolConfig {
            client_backoff: Dur::from_millis(30),
            client_rebroadcast: Dur::from_millis(20),
            client_rebroadcast_max: Dur::from_millis(20),
            terminate_retry: Dur::from_millis(10),
            cleaner_interval: Dur::from_millis(5),
            consensus_resync: Dur::from_millis(8),
            consensus_round_patience: Dur::from_millis(4),
            route_to_last_responder: false,
            features: FeatureSet::default(),
        };
        b.fd = FdConfig {
            heartbeat_every: Dur::from_millis(2),
            initial_timeout: Dur::from_millis(8),
            timeout_increment: Dur::from_millis(4),
            max_timeout: Dur::from_millis(200),
        };
        b.client_timeout = Dur::from_millis(80);
        b
    }

    /// Number of databases.
    pub fn dbs(mut self, n: usize) -> Self {
        self.dbs = n;
        self
    }

    /// Partitions the keyspace over `n` hash shards (single-replica groups;
    /// see [`ScenarioBuilder::replication`] to widen them). Overrides
    /// [`ScenarioBuilder::dbs`]: the back end gets one replica group per
    /// shard. Only meaningful for key-addressed workloads under
    /// [`MiddleTier::Etx`].
    pub fn shards(mut self, n: u32) -> Self {
        let repl = self.sharding.map_or(1, |(_, r)| r);
        self.sharding = Some((n.max(1), repl));
        self
    }

    /// Sets the replica-group size of every shard (default 1). Implies a
    /// sharded back end (1 shard if [`ScenarioBuilder::shards`] was not
    /// called).
    pub fn replication(mut self, r: usize) -> Self {
        let shards = self.sharding.map_or(1, |(s, _)| s);
        self.sharding = Some((shards, r.max(1)));
        self
    }

    /// Selects the runtime backend: the deterministic simulator (default)
    /// or the multi-threaded host. On [`RuntimeKind::Threaded`] the
    /// scenario's network model is ignored (channels are genuinely
    /// reliable and undelayed unless a link fault says otherwise). Fault
    /// injection works on both backends through the shared
    /// [`Scenario::schedule_fault`] plane; only simulator *internals*
    /// (virtual-time stepping, mid-run storage reads, deterministic
    /// replay) stay behind [`Scenario::sim_mut`].
    ///
    /// The `ETX_RUNTIME` environment variable (`sim` | `threaded`) pins
    /// the backend for scenarios that do **not** call this method — the CI
    /// hook for running the equivalence suite on real threads. An explicit
    /// `runtime` call always wins over the environment: a golden-trace
    /// test that needs determinism means the simulator.
    pub fn runtime(mut self, kind: RuntimeKind) -> Self {
        self.runtime = kind;
        self.runtime_explicit = true;
        self
    }

    /// Caps the run on the hosting backend's clock: the threaded host's
    /// wall-clock watchdog and the simulator's virtual-time stop both
    /// return [`etx_sim::RunOutcome::TimeLimit`] instead of hanging the
    /// test process when a fault wedges the run. The same limit means the
    /// same thing on either backend — "this scenario is allowed this much
    /// of its host's time".
    pub fn wall_limit(mut self, limit: Dur) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Sets all optional protocol features in one call, marking every knob
    /// explicit (immune to the per-knob environment variables; see
    /// [`FeatureSet`] for the one precedence rule).
    pub fn features(mut self, f: FeatureSet) -> Self {
        self.pcfg.features = f;
        self.explicit = FeatureExplicit::all();
        self
    }

    /// Enables commit-pipeline batching: application servers accumulate up
    /// to `cfg.max_batch` concurrent request outcomes (or wait at most
    /// `cfg.window`) and decide them in one decision-log slot.
    /// `max_batch = 1` is the degenerate per-request configuration.
    ///
    /// The `ETX_BATCH_SIZE` environment variable pins the pipeline depth
    /// for scenarios that do **not** call this method — the CI batching
    /// matrix's hook for running the whole suite under a deep pipeline.
    /// An explicit `batching` call always wins over the environment: a
    /// test that pins a depth means it.
    pub fn batching(mut self, cfg: BatchingConfig) -> Self {
        self.pcfg.features.batching = cfg;
        self.explicit.batching = true;
        self
    }

    /// Configures decision-log pipelining: with a depth above one, the
    /// proposing application server keeps up to `cfg.depth` undecided
    /// decision-log slots in flight at once, each running its own
    /// write-once consensus round concurrently; decides may land out of
    /// order but apply stays strictly in slot order. Depth 1 (the
    /// default) is the single-slot pipeline of PR 6/7/8, byte-for-byte.
    /// Combines with [`ScenarioBuilder::speculation`]: every proposed
    /// slot ships for speculative execution, stacking per-slot buffers on
    /// the shard primaries.
    ///
    /// The `ETX_PIPELINE_DEPTH` environment variable pins the depth for
    /// scenarios that do **not** call this method — the CI matrix's hook
    /// for running the whole suite under a deep window. An explicit
    /// `pipeline` call always wins over the environment.
    pub fn pipeline(mut self, cfg: PipelineConfig) -> Self {
        self.pcfg.features.pipeline = cfg;
        self.explicit.pipeline = true;
        self
    }

    /// Configures speculative batch execution: with `enabled`, flushed
    /// pipeline batches execute on the shard primaries *while* their
    /// decision-log slot runs consensus, and the buffered work is
    /// promoted (or discarded and replayed) when the slot decides.
    ///
    /// The `ETX_SPECULATION` environment variable pins the stage for
    /// scenarios that do **not** call this method (`1`/`on` enables,
    /// `0`/`off` disables) — the CI matrix's hook for running the whole
    /// suite down both paths. An explicit `speculation` call always wins
    /// over the environment.
    pub fn speculation(mut self, cfg: SpeculationConfig) -> Self {
        self.pcfg.features.speculation = cfg;
        self.explicit.speculation = true;
        self
    }

    /// Configures the read fast lane: with `enabled`, read-only scripts
    /// (all-`Get`) route around the commit pipeline as direct snapshot
    /// reads; with `follower_reads` on top, they spread over each shard's
    /// replicas, gated on the per-shard freshness stamp.
    ///
    /// The `ETX_READ_PATH` environment variable pins the route for
    /// scenarios that do **not** call this method (`1`/`on` forces the
    /// lane on with follower reads, `0`/`off` forces it off) — the CI
    /// read-path matrix's hook for running the whole suite down both
    /// routes. An explicit `read_path` call always wins over the
    /// environment: a test that pins a route means it.
    pub fn read_path(mut self, cfg: ReadPathConfig) -> Self {
        self.pcfg.features.read_path = cfg;
        self.explicit.read_path = true;
        self
    }

    /// Configures time-bounded read leases: shard primaries grant their
    /// followers "my ship position is authoritative through T" and
    /// advertise the grants to application servers, which then route any
    /// fast-path read — multi-shard snapshot-validation collects included
    /// — at in-lease followers with no stamp gate and no forward hop.
    /// Only meaningful on top of an enabled read fast lane.
    ///
    /// The `ETX_READ_LEASES` environment variable pins the mode for
    /// scenarios that do **not** call this method (`1`/`on` forces the
    /// fast-test lease preset, `0`/`off` forces leases off) — the CI
    /// read-path matrix's hook for running the whole suite down both
    /// legs. An explicit `read_leases` call always wins over the
    /// environment.
    pub fn read_leases(mut self, cfg: ReadLeaseConfig) -> Self {
        self.pcfg.features.read_leases = cfg;
        self.explicit.read_leases = true;
        self
    }

    /// Number of concurrent clients (each issues its own request plan;
    /// concurrent clients generate genuine lock contention).
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n.max(1);
        self
    }

    /// Number of sequential requests the client issues.
    pub fn requests(mut self, n: u64) -> Self {
        self.requests = n;
        self
    }

    /// The workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Cost model override.
    pub fn cost(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Network override.
    pub fn net(mut self, n: NetConfig) -> Self {
        self.net = n;
        self
    }

    /// Protocol configuration override.
    pub fn protocol(mut self, p: ProtocolConfig) -> Self {
        self.pcfg = p;
        self
    }

    /// Failure-detector configuration override.
    pub fn fd(mut self, f: FdConfig) -> Self {
        self.fd = f;
        self
    }

    /// Baseline-client retry policy (ignored by the e-Transaction client,
    /// which never needs one).
    pub fn client_retry(mut self, p: RetryPolicy) -> Self {
        self.client_retry = p;
        self
    }

    /// Baseline-client patience.
    pub fn client_timeout(mut self, t: Dur) -> Self {
        self.client_timeout = t;
        self
    }

    /// Injects false-suspicion windows into every e-Transaction server's
    /// failure detector (chaos testing).
    pub fn force_suspicions(mut self, windows: Vec<ForcedSuspicion>) -> Self {
        self.forced_suspicions = windows;
        self
    }

    /// Builds the system with all processes registered on the selected
    /// runtime backend.
    pub fn build(mut self) -> Scenario {
        // CI matrix hooks. The feature knobs resolve through the one
        // precedence rule documented on `FeatureSet` (explicit builder
        // call > environment variable > default), implemented in a single
        // place; the env-forced batch window backstop reuses the cleaner
        // cadence, which already scales with the scenario's cost model —
        // fast vs. paper-scale.
        let window = self.pcfg.cleaner_interval;
        self.pcfg.features.apply_env(self.explicit, window);
        // ETX_RUNTIME pins the backend the same way — `sim` | `threaded`,
        // explicit `.runtime(..)` immune.
        let runtime = env_override("ETX_RUNTIME", self.runtime_explicit, RuntimeKind::parse)
            .unwrap_or(self.runtime);
        let db_count = match self.sharding {
            Some((shards, repl)) => shards as usize * repl,
            None => self.dbs,
        };
        let topo = Topology::new(self.clients, self.tier.app_count(), db_count);
        // The shard map every application server routes against. Flat
        // scenarios keep the implicit one-shard-per-db layout, so explicit
        // scripts behave exactly as before sharding existed.
        let shard_map = match self.sharding {
            Some((shards, repl)) => {
                ShardMap::build(ShardSpec::Hash { shards }, &topo.db_servers, repl)
            }
            None => ShardMap::one_per_db(&topo.db_servers),
        };
        let mut backend = match runtime {
            RuntimeKind::Sim => {
                let mut sim_cfg = SimConfig::with_seed(self.seed);
                sim_cfg.cost = self.cost.clone();
                sim_cfg.net = self.net.clone();
                if let Some(limit) = self.wall_limit {
                    sim_cfg.max_time = Time(limit.0);
                }
                Backend::Sim(Sim::new(sim_cfg))
            }
            RuntimeKind::Threaded => {
                // The network model is a simulator capability: threaded
                // channels are genuinely reliable and undelayed. Modelled
                // *service* times (the cost model) are honored on both.
                let mut tcfg = ThreadedConfig::with_seed(self.seed);
                tcfg.cost = self.cost.clone();
                if let Some(limit) = self.wall_limit {
                    tcfg.wall_limit = std::time::Duration::from_micros(limit.0);
                }
                Backend::Threaded {
                    host: ThreadedHost::new(tcfg),
                    trace: Trace::default(),
                    stats: MsgStats::default(),
                }
            }
        };
        let sim = backend.host_mut();
        let seed_data = self.workload.seed_data();

        // Clients first (ids must match Topology::new order).
        for &client in &topo.clients {
            let plan = self.workload.plan(&topo, client, self.requests);
            match self.tier {
                MiddleTier::Etx { .. } | MiddleTier::Pb => {
                    let alist = topo.app_servers.clone();
                    let pcfg = self.pcfg.clone();
                    let mode = if self.workload.is_open_loop() {
                        IssueMode::OpenLoop
                    } else {
                        IssueMode::Sequential
                    };
                    sim.add_node(
                        "client",
                        Box::new(move |_| {
                            Box::new(EtxClient::with_mode(
                                alist.clone(),
                                pcfg.clone(),
                                plan.clone(),
                                mode,
                            ))
                        }),
                    );
                }
                MiddleTier::Baseline | MiddleTier::Tpc => {
                    let server = topo.app_servers[0];
                    let timeout = self.client_timeout;
                    let policy = self.client_retry;
                    sim.add_node(
                        "client",
                        Box::new(move |_| {
                            Box::new(SimpleClient::new(server, timeout, policy, plan.clone()))
                        }),
                    );
                }
            }
        }

        // Middle tier.
        match self.tier {
            MiddleTier::Etx { apps } => {
                for _ in 0..apps {
                    let topo_c = topo.clone();
                    let pcfg = self.pcfg.clone();
                    let cost = self.cost.clone();
                    let fd_cfg = self.fd;
                    let forced = self.forced_suspicions.clone();
                    let map = shard_map.clone();
                    sim.add_node(
                        "app",
                        Box::new(move |me| {
                            let inner = HeartbeatFd::new(me, &topo_c.app_servers, fd_cfg);
                            let fd: Box<dyn etx_fd::FailureDetector> = if forced.is_empty() {
                                Box::new(inner)
                            } else {
                                Box::new(ScriptedFd::new(inner, forced.clone()))
                            };
                            Box::new(AppServer::with_shards(
                                me,
                                topo_c.clone(),
                                pcfg.clone(),
                                cost.clone(),
                                map.clone(),
                                fd,
                            ))
                        }),
                    );
                }
            }
            MiddleTier::Baseline => {
                let cost = self.cost.clone();
                sim.add_node(
                    "baseline",
                    Box::new(move |_| Box::new(BaselineServer::new(cost.clone()))),
                );
            }
            MiddleTier::Tpc => {
                let dlist = topo.db_servers.clone();
                let cost = self.cost.clone();
                sim.add_node(
                    "tpc",
                    Box::new(move |_| Box::new(TpcServer::new(dlist.clone(), cost.clone()))),
                );
            }
            MiddleTier::Pb => {
                let (p, b) = (topo.app_servers[0], topo.app_servers[1]);
                let dlist = topo.db_servers.clone();
                let cost = self.cost.clone();
                let d2 = dlist.clone();
                let cost2 = cost.clone();
                sim.add_node(
                    "pb-primary",
                    Box::new(move |_| {
                        Box::new(PbServer::new(PbRole::Primary, b, dlist.clone(), cost.clone()))
                    }),
                );
                sim.add_node(
                    "pb-backup",
                    Box::new(move |_| {
                        Box::new(PbServer::new(PbRole::Backup, p, d2.clone(), cost2.clone()))
                    }),
                );
            }
        }

        // Back end: one process per database server. Under sharding each
        // server holds only its shard's slice of the seed data and knows
        // its replica-group role; followers pull snapshots at twice the
        // terminate-retry cadence until caught up.
        let sync_retry = Dur(self.pcfg.terminate_retry.0 * 2);
        let mut db_seeds = std::collections::HashMap::new();
        for &node in &topo.db_servers {
            let alist = topo.app_servers.clone();
            let cost = self.cost.clone();
            let (data, repl) = match self.sharding {
                None => (seed_data.clone(), ReplRole::default()),
                Some(_) => {
                    let shard = shard_map.shard_of_node(node).expect("every db is in a group");
                    let data: Vec<(String, i64)> = seed_data
                        .iter()
                        .filter(|(k, _)| shard_map.shard_of(k) == shard)
                        .cloned()
                        .collect();
                    let primary = shard_map.primary(shard);
                    let repl = if node == primary {
                        ReplRole {
                            followers: shard_map.peers_of(node),
                            sync_from: None,
                            sync_retry,
                        }
                    } else {
                        ReplRole { followers: Vec::new(), sync_from: Some(primary), sync_retry }
                    };
                    (data, repl)
                }
            };
            db_seeds.insert(node, data.clone());
            let spec = self.pcfg.features.speculation;
            let leases = self.pcfg.features.read_leases;
            let pipeline = self.pcfg.features.pipeline;
            sim.add_node(
                "db",
                Box::new(move |_| {
                    Box::new(
                        DbServer::with_replication(
                            alist.clone(),
                            cost.clone(),
                            data.clone(),
                            repl.clone(),
                        )
                        .with_speculation(spec)
                        .with_read_leases(leases)
                        .with_pipeline(pipeline),
                    )
                }),
            );
        }

        Scenario {
            backend,
            topo,
            shard_map,
            db_seeds,
            requests: self.requests * self.clients as u64,
        }
    }
}

/// The runtime backend a built scenario runs on. Sim keeps its trace and
/// stats inline (borrowable for free); the threaded host keeps them behind
/// a lock, so the scenario caches snapshots refreshed at every run /
/// quiesce / stop boundary.
#[derive(Debug)]
pub enum Backend {
    /// The deterministic discrete-event simulator.
    Sim(Sim),
    /// The multi-threaded host plus the scenario's snapshot cache of its
    /// locked trace/stats sinks.
    Threaded {
        /// The host.
        host: ThreadedHost,
        /// Trace snapshot as of the last run/quiesce/stop boundary.
        trace: Trace,
        /// Stats snapshot as of the last run/quiesce/stop boundary.
        stats: MsgStats,
    },
}

impl Backend {
    fn host(&self) -> &dyn Host {
        match self {
            Backend::Sim(sim) => sim,
            Backend::Threaded { host, .. } => host,
        }
    }

    fn host_mut(&mut self) -> &mut dyn Host {
        match self {
            Backend::Sim(sim) => sim,
            Backend::Threaded { host, .. } => host,
        }
    }

    fn kind(&self) -> RuntimeKind {
        match self {
            Backend::Sim(_) => RuntimeKind::Sim,
            Backend::Threaded { .. } => RuntimeKind::Threaded,
        }
    }
}

/// A built system plus convenience queries over its trace.
#[derive(Debug)]
pub struct Scenario {
    /// Which backend hosts the run (the simulator, or the threaded host
    /// with its snapshot cache). Prefer the backend-neutral accessors
    /// ([`Scenario::trace`], [`Scenario::stats`], [`Scenario::now`]) and
    /// the capability gates ([`Scenario::sim`], [`Scenario::sim_mut`]).
    backend: Backend,
    /// Who is who.
    pub topo: Topology,
    /// How the keyspace maps onto the database tier (flat topologies get
    /// the implicit one-shard-per-db map).
    pub shard_map: ShardMap,
    /// The seed data each database server started with (per-shard slices
    /// under sharding) — the baseline for state reconstruction.
    db_seeds: std::collections::HashMap<NodeId, Vec<(String, i64)>>,
    /// Total number of requests across all clients.
    pub requests: u64,
}

impl Scenario {
    /// Which runtime backend hosts this scenario.
    pub fn runtime_kind(&self) -> RuntimeKind {
        self.backend.kind()
    }

    /// Whether the backend can inject faults (crashes, pauses, link
    /// faults, partitions). True on both built-in backends; chaos tooling
    /// should still check it (or match on the [`CapabilityError`] from
    /// [`Scenario::schedule_fault`]) so a future fault-blind host degrades
    /// loudly instead of turning a chaos test into a green no-op.
    pub fn supports_fault_injection(&self) -> bool {
        self.backend.host().supports_fault_injection()
    }

    /// Injects one fault right now, backend-neutral: the simulator applies
    /// it at the current virtual instant, the threaded host applies it to
    /// the live threads (or at startup when scheduled before the first
    /// run). Returns [`CapabilityError`] if the hosting backend cannot
    /// express the operation, so a chaos test can never silently no-op.
    pub fn fault(&mut self, op: FaultOp) -> Result<(), CapabilityError> {
        self.backend.host_mut().schedule_fault(NemesisWhen::Now, op)
    }

    /// Schedules one fault on the hosting backend: `when` is an offset on
    /// the backend's own clock (virtual for the simulator, wall for the
    /// threaded host) or a trace predicate evaluated as events land.
    pub fn schedule_fault(
        &mut self,
        when: NemesisWhen,
        op: FaultOp,
    ) -> Result<(), CapabilityError> {
        self.backend.host_mut().schedule_fault(when, op)
    }

    /// Schedules a whole nemesis schedule, in order. One schedule drives
    /// either backend — this is the chaos runners' entry point.
    pub fn apply_schedule(&mut self, schedule: &NemesisSchedule) -> Result<(), CapabilityError> {
        self.backend.host_mut().apply_schedule(schedule)
    }

    /// The simulator, for internals only it has (live trace callbacks,
    /// virtual-time stepping, mid-run storage reads, deterministic
    /// replay). Fault injection is **not** such a capability any more —
    /// use [`Scenario::schedule_fault`] / [`Scenario::apply_schedule`],
    /// which work on both backends.
    ///
    /// # Panics
    ///
    /// Panics on the threaded backend: virtual time and deterministic
    /// replay are simulator internals by design, and pretending otherwise
    /// would silently change what a test measures.
    pub fn sim(&self) -> &Sim {
        match &self.backend {
            Backend::Sim(sim) => sim,
            Backend::Threaded { .. } => panic!(
                "this scenario runs on the threaded backend: virtual time, mid-run \
                 storage reads, and deterministic replay are simulator internals — \
                 build with RuntimeKind::Sim for those, and use \
                 Scenario::schedule_fault for fault injection, which works on both \
                 backends"
            ),
        }
    }

    /// Mutable simulator access (run_until / virtual-time stepping / live
    /// trace callbacks). Same capability gate as [`Scenario::sim`]; for
    /// fault injection use the backend-neutral [`Scenario::schedule_fault`]
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics on the threaded backend, like [`Scenario::sim`].
    pub fn sim_mut(&mut self) -> &mut Sim {
        match &mut self.backend {
            Backend::Sim(sim) => sim,
            Backend::Threaded { .. } => panic!(
                "this scenario runs on the threaded backend: virtual time, mid-run \
                 storage reads, and deterministic replay are simulator internals — \
                 build with RuntimeKind::Sim for those, and use \
                 Scenario::schedule_fault for fault injection, which works on both \
                 backends"
            ),
        }
    }

    /// The threaded host, when this scenario runs on it (introspection in
    /// runtime-equivalence tests; `None` on the simulator).
    pub fn threaded(&self) -> Option<&ThreadedHost> {
        match &self.backend {
            Backend::Threaded { host, .. } => Some(host),
            Backend::Sim(_) => None,
        }
    }

    /// Refreshes the threaded backend's trace/stats snapshot cache. No-op
    /// on the simulator, whose sinks are read in place.
    fn sync(&mut self) {
        if let Backend::Threaded { host, trace, stats } = &mut self.backend {
            *trace = host.trace_snapshot();
            *stats = host.stats_snapshot();
        }
    }

    /// The collected trace, backend-neutral. On the threaded backend this
    /// is the snapshot taken at the last run/quiesce/stop boundary —
    /// exactly the points after which tests read it.
    pub fn trace(&self) -> &Trace {
        match &self.backend {
            Backend::Sim(sim) => sim.trace(),
            Backend::Threaded { trace, .. } => trace,
        }
    }

    /// Message statistics, backend-neutral (same snapshot discipline as
    /// [`Scenario::trace`]).
    pub fn stats(&self) -> &MsgStats {
        match &self.backend {
            Backend::Sim(sim) => sim.stats(),
            Backend::Threaded { stats, .. } => stats,
        }
    }

    /// Current time on the hosting backend's clock (virtual for the
    /// simulator, monotonic-since-start for the threaded host).
    pub fn now(&self) -> Time {
        match &self.backend {
            Backend::Sim(sim) => sim.now(),
            Backend::Threaded { host, .. } => host.host_now(),
        }
    }

    /// Counts trace events whose kind matches `pred` — the one filtered
    /// count every `*_reads` / `spec_*` / `lease_*` accessor routes
    /// through.
    fn count(&self, pred: impl FnMut(&TraceKind) -> bool) -> usize {
        self.trace().count_kind(pred)
    }

    /// Collects the distinct attempt ids of trace events `f` maps to
    /// `Some(rid)` — deduplicated because every replica that processes an
    /// attempt traces its own copy of most per-attempt events.
    fn distinct_rids(&self, mut f: impl FnMut(&TraceKind) -> Option<ResultId>) -> usize {
        let mut rids = std::collections::BTreeSet::new();
        for e in self.trace().events() {
            if let Some(rid) = f(&e.kind) {
                rids.insert(rid);
            }
        }
        rids.len()
    }

    /// Runs until the client has delivered (or been told the fate of) `n`
    /// requests — deliveries for e-Transactions, deliveries+exceptions for
    /// baselines.
    pub fn run_until_settled(&mut self, n: usize) -> RunOutcome {
        let mut scanned = 0usize;
        let mut done = 0usize;
        let outcome = self.backend.host_mut().run_trace_until(Box::new(move |trace| {
            let events = trace.events();
            for e in &events[scanned..] {
                if matches!(e.kind, TraceKind::Deliver { .. } | TraceKind::Exception { .. }) {
                    done += 1;
                }
            }
            scanned = events.len();
            done >= n
        }));
        self.sync();
        outcome
    }

    /// Lets in-flight background work (decide pushes, acks) finish.
    pub fn quiesce(&mut self, extra: Dur) {
        self.backend.host_mut().quiesce_for(extra);
        self.sync();
    }

    /// Shuts the run down: on the threaded backend, joins every node
    /// thread (unlocking post-run process/log introspection) and takes a
    /// final trace/stats snapshot. No-op on the simulator, which has no
    /// threads to join.
    ///
    /// # Panics
    ///
    /// Panics if any node thread itself panicked during the run — a node
    /// that died of a bug (rather than an injected crash) is a scenario
    /// failure, not something to swallow in a join. Suppressed while
    /// already unwinding so a failing assertion stays the primary error.
    pub fn stop(&mut self) {
        if let Backend::Threaded { host, .. } = &mut self.backend {
            host.stop();
            let panicked = host.panicked_nodes();
            if !panicked.is_empty() && !std::thread::panicking() {
                panic!(
                    "scenario failure: node thread(s) panicked during the run: {panicked:?} \
                     (an injected FaultOp::Crash traces TraceKind::Crash instead — a \
                     panicking node is a bug in the node, not a fault)"
                );
            }
        }
        self.sync();
    }

    /// All deliveries so far: (attempt, outcome, steps, at).
    pub fn deliveries(&self) -> Vec<(ResultId, Outcome, u32, Time)> {
        self.trace()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Deliver { rid, outcome, steps } => Some((rid, outcome, steps, e.at)),
                _ => None,
            })
            .collect()
    }

    /// Count of committed deliveries.
    pub fn delivered_commits(&self) -> usize {
        self.deliveries().iter().filter(|(_, o, _, _)| *o == Outcome::Commit).count()
    }

    /// Every delivered `(attempt, decision)` pair — results included —
    /// read straight out of the client processes. Unlike
    /// [`Scenario::deliveries`] this exposes the delivered *values*, which
    /// the trace deliberately does not carry; value-level assertions (the
    /// read-equivalence property among them) live here.
    ///
    /// Takes `&mut self` because on the threaded backend the client
    /// processes belong to their threads while running: the scenario is
    /// stopped (threads joined) first. The simulator reads live processes
    /// and keeps running.
    pub fn delivered_results(&mut self) -> Vec<(ResultId, etx_base::value::Decision)> {
        if matches!(self.backend, Backend::Threaded { .. }) {
            self.stop();
        }
        let mut out = Vec::new();
        for &client in &self.topo.clients {
            let proc_ref = match &self.backend {
                Backend::Sim(sim) => sim.process_ref(client),
                Backend::Threaded { host, .. } => host.process_ref(client),
            };
            let Some(proc_ref) = proc_ref else { continue };
            let Some(any) = proc_ref.as_any() else { continue };
            if let Some(c) = any.downcast_ref::<EtxClient>() {
                out.extend(c.delivered().iter().cloned());
            }
        }
        out
    }

    /// Count of decision-log slots applied with **more than one** request
    /// outcome — the definition of "this run exercised real batches",
    /// shared by the chaos runners and the batching tests.
    pub fn batched_slots(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::BatchDecided { len, .. } if *len >= 2))
    }

    /// Count of group WAL appends framing more than one record (group
    /// commit / batched replication apply actually amortising the log).
    pub fn group_appends(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::GroupAppend { len } if *len >= 2))
    }

    /// Count of batches a shard primary executed speculatively while the
    /// decision-log slot was still running consensus.
    pub fn spec_execs(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::SpecExec { .. }))
    }

    /// Count of decided slots whose speculatively buffered execution was
    /// promoted (the decided batch matched the speculated one).
    pub fn spec_hits(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::SpecHit { .. }))
    }

    /// Count of decided slots whose speculation buffer was discarded and
    /// replayed on the decide-then-execute path (mis-speculation).
    pub fn spec_aborts(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::SpecAbort { .. }))
    }

    /// Deepest decision-log window any application server reached: the
    /// maximum number of concurrently undecided slots observed. Returns 0
    /// or 1 for runs that never overlapped rounds (depth-1 pipelines trace
    /// no [`TraceKind::PipelineWindow`] events at all).
    pub fn pipeline_window_peak(&self) -> u32 {
        self.trace()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::PipelineWindow { open } => Some(open),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Distinct attempts that took the read fast lane (classified
    /// read-only and routed around the commit pipeline).
    pub fn fast_path_reads(&self) -> usize {
        self.distinct_rids(|k| match k {
            TraceKind::ReadFastPath { rid, .. } => Some(*rid),
            _ => None,
        })
    }

    /// Count of fast-path reads served locally by a shard follower.
    pub fn follower_reads_served(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::FollowerRead { .. }))
    }

    /// Count of fast-path reads a lagging follower forwarded to its
    /// primary (the freshness gate firing).
    pub fn reads_forwarded(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::ReadForwarded { .. }))
    }

    /// Count of timer-driven lease grants shard primaries issued (the
    /// piggybacked renewals on commit shipments are untraced).
    pub fn lease_grants(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::LeaseGrant { .. }))
    }

    /// Count of fast-path reads a follower refused because its read lease
    /// had expired (each is followed by a `ReadForwarded` hop).
    pub fn lease_expired_reads(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::LeaseExpired { .. }))
    }

    /// Count of write-ack fences recovering lease-granting primaries
    /// installed (each withholds commit acks for one full lease term).
    pub fn lease_fences(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::LeaseFence { .. }))
    }

    /// Count of retry-backstop firings for fast-path reads (each re-sends
    /// the unanswered calls of the current collect).
    pub fn reads_retried(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::ReadRetried { .. }))
    }

    /// Count of snapshot-validation re-collects issued by multi-shard
    /// fast-path reads (a collect disagreed with its predecessor).
    pub fn read_snapshot_rounds(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::ReadSnapshotRound { .. }))
    }

    /// Count of fast-path reads that exhausted their snapshot-validation
    /// budget and fell back to the locking slow path.
    pub fn read_fallbacks(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::ReadFallback { .. }))
    }

    /// Database commit events (per (db, rid), at most one each).
    pub fn db_commits(&self) -> usize {
        self.count(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }))
    }

    /// The default primary application server.
    pub fn primary(&self) -> NodeId {
        self.topo.primary()
    }

    /// The primary database replica of a shard.
    pub fn shard_primary(&self, shard: u32) -> NodeId {
        self.shard_map.primary(ShardId(shard))
    }

    /// The full replica group of a shard (index 0 is the primary).
    pub fn shard_replicas(&self, shard: u32) -> &[NodeId] {
        self.shard_map.replicas(ShardId(shard))
    }

    /// Count of distinct attempts routed across more than one shard.
    /// (Deduplicated by attempt id: every application-server replica that
    /// materializes an attempt traces its own `ShardRoute`, and client
    /// rebroadcasts under faults add more — raw event counts overstate.)
    pub fn cross_shard_routes(&self) -> usize {
        self.distinct_rids(|k| match k {
            TraceKind::ShardRoute { rid, shards } if *shards > 1 => Some(*rid),
            _ => None,
        })
    }

    /// Count of distinct attempts that were shard-routed at all (single- or
    /// multi-shard) — the denominator for cross-shard fractions.
    pub fn shard_routed_attempts(&self) -> usize {
        self.distinct_rids(|k| match k {
            TraceKind::ShardRoute { rid, .. } => Some(*rid),
            _ => None,
        })
    }

    /// Per-request client-perceived latency in milliseconds: delivery time
    /// minus the request's first issue. (Delivery *timestamps* are only a
    /// latency for single-request runs; a sequential client's k-th request
    /// carries its predecessors' time in its timestamp.)
    pub fn request_latencies_ms(&self) -> Vec<f64> {
        let mut issues: std::collections::BTreeMap<etx_base::ids::RequestId, Time> =
            std::collections::BTreeMap::new();
        for e in self.trace().events() {
            if let TraceKind::Issue { request } = e.kind {
                issues.entry(request).or_insert(e.at);
            }
        }
        self.deliveries()
            .iter()
            .filter_map(|(rid, _, _, at)| {
                issues.get(&rid.request).map(|&t0| at.since(t0).as_millis_f64())
            })
            .collect()
    }

    /// Reconstructs a database server's committed state from its durable
    /// log: both hosts expose stable storage (not process memory), and
    /// recovery is deterministic, so replaying the WAL over the server's
    /// seed slice yields exactly what the server holds committed. This is
    /// how tests assert replica-group convergence.
    ///
    /// Takes `&mut self` because on the threaded backend the logs belong
    /// to their node threads while running: the scenario is stopped
    /// (threads joined) first. The simulator reads storage mid-run and
    /// keeps running.
    pub fn rebuilt_committed(&mut self, db: NodeId) -> std::collections::BTreeMap<String, i64> {
        if matches!(self.backend, Backend::Threaded { .. }) {
            self.stop();
        }
        let seed = self.db_seeds.get(&db).cloned().unwrap_or_default();
        let log: Vec<etx_base::wal::StableRecord> = match &self.backend {
            Backend::Sim(sim) => sim.storage(db).read(etx_base::wal::LOG_WAL).to_vec(),
            Backend::Threaded { host, .. } => host.log_read(db, etx_base::wal::LOG_WAL),
        };
        etx_store::Engine::recover_with_seed(seed, &log).snapshot().clone()
    }
}
