//! Scenario construction: one call builds a complete three-tier system
//! under any of the four middle-tier protocols, ready to run and observe.

use crate::workloads::Workload;
use etx_base::config::{CostModel, FdConfig, ProtocolConfig};
use etx_base::ids::{NodeId, ResultId, Topology};
use etx_base::time::{Dur, Time};
use etx_base::trace::TraceKind;
use etx_base::value::Outcome;
use etx_baselines::{BaselineServer, PbRole, PbServer, RetryPolicy, SimpleClient, TpcServer};
use etx_core::{AppServer, DbServer, EtxClient};
use etx_fd::{ForcedSuspicion, HeartbeatFd, ScriptedFd};
use etx_sim::{NetConfig, RunOutcome, Sim, SimConfig};

/// Which protocol runs the middle tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiddleTier {
    /// The paper's asynchronous-replication e-Transaction protocol with
    /// `apps` replicas (the paper's evaluation uses 3).
    Etx {
        /// Number of application-server replicas.
        apps: usize,
    },
    /// Unreliable baseline (Figure 7a): one server.
    Baseline,
    /// Presumed-nothing 2PC (Figure 7b): one coordinator.
    Tpc,
    /// Primary-backup (Figure 7c): primary + backup.
    Pb,
}

impl MiddleTier {
    /// Number of application servers this tier deploys.
    pub fn app_count(&self) -> usize {
        match self {
            MiddleTier::Etx { apps } => *apps,
            MiddleTier::Baseline | MiddleTier::Tpc => 1,
            MiddleTier::Pb => 2,
        }
    }

    /// Row label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            MiddleTier::Etx { .. } => "AR",
            MiddleTier::Baseline => "baseline",
            MiddleTier::Tpc => "2PC",
            MiddleTier::Pb => "PB",
        }
    }
}

/// Everything needed to build a run.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    tier: MiddleTier,
    clients: usize,
    dbs: usize,
    requests: u64,
    workload: Workload,
    cost: CostModel,
    net: NetConfig,
    pcfg: ProtocolConfig,
    fd: FdConfig,
    client_timeout: Dur,
    client_retry: RetryPolicy,
    forced_suspicions: Vec<ForcedSuspicion>,
}

impl ScenarioBuilder {
    /// A scenario with the paper's environment constants (Appendix 3) and
    /// the bank-update workload.
    pub fn new(tier: MiddleTier, seed: u64) -> Self {
        ScenarioBuilder {
            seed,
            tier,
            clients: 1,
            dbs: 1,
            requests: 1,
            workload: Workload::BankUpdate { amount: 100 },
            cost: CostModel::default(),
            net: NetConfig::paper_lan(),
            pcfg: ProtocolConfig::default(),
            fd: FdConfig::default(),
            client_timeout: Dur::from_millis(800),
            client_retry: RetryPolicy::GiveUp,
            forced_suspicions: Vec::new(),
        }
    }

    /// A scenario with miniature service times for fast tests.
    pub fn fast(tier: MiddleTier, seed: u64) -> Self {
        let mut b = Self::new(tier, seed);
        b.cost = CostModel::fast_for_tests();
        b.net = NetConfig {
            min_delay: Dur::from_micros(100),
            max_delay: Dur::from_micros(300),
            ..NetConfig::default()
        };
        b.pcfg = ProtocolConfig {
            client_backoff: Dur::from_millis(30),
            client_rebroadcast: Dur::from_millis(20),
            terminate_retry: Dur::from_millis(10),
            cleaner_interval: Dur::from_millis(5),
            consensus_resync: Dur::from_millis(8),
            consensus_round_patience: Dur::from_millis(4),
            route_to_last_responder: false,
        };
        b.fd = FdConfig {
            heartbeat_every: Dur::from_millis(2),
            initial_timeout: Dur::from_millis(8),
            timeout_increment: Dur::from_millis(4),
            max_timeout: Dur::from_millis(200),
        };
        b.client_timeout = Dur::from_millis(80);
        b
    }

    /// Number of databases.
    pub fn dbs(mut self, n: usize) -> Self {
        self.dbs = n;
        self
    }

    /// Number of concurrent clients (each issues its own request plan;
    /// concurrent clients generate genuine lock contention).
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n.max(1);
        self
    }

    /// Number of sequential requests the client issues.
    pub fn requests(mut self, n: u64) -> Self {
        self.requests = n;
        self
    }

    /// The workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Cost model override.
    pub fn cost(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Network override.
    pub fn net(mut self, n: NetConfig) -> Self {
        self.net = n;
        self
    }

    /// Protocol configuration override.
    pub fn protocol(mut self, p: ProtocolConfig) -> Self {
        self.pcfg = p;
        self
    }

    /// Failure-detector configuration override.
    pub fn fd(mut self, f: FdConfig) -> Self {
        self.fd = f;
        self
    }

    /// Baseline-client retry policy (ignored by the e-Transaction client,
    /// which never needs one).
    pub fn client_retry(mut self, p: RetryPolicy) -> Self {
        self.client_retry = p;
        self
    }

    /// Baseline-client patience.
    pub fn client_timeout(mut self, t: Dur) -> Self {
        self.client_timeout = t;
        self
    }

    /// Injects false-suspicion windows into every e-Transaction server's
    /// failure detector (chaos testing).
    pub fn force_suspicions(mut self, windows: Vec<ForcedSuspicion>) -> Self {
        self.forced_suspicions = windows;
        self
    }

    /// Builds the simulator with all processes registered.
    pub fn build(self) -> Scenario {
        let topo = Topology::new(self.clients, self.tier.app_count(), self.dbs);
        let mut sim_cfg = SimConfig::with_seed(self.seed);
        sim_cfg.cost = self.cost.clone();
        sim_cfg.net = self.net.clone();
        let mut sim = Sim::new(sim_cfg);
        let seed_data = self.workload.seed_data();

        // Clients first (ids must match Topology::new order).
        for &client in &topo.clients {
            let plan = self.workload.plan(&topo, client, self.requests);
            match self.tier {
                MiddleTier::Etx { .. } | MiddleTier::Pb => {
                    let alist = topo.app_servers.clone();
                    let pcfg = self.pcfg.clone();
                    sim.add_node(
                        "client",
                        Box::new(move |_| {
                            Box::new(EtxClient::new(alist.clone(), pcfg.clone(), plan.clone()))
                        }),
                    );
                }
                MiddleTier::Baseline | MiddleTier::Tpc => {
                    let server = topo.app_servers[0];
                    let timeout = self.client_timeout;
                    let policy = self.client_retry;
                    sim.add_node(
                        "client",
                        Box::new(move |_| {
                            Box::new(SimpleClient::new(server, timeout, policy, plan.clone()))
                        }),
                    );
                }
            }
        }

        // Middle tier.
        match self.tier {
            MiddleTier::Etx { apps } => {
                for _ in 0..apps {
                    let topo_c = topo.clone();
                    let pcfg = self.pcfg.clone();
                    let cost = self.cost.clone();
                    let fd_cfg = self.fd;
                    let forced = self.forced_suspicions.clone();
                    sim.add_node(
                        "app",
                        Box::new(move |me| {
                            let inner = HeartbeatFd::new(me, &topo_c.app_servers, fd_cfg);
                            let fd: Box<dyn etx_fd::FailureDetector> = if forced.is_empty() {
                                Box::new(inner)
                            } else {
                                Box::new(ScriptedFd::new(inner, forced.clone()))
                            };
                            Box::new(AppServer::new(
                                me,
                                topo_c.clone(),
                                pcfg.clone(),
                                cost.clone(),
                                fd,
                            ))
                        }),
                    );
                }
            }
            MiddleTier::Baseline => {
                let cost = self.cost.clone();
                sim.add_node(
                    "baseline",
                    Box::new(move |_| Box::new(BaselineServer::new(cost.clone()))),
                );
            }
            MiddleTier::Tpc => {
                let dlist = topo.db_servers.clone();
                let cost = self.cost.clone();
                sim.add_node(
                    "tpc",
                    Box::new(move |_| Box::new(TpcServer::new(dlist.clone(), cost.clone()))),
                );
            }
            MiddleTier::Pb => {
                let (p, b) = (topo.app_servers[0], topo.app_servers[1]);
                let dlist = topo.db_servers.clone();
                let cost = self.cost.clone();
                let d2 = dlist.clone();
                let cost2 = cost.clone();
                sim.add_node(
                    "pb-primary",
                    Box::new(move |_| {
                        Box::new(PbServer::new(PbRole::Primary, b, dlist.clone(), cost.clone()))
                    }),
                );
                sim.add_node(
                    "pb-backup",
                    Box::new(move |_| {
                        Box::new(PbServer::new(PbRole::Backup, p, d2.clone(), cost2.clone()))
                    }),
                );
            }
        }

        // Back end.
        for _ in 0..self.dbs {
            let alist = topo.app_servers.clone();
            let cost = self.cost.clone();
            let data = seed_data.clone();
            sim.add_node(
                "db",
                Box::new(move |_| {
                    Box::new(DbServer::new(alist.clone(), cost.clone(), data.clone()))
                }),
            );
        }

        Scenario { sim, topo, requests: self.requests * self.clients as u64 }
    }
}

/// A built system plus convenience queries over its trace.
#[derive(Debug)]
pub struct Scenario {
    /// The simulator (public: tests inject faults directly).
    pub sim: Sim,
    /// Who is who.
    pub topo: Topology,
    /// Total number of requests across all clients.
    pub requests: u64,
}

impl Scenario {
    /// Runs until the client has delivered (or been told the fate of) `n`
    /// requests — deliveries for e-Transactions, deliveries+exceptions for
    /// baselines.
    pub fn run_until_settled(&mut self, n: usize) -> RunOutcome {
        let mut scanned = 0usize;
        let mut done = 0usize;
        self.sim.run_until(move |s| {
            let events = s.trace().events();
            for e in &events[scanned..] {
                if matches!(e.kind, TraceKind::Deliver { .. } | TraceKind::Exception { .. }) {
                    done += 1;
                }
            }
            scanned = events.len();
            done >= n
        })
    }

    /// Lets in-flight background work (decide pushes, acks) finish.
    pub fn quiesce(&mut self, extra: Dur) {
        let deadline = self.sim.now() + extra;
        let _ = self.sim.run_until_time(deadline);
    }

    /// All deliveries so far: (attempt, outcome, steps, at).
    pub fn deliveries(&self) -> Vec<(ResultId, Outcome, u32, Time)> {
        self.sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Deliver { rid, outcome, steps } => Some((rid, outcome, steps, e.at)),
                _ => None,
            })
            .collect()
    }

    /// Count of committed deliveries.
    pub fn delivered_commits(&self) -> usize {
        self.deliveries().iter().filter(|(_, o, _, _)| *o == Outcome::Commit).count()
    }

    /// Database commit events (per (db, rid), at most one each).
    pub fn db_commits(&self) -> usize {
        self.sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }))
    }

    /// The default primary application server.
    pub fn primary(&self) -> NodeId {
        self.topo.primary()
    }
}
