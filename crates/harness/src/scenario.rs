//! Scenario construction: one call builds a complete three-tier system
//! under any of the four middle-tier protocols, ready to run and observe.

use crate::workloads::Workload;
use etx_base::config::{
    env_override, parse_toggle, BatchingConfig, CostModel, FdConfig, ProtocolConfig,
    ReadLeaseConfig, ReadPathConfig, SpeculationConfig,
};
use etx_base::ids::{NodeId, ResultId, Topology};
use etx_base::shard::{ShardId, ShardMap, ShardSpec};
use etx_base::time::{Dur, Time};
use etx_base::trace::TraceKind;
use etx_base::value::Outcome;
use etx_baselines::{BaselineServer, PbRole, PbServer, RetryPolicy, SimpleClient, TpcServer};
use etx_core::{AppServer, DbServer, EtxClient, IssueMode, ReplRole};
use etx_fd::{ForcedSuspicion, HeartbeatFd, ScriptedFd};
use etx_sim::{NetConfig, RunOutcome, Sim, SimConfig};

/// Which protocol runs the middle tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiddleTier {
    /// The paper's asynchronous-replication e-Transaction protocol with
    /// `apps` replicas (the paper's evaluation uses 3).
    Etx {
        /// Number of application-server replicas.
        apps: usize,
    },
    /// Unreliable baseline (Figure 7a): one server.
    Baseline,
    /// Presumed-nothing 2PC (Figure 7b): one coordinator.
    Tpc,
    /// Primary-backup (Figure 7c): primary + backup.
    Pb,
}

impl MiddleTier {
    /// Number of application servers this tier deploys.
    pub fn app_count(&self) -> usize {
        match self {
            MiddleTier::Etx { apps } => *apps,
            MiddleTier::Baseline | MiddleTier::Tpc => 1,
            MiddleTier::Pb => 2,
        }
    }

    /// Row label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            MiddleTier::Etx { .. } => "AR",
            MiddleTier::Baseline => "baseline",
            MiddleTier::Tpc => "2PC",
            MiddleTier::Pb => "PB",
        }
    }
}

/// Everything needed to build a run.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    tier: MiddleTier,
    clients: usize,
    dbs: usize,
    /// Sharded back end: `Some((shards, replication))` spawns
    /// `shards × replication` database servers organised into per-shard
    /// replica groups; `None` keeps the flat `dbs` tier.
    sharding: Option<(u32, usize)>,
    requests: u64,
    workload: Workload,
    cost: CostModel,
    net: NetConfig,
    pcfg: ProtocolConfig,
    fd: FdConfig,
    client_timeout: Dur,
    client_retry: RetryPolicy,
    forced_suspicions: Vec<ForcedSuspicion>,
    /// Whether [`ScenarioBuilder::read_path`] was called: an explicit
    /// route always wins over the `ETX_READ_PATH` process-wide override,
    /// so route-specific tests keep meaning what they say under the CI
    /// read-path matrix.
    read_path_explicit: bool,
    /// Whether [`ScenarioBuilder::batching`] was called: an explicit
    /// pipeline depth always wins over the `ETX_BATCH_SIZE` process-wide
    /// override, for the same reason as `read_path_explicit`.
    batching_explicit: bool,
    /// Whether [`ScenarioBuilder::speculation`] was called: an explicit
    /// setting always wins over the `ETX_SPECULATION` process-wide
    /// override.
    speculation_explicit: bool,
    /// Whether [`ScenarioBuilder::read_leases`] was called: an explicit
    /// setting always wins over the `ETX_READ_LEASES` process-wide
    /// override.
    read_leases_explicit: bool,
}

impl ScenarioBuilder {
    /// A scenario with the paper's environment constants (Appendix 3) and
    /// the bank-update workload.
    pub fn new(tier: MiddleTier, seed: u64) -> Self {
        ScenarioBuilder {
            seed,
            tier,
            clients: 1,
            dbs: 1,
            sharding: None,
            requests: 1,
            workload: Workload::BankUpdate { amount: 100 },
            cost: CostModel::default(),
            net: NetConfig::paper_lan(),
            pcfg: ProtocolConfig::default(),
            fd: FdConfig::default(),
            client_timeout: Dur::from_millis(800),
            client_retry: RetryPolicy::GiveUp,
            forced_suspicions: Vec::new(),
            read_path_explicit: false,
            batching_explicit: false,
            speculation_explicit: false,
            read_leases_explicit: false,
        }
    }

    /// A scenario with miniature service times for fast tests.
    pub fn fast(tier: MiddleTier, seed: u64) -> Self {
        let mut b = Self::new(tier, seed);
        b.cost = CostModel::fast_for_tests();
        b.net = NetConfig {
            min_delay: Dur::from_micros(100),
            max_delay: Dur::from_micros(300),
            ..NetConfig::default()
        };
        b.pcfg = ProtocolConfig {
            client_backoff: Dur::from_millis(30),
            client_rebroadcast: Dur::from_millis(20),
            terminate_retry: Dur::from_millis(10),
            cleaner_interval: Dur::from_millis(5),
            consensus_resync: Dur::from_millis(8),
            consensus_round_patience: Dur::from_millis(4),
            route_to_last_responder: false,
            batching: etx_base::config::BatchingConfig::default(),
            read_path: ReadPathConfig::default(),
            read_leases: ReadLeaseConfig::default(),
            speculation: SpeculationConfig::default(),
        };
        b.fd = FdConfig {
            heartbeat_every: Dur::from_millis(2),
            initial_timeout: Dur::from_millis(8),
            timeout_increment: Dur::from_millis(4),
            max_timeout: Dur::from_millis(200),
        };
        b.client_timeout = Dur::from_millis(80);
        b
    }

    /// Number of databases.
    pub fn dbs(mut self, n: usize) -> Self {
        self.dbs = n;
        self
    }

    /// Partitions the keyspace over `n` hash shards (single-replica groups;
    /// see [`ScenarioBuilder::replication`] to widen them). Overrides
    /// [`ScenarioBuilder::dbs`]: the back end gets one replica group per
    /// shard. Only meaningful for key-addressed workloads under
    /// [`MiddleTier::Etx`].
    pub fn shards(mut self, n: u32) -> Self {
        let repl = self.sharding.map_or(1, |(_, r)| r);
        self.sharding = Some((n.max(1), repl));
        self
    }

    /// Sets the replica-group size of every shard (default 1). Implies a
    /// sharded back end (1 shard if [`ScenarioBuilder::shards`] was not
    /// called).
    pub fn replication(mut self, r: usize) -> Self {
        let shards = self.sharding.map_or(1, |(s, _)| s);
        self.sharding = Some((shards, r.max(1)));
        self
    }

    /// Enables commit-pipeline batching: application servers accumulate up
    /// to `size` concurrent request outcomes (or wait at most `window`)
    /// and decide them in one decision-log slot. `size = 1` is the
    /// degenerate per-request configuration.
    ///
    /// The `ETX_BATCH_SIZE` environment variable pins the pipeline depth
    /// for scenarios that do **not** call this method — the CI batching
    /// matrix's hook for running the whole suite under a deep pipeline.
    /// An explicit `batching` call always wins over the environment: a
    /// test that pins a depth means it.
    pub fn batching(mut self, size: usize, window: Dur) -> Self {
        self.pcfg.batching = BatchingConfig::new(size, window);
        self.batching_explicit = true;
        self
    }

    /// Configures speculative batch execution: with `enabled`, flushed
    /// pipeline batches execute on the shard primaries *while* their
    /// decision-log slot runs consensus, and the buffered work is
    /// promoted (or discarded and replayed) when the slot decides.
    ///
    /// The `ETX_SPECULATION` environment variable pins the stage for
    /// scenarios that do **not** call this method (`1`/`on` enables,
    /// `0`/`off` disables) — the CI matrix's hook for running the whole
    /// suite down both paths. An explicit `speculation` call always wins
    /// over the environment.
    pub fn speculation(mut self, cfg: SpeculationConfig) -> Self {
        self.pcfg.speculation = cfg;
        self.speculation_explicit = true;
        self
    }

    /// Configures the read fast lane: with `enabled`, read-only scripts
    /// (all-`Get`) route around the commit pipeline as direct snapshot
    /// reads; with `follower_reads` on top, they spread over each shard's
    /// replicas, gated on the per-shard freshness stamp.
    ///
    /// The `ETX_READ_PATH` environment variable pins the route for
    /// scenarios that do **not** call this method (`1`/`on` forces the
    /// lane on with follower reads, `0`/`off` forces it off) — the CI
    /// read-path matrix's hook for running the whole suite down both
    /// routes. An explicit `read_path` call always wins over the
    /// environment: a test that pins a route means it.
    pub fn read_path(mut self, cfg: ReadPathConfig) -> Self {
        self.pcfg.read_path = cfg;
        self.read_path_explicit = true;
        self
    }

    /// Configures time-bounded read leases: shard primaries grant their
    /// followers "my ship position is authoritative through T" and
    /// advertise the grants to application servers, which then route any
    /// fast-path read — multi-shard snapshot-validation collects included
    /// — at in-lease followers with no stamp gate and no forward hop.
    /// Only meaningful on top of an enabled read fast lane.
    ///
    /// The `ETX_READ_LEASES` environment variable pins the mode for
    /// scenarios that do **not** call this method (`1`/`on` forces the
    /// fast-test lease preset, `0`/`off` forces leases off) — the CI
    /// read-path matrix's hook for running the whole suite down both
    /// legs. An explicit `read_leases` call always wins over the
    /// environment.
    pub fn read_leases(mut self, cfg: ReadLeaseConfig) -> Self {
        self.pcfg.read_leases = cfg;
        self.read_leases_explicit = true;
        self
    }

    /// Number of concurrent clients (each issues its own request plan;
    /// concurrent clients generate genuine lock contention).
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n.max(1);
        self
    }

    /// Number of sequential requests the client issues.
    pub fn requests(mut self, n: u64) -> Self {
        self.requests = n;
        self
    }

    /// The workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Cost model override.
    pub fn cost(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Network override.
    pub fn net(mut self, n: NetConfig) -> Self {
        self.net = n;
        self
    }

    /// Protocol configuration override.
    pub fn protocol(mut self, p: ProtocolConfig) -> Self {
        self.pcfg = p;
        self
    }

    /// Failure-detector configuration override.
    pub fn fd(mut self, f: FdConfig) -> Self {
        self.fd = f;
        self
    }

    /// Baseline-client retry policy (ignored by the e-Transaction client,
    /// which never needs one).
    pub fn client_retry(mut self, p: RetryPolicy) -> Self {
        self.client_retry = p;
        self
    }

    /// Baseline-client patience.
    pub fn client_timeout(mut self, t: Dur) -> Self {
        self.client_timeout = t;
        self
    }

    /// Injects false-suspicion windows into every e-Transaction server's
    /// failure detector (chaos testing).
    pub fn force_suspicions(mut self, windows: Vec<ForcedSuspicion>) -> Self {
        self.forced_suspicions = windows;
        self
    }

    /// Builds the simulator with all processes registered.
    pub fn build(mut self) -> Scenario {
        // CI matrix hooks, all routed through the one `env_override`
        // helper so the precedence rule is uniform: the environment pins
        // every scenario that did not set the knob explicitly, and an
        // explicit builder call always wins — a test that pins a depth,
        // route, or stage means it, and silently replacing it made
        // knob-specific assertions fail confusingly under the matrix.
        //
        // ETX_BATCH_SIZE forces the pipeline depth (the window backstop
        // reuses the cleaner cadence, which already scales with the
        // scenario's cost model — fast vs. paper-scale).
        if let Some(size) =
            env_override("ETX_BATCH_SIZE", self.batching_explicit, |v| v.parse::<usize>().ok())
        {
            let window = if size > 1 { self.pcfg.cleaner_interval } else { Dur::ZERO };
            self.pcfg.batching = BatchingConfig::new(size, window);
        }
        // ETX_READ_PATH pins the read route — "1"/"on" forces the fast
        // lane (with follower reads; shards with one replica just serve
        // from the primary), "0"/"off" forces the historical commit route.
        if let Some(on) = env_override("ETX_READ_PATH", self.read_path_explicit, parse_toggle) {
            self.pcfg.read_path =
                if on { ReadPathConfig::follower_reads() } else { ReadPathConfig::disabled() };
        }
        // ETX_SPECULATION pins the speculation stage — "1"/"on" overlaps
        // batch execution with the consensus round, "0"/"off" keeps the
        // strict decide-then-execute pipeline.
        if let Some(on) = env_override("ETX_SPECULATION", self.speculation_explicit, parse_toggle) {
            self.pcfg.speculation =
                if on { SpeculationConfig::on() } else { SpeculationConfig::disabled() };
        }
        // ETX_READ_LEASES pins the lease mode — "1"/"on" forces the
        // fast-test lease preset (duration scaled for the miniature cost
        // model), "0"/"off" forces the stamp-gated route. The off leg must
        // replay lease-less runs byte-for-byte — the golden-trace tests
        // assert exactly that.
        if let Some(on) = env_override("ETX_READ_LEASES", self.read_leases_explicit, parse_toggle) {
            self.pcfg.read_leases =
                if on { ReadLeaseConfig::fast_for_tests() } else { ReadLeaseConfig::disabled() };
        }
        // Leases exist to serve the read fast lane; without it there is
        // nothing to lease-cover, so the grant machinery (renewal timers,
        // piggybacked grants, recovery fences) stays out of the schedule
        // entirely. This keeps the lease-on CI leg from perturbing every
        // write-only scenario in the suite.
        if !self.pcfg.read_path.enabled {
            self.pcfg.read_leases = ReadLeaseConfig::disabled();
        }
        let db_count = match self.sharding {
            Some((shards, repl)) => shards as usize * repl,
            None => self.dbs,
        };
        let topo = Topology::new(self.clients, self.tier.app_count(), db_count);
        // The shard map every application server routes against. Flat
        // scenarios keep the implicit one-shard-per-db layout, so explicit
        // scripts behave exactly as before sharding existed.
        let shard_map = match self.sharding {
            Some((shards, repl)) => {
                ShardMap::build(ShardSpec::Hash { shards }, &topo.db_servers, repl)
            }
            None => ShardMap::one_per_db(&topo.db_servers),
        };
        let mut sim_cfg = SimConfig::with_seed(self.seed);
        sim_cfg.cost = self.cost.clone();
        sim_cfg.net = self.net.clone();
        let mut sim = Sim::new(sim_cfg);
        let seed_data = self.workload.seed_data();

        // Clients first (ids must match Topology::new order).
        for &client in &topo.clients {
            let plan = self.workload.plan(&topo, client, self.requests);
            match self.tier {
                MiddleTier::Etx { .. } | MiddleTier::Pb => {
                    let alist = topo.app_servers.clone();
                    let pcfg = self.pcfg.clone();
                    let mode = if self.workload.is_open_loop() {
                        IssueMode::OpenLoop
                    } else {
                        IssueMode::Sequential
                    };
                    sim.add_node(
                        "client",
                        Box::new(move |_| {
                            Box::new(EtxClient::with_mode(
                                alist.clone(),
                                pcfg.clone(),
                                plan.clone(),
                                mode,
                            ))
                        }),
                    );
                }
                MiddleTier::Baseline | MiddleTier::Tpc => {
                    let server = topo.app_servers[0];
                    let timeout = self.client_timeout;
                    let policy = self.client_retry;
                    sim.add_node(
                        "client",
                        Box::new(move |_| {
                            Box::new(SimpleClient::new(server, timeout, policy, plan.clone()))
                        }),
                    );
                }
            }
        }

        // Middle tier.
        match self.tier {
            MiddleTier::Etx { apps } => {
                for _ in 0..apps {
                    let topo_c = topo.clone();
                    let pcfg = self.pcfg.clone();
                    let cost = self.cost.clone();
                    let fd_cfg = self.fd;
                    let forced = self.forced_suspicions.clone();
                    let map = shard_map.clone();
                    sim.add_node(
                        "app",
                        Box::new(move |me| {
                            let inner = HeartbeatFd::new(me, &topo_c.app_servers, fd_cfg);
                            let fd: Box<dyn etx_fd::FailureDetector> = if forced.is_empty() {
                                Box::new(inner)
                            } else {
                                Box::new(ScriptedFd::new(inner, forced.clone()))
                            };
                            Box::new(AppServer::with_shards(
                                me,
                                topo_c.clone(),
                                pcfg.clone(),
                                cost.clone(),
                                map.clone(),
                                fd,
                            ))
                        }),
                    );
                }
            }
            MiddleTier::Baseline => {
                let cost = self.cost.clone();
                sim.add_node(
                    "baseline",
                    Box::new(move |_| Box::new(BaselineServer::new(cost.clone()))),
                );
            }
            MiddleTier::Tpc => {
                let dlist = topo.db_servers.clone();
                let cost = self.cost.clone();
                sim.add_node(
                    "tpc",
                    Box::new(move |_| Box::new(TpcServer::new(dlist.clone(), cost.clone()))),
                );
            }
            MiddleTier::Pb => {
                let (p, b) = (topo.app_servers[0], topo.app_servers[1]);
                let dlist = topo.db_servers.clone();
                let cost = self.cost.clone();
                let d2 = dlist.clone();
                let cost2 = cost.clone();
                sim.add_node(
                    "pb-primary",
                    Box::new(move |_| {
                        Box::new(PbServer::new(PbRole::Primary, b, dlist.clone(), cost.clone()))
                    }),
                );
                sim.add_node(
                    "pb-backup",
                    Box::new(move |_| {
                        Box::new(PbServer::new(PbRole::Backup, p, d2.clone(), cost2.clone()))
                    }),
                );
            }
        }

        // Back end: one process per database server. Under sharding each
        // server holds only its shard's slice of the seed data and knows
        // its replica-group role; followers pull snapshots at twice the
        // terminate-retry cadence until caught up.
        let sync_retry = Dur(self.pcfg.terminate_retry.0 * 2);
        let mut db_seeds = std::collections::HashMap::new();
        for &node in &topo.db_servers {
            let alist = topo.app_servers.clone();
            let cost = self.cost.clone();
            let (data, repl) = match self.sharding {
                None => (seed_data.clone(), ReplRole::default()),
                Some(_) => {
                    let shard = shard_map.shard_of_node(node).expect("every db is in a group");
                    let data: Vec<(String, i64)> = seed_data
                        .iter()
                        .filter(|(k, _)| shard_map.shard_of(k) == shard)
                        .cloned()
                        .collect();
                    let primary = shard_map.primary(shard);
                    let repl = if node == primary {
                        ReplRole {
                            followers: shard_map.peers_of(node),
                            sync_from: None,
                            sync_retry,
                        }
                    } else {
                        ReplRole { followers: Vec::new(), sync_from: Some(primary), sync_retry }
                    };
                    (data, repl)
                }
            };
            db_seeds.insert(node, data.clone());
            let spec = self.pcfg.speculation;
            let leases = self.pcfg.read_leases;
            sim.add_node(
                "db",
                Box::new(move |_| {
                    Box::new(
                        DbServer::with_replication(
                            alist.clone(),
                            cost.clone(),
                            data.clone(),
                            repl.clone(),
                        )
                        .with_speculation(spec)
                        .with_read_leases(leases),
                    )
                }),
            );
        }

        Scenario { sim, topo, shard_map, db_seeds, requests: self.requests * self.clients as u64 }
    }
}

/// A built system plus convenience queries over its trace.
#[derive(Debug)]
pub struct Scenario {
    /// The simulator (public: tests inject faults directly).
    pub sim: Sim,
    /// Who is who.
    pub topo: Topology,
    /// How the keyspace maps onto the database tier (flat topologies get
    /// the implicit one-shard-per-db map).
    pub shard_map: ShardMap,
    /// The seed data each database server started with (per-shard slices
    /// under sharding) — the baseline for state reconstruction.
    db_seeds: std::collections::HashMap<NodeId, Vec<(String, i64)>>,
    /// Total number of requests across all clients.
    pub requests: u64,
}

impl Scenario {
    /// Runs until the client has delivered (or been told the fate of) `n`
    /// requests — deliveries for e-Transactions, deliveries+exceptions for
    /// baselines.
    pub fn run_until_settled(&mut self, n: usize) -> RunOutcome {
        let mut scanned = 0usize;
        let mut done = 0usize;
        self.sim.run_until(move |s| {
            let events = s.trace().events();
            for e in &events[scanned..] {
                if matches!(e.kind, TraceKind::Deliver { .. } | TraceKind::Exception { .. }) {
                    done += 1;
                }
            }
            scanned = events.len();
            done >= n
        })
    }

    /// Lets in-flight background work (decide pushes, acks) finish.
    pub fn quiesce(&mut self, extra: Dur) {
        let deadline = self.sim.now() + extra;
        let _ = self.sim.run_until_time(deadline);
    }

    /// All deliveries so far: (attempt, outcome, steps, at).
    pub fn deliveries(&self) -> Vec<(ResultId, Outcome, u32, Time)> {
        self.sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Deliver { rid, outcome, steps } => Some((rid, outcome, steps, e.at)),
                _ => None,
            })
            .collect()
    }

    /// Count of committed deliveries.
    pub fn delivered_commits(&self) -> usize {
        self.deliveries().iter().filter(|(_, o, _, _)| *o == Outcome::Commit).count()
    }

    /// Every delivered `(attempt, decision)` pair — results included —
    /// read straight out of the (live) client processes. Unlike
    /// [`Scenario::deliveries`] this exposes the delivered *values*, which
    /// the trace deliberately does not carry; value-level assertions (the
    /// read-equivalence property among them) live here.
    pub fn delivered_results(&self) -> Vec<(ResultId, etx_base::value::Decision)> {
        let mut out = Vec::new();
        for &client in &self.topo.clients {
            let Some(proc_ref) = self.sim.process_ref(client) else { continue };
            let Some(any) = proc_ref.as_any() else { continue };
            if let Some(c) = any.downcast_ref::<EtxClient>() {
                out.extend(c.delivered().iter().cloned());
            }
        }
        out
    }

    /// Count of decision-log slots applied with **more than one** request
    /// outcome — the definition of "this run exercised real batches",
    /// shared by the chaos runners and the batching tests.
    pub fn batched_slots(&self) -> usize {
        self.sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::BatchDecided { len, .. } if *len >= 2))
    }

    /// Count of group WAL appends framing more than one record (group
    /// commit / batched replication apply actually amortising the log).
    pub fn group_appends(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::GroupAppend { len } if *len >= 2))
    }

    /// Count of batches a shard primary executed speculatively while the
    /// decision-log slot was still running consensus.
    pub fn spec_execs(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::SpecExec { .. }))
    }

    /// Count of decided slots whose speculatively buffered execution was
    /// promoted (the decided batch matched the speculated one).
    pub fn spec_hits(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::SpecHit { .. }))
    }

    /// Count of decided slots whose speculation buffer was discarded and
    /// replayed on the decide-then-execute path (mis-speculation).
    pub fn spec_aborts(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::SpecAbort { .. }))
    }

    /// Distinct attempts that took the read fast lane (classified
    /// read-only and routed around the commit pipeline). Deduplicated by
    /// attempt id — every replica that processes the attempt traces its
    /// own `ReadFastPath`.
    pub fn fast_path_reads(&self) -> usize {
        let mut rids = std::collections::BTreeSet::new();
        for e in self.sim.trace().events() {
            if let TraceKind::ReadFastPath { rid, .. } = e.kind {
                rids.insert(rid);
            }
        }
        rids.len()
    }

    /// Count of fast-path reads served locally by a shard follower.
    pub fn follower_reads_served(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::FollowerRead { .. }))
    }

    /// Count of fast-path reads a lagging follower forwarded to its
    /// primary (the freshness gate firing).
    pub fn reads_forwarded(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::ReadForwarded { .. }))
    }

    /// Count of timer-driven lease grants shard primaries issued (the
    /// piggybacked renewals on commit shipments are untraced).
    pub fn lease_grants(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::LeaseGrant { .. }))
    }

    /// Count of fast-path reads a follower refused because its read lease
    /// had expired (each is followed by a `ReadForwarded` hop).
    pub fn lease_expired_reads(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::LeaseExpired { .. }))
    }

    /// Count of write-ack fences recovering lease-granting primaries
    /// installed (each withholds commit acks for one full lease term).
    pub fn lease_fences(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::LeaseFence { .. }))
    }

    /// Count of retry-backstop firings for fast-path reads (each re-sends
    /// the unanswered calls of the current collect).
    pub fn reads_retried(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::ReadRetried { .. }))
    }

    /// Count of snapshot-validation re-collects issued by multi-shard
    /// fast-path reads (a collect disagreed with its predecessor).
    pub fn read_snapshot_rounds(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::ReadSnapshotRound { .. }))
    }

    /// Count of fast-path reads that exhausted their snapshot-validation
    /// budget and fell back to the locking slow path.
    pub fn read_fallbacks(&self) -> usize {
        self.sim.trace().count_kind(|k| matches!(k, TraceKind::ReadFallback { .. }))
    }

    /// Database commit events (per (db, rid), at most one each).
    pub fn db_commits(&self) -> usize {
        self.sim
            .trace()
            .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }))
    }

    /// The default primary application server.
    pub fn primary(&self) -> NodeId {
        self.topo.primary()
    }

    /// The primary database replica of a shard.
    pub fn shard_primary(&self, shard: u32) -> NodeId {
        self.shard_map.primary(ShardId(shard))
    }

    /// The full replica group of a shard (index 0 is the primary).
    pub fn shard_replicas(&self, shard: u32) -> &[NodeId] {
        self.shard_map.replicas(ShardId(shard))
    }

    /// Count of distinct attempts routed across more than one shard.
    /// (Deduplicated by attempt id: every application-server replica that
    /// materializes an attempt traces its own `ShardRoute`, and client
    /// rebroadcasts under faults add more — raw event counts overstate.)
    pub fn cross_shard_routes(&self) -> usize {
        let mut rids = std::collections::BTreeSet::new();
        for e in self.sim.trace().events() {
            if let TraceKind::ShardRoute { rid, shards } = e.kind {
                if shards > 1 {
                    rids.insert(rid);
                }
            }
        }
        rids.len()
    }

    /// Count of distinct attempts that were shard-routed at all (single- or
    /// multi-shard) — the denominator for cross-shard fractions.
    pub fn shard_routed_attempts(&self) -> usize {
        let mut rids = std::collections::BTreeSet::new();
        for e in self.sim.trace().events() {
            if let TraceKind::ShardRoute { rid, .. } = e.kind {
                rids.insert(rid);
            }
        }
        rids.len()
    }

    /// Per-request client-perceived latency in milliseconds: delivery time
    /// minus the request's first issue. (Delivery *timestamps* are only a
    /// latency for single-request runs; a sequential client's k-th request
    /// carries its predecessors' time in its timestamp.)
    pub fn request_latencies_ms(&self) -> Vec<f64> {
        let mut issues: std::collections::BTreeMap<etx_base::ids::RequestId, Time> =
            std::collections::BTreeMap::new();
        for e in self.sim.trace().events() {
            if let TraceKind::Issue { request } = e.kind {
                issues.entry(request).or_insert(e.at);
            }
        }
        self.deliveries()
            .iter()
            .filter_map(|(rid, _, _, at)| {
                issues.get(&rid.request).map(|&t0| at.since(t0).as_millis_f64())
            })
            .collect()
    }

    /// Reconstructs a database server's committed state from its durable
    /// log: the kernel exposes stable storage (not process memory), and
    /// recovery is deterministic, so replaying the WAL over the server's
    /// seed slice yields exactly what the server holds committed. This is
    /// how tests assert replica-group convergence.
    pub fn rebuilt_committed(&self, db: NodeId) -> std::collections::BTreeMap<String, i64> {
        let seed = self.db_seeds.get(&db).cloned().unwrap_or_default();
        let log = self.sim.storage(db).read(etx_base::wal::LOG_WAL);
        etx_store::Engine::recover_with_seed(seed, log).snapshot().clone()
    }
}
