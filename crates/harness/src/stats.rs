//! Summary statistics for latency trials.
//!
//! Appendix 3: "For each protocol, we executed multiple identical
//! transactions ... We computed the 90% confidence interval for the mean
//! response time. In all cases, the width of this interval was found to be
//! less than 10%." This module reproduces that discipline.

/// Mean / spread / confidence summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Half-width of the 90% confidence interval for the mean.
    pub ci90_half: f64,
}

impl Summary {
    /// Summarises a sample. Returns a degenerate all-zero summary for an
    /// empty input.
    pub fn of(xs: &[f64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary { n: 0, mean: 0.0, std_dev: 0.0, ci90_half: 0.0 };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Summary { n, mean, std_dev: 0.0, ci90_half: 0.0 };
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let std_dev = var.sqrt();
        let t = t90(n - 1);
        let ci90_half = t * std_dev / (n as f64).sqrt();
        Summary { n, mean, std_dev, ci90_half }
    }

    /// CI width as a fraction of the mean (the paper's <10% check).
    pub fn ci90_rel_width(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            2.0 * self.ci90_half / self.mean
        }
    }
}

/// Two-sided 90% Student-t critical value for `df` degrees of freedom.
fn t90(df: usize) -> f64 {
    const TABLE: [(usize, f64); 12] = [
        (1, 6.314),
        (2, 2.920),
        (3, 2.353),
        (4, 2.132),
        (5, 2.015),
        (6, 1.943),
        (8, 1.860),
        (10, 1.812),
        (15, 1.753),
        (20, 1.725),
        (30, 1.697),
        (60, 1.671),
    ];
    for &(d, t) in TABLE.iter().rev() {
        if df >= d {
            return if df >= 120 { 1.645 } else { t };
        }
    }
    6.314
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci90_half, 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935).abs() < 1e-6);
        assert!(s.ci90_half > 0.0);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..5).map(|i| 100.0 + i as f64).collect();
        let large: Vec<f64> = (0..500).map(|i| 100.0 + (i % 5) as f64).collect();
        assert!(Summary::of(&large).ci90_half < Summary::of(&small).ci90_half);
    }

    #[test]
    fn rel_width() {
        let s = Summary { n: 10, mean: 200.0, std_dev: 1.0, ci90_half: 5.0 };
        assert!((s.ci90_rel_width() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn t_values_monotone() {
        assert!(t90(1) > t90(5));
        assert!(t90(5) > t90(49));
        assert!((t90(200) - 1.645).abs() < 1e-9);
    }
}
