//! Parameter sweeps beyond the paper's tables — the evaluations §5 calls
//! for ("one obviously needs to consider the actual response-time of the
//! protocol in the case of various failure alternatives") plus ablations of
//! the design choices in DESIGN.md.

use crate::figures::figure8_with_cost;
use crate::scenario::{MiddleTier, ScenarioBuilder};
use crate::stats::Summary;
use etx_base::config::{CostModel, FdConfig};
use etx_base::time::Dur;
use etx_base::trace::{Component, TraceKind};
use etx_sim::{FaultAction, RunOutcome};

/// Protocol stage at which the primary is crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// No crash (control row).
    None,
    /// Right after winning `regA` (before computing) — Figure 1(d).
    AfterRegA,
    /// Right after the database voted (during commitment processing).
    AfterVote,
    /// Right after `regD` decided (before terminating) — Figure 1(c).
    AfterRegD,
}

impl CrashPoint {
    /// Row label.
    pub fn label(&self) -> &'static str {
        match self {
            CrashPoint::None => "none",
            CrashPoint::AfterRegA => "after regA",
            CrashPoint::AfterVote => "after vote",
            CrashPoint::AfterRegD => "after regD",
        }
    }

    /// All points, sweep order.
    pub const ALL: [CrashPoint; 4] =
        [CrashPoint::None, CrashPoint::AfterRegA, CrashPoint::AfterVote, CrashPoint::AfterRegD];
}

/// One measurement of the fail-over sweep (X1).
#[derive(Debug, Clone)]
pub struct FailoverPoint {
    /// Where the primary crashed.
    pub crash: CrashPoint,
    /// Failure-detector initial timeout.
    pub fd_timeout: Dur,
    /// Client-perceived latency (ms) of the whole request.
    pub latency_ms: f64,
    /// The attempt that was finally delivered.
    pub attempt: u32,
}

/// X1: client-perceived latency when the primary crashes at each protocol
/// stage, as a function of the failure-detector timeout. The paper's §5
/// names this the missing evaluation; Figure 1(c)/(d) are its anchor
/// points.
pub fn failover_sweep(seed: u64, fd_timeouts: &[Dur]) -> Vec<FailoverPoint> {
    let mut rows = Vec::new();
    for &fd_timeout in fd_timeouts {
        for crash in CrashPoint::ALL {
            let fd = FdConfig { initial_timeout: fd_timeout, ..FdConfig::default() };
            let mut s =
                ScenarioBuilder::new(MiddleTier::Etx { apps: 3 }, seed).fd(fd).requests(1).build();
            let a1 = s.topo.primary();
            match crash {
                CrashPoint::None => {}
                CrashPoint::AfterRegA => s.sim_mut().on_trace(
                    move |ev| {
                        ev.node == a1
                            && matches!(ev.kind, TraceKind::Span { comp: Component::LogStart, .. })
                    },
                    FaultAction::Crash(a1),
                ),
                CrashPoint::AfterVote => s.sim_mut().on_trace(
                    move |ev| matches!(ev.kind, TraceKind::DbVote { .. }),
                    FaultAction::Crash(a1),
                ),
                CrashPoint::AfterRegD => s.sim_mut().on_trace(
                    move |ev| {
                        ev.node == a1
                            && matches!(
                                ev.kind,
                                TraceKind::Span { comp: Component::LogOutcome, .. }
                            )
                    },
                    FaultAction::Crash(a1),
                ),
            }
            let out = s.run_until_settled(1);
            assert_eq!(out, RunOutcome::Predicate, "fail-over run must deliver");
            let (rid, _, _, at) = s.deliveries()[0];
            rows.push(FailoverPoint {
                crash,
                fd_timeout,
                latency_ms: at.as_millis_f64(),
                attempt: rid.attempt,
            });
        }
    }
    rows
}

/// Renders the fail-over sweep.
pub fn render_failover(rows: &[FailoverPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14}{:>14}{:>14}{:>10}\n",
        "crash point", "FD timeout", "latency ms", "attempt"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14}{:>14}{:>14.1}{:>10}\n",
            r.crash.label(),
            format!("{}", r.fd_timeout),
            r.latency_ms,
            r.attempt
        ));
    }
    out
}

/// One point of the forced-I/O crossover sweep (X3).
#[derive(Debug, Clone)]
pub struct CrossoverPoint {
    /// Forced-log cost in ms.
    pub log_force_ms: f64,
    /// AR total latency (mean, ms).
    pub ar_ms: f64,
    /// 2PC total latency (mean, ms).
    pub tpc_ms: f64,
}

/// X3: AR never touches a disk; 2PC pays two forced writes. Sweeping the
/// forced-write cost shows where the paper's conclusion flips: with fast
/// stable storage (≲ one consensus round trip) 2PC would win; on the
/// paper's 12.5 ms disks AR wins.
pub fn crossover_sweep(trials: usize, seed: u64, force_ms: &[f64]) -> Vec<CrossoverPoint> {
    let mut rows = Vec::new();
    for &f in force_ms {
        let cost = CostModel { log_force: Dur::from_millis_f64(f), ..CostModel::default() };
        let table = figure8_with_cost(trials, seed, cost);
        let ar = table.column("AR").expect("AR column").total.mean;
        let tpc = table.column("2PC").expect("2PC column").total.mean;
        rows.push(CrossoverPoint { log_force_ms: f, ar_ms: ar, tpc_ms: tpc });
    }
    rows
}

/// Renders the crossover sweep.
pub fn render_crossover(rows: &[CrossoverPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>14}{:>12}{:>12}{:>10}\n",
        "log-force ms", "AR ms", "2PC ms", "winner"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>14.1}{:>12.1}{:>12.1}{:>10}\n",
            r.log_force_ms,
            r.ar_ms,
            r.tpc_ms,
            if r.ar_ms <= r.tpc_ms { "AR" } else { "2PC" }
        ));
    }
    out
}

/// One point of the scalability sweep (X2).
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Application-server replicas.
    pub apps: usize,
    /// Databases.
    pub dbs: usize,
    /// Latency summary (ms) over the trials.
    pub latency: Summary,
    /// Mean protocol messages per request.
    pub msgs: f64,
}

/// X2: replication-degree and database fan-out ablation for the
/// e-Transaction protocol (travel workload so the transaction actually
/// spans the databases).
pub fn scalability_sweep(
    trials: usize,
    seed: u64,
    apps: &[usize],
    dbs: &[usize],
) -> Vec<ScalePoint> {
    let mut rows = Vec::new();
    for &a in apps {
        for &d in dbs {
            let mut lats = Vec::new();
            let mut msgs = 0u64;
            for t in 0..trials {
                let mut s = ScenarioBuilder::new(
                    MiddleTier::Etx { apps: a },
                    seed.wrapping_add(t as u64 * 7919),
                )
                .dbs(d)
                .workload(crate::workloads::Workload::Travel)
                .requests(1)
                .build();
                let out = s.run_until_settled(1);
                assert_eq!(out, RunOutcome::Predicate);
                let (_, _, _, at) = s.deliveries()[0];
                lats.push(at.as_millis_f64());
                msgs += s.stats().protocol_total();
            }
            rows.push(ScalePoint {
                apps: a,
                dbs: d,
                latency: Summary::of(&lats),
                msgs: msgs as f64 / trials as f64,
            });
        }
    }
    rows
}

/// One point of the cross-shard percentage sweep (X4).
#[derive(Debug, Clone)]
pub struct CrossShardPoint {
    /// Number of shards.
    pub shards: u32,
    /// Percentage of transactions touching two accounts.
    pub cross_pct: u8,
    /// Per-request client-perceived latency (issue → delivery, ms).
    pub latency: Summary,
    /// Fraction of routed attempts that actually spanned > 1 shard.
    pub observed_cross: f64,
    /// Simulated-time throughput: requests per simulated second.
    pub req_per_sec: f64,
}

/// X4: the cross-shard sweep à la STAR's Figure 1 — fix the shard count,
/// sweep the fraction of multi-account transactions, and watch the
/// multi-branch commitment path take over from the single-shard fast path.
pub fn cross_shard_sweep(
    seed: u64,
    shards: u32,
    replication: usize,
    pcts: &[u8],
    requests: u64,
) -> Vec<CrossShardPoint> {
    let mut rows = Vec::new();
    for &pct in pcts {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
            .shards(shards)
            .replication(replication)
            .workload(crate::workloads::Workload::ShardedBank {
                accounts: shards * 8,
                cross_pct: pct,
                amount: 10,
            })
            .requests(requests)
            .build();
        let out = s.run_until_settled(requests as usize);
        assert_eq!(out, RunOutcome::Predicate, "cross-shard sweep run must settle");
        let delivered = s.deliveries().len();
        let lats = s.request_latencies_ms();
        let span = s.now().as_millis_f64().max(f64::MIN_POSITIVE) / 1_000.0;
        let routed = s.shard_routed_attempts();
        rows.push(CrossShardPoint {
            shards,
            cross_pct: pct,
            latency: Summary::of(&lats),
            observed_cross: if routed == 0 {
                0.0
            } else {
                s.cross_shard_routes() as f64 / routed as f64
            },
            req_per_sec: delivered as f64 / span,
        });
    }
    rows
}

/// Renders the cross-shard sweep.
pub fn render_cross_shard(rows: &[CrossShardPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}{:>10}{:>14}{:>14}{:>12}\n",
        "shards", "cross %", "latency ms", "observed %", "req/s"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}{:>10}{:>14.1}{:>14.1}{:>12.1}\n",
            r.shards,
            r.cross_pct,
            r.latency.mean,
            r.observed_cross * 100.0,
            r.req_per_sec
        ));
    }
    out
}

/// Renders the scalability sweep.
pub fn render_scalability(rows: &[ScalePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6}{:>6}{:>14}{:>12}{:>14}\n",
        "apps", "dbs", "latency ms", "ci90 ±", "msgs/req"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>6}{:>6}{:>14.1}{:>12.2}{:>14.1}\n",
            r.apps, r.dbs, r.latency.mean, r.latency.ci90_half, r.msgs
        ));
    }
    out
}
