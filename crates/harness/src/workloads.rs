//! Workload generators: the concrete business logics requests run.

use etx_base::ids::{NodeId, RequestId, Topology};
use etx_base::value::{DbCall, DbOp, Request, RequestScript};

/// A family of requests a client can issue.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The paper's measured experiment (Appendix 3): "execute some SQL
    /// statements to update a bank account on a single database".
    BankUpdate {
        /// Amount credited per request.
        amount: i64,
    },
    /// A two-database funds transfer — exercises distributed atomic
    /// commitment across resource managers.
    BankTransfer {
        /// Amount moved from `checking` (db 0) to `savings` (db 1).
        amount: i64,
    },
    /// The travel example from the paper's introduction: book a flight, a
    /// hotel and a car, spread across the available databases. Reservations
    /// that find empty inventory yield the informative `sold_out` result.
    Travel,
    /// All requests fight over one key — generates lock conflicts and
    /// therefore aborts + client retries.
    HotSpot,
    /// Business logic that the databases always refuse to commit (vote no).
    AlwaysDoomed,
}

impl Workload {
    /// Seed data the databases should start with.
    pub fn seed_data(&self) -> Vec<(String, i64)> {
        match self {
            Workload::BankUpdate { .. } => vec![("acct".into(), 1_000)],
            Workload::BankTransfer { .. } => {
                vec![("checking".into(), 10_000), ("savings".into(), 0)]
            }
            Workload::Travel => vec![
                ("flight:LX1612".into(), 50),
                ("hotel:Beau-Rivage".into(), 10),
                ("car:compact".into(), 25),
            ],
            Workload::HotSpot => vec![("hot".into(), 0)],
            Workload::AlwaysDoomed => vec![],
        }
    }

    /// Builds request `seq` for `client` against the given topology.
    pub fn request(&self, topo: &Topology, client: NodeId, seq: u64) -> Request {
        let id = RequestId { client, seq };
        let db = |i: usize| topo.db_servers[i % topo.db_servers.len()];
        let script = match self {
            Workload::BankUpdate { amount } => RequestScript::single(
                db(0),
                vec![
                    DbOp::Get { key: "acct".into() },
                    DbOp::Add { key: "acct".into(), delta: *amount },
                ],
            ),
            Workload::BankTransfer { amount } => RequestScript {
                calls: vec![
                    DbCall {
                        db: db(0),
                        ops: vec![DbOp::Add { key: "checking".into(), delta: -amount }],
                    },
                    DbCall {
                        db: db(1),
                        ops: vec![DbOp::Add { key: "savings".into(), delta: *amount }],
                    },
                ],
            },
            Workload::Travel => RequestScript {
                calls: vec![
                    DbCall {
                        db: db(0),
                        ops: vec![DbOp::Reserve { key: "flight:LX1612".into(), qty: 1 }],
                    },
                    DbCall {
                        db: db(1),
                        ops: vec![DbOp::Reserve { key: "hotel:Beau-Rivage".into(), qty: 1 }],
                    },
                    DbCall {
                        db: db(2 % topo.db_servers.len().max(1)),
                        ops: vec![DbOp::Reserve { key: "car:compact".into(), qty: 1 }],
                    },
                ],
            },
            Workload::HotSpot => {
                RequestScript::single(db(0), vec![DbOp::Add { key: "hot".into(), delta: 1 }])
            }
            Workload::AlwaysDoomed => RequestScript::single(db(0), vec![DbOp::Doom]),
        };
        Request { id, script }
    }

    /// Builds the first `n` requests of a client's plan.
    pub fn plan(&self, topo: &Topology, client: NodeId, n: u64) -> Vec<Request> {
        (1..=n).map(|seq| self.request(topo, client, seq)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_update_targets_single_db() {
        let topo = Topology::new(1, 3, 1);
        let w = Workload::BankUpdate { amount: 10 };
        let r = w.request(&topo, topo.clients[0], 1);
        assert_eq!(r.script.databases(), vec![topo.db_servers[0]]);
        assert_eq!(w.seed_data()[0].0, "acct");
    }

    #[test]
    fn transfer_spans_two_dbs() {
        let topo = Topology::new(1, 3, 2);
        let w = Workload::BankTransfer { amount: 100 };
        let r = w.request(&topo, topo.clients[0], 1);
        assert_eq!(r.script.databases().len(), 2);
    }

    #[test]
    fn travel_folds_onto_available_dbs() {
        let topo1 = Topology::new(1, 3, 1);
        let r1 = Workload::Travel.request(&topo1, topo1.clients[0], 1);
        assert_eq!(r1.script.databases().len(), 1, "one db hosts everything");
        let topo3 = Topology::new(1, 3, 3);
        let r3 = Workload::Travel.request(&topo3, topo3.clients[0], 1);
        assert_eq!(r3.script.databases().len(), 3);
    }

    #[test]
    fn plan_is_sequential() {
        let topo = Topology::new(1, 3, 1);
        let plan = Workload::HotSpot.plan(&topo, topo.clients[0], 4);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].id.seq, 1);
        assert_eq!(plan[3].id.seq, 4);
    }
}
