//! Workload generators: the concrete business logics requests run.

use etx_base::ids::{NodeId, RequestId, Topology};
use etx_base::value::{DbCall, DbOp, Request, RequestScript};

/// splitmix64 — derives per-request choices (which accounts, cross-shard or
/// not) deterministically from the request identity, so workloads need no
/// shared RNG and replay identically on every application-server replica.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A family of requests a client can issue.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The paper's measured experiment (Appendix 3): "execute some SQL
    /// statements to update a bank account on a single database".
    BankUpdate {
        /// Amount credited per request.
        amount: i64,
    },
    /// A two-database funds transfer — exercises distributed atomic
    /// commitment across resource managers.
    BankTransfer {
        /// Amount moved from `checking` (db 0) to `savings` (db 1).
        amount: i64,
    },
    /// The travel example from the paper's introduction: book a flight, a
    /// hotel and a car, spread across the available databases. Reservations
    /// that find empty inventory yield the informative `sold_out` result.
    Travel,
    /// All requests fight over one key — generates lock conflicts and
    /// therefore aborts + client retries.
    HotSpot,
    /// Business logic that the databases always refuse to commit (vote no).
    AlwaysDoomed,
    /// Shard-aware bank: `accounts` keys (`acct0`…) spread over the
    /// partitioned keyspace by the application server's shard router.
    /// Each request is a single-account update, except that `cross_pct`
    /// percent of requests are two-account transfers — the cross-shard
    /// percentage sweep of STAR's Figure 1, reproduced for e-Transactions.
    /// Key-addressed: only runs meaningfully under `MiddleTier::Etx`.
    ShardedBank {
        /// Number of bank accounts (keys).
        accounts: u32,
        /// Percentage (0–100) of requests that touch two accounts.
        cross_pct: u8,
        /// Amount credited / transferred per request.
        amount: i64,
    },
    /// Skewed shard-aware bank: `hot_pct` percent of requests hammer
    /// `acct0` (whose shard becomes the hot shard); the rest spread
    /// uniformly. The chaos suite crashes the hot shard's replicas
    /// mid-commit while traffic to the other shards proceeds.
    HotShard {
        /// Number of bank accounts (keys).
        accounts: u32,
        /// Percentage (0–100) of requests aimed at the hot key.
        hot_pct: u8,
        /// Amount credited per request.
        amount: i64,
    },
    /// High-concurrency open-loop burst: uniform single-account updates
    /// over `accounts` keys, issued by an **open-loop** client that fires
    /// its whole plan at start instead of waiting for deliveries. This is
    /// the load shape that exercises the commit pipeline — with many
    /// requests concurrently in flight the application server's pipeline
    /// queue actually fills, so decision-log slots carry real batches.
    /// The `ScenarioBuilder` switches clients to open-loop mode for this
    /// workload automatically.
    OpenLoopBurst {
        /// Number of bank accounts (keys).
        accounts: u32,
        /// Amount credited per request.
        amount: i64,
    },
    /// Read-dominated open-loop traffic: `read_pct` percent of requests
    /// are pure-`Get` scripts (one account, or two — a cross-shard
    /// read-only fan-out — every fourth read), the rest single-account
    /// `Add` updates. The workload family the read fast lane exists for;
    /// issued open-loop so read and write traffic genuinely interleave.
    ReadMostly {
        /// Number of bank accounts (keys).
        accounts: u32,
        /// Percentage (0–100) of requests that are read-only.
        read_pct: u8,
        /// Amount credited per write request.
        amount: i64,
    },
    /// Conserved-pair traffic for the cross-shard read-atomicity
    /// invariant: the keyspace is `pairs` fixed account pairs
    /// (`acct0`/`acct1`, `acct2`/`acct3`, …) seeded with 1 000 each.
    /// Write requests transfer `amount` *within* one pair — so the pair's
    /// sum is 2 000 at every transactionally consistent snapshot — and
    /// read requests (`read_pct` percent) read **both** accounts of a
    /// pair in one read-only script. Under hash sharding most pairs
    /// straddle two shards, so a fractured cross-shard fan-out read shows
    /// up as a sum ≠ 2 000. Issued open-loop so reads genuinely race the
    /// transfers they must never observe half-applied.
    ConservedPairs {
        /// Number of account pairs (2 × this many keys).
        pairs: u32,
        /// Percentage (0–100) of requests that are pair reads.
        read_pct: u8,
        /// Amount moved within a pair per transfer.
        amount: i64,
    },
    /// Sequential write-then-read pairs over the keyspace: odd sequence
    /// numbers update an account, the following even sequence number reads
    /// that same account back. Because the client is sequential, the write
    /// is delivered (committed at its shard primary) before the read is
    /// issued — the read-your-writes shape the follower-read freshness
    /// stamp must protect against asynchronous shipping lag.
    ReadAfterWrite {
        /// Number of bank accounts (keys).
        accounts: u32,
        /// Amount credited per write.
        amount: i64,
    },
}

impl Workload {
    /// Seed data the databases should start with.
    pub fn seed_data(&self) -> Vec<(String, i64)> {
        match self {
            Workload::BankUpdate { .. } => vec![("acct".into(), 1_000)],
            Workload::BankTransfer { .. } => {
                vec![("checking".into(), 10_000), ("savings".into(), 0)]
            }
            Workload::Travel => vec![
                ("flight:LX1612".into(), 50),
                ("hotel:Beau-Rivage".into(), 10),
                ("car:compact".into(), 25),
            ],
            Workload::HotSpot => vec![("hot".into(), 0)],
            Workload::AlwaysDoomed => vec![],
            Workload::ShardedBank { accounts, .. }
            | Workload::HotShard { accounts, .. }
            | Workload::OpenLoopBurst { accounts, .. }
            | Workload::ReadMostly { accounts, .. }
            | Workload::ReadAfterWrite { accounts, .. } => {
                (0..*accounts).map(|i| (format!("acct{i}"), 1_000)).collect()
            }
            Workload::ConservedPairs { pairs, .. } => {
                (0..pairs * 2).map(|i| (format!("acct{i}"), 1_000)).collect()
            }
        }
    }

    /// Builds request `seq` for `client` against the given topology.
    pub fn request(&self, topo: &Topology, client: NodeId, seq: u64) -> Request {
        let id = RequestId { client, seq };
        let db = |i: usize| topo.db_servers[i % topo.db_servers.len()];
        let script = match self {
            Workload::BankUpdate { amount } => RequestScript::single(
                db(0),
                vec![
                    DbOp::Get { key: "acct".into() },
                    DbOp::Add { key: "acct".into(), delta: *amount },
                ],
            ),
            Workload::BankTransfer { amount } => RequestScript::from_calls(vec![
                DbCall::new(db(0), vec![DbOp::Add { key: "checking".into(), delta: -amount }]),
                DbCall::new(db(1), vec![DbOp::Add { key: "savings".into(), delta: *amount }]),
            ]),
            Workload::Travel => RequestScript::from_calls(vec![
                DbCall::new(db(0), vec![DbOp::Reserve { key: "flight:LX1612".into(), qty: 1 }]),
                DbCall::new(db(1), vec![DbOp::Reserve { key: "hotel:Beau-Rivage".into(), qty: 1 }]),
                DbCall::new(
                    db(2 % topo.db_servers.len().max(1)),
                    vec![DbOp::Reserve { key: "car:compact".into(), qty: 1 }],
                ),
            ]),
            Workload::HotSpot => {
                RequestScript::single(db(0), vec![DbOp::Add { key: "hot".into(), delta: 1 }])
            }
            Workload::AlwaysDoomed => RequestScript::single(db(0), vec![DbOp::Doom]),
            Workload::ShardedBank { accounts, cross_pct, amount } => {
                let n = (*accounts).max(1) as u64;
                let h = mix(u64::from(client.0) << 32 | seq);
                let a = h % n;
                let cross = (h >> 16) % 100 < u64::from(*cross_pct) && n > 1;
                let ops = if cross {
                    // Transfer a → b (b distinct from a).
                    let b = (a + 1 + (h >> 32) % (n - 1)) % n;
                    vec![
                        DbOp::Add { key: format!("acct{a}"), delta: -amount },
                        DbOp::Add { key: format!("acct{b}"), delta: *amount },
                    ]
                } else {
                    vec![DbOp::Add { key: format!("acct{a}"), delta: *amount }]
                };
                RequestScript::keyed(ops)
            }
            Workload::HotShard { accounts, hot_pct, amount } => {
                let n = (*accounts).max(1) as u64;
                let h = mix(u64::from(client.0) << 32 | seq);
                let a = if (h >> 8) % 100 < u64::from(*hot_pct) { 0 } else { h % n };
                RequestScript::keyed(vec![DbOp::Add { key: format!("acct{a}"), delta: *amount }])
            }
            Workload::OpenLoopBurst { accounts, amount } => {
                let n = (*accounts).max(1) as u64;
                let h = mix(u64::from(client.0) << 32 | seq);
                let a = h % n;
                RequestScript::keyed(vec![DbOp::Add { key: format!("acct{a}"), delta: *amount }])
            }
            Workload::ReadMostly { accounts, read_pct, amount } => {
                let n = (*accounts).max(1) as u64;
                let h = mix(u64::from(client.0) << 32 | seq);
                let a = h % n;
                if h % 100 < u64::from(*read_pct) {
                    // Read-only script; every fourth read spans two
                    // accounts so cross-shard read fan-out gets exercised.
                    if (h >> 40).is_multiple_of(4) && n > 1 {
                        let b = (a + 1 + (h >> 32) % (n - 1)) % n;
                        RequestScript::keyed(vec![
                            DbOp::Get { key: format!("acct{a}") },
                            DbOp::Get { key: format!("acct{b}") },
                        ])
                    } else {
                        RequestScript::keyed(vec![DbOp::Get { key: format!("acct{a}") }])
                    }
                } else {
                    RequestScript::keyed(vec![DbOp::Add {
                        key: format!("acct{a}"),
                        delta: *amount,
                    }])
                }
            }
            Workload::ConservedPairs { pairs, read_pct, amount } => {
                let n = (*pairs).max(1) as u64;
                let h = mix(u64::from(client.0) << 32 | seq);
                let p = h % n;
                let (a, b) = (2 * p, 2 * p + 1);
                if h % 100 < u64::from(*read_pct) {
                    // Read both accounts of the pair in one script: the
                    // merged result's sum is the invariant under test.
                    RequestScript::keyed(vec![
                        DbOp::Get { key: format!("acct{a}") },
                        DbOp::Get { key: format!("acct{b}") },
                    ])
                } else {
                    // Transfer within the pair; direction flips per draw so
                    // balances wander but the pair sum never moves. Ops are
                    // emitted in canonical key order (lower account first,
                    // direction carried by the deltas' signs): shard routing
                    // is first-touch order, so opposite-direction transfers
                    // written as (from, to) would acquire their two shards'
                    // locks in opposite orders and can livelock under
                    // no-wait locking with immediate client retries.
                    let d = if (h >> 20) & 1 == 0 { *amount } else { -amount };
                    RequestScript::keyed(vec![
                        DbOp::Add { key: format!("acct{a}"), delta: -d },
                        DbOp::Add { key: format!("acct{b}"), delta: d },
                    ])
                }
            }
            Workload::ReadAfterWrite { accounts, amount } => {
                let n = (*accounts).max(1) as u64;
                // Pair index: requests (1,2) share a key, (3,4) the next…
                // Consecutive pairs take consecutive accounts from a
                // client-specific offset, so up to `accounts` pairs touch
                // *distinct* keys — each read observes exactly its own
                // pair's write.
                let pair = seq.div_ceil(2);
                let a = (mix(u64::from(client.0)) + pair) % n;
                if seq % 2 == 1 {
                    RequestScript::keyed(vec![DbOp::Add {
                        key: format!("acct{a}"),
                        delta: *amount,
                    }])
                } else {
                    RequestScript::keyed(vec![DbOp::Get { key: format!("acct{a}") }])
                }
            }
        };
        Request { id, script }
    }

    /// Whether this workload expects an open-loop client (whole plan in
    /// flight at once) rather than the paper's sequential `issue()` loop.
    pub fn is_open_loop(&self) -> bool {
        matches!(
            self,
            Workload::OpenLoopBurst { .. }
                | Workload::ReadMostly { .. }
                | Workload::ConservedPairs { .. }
        )
    }

    /// Builds the first `n` requests of a client's plan.
    pub fn plan(&self, topo: &Topology, client: NodeId, n: u64) -> Vec<Request> {
        (1..=n).map(|seq| self.request(topo, client, seq)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_update_targets_single_db() {
        let topo = Topology::new(1, 3, 1);
        let w = Workload::BankUpdate { amount: 10 };
        let r = w.request(&topo, topo.clients[0], 1);
        assert_eq!(r.script.databases(), vec![topo.db_servers[0]]);
        assert_eq!(w.seed_data()[0].0, "acct");
    }

    #[test]
    fn transfer_spans_two_dbs() {
        let topo = Topology::new(1, 3, 2);
        let w = Workload::BankTransfer { amount: 100 };
        let r = w.request(&topo, topo.clients[0], 1);
        assert_eq!(r.script.databases().len(), 2);
    }

    #[test]
    fn travel_folds_onto_available_dbs() {
        let topo1 = Topology::new(1, 3, 1);
        let r1 = Workload::Travel.request(&topo1, topo1.clients[0], 1);
        assert_eq!(r1.script.databases().len(), 1, "one db hosts everything");
        let topo3 = Topology::new(1, 3, 3);
        let r3 = Workload::Travel.request(&topo3, topo3.clients[0], 1);
        assert_eq!(r3.script.databases().len(), 3);
    }

    #[test]
    fn sharded_bank_is_keyed_and_deterministic() {
        let topo = Topology::new(1, 3, 4);
        let w = Workload::ShardedBank { accounts: 16, cross_pct: 50, amount: 10 };
        let r1 = w.request(&topo, topo.clients[0], 7);
        let r2 = w.request(&topo, topo.clients[0], 7);
        assert_eq!(r1, r2, "same identity, same script");
        assert!(r1.script.is_keyed());
        let sizes: Vec<usize> = (1..=100)
            .map(|s| w.request(&topo, topo.clients[0], s).script.keyed_ops.len())
            .collect();
        assert!(sizes.contains(&1) && sizes.contains(&2), "mix of singles and transfers");
    }

    #[test]
    fn sharded_bank_cross_pct_bounds() {
        let topo = Topology::new(1, 3, 4);
        let never = Workload::ShardedBank { accounts: 8, cross_pct: 0, amount: 1 };
        assert!(
            (1..=50).all(|s| never.request(&topo, topo.clients[0], s).script.keyed_ops.len() == 1)
        );
        let always = Workload::ShardedBank { accounts: 8, cross_pct: 100, amount: 1 };
        assert!(
            (1..=50).all(|s| always.request(&topo, topo.clients[0], s).script.keyed_ops.len() == 2)
        );
    }

    #[test]
    fn hot_shard_skews_towards_acct0() {
        let topo = Topology::new(1, 3, 4);
        let w = Workload::HotShard { accounts: 16, hot_pct: 90, amount: 1 };
        let hot = (1..=200u64)
            .filter(|&s| {
                let r = w.request(&topo, topo.clients[0], s);
                r.script.keyed_ops[0].key() == Some("acct0")
            })
            .count();
        assert!(hot > 140, "≈90% of 200 requests should hit acct0, got {hot}");
        assert_eq!(w.seed_data().len(), 16);
    }

    #[test]
    fn open_loop_burst_is_keyed_uniform_and_flagged() {
        let topo = Topology::new(1, 3, 4);
        let w = Workload::OpenLoopBurst { accounts: 8, amount: 1 };
        assert!(w.is_open_loop());
        assert!(!Workload::HotSpot.is_open_loop());
        assert_eq!(w.seed_data().len(), 8);
        let distinct: std::collections::BTreeSet<String> = (1..=64u64)
            .filter_map(|s| {
                let r = w.request(&topo, topo.clients[0], s);
                assert!(r.script.is_keyed());
                r.script.keyed_ops[0].key().map(str::to_string)
            })
            .collect();
        assert!(distinct.len() >= 6, "64 draws must spread over the keyspace: {distinct:?}");
    }

    #[test]
    fn read_mostly_mixes_reads_and_writes_by_fraction() {
        let topo = Topology::new(1, 3, 4);
        let w = Workload::ReadMostly { accounts: 16, read_pct: 90, amount: 1 };
        assert!(w.is_open_loop(), "read traffic interleaves with writes");
        let reqs: Vec<_> = (1..=200u64).map(|s| w.request(&topo, topo.clients[0], s)).collect();
        let reads = reqs.iter().filter(|r| r.script.is_read_only()).count();
        assert!(
            (150..=200).contains(&reads),
            "≈90% of 200 requests should be read-only, got {reads}"
        );
        assert!(
            reqs.iter().any(|r| r.script.is_read_only() && r.script.keyed_ops.len() == 2),
            "some reads must span two accounts (cross-shard fan-out)"
        );
        let all_reads = Workload::ReadMostly { accounts: 16, read_pct: 100, amount: 1 };
        assert!(
            (1..=50u64).all(|s| all_reads.request(&topo, topo.clients[0], s).script.is_read_only())
        );
        let no_reads = Workload::ReadMostly { accounts: 16, read_pct: 0, amount: 1 };
        assert!(
            (1..=50u64).all(|s| !no_reads.request(&topo, topo.clients[0], s).script.is_read_only())
        );
    }

    #[test]
    fn conserved_pairs_reads_whole_pairs_and_transfers_within_them() {
        let topo = Topology::new(1, 3, 4);
        let w = Workload::ConservedPairs { pairs: 8, read_pct: 50, amount: 7 };
        assert!(w.is_open_loop(), "reads must race transfers");
        assert_eq!(w.seed_data().len(), 16, "two accounts per pair");
        let pair_of = |key: &str| key[4..].parse::<u32>().unwrap() / 2;
        let (mut reads, mut writes) = (0, 0);
        for s in 1..=200u64 {
            let r = w.request(&topo, topo.clients[0], s);
            let keys: Vec<&str> = r.script.keyed_ops.iter().filter_map(|op| op.key()).collect();
            assert_eq!(keys.len(), 2, "every request touches exactly one pair");
            assert_eq!(pair_of(keys[0]), pair_of(keys[1]), "never across pairs");
            if r.script.is_read_only() {
                reads += 1;
            } else {
                writes += 1;
                let deltas: Vec<i64> = r
                    .script
                    .keyed_ops
                    .iter()
                    .map(|op| match op {
                        DbOp::Add { delta, .. } => *delta,
                        other => panic!("transfer must be Adds, got {other:?}"),
                    })
                    .collect();
                assert_eq!(deltas.iter().sum::<i64>(), 0, "transfers conserve the pair sum");
            }
        }
        assert!((70..=130).contains(&reads), "≈50% reads, got {reads}");
        assert!(writes > 0);
    }

    #[test]
    fn read_after_write_pairs_share_a_key() {
        let topo = Topology::new(1, 3, 4);
        let w = Workload::ReadAfterWrite { accounts: 8, amount: 5 };
        assert!(!w.is_open_loop(), "write must deliver before its read issues");
        for pair in 1..=10u64 {
            let write = w.request(&topo, topo.clients[0], 2 * pair - 1);
            let read = w.request(&topo, topo.clients[0], 2 * pair);
            assert!(!write.script.is_read_only());
            assert!(read.script.is_read_only());
            assert_eq!(
                write.script.keyed_ops[0].key(),
                read.script.keyed_ops[0].key(),
                "pair {pair} must read back the key it wrote"
            );
        }
    }

    #[test]
    fn plan_is_sequential() {
        let topo = Topology::new(1, 3, 1);
        let plan = Workload::HotSpot.plan(&topo, topo.clients[0], 4);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].id.seq, 1);
        assert_eq!(plan[3].id.seq, 4);
    }
}
