//! Smoke tests for the experiment generators (small trial counts; the
//! real regenerations live in the bench targets).

use etx_harness::figures::{figure1_all, figure7, figure8, render_fig7};

#[test]
fn figure8_shape_holds_with_small_trials() {
    let table = figure8(5, 42);
    let base = table.column("baseline").unwrap();
    let ar = table.column("AR").unwrap();
    let tpc = table.column("2PC").unwrap();
    println!("{}", table.render());
    assert!(base.total.mean > 150.0, "baseline ≈ paper's 217 ms scale: {}", base.total.mean);
    assert!(ar.overhead_pct > 5.0 && ar.overhead_pct < 30.0, "AR overhead {}", ar.overhead_pct);
    assert!(tpc.overhead_pct > ar.overhead_pct, "2PC must cost more than AR");
}

#[test]
fn figure7_orderings_hold() {
    let rows = figure7(7);
    println!("{}", render_fig7(&rows));
    let steps = |l: &str| rows.iter().find(|r| r.label == l).unwrap().steps;
    assert_eq!(steps("AR"), steps("PB"), "AR and PB have identical step counts");
    assert!(steps("AR") > steps("2PC"));
    assert!(steps("2PC") > steps("baseline"));
}

#[test]
fn figure1_panels_behave() {
    let report = figure1_all(3);
    println!("{report}");
    assert!(report.contains("ok"));
    assert!(!report.contains("VIOLATED"));
}
