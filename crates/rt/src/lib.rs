//! # etx-rt — the multi-threaded runtime backend
//!
//! Runs the *identical* protocol state machines the deterministic simulator
//! hosts, but on real hardware: one OS thread and one mpsc inbox per node,
//! real monotonic clocks behind timers, and in-memory stable logs mutated
//! behind the same `log_append`/`log_read` contract. This is the backend
//! that turns every simulated bench figure into an honest wall-clock
//! number — commits per second on the host, not per simulated second.
//!
//! What deliberately does **not** exist here:
//!
//! * **Fault injection.** Crashes, recoveries, partitions and link blocks
//!   are simulator capabilities ([`Host::supports_fault_injection`] returns
//!   `false`); chaos tooling must reject this backend loudly rather than
//!   silently not injecting. Consequently `Event::Recovered`,
//!   `Event::NodeDown` and `Event::NodeUp` are never delivered —
//!   `subscribe_node_events` is accepted and simply never fires.
//! * **Modelled network delay and loss.** Channels are genuinely reliable
//!   and as fast as the machine; the reliable-channel abstraction of §4
//!   holds by construction.
//! * **Determinism.** Per-node randomness is still seeded (same master
//!   seed → same per-node streams), but thread interleaving is the OS
//!   scheduler's. Byte-identical replay remains the simulator's job.
//!
//! Cost-model service times are honored exactly as in the simulator — a
//! forced `log_append` returns the modelled duration and `send_after`
//! really does wait — so a scenario built on the paper's cost model behaves
//! recognizably on both backends. Wall-clock benches pass
//! [`etx_base::config::CostModel::zeroed`] instead, which removes every
//! modelled stall and leaves only what the hardware charges.

use etx_base::config::CostModel;
use etx_base::ids::{NodeId, TimerId};
use etx_base::msg::Payload;
use etx_base::rng::Rng;
use etx_base::runtime::{Context, Event, Host, NodeFactory, Process, RunOutcome, TimerTag};
use etx_base::time::{Dur, Time};
use etx_base::trace::{MsgStats, Trace, TraceEvent, TraceKind};
use etx_base::wal::StableRecord;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Threaded-host parameters.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Master seed: each node derives an independent randomness stream from
    /// it (deterministic per node; interleaving is not).
    pub seed: u64,
    /// Environment cost constants. Modelled service times are honored with
    /// real waits; use [`CostModel::zeroed`] for pure-hardware numbers.
    pub cost: CostModel,
    /// Hard stop for [`Host::run_trace_until`]: longest wall-clock wait for
    /// the predicate before giving up with [`RunOutcome::TimeLimit`].
    pub wall_limit: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig { seed: 0, cost: CostModel::default(), wall_limit: Duration::from_secs(60) }
    }
}

impl ThreadedConfig {
    /// Config with a given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        ThreadedConfig { seed, ..ThreadedConfig::default() }
    }
}

/// One node's in-memory stable logs (same named-append-only-log contract as
/// the simulator's `StableStorage`; crash survival is moot on a backend
/// that cannot crash nodes, but the mutation surface is identical).
#[derive(Debug, Default)]
struct LogStore {
    logs: BTreeMap<&'static str, Vec<StableRecord>>,
}

impl LogStore {
    fn append(&mut self, log: &'static str, rec: StableRecord) {
        self.logs.entry(log).or_default().push(rec);
    }

    fn read(&self, log: &'static str) -> Vec<StableRecord> {
        self.logs.get(log).cloned().unwrap_or_default()
    }
}

/// What travels over a node's inbox.
enum Wire {
    Msg { from: NodeId, payload: Payload, depth: u32 },
    Stop,
}

/// The shared observability sink all node threads write into. Trace
/// timestamps are taken *inside* the trace lock from the shared monotonic
/// epoch, so trace order and timestamp order agree — the property checker's
/// happened-before comparisons hold exactly as on the simulator.
struct Sink {
    epoch: Instant,
    trace: Mutex<Trace>,
    stats: Mutex<MsgStats>,
}

impl Sink {
    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_micros() as u64)
    }
}

/// A deferred local action: a timer armed through `set_timer`, or the tail
/// of a `send_after` whose modelled service time has not elapsed yet.
struct Deferred {
    due: Time,
    seq: u64,
    kind: DeferredKind,
}

enum DeferredKind {
    Timer { id: TimerId, tag: TimerTag, depth: u32 },
    Send { to: NodeId, payload: Payload, depth: u32 },
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Per-node runtime state living on the node's own thread.
struct NodeRt {
    me: NodeId,
    senders: Arc<Vec<Sender<Wire>>>,
    sink: Arc<Sink>,
    cost: CostModel,
    rng: Rng,
    storage: LogStore,
    deferred: BinaryHeap<Reverse<Deferred>>,
    cancelled: HashSet<u64>,
    timer_seq: u64,
    defer_seq: u64,
}

impl NodeRt {
    fn dispatch(&mut self, process: &mut Box<dyn Process>, event: Event, depth: u32) {
        let now = self.sink.now();
        let mut ctx = ThreadCtx { rt: self, now, depth };
        process.on_event(&mut ctx, event);
    }

    /// Fires every deferred action that is due, in (due, seq) order.
    fn fire_due(&mut self, process: &mut Box<dyn Process>) {
        loop {
            let now = self.sink.now();
            match self.deferred.peek() {
                Some(Reverse(d)) if d.due <= now => {}
                _ => return,
            }
            let Reverse(d) = self.deferred.pop().expect("peeked");
            match d.kind {
                DeferredKind::Timer { id, tag, depth } => {
                    if !self.cancelled.remove(&id.0) {
                        self.dispatch(process, Event::Timer { id, tag }, depth);
                    }
                }
                DeferredKind::Send { to, payload, depth } => {
                    self.transmit(to, payload, depth);
                }
            }
        }
    }

    /// Wall-clock wait until the next deferred action (None = nothing
    /// pending).
    fn next_wait(&self) -> Option<Duration> {
        self.deferred.peek().map(|Reverse(d)| {
            let now = self.sink.now();
            Duration::from_micros(d.due.0.saturating_sub(now.0))
        })
    }

    /// Puts a message on the destination's inbox (records stats; a
    /// destination that already shut down is ignored, matching the
    /// simulator's drop-to-down accounting shape).
    fn transmit(&mut self, to: NodeId, payload: Payload, depth: u32) {
        let background = payload.is_background();
        self.sink.stats.lock().expect("stats lock").record_sent(payload.label(), background);
        if let Some(tx) = self.senders.get(to.0 as usize) {
            let _ = tx.send(Wire::Msg { from: self.me, payload, depth });
        }
    }

    fn defer(&mut self, due: Time, kind: DeferredKind) {
        self.defer_seq += 1;
        self.deferred.push(Reverse(Deferred { due, seq: self.defer_seq, kind }));
    }
}

/// The `Context` capability surface, threaded-backend flavour. `now` is
/// pinned at handler entry — same convention as the simulator, where a
/// handler runs instantaneously at one instant.
struct ThreadCtx<'a> {
    rt: &'a mut NodeRt,
    now: Time,
    depth: u32,
}

impl ThreadCtx<'_> {
    fn send_impl(&mut self, depth_base: u32, extra: Dur, to: NodeId, payload: Payload) {
        let background = payload.is_background();
        let depth = if background { 0 } else { depth_base + 1 };
        if extra == Dur::ZERO {
            self.rt.transmit(to, payload, depth);
        } else {
            let due = self.now + extra;
            self.rt.defer(due, DeferredKind::Send { to, payload, depth });
        }
    }
}

impl Context for ThreadCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }

    fn me(&self) -> NodeId {
        self.rt.me
    }

    fn send(&mut self, to: NodeId, payload: Payload) {
        self.send_impl(self.depth, Dur::ZERO, to, payload);
    }

    fn send_after(&mut self, delay: Dur, to: NodeId, payload: Payload) {
        self.send_impl(self.depth, delay, to, payload);
    }

    fn set_timer(&mut self, delay: Dur, tag: TimerTag) -> TimerId {
        self.rt.timer_seq += 1;
        let id = TimerId(self.rt.timer_seq);
        let due = self.now + delay;
        self.rt.defer(due, DeferredKind::Timer { id, tag, depth: self.depth });
        id
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.rt.cancelled.insert(id.0);
    }

    fn random_u64(&mut self) -> u64 {
        self.rt.rng.next_u64()
    }

    fn log_append(&mut self, log: &'static str, rec: StableRecord, forced: bool) -> Dur {
        self.rt.storage.append(log, rec);
        if forced {
            self.rt.rng.jitter(self.rt.cost.log_force, self.rt.cost.jitter)
        } else {
            Dur::ZERO
        }
    }

    fn log_read(&self, log: &'static str) -> Vec<StableRecord> {
        self.rt.storage.read(log)
    }

    fn trace(&mut self, kind: TraceKind) {
        // Timestamp under the lock: trace order == timestamp order.
        let mut trace = self.rt.sink.trace.lock().expect("trace lock");
        let at = self.rt.sink.now();
        trace.push(TraceEvent::new(at, self.rt.me, kind));
    }

    fn depth(&self) -> u32 {
        self.depth
    }

    fn send_at_depth(&mut self, depth: u32, to: NodeId, payload: Payload) {
        self.send_impl(depth, Dur::ZERO, to, payload);
    }

    fn send_after_at_depth(&mut self, depth: u32, delay: Dur, to: NodeId, payload: Payload) {
        self.send_impl(depth, delay, to, payload);
    }

    fn subscribe_node_events(&mut self) {
        // Accepted and inert: this backend cannot crash nodes, so the
        // perfect-failure-detector oracle never has anything to report.
    }
}

/// What a node thread hands back at shutdown: the process (for post-run
/// introspection through `Process::as_any`) and its stable logs.
struct NodeShell {
    process: Box<dyn Process>,
    storage: LogStore,
}

enum Phase {
    /// Nodes may still be registered; no thread exists yet.
    Building,
    /// Threads are live and processing.
    Running,
    /// Threads joined; shells available for introspection.
    Stopped,
}

/// The multi-threaded host. Register nodes, then [`ThreadedHost::start`]
/// (or let the first run call do it), run, and [`ThreadedHost::stop`] to
/// join the node threads and unlock post-run introspection
/// ([`ThreadedHost::process_ref`], [`ThreadedHost::log_read`]).
pub struct ThreadedHost {
    cfg: ThreadedConfig,
    phase: Phase,
    pending: Vec<(&'static str, NodeFactory)>,
    names: Vec<&'static str>,
    senders: Vec<Sender<Wire>>,
    handles: Vec<JoinHandle<NodeShell>>,
    shells: Vec<Option<NodeShell>>,
    sink: Arc<Sink>,
}

impl std::fmt::Debug for ThreadedHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedHost")
            .field("nodes", &self.names.len())
            .field(
                "phase",
                &match self.phase {
                    Phase::Building => "building",
                    Phase::Running => "running",
                    Phase::Stopped => "stopped",
                },
            )
            .finish()
    }
}

impl ThreadedHost {
    /// Creates an empty host. The wall clock starts at [`ThreadedHost::start`].
    pub fn new(cfg: ThreadedConfig) -> Self {
        ThreadedHost {
            cfg,
            phase: Phase::Building,
            pending: Vec::new(),
            names: Vec::new(),
            senders: Vec::new(),
            handles: Vec::new(),
            shells: Vec::new(),
            sink: Arc::new(Sink {
                epoch: Instant::now(),
                trace: Mutex::new(Trace::default()),
                stats: Mutex::new(MsgStats::default()),
            }),
        }
    }

    /// Spawns every registered node on its own thread and delivers
    /// `Event::Init` to each (in registration order on each node's own
    /// thread; cross-node Init interleaving is unordered, exactly like any
    /// real deployment's staggered start).
    pub fn start(&mut self) {
        if !matches!(self.phase, Phase::Building) {
            return;
        }
        // Reset the epoch so Time(0) is the moment processing begins, not
        // host construction.
        self.sink = Arc::new(Sink {
            epoch: Instant::now(),
            trace: Mutex::new(Trace::default()),
            stats: Mutex::new(MsgStats::default()),
        });
        let mut receivers = Vec::new();
        for _ in &self.pending {
            let (tx, rx) = channel::<Wire>();
            self.senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(self.senders.clone());
        let mut master = Rng::new(self.cfg.seed);
        for (idx, ((name, mut factory), rx)) in self.pending.drain(..).zip(receivers).enumerate() {
            let me = NodeId(idx as u32);
            let senders = Arc::clone(&senders);
            let sink = Arc::clone(&self.sink);
            let cost = self.cfg.cost.clone();
            let rng = master.fork();
            let handle = std::thread::Builder::new()
                .name(format!("etx-{name}-{idx}"))
                .spawn(move || {
                    let mut process = factory(me);
                    let mut rt = NodeRt {
                        me,
                        senders,
                        sink,
                        cost,
                        rng,
                        storage: LogStore::default(),
                        deferred: BinaryHeap::new(),
                        cancelled: HashSet::new(),
                        timer_seq: 0,
                        defer_seq: 0,
                    };
                    node_main(&mut rt, &mut process, rx);
                    NodeShell { process, storage: rt.storage }
                })
                .expect("spawn node thread");
            self.handles.push(handle);
        }
        self.phase = Phase::Running;
    }

    /// Signals every node thread to exit, joins them, and keeps each node's
    /// final process + stable logs for introspection. Idempotent.
    pub fn stop(&mut self) {
        match self.phase {
            Phase::Building => {
                // Nothing ever ran; still transition so introspection of an
                // empty run does not hang.
                self.phase = Phase::Stopped;
                return;
            }
            Phase::Stopped => return,
            Phase::Running => {}
        }
        for tx in &self.senders {
            let _ = tx.send(Wire::Stop);
        }
        for handle in self.handles.drain(..) {
            let shell = handle.join().expect("node thread panicked");
            self.shells.push(Some(shell));
        }
        self.phase = Phase::Stopped;
    }

    /// Whether [`ThreadedHost::stop`] has run.
    pub fn is_stopped(&self) -> bool {
        matches!(self.phase, Phase::Stopped)
    }

    /// Node name (diagnostics).
    pub fn node_name(&self, node: NodeId) -> &'static str {
        self.names[node.0 as usize]
    }

    /// Read access to a node's final process state. Only available after
    /// [`ThreadedHost::stop`] — while threads run, each process belongs to
    /// its thread.
    ///
    /// # Panics
    ///
    /// Panics if the host has not been stopped.
    pub fn process_ref(&self, node: NodeId) -> Option<&dyn Process> {
        assert!(
            self.is_stopped(),
            "threaded-host process introspection requires stop() — node threads own their \
             processes while running"
        );
        self.shells.get(node.0 as usize).and_then(|s| s.as_ref()).map(|s| &*s.process)
    }

    /// Reads back a node's stable log. Only available after
    /// [`ThreadedHost::stop`], for the same ownership reason as
    /// [`ThreadedHost::process_ref`].
    ///
    /// # Panics
    ///
    /// Panics if the host has not been stopped.
    pub fn log_read(&self, node: NodeId, log: &'static str) -> Vec<StableRecord> {
        assert!(
            self.is_stopped(),
            "threaded-host log introspection requires stop() — node threads own their logs \
             while running"
        );
        self.shells
            .get(node.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.storage.read(log))
            .unwrap_or_default()
    }

    /// A snapshot of the trace collected so far.
    pub fn trace_snapshot(&self) -> Trace {
        self.sink.trace.lock().expect("trace lock").clone()
    }

    /// A snapshot of the message statistics collected so far.
    pub fn stats_snapshot(&self) -> MsgStats {
        self.sink.stats.lock().expect("stats lock").clone()
    }
}

impl Drop for ThreadedHost {
    fn drop(&mut self) {
        self.stop();
    }
}

fn node_main(rt: &mut NodeRt, process: &mut Box<dyn Process>, rx: Receiver<Wire>) {
    rt.dispatch(process, Event::Init, 0);
    // Idle wait when no timer is pending: purely a wake-up bound for
    // catching Stop/disconnect promptly; protocol liveness never relies on
    // it because every retry path arms a real timer.
    const IDLE_WAIT: Duration = Duration::from_millis(50);
    loop {
        rt.fire_due(process);
        let wait = rt.next_wait().unwrap_or(IDLE_WAIT).min(IDLE_WAIT);
        match rx.recv_timeout(wait) {
            Ok(Wire::Msg { from, payload, depth }) => {
                rt.dispatch(process, Event::Message { from, payload }, depth);
            }
            Ok(Wire::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

impl Host for ThreadedHost {
    fn add_node(&mut self, name: &'static str, factory: NodeFactory) -> NodeId {
        assert!(
            matches!(self.phase, Phase::Building),
            "threaded host: all nodes must be registered before the run starts"
        );
        let id = NodeId(self.pending.len() as u32);
        self.pending.push((name, factory));
        self.names.push(name);
        id
    }

    fn host_now(&self) -> Time {
        self.sink.now()
    }

    fn run_trace_until(&mut self, mut pred: Box<dyn FnMut(&Trace) -> bool + '_>) -> RunOutcome {
        self.start();
        let poll = Duration::from_micros(200);
        loop {
            {
                let trace = self.sink.trace.lock().expect("trace lock");
                if pred(&trace) {
                    return RunOutcome::Predicate;
                }
            }
            if self.sink.epoch.elapsed() > self.cfg.wall_limit {
                return RunOutcome::TimeLimit;
            }
            std::thread::sleep(poll);
        }
    }

    fn quiesce_for(&mut self, extra: Dur) {
        self.start();
        std::thread::sleep(Duration::from_micros(extra.0));
    }

    fn with_trace(&self, f: &mut dyn FnMut(&Trace)) {
        let trace = self.sink.trace.lock().expect("trace lock");
        f(&trace)
    }

    fn with_stats(&self, f: &mut dyn FnMut(&MsgStats)) {
        let stats = self.sink.stats.lock().expect("stats lock");
        f(&stats)
    }

    fn supports_fault_injection(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::msg::FdMsg;
    use etx_base::wal::LOG_WAL;

    /// Sends `n` pings to a peer on Init; notes pongs.
    struct Pinger {
        peer: Option<NodeId>,
        n: u64,
    }
    impl Process for Pinger {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => {
                    if let Some(peer) = self.peer {
                        for i in 0..self.n {
                            ctx.send(peer, Payload::Fd(FdMsg::Heartbeat { seq: i }));
                        }
                    }
                }
                Event::Message { .. } => ctx.trace(TraceKind::Note("pong")),
                _ => {}
            }
        }
    }

    fn pongs(t: &Trace) -> usize {
        t.count_kind(|k| matches!(k, TraceKind::Note("pong")))
    }

    #[test]
    fn messages_flow_between_threads() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(1));
        let _a = host.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 5 })));
        let _b = host.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        let out = host.run_trace_until(Box::new(|t| pongs(t) == 5));
        assert_eq!(out, RunOutcome::Predicate);
        host.stop();
        assert_eq!(host.stats_snapshot().sent("Heartbeat"), 5);
    }

    struct TimerBox;
    impl Process for TimerBox {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => {
                    let keep = ctx.set_timer(Dur::from_millis(5), TimerTag::CleanerTick);
                    let kill = ctx.set_timer(Dur::from_millis(1), TimerTag::FdCheck);
                    ctx.cancel_timer(kill);
                    let _ = keep;
                }
                Event::Timer { tag, .. } => {
                    assert_eq!(tag, TimerTag::CleanerTick, "cancelled timer must not fire");
                    ctx.trace(TraceKind::Note("tick"));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn timers_fire_on_the_real_clock_and_cancel() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(2));
        host.add_node("t", Box::new(|_| Box::new(TimerBox)));
        let out = host.run_trace_until(Box::new(|t| {
            t.count_kind(|k| matches!(k, TraceKind::Note("tick"))) == 1
        }));
        assert_eq!(out, RunOutcome::Predicate);
        assert!(host.host_now() >= Time(5_000), "timer must not fire early");
        host.stop();
    }

    struct Durable;
    impl Process for Durable {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            if let Event::Init = event {
                let rid = etx_base::ids::ResultId::first(etx_base::ids::RequestId {
                    client: NodeId(0),
                    seq: 1,
                });
                let d = ctx.log_append(LOG_WAL, StableRecord::CoordStart { rid }, true);
                assert!(d > Dur::ZERO, "forced writes cost modelled time");
                assert_eq!(ctx.log_read(LOG_WAL).len(), 1, "read-your-append");
                ctx.trace(TraceKind::Note("logged"));
            }
        }
    }

    #[test]
    fn stable_logs_survive_to_introspection() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(3));
        let n = host.add_node("d", Box::new(|_| Box::new(Durable)));
        host.run_trace_until(Box::new(|t| {
            t.count_kind(|k| matches!(k, TraceKind::Note("logged"))) == 1
        }));
        host.stop();
        assert_eq!(host.log_read(n, LOG_WAL).len(), 1);
        assert!(host.process_ref(n).is_some());
    }

    #[test]
    fn fault_injection_is_rejected() {
        let host = ThreadedHost::new(ThreadedConfig::default());
        assert!(!host.supports_fault_injection());
    }

    #[test]
    fn run_times_out_when_predicate_never_holds() {
        let mut cfg = ThreadedConfig::with_seed(4);
        cfg.wall_limit = Duration::from_millis(50);
        let mut host = ThreadedHost::new(cfg);
        host.add_node("a", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        assert_eq!(host.run_trace_until(Box::new(|_| false)), RunOutcome::TimeLimit);
    }
}
