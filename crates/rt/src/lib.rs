//! # etx-rt — the multi-threaded runtime backend
//!
//! Runs the *identical* protocol state machines the deterministic simulator
//! hosts, but on real hardware: one OS thread and one mpsc inbox per node,
//! real monotonic clocks behind timers, and in-memory stable logs mutated
//! behind the same `log_append`/`log_read` contract. This is the backend
//! that turns every simulated bench figure into an honest wall-clock
//! number — commits per second on the host, not per simulated second.
//!
//! Faults here are **real**, not simulated: the fault plane
//! ([`Host::schedule_fault`]) crashes a node by poisoning its inbox and
//! joining its OS thread (volatile state dies with the thread; the
//! [`LogStore`] survives for restart), pauses a node by parking the thread
//! with its inbox gated (the SIGSTOP story — messages pile up, timers go
//! overdue, nothing is lost), and degrades links through a filter table
//! consulted on every send (drop, delay, duplicate, partition). The §3
//! checker then judges the resulting trace exactly as it judges a
//! simulated one.
//!
//! What deliberately does **not** exist here:
//!
//! * **Modelled network delay and loss.** Channels are genuinely reliable
//!   and as fast as the machine; the reliable-channel abstraction of §4
//!   holds by construction — and the fault plane preserves it. A `drop`
//!   fault stops traffic at the link and re-injects it when the link
//!   heals (a TCP partition: loss is delay, never absence — the same
//!   model the simulator applies, and a liveness requirement, since
//!   consensus advances rounds on *suspicion* and a silently lost
//!   message to a live coordinator would wedge an instance forever).
//!   Crashes are the genuinely lossy fault: a killed node's inbox and
//!   volatile state are really gone, only its stable log survives.
//! * **The perfect-failure-detector oracle.** `subscribe_node_events` is
//!   accepted and never fires — real deployments have no such oracle, and
//!   the e-Transaction protocol pointedly does not need one. (The
//!   primary-backup baseline that does is a simulator-only experiment.)
//! * **Determinism.** Per-node randomness is still seeded (same master
//!   seed → same per-node streams), but thread interleaving is the OS
//!   scheduler's. Byte-identical replay remains the simulator's job.
//!
//! Cost-model service times are honored exactly as in the simulator — a
//! forced `log_append` returns the modelled duration and `send_after`
//! really does wait — so a scenario built on the paper's cost model behaves
//! recognizably on both backends. Wall-clock benches pass
//! [`etx_base::config::CostModel::zeroed`] instead, which removes every
//! modelled stall and leaves only what the hardware charges.

use etx_base::config::CostModel;
use etx_base::fault::{CapabilityError, FaultOp, LinkFault, NemesisWhen, TracePred};
use etx_base::ids::{NodeId, TimerId};
use etx_base::msg::Payload;
use etx_base::rng::Rng;
use etx_base::runtime::{Context, Event, Host, NodeFactory, Process, RunOutcome, TimerTag};
use etx_base::time::{Dur, Time};
use etx_base::trace::{MsgStats, Trace, TraceEvent, TraceKind};
use etx_base::wal::StableRecord;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Threaded-host parameters.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Master seed: each node derives an independent randomness stream from
    /// it (deterministic per node; interleaving is not).
    pub seed: u64,
    /// Environment cost constants. Modelled service times are honored with
    /// real waits; use [`CostModel::zeroed`] for pure-hardware numbers.
    pub cost: CostModel,
    /// Hard stop for [`Host::run_trace_until`]: longest wall-clock wait for
    /// the predicate before giving up with [`RunOutcome::TimeLimit`].
    pub wall_limit: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig { seed: 0, cost: CostModel::default(), wall_limit: Duration::from_secs(60) }
    }
}

impl ThreadedConfig {
    /// Config with a given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        ThreadedConfig { seed, ..ThreadedConfig::default() }
    }
}

/// One node's in-memory stable logs (same named-append-only-log contract as
/// the simulator's `StableStorage`). This is the "stable storage" of §2: a
/// fault-plane crash joins the node's thread and drops its process, but the
/// `LogStore` is carried through the crash and handed to the restarted
/// incarnation.
#[derive(Debug, Default)]
struct LogStore {
    logs: BTreeMap<&'static str, Vec<StableRecord>>,
}

impl LogStore {
    fn append(&mut self, log: &'static str, rec: StableRecord) {
        self.logs.entry(log).or_default().push(rec);
    }

    fn read(&self, log: &'static str) -> Vec<StableRecord> {
        self.logs.get(log).cloned().unwrap_or_default()
    }
}

/// What travels over a node's inbox.
enum Wire {
    Msg {
        from: NodeId,
        payload: Payload,
        depth: u32,
    },
    /// Wake the thread so it re-reads its control flags promptly (sent by
    /// the fault plane after setting `killed`/`paused`); carries nothing.
    Nudge,
    Stop,
}

/// Per-node control flags read at the top of the node loop — the fault
/// plane's handle on a running thread.
#[derive(Default)]
struct CtlFlags {
    /// Parked by the fault plane (SIGSTOP): the thread waits on the
    /// condvar, its inbox accumulating, until resumed/killed/stopping.
    paused: bool,
    /// Crashed by the fault plane: the thread exits its loop as soon as it
    /// observes the flag (at most the in-flight handler completes first).
    killed: bool,
    /// Host shutdown: only relevant to *paused* threads, which must wake
    /// and drain normally; running threads still exit on [`Wire::Stop`]
    /// so their queued backlog is processed, not dropped.
    stopping: bool,
}

#[derive(Default)]
struct NodeCtl {
    flags: Mutex<CtlFlags>,
    cv: Condvar,
}

/// Fault state shared by the driver and every node thread: per-node down
/// flags (a crashed node's inbox is poisoned — sends to it are dropped,
/// like the simulator's drop-to-down accounting) and the link-filter
/// table consulted on every send. `links_active` keeps the fault-free
/// fast path to one relaxed atomic load per send.
struct FaultState {
    down: Vec<AtomicBool>,
    links_active: AtomicBool,
    links: Mutex<HashMap<(NodeId, NodeId), LinkFault>>,
    /// Traffic stopped by a `drop` fault, in send order per link. §4's
    /// reliable-channel assumption is load-bearing for liveness (consensus
    /// round advancement is suspicion-driven, so a silently lost estimate
    /// to a *live* coordinator would wedge an instance forever), so a
    /// faulted link models a TCP partition: messages are held here and
    /// re-injected at heal — loss is delay, never absence, exactly the
    /// simulator's model. Crashes are the genuinely lossy fault.
    held: Mutex<HeldTraffic>,
}

/// Per-link queues of `(payload, depth)` pairs stopped by a `drop` fault.
type HeldTraffic = HashMap<(NodeId, NodeId), Vec<(Payload, u32)>>;

impl FaultState {
    fn new(n: usize) -> Self {
        FaultState {
            down: (0..n).map(|_| AtomicBool::new(false)).collect(),
            links_active: AtomicBool::new(false),
            links: Mutex::new(HashMap::new()),
            held: Mutex::new(HashMap::new()),
        }
    }

    fn is_down(&self, node: NodeId) -> bool {
        self.down.get(node.0 as usize).is_some_and(|f| f.load(Ordering::Acquire))
    }

    fn fault_on(&self, from: NodeId, to: NodeId) -> Option<LinkFault> {
        if !self.links_active.load(Ordering::Relaxed) {
            return None;
        }
        self.links.lock().expect("link table lock").get(&(from, to)).copied()
    }
}

/// The shared observability sink all node threads write into. Trace
/// timestamps are taken *inside* the trace lock from the shared monotonic
/// epoch, so trace order and timestamp order agree — the property checker's
/// happened-before comparisons hold exactly as on the simulator.
struct Sink {
    epoch: Instant,
    trace: Mutex<Trace>,
    stats: Mutex<MsgStats>,
}

impl Sink {
    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_micros() as u64)
    }
}

/// A deferred local action: a timer armed through `set_timer`, or the tail
/// of a `send_after` whose modelled service time has not elapsed yet.
struct Deferred {
    due: Time,
    seq: u64,
    kind: DeferredKind,
}

enum DeferredKind {
    Timer {
        id: TimerId,
        tag: TimerTag,
        depth: u32,
    },
    /// `delayed` marks a send already processed by the link-fault filter
    /// (a delay fault deferred it): at fire time it goes straight onto
    /// the destination inbox instead of through the filter again, so a
    /// persistent delay fault postpones each message once, not forever.
    Send {
        to: NodeId,
        payload: Payload,
        depth: u32,
        delayed: bool,
    },
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Per-node runtime state living on the node's own thread.
struct NodeRt {
    me: NodeId,
    senders: Arc<Vec<Sender<Wire>>>,
    sink: Arc<Sink>,
    faults: Arc<FaultState>,
    cost: CostModel,
    rng: Rng,
    storage: LogStore,
    deferred: BinaryHeap<Reverse<Deferred>>,
    cancelled: HashSet<u64>,
    timer_seq: u64,
    defer_seq: u64,
}

impl NodeRt {
    fn dispatch(&mut self, process: &mut Box<dyn Process>, event: Event, depth: u32) {
        let now = self.sink.now();
        let mut ctx = ThreadCtx { rt: self, now, depth };
        process.on_event(&mut ctx, event);
    }

    /// Fires every deferred action that is due, in (due, seq) order.
    fn fire_due(&mut self, process: &mut Box<dyn Process>) {
        loop {
            let now = self.sink.now();
            match self.deferred.peek() {
                Some(Reverse(d)) if d.due <= now => {}
                _ => return,
            }
            let Reverse(d) = self.deferred.pop().expect("peeked");
            match d.kind {
                DeferredKind::Timer { id, tag, depth } => {
                    if !self.cancelled.remove(&id.0) {
                        self.dispatch(process, Event::Timer { id, tag }, depth);
                    }
                }
                DeferredKind::Send { to, payload, depth, delayed } => {
                    if delayed {
                        self.push_wire(to, payload, depth);
                    } else {
                        self.transmit(to, payload, depth);
                    }
                }
            }
        }
    }

    /// Wall-clock wait until the next deferred action (None = nothing
    /// pending).
    fn next_wait(&self) -> Option<Duration> {
        self.deferred.peek().map(|Reverse(d)| {
            let now = self.sink.now();
            Duration::from_micros(d.due.0.saturating_sub(now.0))
        })
    }

    /// Puts a message on the destination's inbox, running it through the
    /// fault plane's link filter first: a `drop` fault stops it at the
    /// link (held in [`FaultState::held`] and re-injected when the link
    /// heals — the reliable-channel model of §4, see there for why), a
    /// `delay` fault defers it once, a `duplicate` fault delivers two
    /// copies.
    fn transmit(&mut self, to: NodeId, payload: Payload, depth: u32) {
        let background = payload.is_background();
        self.sink.stats.lock().expect("stats lock").record_sent(payload.label(), background);
        if let Some(fault) = self.faults.fault_on(self.me, to) {
            if fault.drop {
                self.sink.stats.lock().expect("stats lock").record_dropped_on_link();
                self.faults
                    .held
                    .lock()
                    .expect("held-traffic lock")
                    .entry((self.me, to))
                    .or_default()
                    .push((payload, depth));
                return;
            }
            let copies = if fault.duplicate { 2 } else { 1 };
            if let Some(extra) = fault.delay {
                let due = self.sink.now() + extra;
                for _ in 0..copies {
                    let payload = payload.clone();
                    self.defer(due, DeferredKind::Send { to, payload, depth, delayed: true });
                }
                return;
            }
            for _ in 1..copies {
                self.push_wire(to, payload.clone(), depth);
            }
        }
        self.push_wire(to, payload, depth);
    }

    /// The raw inbox append, past the link filter. A crashed
    /// destination's inbox is poisoned: the message is dropped and
    /// counted, matching the simulator's drop-to-down accounting.
    fn push_wire(&mut self, to: NodeId, payload: Payload, depth: u32) {
        if self.faults.is_down(to) {
            self.sink.stats.lock().expect("stats lock").record_dropped_to_down();
            return;
        }
        if let Some(tx) = self.senders.get(to.0 as usize) {
            let _ = tx.send(Wire::Msg { from: self.me, payload, depth });
        }
    }

    fn defer(&mut self, due: Time, kind: DeferredKind) {
        self.defer_seq += 1;
        self.deferred.push(Reverse(Deferred { due, seq: self.defer_seq, kind }));
    }
}

/// The `Context` capability surface, threaded-backend flavour. `now` is
/// pinned at handler entry — same convention as the simulator, where a
/// handler runs instantaneously at one instant.
struct ThreadCtx<'a> {
    rt: &'a mut NodeRt,
    now: Time,
    depth: u32,
}

impl ThreadCtx<'_> {
    fn send_impl(&mut self, depth_base: u32, extra: Dur, to: NodeId, payload: Payload) {
        let background = payload.is_background();
        let depth = if background { 0 } else { depth_base + 1 };
        if extra == Dur::ZERO {
            self.rt.transmit(to, payload, depth);
        } else {
            let due = self.now + extra;
            self.rt.defer(due, DeferredKind::Send { to, payload, depth, delayed: false });
        }
    }
}

impl Context for ThreadCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }

    fn me(&self) -> NodeId {
        self.rt.me
    }

    fn send(&mut self, to: NodeId, payload: Payload) {
        self.send_impl(self.depth, Dur::ZERO, to, payload);
    }

    fn send_after(&mut self, delay: Dur, to: NodeId, payload: Payload) {
        self.send_impl(self.depth, delay, to, payload);
    }

    fn set_timer(&mut self, delay: Dur, tag: TimerTag) -> TimerId {
        self.rt.timer_seq += 1;
        let id = TimerId(self.rt.timer_seq);
        let due = self.now + delay;
        self.rt.defer(due, DeferredKind::Timer { id, tag, depth: self.depth });
        id
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.rt.cancelled.insert(id.0);
    }

    fn random_u64(&mut self) -> u64 {
        self.rt.rng.next_u64()
    }

    fn log_append(&mut self, log: &'static str, rec: StableRecord, forced: bool) -> Dur {
        self.rt.storage.append(log, rec);
        if forced {
            self.rt.rng.jitter(self.rt.cost.log_force, self.rt.cost.jitter)
        } else {
            Dur::ZERO
        }
    }

    fn log_read(&self, log: &'static str) -> Vec<StableRecord> {
        self.rt.storage.read(log)
    }

    fn trace(&mut self, kind: TraceKind) {
        // Timestamp under the lock: trace order == timestamp order.
        let mut trace = self.rt.sink.trace.lock().expect("trace lock");
        let at = self.rt.sink.now();
        trace.push(TraceEvent::new(at, self.rt.me, kind));
    }

    fn depth(&self) -> u32 {
        self.depth
    }

    fn send_at_depth(&mut self, depth: u32, to: NodeId, payload: Payload) {
        self.send_impl(depth, Dur::ZERO, to, payload);
    }

    fn send_after_at_depth(&mut self, depth: u32, delay: Dur, to: NodeId, payload: Payload) {
        self.send_impl(depth, delay, to, payload);
    }

    fn subscribe_node_events(&mut self) {
        // Accepted and inert: the perfect-failure-detector oracle is a
        // simulator-only experiment aid. Real crashes on this backend are
        // detected the way real deployments detect them — heartbeat
        // failure detectors — never by magic notification.
    }
}

/// What a node thread hands back when it exits: the process (for post-run
/// introspection through `Process::as_any`; `None` after a fault-plane
/// crash wiped the volatile state), its stable logs (which survive
/// crashes, per §2), and its inbox receiver — preserved so senders stay
/// connected across a crash and a restarted incarnation can reuse the
/// same channel.
struct NodeShell {
    process: Option<Box<dyn Process>>,
    storage: LogStore,
    rx: Receiver<Wire>,
}

enum Phase {
    /// Nodes may still be registered; no thread exists yet.
    Building,
    /// Threads are live and processing.
    Running,
    /// Threads joined; shells available for introspection.
    Stopped,
}

/// One scheduled fault awaiting its trigger, pumped from the driver
/// thread (never from a node thread — applying a crash means joining the
/// victim, and a node cannot join itself).
struct NemesisEntry {
    /// Fires when the host clock reaches this instant (`None` for
    /// trace-triggered entries).
    due: Option<Time>,
    /// Fires on the first matching trace event (`None` for timed entries).
    pred: Option<TracePred>,
    op: FaultOp,
    done: bool,
}

/// The multi-threaded host. Register nodes, then [`ThreadedHost::start`]
/// (or let the first run call do it), run, and [`ThreadedHost::stop`] to
/// join the node threads and unlock post-run introspection
/// ([`ThreadedHost::process_ref`], [`ThreadedHost::log_read`]).
///
/// Faults scheduled through [`Host::schedule_fault`] are applied by the
/// driver thread inside [`Host::run_trace_until`] / [`Host::quiesce_for`]
/// polling loops: a crash kills and joins the victim's thread (keeping
/// its stable logs for restart), a pause parks it on a condvar with the
/// inbox gated, link faults install entries in the shared filter table.
pub struct ThreadedHost {
    cfg: ThreadedConfig,
    phase: Phase,
    pending: Vec<(&'static str, NodeFactory)>,
    names: Vec<&'static str>,
    /// Factories retained across [`ThreadedHost::start`] so a crashed
    /// node can be rebuilt at recovery (volatile state from scratch).
    factories: Vec<NodeFactory>,
    senders: Arc<Vec<Sender<Wire>>>,
    handles: Vec<Option<JoinHandle<NodeShell>>>,
    shells: Vec<Option<NodeShell>>,
    ctls: Vec<Arc<NodeCtl>>,
    faults: Arc<FaultState>,
    incarnations: Vec<u32>,
    panicked: Vec<&'static str>,
    nemesis: Vec<NemesisEntry>,
    nemesis_scanned: usize,
    sink: Arc<Sink>,
}

impl std::fmt::Debug for ThreadedHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedHost")
            .field("nodes", &self.names.len())
            .field(
                "phase",
                &match self.phase {
                    Phase::Building => "building",
                    Phase::Running => "running",
                    Phase::Stopped => "stopped",
                },
            )
            .finish()
    }
}

impl ThreadedHost {
    /// Creates an empty host. The wall clock starts at [`ThreadedHost::start`].
    pub fn new(cfg: ThreadedConfig) -> Self {
        ThreadedHost {
            cfg,
            phase: Phase::Building,
            pending: Vec::new(),
            names: Vec::new(),
            factories: Vec::new(),
            senders: Arc::new(Vec::new()),
            handles: Vec::new(),
            shells: Vec::new(),
            ctls: Vec::new(),
            faults: Arc::new(FaultState::new(0)),
            incarnations: Vec::new(),
            panicked: Vec::new(),
            nemesis: Vec::new(),
            nemesis_scanned: 0,
            sink: Arc::new(Sink {
                epoch: Instant::now(),
                trace: Mutex::new(Trace::default()),
                stats: Mutex::new(MsgStats::default()),
            }),
        }
    }

    /// Spawns every registered node on its own thread and delivers
    /// `Event::Init` to each (in registration order on each node's own
    /// thread; cross-node Init interleaving is unordered, exactly like any
    /// real deployment's staggered start).
    pub fn start(&mut self) {
        if !matches!(self.phase, Phase::Building) {
            return;
        }
        // Reset the epoch so Time(0) is the moment processing begins, not
        // host construction.
        self.sink = Arc::new(Sink {
            epoch: Instant::now(),
            trace: Mutex::new(Trace::default()),
            stats: Mutex::new(MsgStats::default()),
        });
        let n = self.pending.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Wire>();
            senders.push(tx);
            receivers.push(rx);
        }
        self.senders = Arc::new(senders);
        self.faults = Arc::new(FaultState::new(n));
        self.ctls = (0..n).map(|_| Arc::new(NodeCtl::default())).collect();
        self.incarnations = vec![0; n];
        self.shells = (0..n).map(|_| None).collect();
        // Faults scheduled before the run (`NemesisWhen::Now` on a
        // building host) that need no live thread — link faults and
        // pauses — are put in force *before* any node's Init runs, so a
        // pre-partitioned or pre-paused start is exactly that.
        let mut i = 0;
        while i < self.nemesis.len() {
            let eligible = !self.nemesis[i].done
                && self.nemesis[i].due == Some(Time::ZERO)
                && matches!(
                    self.nemesis[i].op,
                    FaultOp::SetLink { .. }
                        | FaultOp::HealLink { .. }
                        | FaultOp::BlockLink { .. }
                        | FaultOp::Partition { .. }
                        | FaultOp::Pause(_)
                        | FaultOp::PauseFor { .. }
                );
            if eligible {
                self.nemesis[i].done = true;
                let op = self.nemesis[i].op.clone();
                self.apply_fault_now(op);
            }
            i += 1;
        }
        let mut master = Rng::new(self.cfg.seed);
        let pending = std::mem::take(&mut self.pending);
        for (idx, ((name, mut factory), rx)) in pending.into_iter().zip(receivers).enumerate() {
            let me = NodeId(idx as u32);
            let rng = master.fork();
            let process = factory(me);
            self.factories.push(factory);
            let handle =
                self.spawn_node(name, me, process, LogStore::default(), rx, rng, Event::Init);
            self.handles.push(Some(handle));
        }
        self.phase = Phase::Running;
    }

    /// Spawns one node incarnation on a fresh OS thread. Used at startup
    /// (with `Event::Init` and empty logs) and at fault-plane recovery
    /// (with `Event::Recovered` and the crashed incarnation's logs).
    #[allow(clippy::too_many_arguments)] // one value per piece of incarnation state
    fn spawn_node(
        &self,
        name: &'static str,
        me: NodeId,
        mut process: Box<dyn Process>,
        storage: LogStore,
        rx: Receiver<Wire>,
        rng: Rng,
        first: Event,
    ) -> JoinHandle<NodeShell> {
        let senders = Arc::clone(&self.senders);
        let sink = Arc::clone(&self.sink);
        let faults = Arc::clone(&self.faults);
        let ctl = Arc::clone(&self.ctls[me.0 as usize]);
        let cost = self.cfg.cost.clone();
        std::thread::Builder::new()
            .name(format!("etx-{name}-{}", me.0))
            .spawn(move || {
                let mut rt = NodeRt {
                    me,
                    senders,
                    sink,
                    faults,
                    cost,
                    rng,
                    storage,
                    deferred: BinaryHeap::new(),
                    cancelled: HashSet::new(),
                    timer_seq: 0,
                    defer_seq: 0,
                };
                rt.dispatch(&mut process, first, 0);
                node_main(&mut rt, &mut process, &rx, &ctl);
                NodeShell { process: Some(process), storage: rt.storage, rx }
            })
            .expect("spawn node thread")
    }

    /// Signals every node thread to exit, joins them, and keeps each node's
    /// final process + stable logs for introspection. Idempotent.
    ///
    /// A node thread that *panicked* is recorded rather than propagated —
    /// `stop()` runs from `Drop`, where a panic would abort the process.
    /// Callers that must fail the scenario on a dead node (the harness
    /// does) check [`ThreadedHost::panicked_nodes`] after stopping.
    pub fn stop(&mut self) {
        match self.phase {
            Phase::Building => {
                // Nothing ever ran; still transition so introspection of an
                // empty run does not hang.
                self.phase = Phase::Stopped;
                return;
            }
            Phase::Stopped => return,
            Phase::Running => {}
        }
        // Wake paused threads out of the condvar gate; running threads
        // ignore the flag and still drain their backlog up to Wire::Stop.
        for ctl in &self.ctls {
            let mut flags = ctl.flags.lock().expect("ctl lock");
            flags.stopping = true;
            ctl.cv.notify_all();
        }
        for tx in self.senders.iter() {
            let _ = tx.send(Wire::Stop);
        }
        for idx in 0..self.handles.len() {
            if let Some(handle) = self.handles[idx].take() {
                match handle.join() {
                    Ok(shell) => self.shells[idx] = Some(shell),
                    Err(_) => self.panicked.push(self.names[idx]),
                }
            }
            // Nodes crashed by the fault plane already parked their shell
            // (stable logs intact) when they were joined at crash time.
        }
        self.phase = Phase::Stopped;
    }

    /// Names of node threads that exited by panicking (either mid-run —
    /// observed when the fault plane joined them — or at [`ThreadedHost::stop`]).
    /// A non-empty list means the run's results are untrustworthy; the
    /// harness turns it into a scenario failure.
    pub fn panicked_nodes(&self) -> &[&'static str] {
        &self.panicked
    }

    /// Whether [`ThreadedHost::stop`] has run.
    pub fn is_stopped(&self) -> bool {
        matches!(self.phase, Phase::Stopped)
    }

    /// Node name (diagnostics).
    pub fn node_name(&self, node: NodeId) -> &'static str {
        self.names[node.0 as usize]
    }

    /// Read access to a node's final process state. Only available after
    /// [`ThreadedHost::stop`] — while threads run, each process belongs to
    /// its thread.
    ///
    /// # Panics
    ///
    /// Panics if the host has not been stopped.
    pub fn process_ref(&self, node: NodeId) -> Option<&dyn Process> {
        assert!(
            self.is_stopped(),
            "threaded-host process introspection requires stop() — node threads own their \
             processes while running"
        );
        self.shells.get(node.0 as usize).and_then(|s| s.as_ref()).and_then(|s| s.process.as_deref())
    }

    /// Reads back a node's stable log. Only available after
    /// [`ThreadedHost::stop`], for the same ownership reason as
    /// [`ThreadedHost::process_ref`].
    ///
    /// # Panics
    ///
    /// Panics if the host has not been stopped.
    pub fn log_read(&self, node: NodeId, log: &'static str) -> Vec<StableRecord> {
        assert!(
            self.is_stopped(),
            "threaded-host log introspection requires stop() — node threads own their logs \
             while running"
        );
        self.shells
            .get(node.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.storage.read(log))
            .unwrap_or_default()
    }

    // ---- fault plane (driver-thread only) --------------------------------

    /// Pushes a kernel-emitted trace event (timestamp under the trace
    /// lock, like every node-thread event, so trace order == timestamp
    /// order holds across fault events too).
    fn trace_fault(&self, node: NodeId, kind: TraceKind) {
        let mut trace = self.sink.trace.lock().expect("trace lock");
        let at = self.sink.now();
        trace.push(TraceEvent::new(at, node, kind));
    }

    /// Crashes a node for real: poisons its inbox (down flag — senders'
    /// messages drop from here), sets the kill flag, wakes and **joins**
    /// the OS thread. The thread's shell — stable logs and inbox receiver
    /// — is parked for recovery; its process is dropped, wiping all
    /// volatile state, exactly the §2 crash model.
    fn crash_node(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.faults.is_down(node) {
            return;
        }
        let Some(handle) = self.handles.get_mut(idx).and_then(|h| h.take()) else {
            return;
        };
        self.faults.down[idx].store(true, Ordering::Release);
        {
            let mut flags = self.ctls[idx].flags.lock().expect("ctl lock");
            flags.killed = true;
            self.ctls[idx].cv.notify_all();
        }
        // Wake the thread if it is idle in recv_timeout; it observes the
        // kill flag at the top of its loop and exits (at most the handler
        // already in flight completes first — a real crash also finishes
        // the instruction it is on).
        let _ = self.senders[idx].send(Wire::Nudge);
        match handle.join() {
            Ok(mut shell) => {
                shell.process = None; // volatile state dies with the crash
                self.shells[idx] = Some(shell);
            }
            Err(_) => self.panicked.push(self.names[idx]),
        }
        self.trace_fault(node, TraceKind::Crash);
    }

    /// Restarts a crashed node: drains the stale inbox (messages sent to
    /// a down node are lost, as on the simulator), rebuilds the process
    /// from its retained factory, and spawns a fresh incarnation over the
    /// crashed one's stable logs with `Event::Recovered` first.
    fn recover_node(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if !self.faults.is_down(node) {
            return;
        }
        let Some(shell) = self.shells.get_mut(idx).and_then(|s| s.take()) else {
            return; // crashed *and* panicked: nothing coherent to restart
        };
        while shell.rx.try_recv().is_ok() {}
        self.incarnations[idx] += 1;
        {
            let mut flags = self.ctls[idx].flags.lock().expect("ctl lock");
            *flags = CtlFlags::default();
        }
        let process = (self.factories[idx])(node);
        // Fresh deterministic stream per incarnation: same master seed +
        // node + incarnation → same stream, never a replay of the
        // pre-crash one.
        let rng =
            Rng::new(self.cfg.seed ^ ((idx as u64) << 32) ^ u64::from(self.incarnations[idx]));
        self.faults.down[idx].store(false, Ordering::Release);
        let handle = self.spawn_node(
            self.names[idx],
            node,
            process,
            shell.storage,
            shell.rx,
            rng,
            Event::Recovered,
        );
        self.handles[idx] = Some(handle);
        self.trace_fault(node, TraceKind::Recover);
    }

    /// Pauses a node: its thread parks on the control condvar at the top
    /// of its loop, inbox accumulating, timers going overdue — SIGSTOP
    /// semantics without the signal.
    fn pause_node(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.faults.is_down(node) || self.ctls.get(idx).is_none() {
            return;
        }
        {
            let mut flags = self.ctls[idx].flags.lock().expect("ctl lock");
            if flags.paused {
                return;
            }
            flags.paused = true;
        }
        let _ = self.senders[idx].send(Wire::Nudge);
        self.trace_fault(node, TraceKind::Pause);
    }

    /// Resumes a paused node: the thread wakes, fires every overdue timer
    /// and drains the accumulated inbox — late, as after a real SIGCONT.
    fn resume_node(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        {
            let Some(ctl) = self.ctls.get(idx) else { return };
            let mut flags = ctl.flags.lock().expect("ctl lock");
            if !flags.paused {
                return;
            }
            flags.paused = false;
            ctl.cv.notify_all();
        }
        self.trace_fault(node, TraceKind::Resume);
    }

    /// Applies one fault operation right now. Driver-thread only: a crash
    /// joins the victim's thread, and must never run on a node thread (a
    /// node cannot join itself) or while holding the trace lock (the
    /// victim may be blocked on it mid-handler).
    fn apply_fault_now(&mut self, op: FaultOp) {
        let now = self.sink.now();
        match op {
            FaultOp::Crash(n) => self.crash_node(n),
            FaultOp::Recover(n) => self.recover_node(n),
            FaultOp::CrashFor { node, down_for } => {
                self.crash_node(node);
                self.nemesis.push(NemesisEntry {
                    due: Some(now + down_for),
                    pred: None,
                    op: FaultOp::Recover(node),
                    done: false,
                });
            }
            FaultOp::Pause(n) => self.pause_node(n),
            FaultOp::Resume(n) => self.resume_node(n),
            FaultOp::PauseFor { node, down_for } => {
                self.pause_node(node);
                self.nemesis.push(NemesisEntry {
                    due: Some(now + down_for),
                    pred: None,
                    op: FaultOp::Resume(node),
                    done: false,
                });
            }
            FaultOp::SetLink { from, to, fault } => self.set_link_fault(from, to, fault),
            FaultOp::HealLink { from, to } => self.set_link_fault(from, to, LinkFault::default()),
            FaultOp::BlockLink { from, to, heal_after } => {
                self.set_link_fault(from, to, LinkFault::drop_all());
                self.nemesis.push(NemesisEntry {
                    due: Some(now + heal_after),
                    pred: None,
                    op: FaultOp::HealLink { from, to },
                    done: false,
                });
            }
            FaultOp::Partition { a, b, heal_after } => {
                for &x in &a {
                    for &y in &b {
                        self.set_link_fault(x, y, LinkFault::drop_all());
                        self.set_link_fault(y, x, LinkFault::drop_all());
                        self.nemesis.push(NemesisEntry {
                            due: Some(now + heal_after),
                            pred: None,
                            op: FaultOp::HealLink { from: x, to: y },
                            done: false,
                        });
                        self.nemesis.push(NemesisEntry {
                            due: Some(now + heal_after),
                            pred: None,
                            op: FaultOp::HealLink { from: y, to: x },
                            done: false,
                        });
                    }
                }
            }
        }
    }

    fn set_link_fault(&self, from: NodeId, to: NodeId, fault: LinkFault) {
        {
            let mut links = self.faults.links.lock().expect("link table lock");
            if fault.is_noop() {
                links.remove(&(from, to));
            } else {
                links.insert((from, to), fault);
                self.faults.links_active.store(true, Ordering::Relaxed);
            }
        }
        // The link no longer drops: re-inject what it held, in send order
        // — the partition was a delay, not a loss (reliable channels). A
        // destination that crashed meanwhile still loses them, with the
        // usual drop-to-down accounting.
        if !fault.drop {
            let drained = self.faults.held.lock().expect("held-traffic lock").remove(&(from, to));
            for (payload, depth) in drained.into_iter().flatten() {
                if self.faults.is_down(to) {
                    self.sink.stats.lock().expect("stats lock").record_dropped_to_down();
                    continue;
                }
                if let Some(tx) = self.senders.get(to.0 as usize) {
                    let _ = tx.send(Wire::Msg { from, payload, depth });
                }
            }
        }
    }

    /// Fires every due/triggered nemesis entry. Called from the driver's
    /// polling loops ([`Host::run_trace_until`], [`Host::quiesce_for`]).
    /// The trace is scanned under its lock but ops are applied *after*
    /// releasing it (a crash joins the victim, which may itself be
    /// waiting on the trace lock). Iterates by index because applying an
    /// op may append follow-up entries (the heal of a `BlockLink`, the
    /// recovery of a `CrashFor`).
    fn pump_nemesis(&mut self) {
        if self.nemesis.iter().all(|e| e.done) {
            return;
        }
        let mut fired: Vec<FaultOp> = Vec::new();
        {
            let trace = self.sink.trace.lock().expect("trace lock");
            let events = &trace.events()[self.nemesis_scanned.min(trace.len())..];
            for e in self.nemesis.iter_mut() {
                if e.done {
                    continue;
                }
                if let Some(pred) = &e.pred {
                    if events.iter().any(|ev| pred(ev)) {
                        e.done = true;
                        fired.push(e.op.clone());
                    }
                }
            }
            self.nemesis_scanned = trace.len();
        }
        let now = self.sink.now();
        let mut i = 0;
        while i < self.nemesis.len() {
            let e = &mut self.nemesis[i];
            if !e.done && e.due.is_some_and(|d| d <= now) {
                e.done = true;
                fired.push(e.op.clone());
            }
            i += 1;
        }
        for op in fired {
            self.apply_fault_now(op);
        }
    }

    /// A snapshot of the trace collected so far.
    pub fn trace_snapshot(&self) -> Trace {
        self.sink.trace.lock().expect("trace lock").clone()
    }

    /// A snapshot of the message statistics collected so far.
    pub fn stats_snapshot(&self) -> MsgStats {
        self.sink.stats.lock().expect("stats lock").clone()
    }
}

impl Drop for ThreadedHost {
    fn drop(&mut self) {
        self.stop();
    }
}

fn node_main(rt: &mut NodeRt, process: &mut Box<dyn Process>, rx: &Receiver<Wire>, ctl: &NodeCtl) {
    // Idle wait when no timer is pending: purely a wake-up bound for
    // catching Stop/disconnect promptly; protocol liveness never relies on
    // it because every retry path arms a real timer.
    const IDLE_WAIT: Duration = Duration::from_millis(50);
    loop {
        // Fault-plane gate. Paused: park with the inbox accumulating
        // (SIGSTOP) until resumed, killed, or host shutdown. Killed: exit
        // immediately — the driver is joining this thread; the process is
        // about to be dropped, wiping volatile state.
        {
            let mut flags = ctl.flags.lock().expect("ctl lock");
            while flags.paused && !flags.killed && !flags.stopping {
                flags = ctl.cv.wait(flags).expect("ctl wait");
            }
            if flags.killed {
                return;
            }
        }
        rt.fire_due(process);
        let wait = rt.next_wait().unwrap_or(IDLE_WAIT).min(IDLE_WAIT);
        match rx.recv_timeout(wait) {
            Ok(Wire::Msg { from, payload, depth }) => {
                rt.dispatch(process, Event::Message { from, payload }, depth);
            }
            Ok(Wire::Nudge) => {} // just re-read the control flags
            Ok(Wire::Stop) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

impl Host for ThreadedHost {
    fn add_node(&mut self, name: &'static str, factory: NodeFactory) -> NodeId {
        assert!(
            matches!(self.phase, Phase::Building),
            "threaded host: all nodes must be registered before the run starts"
        );
        let id = NodeId(self.pending.len() as u32);
        self.pending.push((name, factory));
        self.names.push(name);
        id
    }

    fn host_now(&self) -> Time {
        self.sink.now()
    }

    fn run_trace_until(&mut self, mut pred: Box<dyn FnMut(&Trace) -> bool + '_>) -> RunOutcome {
        self.start();
        let poll = Duration::from_micros(200);
        loop {
            // The nemesis is pumped here, on the driver thread — crashes
            // join the victim thread, which a node thread could never do
            // to itself.
            self.pump_nemesis();
            {
                let trace = self.sink.trace.lock().expect("trace lock");
                if pred(&trace) {
                    return RunOutcome::Predicate;
                }
            }
            // The wall-clock watchdog: a paused or wedged node must turn
            // into a diagnosable timeout, never a hung test run.
            if self.sink.epoch.elapsed() > self.cfg.wall_limit {
                return RunOutcome::TimeLimit;
            }
            std::thread::sleep(poll);
        }
    }

    fn quiesce_for(&mut self, extra: Dur) {
        self.start();
        // Sliced sleep so timed nemesis entries (recoveries, link heals)
        // still fire while the driver is "just waiting".
        let deadline = Instant::now() + Duration::from_micros(extra.0);
        loop {
            self.pump_nemesis();
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return;
            }
            std::thread::sleep(remaining.min(Duration::from_millis(1)));
        }
    }

    fn with_trace(&self, f: &mut dyn FnMut(&Trace)) {
        let trace = self.sink.trace.lock().expect("trace lock");
        f(&trace)
    }

    fn with_stats(&self, f: &mut dyn FnMut(&MsgStats)) {
        let stats = self.sink.stats.lock().expect("stats lock");
        f(&stats)
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn schedule_fault(&mut self, when: NemesisWhen, op: FaultOp) -> Result<(), CapabilityError> {
        if matches!(self.phase, Phase::Stopped) {
            return Err(CapabilityError::new("threaded (stopped)", op.label()));
        }
        match when {
            NemesisWhen::Now => {
                if matches!(self.phase, Phase::Running) {
                    self.apply_fault_now(op);
                } else {
                    // Before start() there is no thread to fault; applied
                    // at the first nemesis pump after the run begins.
                    self.nemesis.push(NemesisEntry {
                        due: Some(Time::ZERO),
                        pred: None,
                        op,
                        done: false,
                    });
                }
            }
            NemesisWhen::After(d) => {
                let due = if matches!(self.phase, Phase::Running) {
                    self.sink.now() + d
                } else {
                    Time::ZERO + d // offset from the run's epoch
                };
                self.nemesis.push(NemesisEntry { due: Some(due), pred: None, op, done: false });
            }
            NemesisWhen::OnTrace(pred) => {
                self.nemesis.push(NemesisEntry { due: None, pred: Some(pred), op, done: false });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::msg::FdMsg;
    use etx_base::wal::LOG_WAL;

    /// Sends `n` pings to a peer on Init; notes pongs.
    struct Pinger {
        peer: Option<NodeId>,
        n: u64,
    }
    impl Process for Pinger {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => {
                    if let Some(peer) = self.peer {
                        for i in 0..self.n {
                            ctx.send(peer, Payload::Fd(FdMsg::Heartbeat { seq: i }));
                        }
                    }
                }
                Event::Message { .. } => ctx.trace(TraceKind::Note("pong")),
                _ => {}
            }
        }
    }

    fn pongs(t: &Trace) -> usize {
        t.count_kind(|k| matches!(k, TraceKind::Note("pong")))
    }

    #[test]
    fn messages_flow_between_threads() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(1));
        let _a = host.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 5 })));
        let _b = host.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        let out = host.run_trace_until(Box::new(|t| pongs(t) == 5));
        assert_eq!(out, RunOutcome::Predicate);
        host.stop();
        assert_eq!(host.stats_snapshot().sent("Heartbeat"), 5);
    }

    struct TimerBox;
    impl Process for TimerBox {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => {
                    let keep = ctx.set_timer(Dur::from_millis(5), TimerTag::CleanerTick);
                    let kill = ctx.set_timer(Dur::from_millis(1), TimerTag::FdCheck);
                    ctx.cancel_timer(kill);
                    let _ = keep;
                }
                Event::Timer { tag, .. } => {
                    assert_eq!(tag, TimerTag::CleanerTick, "cancelled timer must not fire");
                    ctx.trace(TraceKind::Note("tick"));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn timers_fire_on_the_real_clock_and_cancel() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(2));
        host.add_node("t", Box::new(|_| Box::new(TimerBox)));
        let out = host.run_trace_until(Box::new(|t| {
            t.count_kind(|k| matches!(k, TraceKind::Note("tick"))) == 1
        }));
        assert_eq!(out, RunOutcome::Predicate);
        assert!(host.host_now() >= Time(5_000), "timer must not fire early");
        host.stop();
    }

    struct Durable;
    impl Process for Durable {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            if let Event::Init = event {
                let rid = etx_base::ids::ResultId::first(etx_base::ids::RequestId {
                    client: NodeId(0),
                    seq: 1,
                });
                let d = ctx.log_append(LOG_WAL, StableRecord::CoordStart { rid }, true);
                assert!(d > Dur::ZERO, "forced writes cost modelled time");
                assert_eq!(ctx.log_read(LOG_WAL).len(), 1, "read-your-append");
                ctx.trace(TraceKind::Note("logged"));
            }
        }
    }

    #[test]
    fn stable_logs_survive_to_introspection() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(3));
        let n = host.add_node("d", Box::new(|_| Box::new(Durable)));
        host.run_trace_until(Box::new(|t| {
            t.count_kind(|k| matches!(k, TraceKind::Note("logged"))) == 1
        }));
        host.stop();
        assert_eq!(host.log_read(n, LOG_WAL).len(), 1);
        assert!(host.process_ref(n).is_some());
    }

    #[test]
    fn fault_plane_is_supported() {
        let mut host = ThreadedHost::new(ThreadedConfig::default());
        assert!(host.supports_fault_injection());
        // Scheduling before start() is accepted (applied at first pump).
        assert!(host
            .schedule_fault(NemesisWhen::After(Dur::from_millis(1)), FaultOp::Crash(NodeId(0)))
            .is_ok());
        // A stopped host refuses with the typed capability error.
        host.stop();
        let err = host
            .schedule_fault(NemesisWhen::Now, FaultOp::Pause(NodeId(0)))
            .expect_err("stopped host must refuse");
        assert_eq!(err.op, "pause");
    }

    /// Crash + recover through the fault plane: volatile state is wiped,
    /// stable logs survive, the restarted incarnation sees
    /// `Event::Recovered`, and messages sent while down are dropped.
    struct CrashDummy {
        lives: u32,
    }
    impl Process for CrashDummy {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => {
                    let rid = etx_base::ids::ResultId::first(etx_base::ids::RequestId {
                        client: NodeId(0),
                        seq: 9,
                    });
                    ctx.log_append(LOG_WAL, StableRecord::CoordStart { rid }, false);
                    ctx.trace(TraceKind::Note("init"));
                }
                Event::Recovered => {
                    assert_eq!(self.lives, 0, "factory must rebuild volatile state from scratch");
                    self.lives += 1;
                    let prior = ctx.log_read(LOG_WAL);
                    assert!(!prior.is_empty(), "stable log must survive the crash");
                    ctx.trace(TraceKind::Note("reborn"));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn crash_preserves_stable_logs_and_recovers() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(7));
        let n = host.add_node("c", Box::new(|_| Box::new(CrashDummy { lives: 0 })));
        host.schedule_fault(
            NemesisWhen::on_trace(|ev| matches!(ev.kind, TraceKind::Note("init"))),
            FaultOp::CrashFor { node: n, down_for: Dur::from_millis(5) },
        )
        .unwrap();
        let out = host.run_trace_until(Box::new(|t| {
            t.count_kind(|k| matches!(k, TraceKind::Note("reborn"))) == 1
        }));
        assert_eq!(out, RunOutcome::Predicate);
        host.stop();
        assert!(host.panicked_nodes().is_empty());
        let trace = host.trace_snapshot();
        assert_eq!(trace.count_kind(|k| matches!(k, TraceKind::Crash)), 1);
        assert_eq!(trace.count_kind(|k| matches!(k, TraceKind::Recover)), 1);
        assert_eq!(host.log_read(n, LOG_WAL).len(), 1, "log written before the crash survives");
    }

    #[test]
    fn paused_node_stalls_and_resume_drains_the_backlog() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(8));
        let a = host.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 5 })));
        let _b = host.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        host.schedule_fault(NemesisWhen::Now, FaultOp::Pause(NodeId(1))).unwrap();
        host.start();
        // Give the pause a chance to land before the pings fly.
        host.quiesce_for(Dur::from_millis(5));
        let _ = a;
        host.schedule_fault(NemesisWhen::After(Dur::from_millis(10)), FaultOp::Resume(NodeId(1)))
            .unwrap();
        let out = host.run_trace_until(Box::new(|t| pongs(t) == 5));
        assert_eq!(out, RunOutcome::Predicate, "resume must release the gated inbox");
        host.stop();
        let trace = host.trace_snapshot();
        assert_eq!(trace.count_kind(|k| matches!(k, TraceKind::Pause)), 1);
        assert_eq!(trace.count_kind(|k| matches!(k, TraceKind::Resume)), 1);
    }

    #[test]
    fn dropping_link_fault_holds_traffic_until_healed() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(9));
        let a = host.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 4 })));
        let b = host.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        host.schedule_fault(
            NemesisWhen::Now,
            FaultOp::SetLink { from: a, to: b, fault: LinkFault::drop_all() },
        )
        .unwrap();
        host.quiesce_for(Dur::from_millis(30));
        {
            let trace = host.trace_snapshot();
            assert_eq!(pongs(&trace), 0, "nothing crosses a dropping link");
        }
        assert_eq!(host.stats_snapshot().dropped_on_link(), 4);
        // Heal: the held pings arrive late, in order — loss was delay.
        host.schedule_fault(NemesisWhen::Now, FaultOp::HealLink { from: a, to: b }).unwrap();
        let out = host.run_trace_until(Box::new(|t| pongs(t) == 4));
        assert_eq!(out, RunOutcome::Predicate, "healed links re-deliver what they held");
        host.stop();
    }

    struct Panicker;
    impl Process for Panicker {
        fn on_event(&mut self, _ctx: &mut dyn Context, event: Event) {
            if let Event::Message { .. } = event {
                panic!("injected node-thread panic");
            }
        }
    }

    #[test]
    fn node_thread_panic_is_recorded_not_swallowed() {
        let mut host = ThreadedHost::new(ThreadedConfig::with_seed(10));
        let _a = host.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 1 })));
        let _p = host.add_node("victim", Box::new(|_| Box::new(Panicker)));
        host.quiesce_for(Dur::from_millis(20));
        host.stop();
        assert_eq!(host.panicked_nodes(), &["victim"]);
    }

    #[test]
    fn run_times_out_when_predicate_never_holds() {
        let mut cfg = ThreadedConfig::with_seed(4);
        cfg.wall_limit = Duration::from_millis(50);
        let mut host = ThreadedHost::new(cfg);
        host.add_node("a", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        assert_eq!(host.run_trace_until(Box::new(|_| false)), RunOutcome::TimeLimit);
    }
}
