//! The discrete-event simulation kernel.
//!
//! One [`Sim`] hosts all processes of a run. Time is virtual; the kernel
//! pops the next scheduled action off a priority queue (ordered by time,
//! tie-broken by insertion sequence, so runs are bit-deterministic per
//! seed), dispatches it, and collects whatever the handler emits.
//!
//! Fault injection is first-class: crashes, recoveries and partitions can be
//! scheduled at absolute times or triggered by trace events ("crash the
//! owner right after `regA` decides"), which is how the integration tests
//! enumerate the adversarial schedules of the paper's Figure 1(c)/(d) and
//! beyond.

use crate::net::{sample_delivery_delay, LinkState, NetConfig};
use crate::observe::{MsgStats, Trace};
use crate::rng::Rng;
use crate::storage::StableStorage;
use etx_base::config::CostModel;
use etx_base::fault::{CapabilityError, FaultOp, LinkFault, NemesisWhen};
use etx_base::ids::{NodeId, TimerId};
use etx_base::msg::Payload;
use etx_base::runtime::{Context, Event, Host, NodeFactory, Process, TimerTag};

pub use etx_base::runtime::RunOutcome;
use etx_base::time::{Dur, Time};
use etx_base::trace::{TraceEvent, TraceKind};
use etx_base::wal::StableRecord;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Kernel parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; everything random in the run derives from it.
    pub seed: u64,
    /// Network model.
    pub net: NetConfig,
    /// Environment cost constants (service times, forced-I/O cost).
    pub cost: CostModel,
    /// Hard stop: simulated time limit.
    pub max_time: Time,
    /// Hard stop: processed-event limit (guards against live-lock bugs).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            net: NetConfig::default(),
            cost: CostModel::default(),
            max_time: Time(3_600_000_000), // one simulated hour
            max_events: 50_000_000,
        }
    }
}

impl SimConfig {
    /// Config with a given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig { seed, ..SimConfig::default() }
    }
}

/// A process factory: invoked at node creation and again at every recovery
/// (volatile state is rebuilt from scratch; stable storage persists).
pub type Factory = NodeFactory;

/// Fault applied when a trace trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash a node.
    Crash(NodeId),
    /// Crash a node and schedule its recovery `Dur` later.
    CrashRecover(NodeId, Dur),
    /// Recover a previously crashed node.
    Recover(NodeId),
}

/// What a fired trace trigger does. `Legacy` is the original
/// [`FaultAction`] path — kept as its own arm so the queue-entry sequence
/// it produces (and therefore every pre-fault-plane golden trace) stays
/// byte-identical. `Op` is the generalized fault-plane path used for
/// operations the legacy enum cannot express (pause, link faults).
enum TriggerFire {
    Legacy(FaultAction),
    Op(FaultOp),
}

struct Trigger {
    pred: Box<dyn FnMut(&TraceEvent) -> bool>,
    fire: TriggerFire,
    fired: bool,
}

enum Action {
    Init { node: NodeId },
    Deliver { from: NodeId, to: NodeId, payload: Payload, depth: u32 },
    Timer { node: NodeId, incarnation: u32, id: TimerId, tag: TimerTag, depth: u32 },
    Crash { node: NodeId },
    Recover { node: NodeId },
    NotifyPeer { node: NodeId, about: NodeId, up: bool },
    Pause { node: NodeId },
    Resume { node: NodeId },
    Fault { op: FaultOp },
}

/// The node an action is *delivered to* — the one whose paused state
/// gates it. Fault-plane actions themselves (crash, pause, link ops)
/// return `None`: a paused node can still be crashed or resumed.
fn action_target(a: &Action) -> Option<NodeId> {
    match a {
        Action::Init { node } => Some(*node),
        Action::Deliver { to, .. } => Some(*to),
        Action::Timer { node, .. } => Some(*node),
        Action::NotifyPeer { node, .. } => Some(*node),
        Action::Crash { .. }
        | Action::Recover { .. }
        | Action::Pause { .. }
        | Action::Resume { .. }
        | Action::Fault { .. } => None,
    }
}

struct Entry {
    at: Time,
    seq: u64,
    action: Action,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Slot {
    name: &'static str,
    up: bool,
    paused: bool,
    incarnation: u32,
    process: Option<Box<dyn Process>>,
    factory: Factory,
    storage: StableStorage,
}

/// The simulator. See the crate docs for a usage walkthrough.
pub struct Sim {
    cfg: SimConfig,
    now: Time,
    processed: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry>>,
    nodes: Vec<Slot>,
    rng: Rng,
    links: LinkState,
    trace: Trace,
    stats: MsgStats,
    timer_seq: u64,
    cancelled: HashSet<u64>,
    fd_subscribers: Vec<NodeId>,
    triggers: Vec<Trigger>,
    trace_scanned: usize,
    /// Events popped while their target node was paused, in pop order;
    /// replayed (with fresh sequence numbers, at resume time) when the
    /// node resumes, discarded if it crashes first.
    stash: Vec<(NodeId, Action)>,
    /// Messages absorbed by a dropping link fault (the sim's reliable
    /// channel holds rather than loses); re-injected at heal time.
    held: Vec<(NodeId, NodeId, Payload, u32)>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl Sim {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        Sim {
            cfg,
            now: Time::ZERO,
            processed: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            rng,
            links: LinkState::default(),
            trace: Trace::default(),
            stats: MsgStats::default(),
            timer_seq: 0,
            cancelled: HashSet::new(),
            fd_subscribers: Vec::new(),
            triggers: Vec::new(),
            trace_scanned: 0,
            stash: Vec::new(),
            held: Vec::new(),
        }
    }

    /// Registers a node. Ids are assigned contiguously in registration
    /// order, matching `Topology::new` (clients, then app servers, then
    /// databases). The factory builds the process now and again at every
    /// recovery.
    pub fn add_node(&mut self, name: &'static str, mut factory: Factory) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let process = factory(id);
        self.nodes.push(Slot {
            name,
            up: true,
            paused: false,
            incarnation: 0,
            process: Some(process),
            factory,
            storage: StableStorage::new(),
        });
        self.push(Time::ZERO, Action::Init { node: id });
        id
    }

    fn push(&mut self, at: Time, action: Action) {
        self.seq += 1;
        self.queue.push(Reverse(Entry { at, seq: self.seq, action }));
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The run's trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Message statistics so far.
    pub fn stats(&self) -> &MsgStats {
        &self.stats
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cfg.cost
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].up
    }

    /// Whether a node is currently paused by the fault plane.
    pub fn is_paused(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].paused
    }

    /// Read access to a node's stable storage (test assertions).
    pub fn storage(&self, node: NodeId) -> &StableStorage {
        &self.nodes[node.0 as usize].storage
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    // ---- fault injection -------------------------------------------------

    /// Schedules a crash at an absolute time.
    pub fn crash_at(&mut self, at: Time, node: NodeId) {
        self.push(at, Action::Crash { node });
    }

    /// Schedules a recovery at an absolute time.
    pub fn recover_at(&mut self, at: Time, node: NodeId) {
        self.push(at, Action::Recover { node });
    }

    /// Blocks every link between the two groups until `heal_at`.
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId], heal_at: Time) {
        self.links.partition(side_a, side_b, heal_at);
    }

    /// Blocks the **directed** link `from → to` until `heal_at` (messages
    /// sent meanwhile arrive after the heal, per the reliable-channel
    /// model). A one-way block is how tests starve a follower of its
    /// primary's replication stream while leaving the follower's own
    /// sends — forwarded reads included — untouched.
    pub fn block_link(&mut self, from: NodeId, to: NodeId, heal_at: Time) {
        self.links.block(from, to, heal_at);
    }

    /// Installs a one-shot trace trigger: the first time `pred` matches a
    /// trace event, `action` is applied (at the current instant).
    pub fn on_trace(
        &mut self,
        pred: impl FnMut(&TraceEvent) -> bool + 'static,
        action: FaultAction,
    ) {
        self.triggers.push(Trigger {
            pred: Box::new(pred),
            fire: TriggerFire::Legacy(action),
            fired: false,
        });
    }

    /// Applies a fault-plane operation at the current instant. Crash and
    /// recovery go through the same internals as [`Sim::crash_at`]-queued
    /// entries; link operations mutate [`LinkState`] directly (consuming
    /// no queue sequence number, exactly like the pre-fault-plane
    /// [`Sim::block_link`] / [`Sim::partition`] entry points).
    pub fn apply_fault_now(&mut self, op: FaultOp) {
        match op {
            FaultOp::Crash(n) => self.do_crash(n),
            FaultOp::Recover(n) => self.do_recover(n),
            FaultOp::CrashFor { node, down_for } => {
                self.do_crash(node);
                let back = self.now + down_for;
                self.push(back, Action::Recover { node });
            }
            FaultOp::Pause(n) => self.do_pause(n),
            FaultOp::Resume(n) => self.do_resume(n),
            FaultOp::PauseFor { node, down_for } => {
                self.do_pause(node);
                let back = self.now + down_for;
                self.push(back, Action::Resume { node });
            }
            FaultOp::SetLink { from, to, fault } => self.set_link_fault(from, to, fault),
            FaultOp::HealLink { from, to } => self.heal_link(from, to),
            FaultOp::BlockLink { from, to, heal_after } => {
                let heal_at = self.now + heal_after;
                self.links.block(from, to, heal_at);
            }
            FaultOp::Partition { a, b, heal_after } => {
                let heal_at = self.now + heal_after;
                self.links.partition(&a, &b, heal_at);
            }
        }
    }

    fn set_link_fault(&mut self, from: NodeId, to: NodeId, fault: LinkFault) {
        self.links.set_fault(from, to, fault);
        if !fault.drop {
            // Replacing a dropping fault with a non-dropping one releases
            // what the dropping fault absorbed.
            self.release_held(from, to);
        }
    }

    fn heal_link(&mut self, from: NodeId, to: NodeId) {
        self.links.clear_fault(from, to);
        self.release_held(from, to);
    }

    /// Re-injects messages a dropping link fault absorbed on `from → to`,
    /// in original send order, each with a freshly sampled delivery delay
    /// from the current instant (the reliable channel's retransmission
    /// finally getting through).
    fn release_held(&mut self, from: NodeId, to: NodeId) {
        let mut released = Vec::new();
        let mut kept = Vec::new();
        for entry in self.held.drain(..) {
            if entry.0 == from && entry.1 == to {
                released.push((entry.2, entry.3));
            } else {
                kept.push(entry);
            }
        }
        self.held = kept;
        for (payload, depth) in released {
            let delay = sample_delivery_delay(
                &self.cfg.net,
                &self.links,
                &mut self.rng,
                from,
                to,
                self.now,
            );
            let at = self.now + delay;
            self.push(at, Action::Deliver { from, to, payload, depth });
        }
    }

    // ---- run loop --------------------------------------------------------

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(entry)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        self.processed += 1;
        // A paused node's inputs are stashed, not dispatched — its inbox
        // keeps filling while it makes no progress (the SIGSTOP story).
        // Fault-plane actions have no target and always execute.
        if let Some(target) = action_target(&entry.action) {
            if self.nodes[target.0 as usize].paused {
                self.stash.push((target, entry.action));
                self.scan_triggers();
                return true;
            }
        }
        match entry.action {
            Action::Init { node } => self.dispatch(node, Event::Init, 0),
            Action::Deliver { from, to, payload, depth } => {
                if self.nodes[to.0 as usize].up {
                    self.dispatch(to, Event::Message { from, payload }, depth);
                } else {
                    self.stats.record_dropped_to_down();
                }
            }
            Action::Timer { node, incarnation, id, tag, depth } => {
                let live = {
                    let slot = &self.nodes[node.0 as usize];
                    slot.up && slot.incarnation == incarnation
                };
                if live && !self.cancelled.remove(&id.0) {
                    self.dispatch(node, Event::Timer { id, tag }, depth);
                }
            }
            Action::Crash { node } => self.do_crash(node),
            Action::Recover { node } => self.do_recover(node),
            Action::NotifyPeer { node, about, up } => {
                if self.nodes[node.0 as usize].up {
                    let ev = if up { Event::NodeUp(about) } else { Event::NodeDown(about) };
                    self.dispatch(node, ev, 0);
                }
            }
            Action::Pause { node } => self.do_pause(node),
            Action::Resume { node } => self.do_resume(node),
            Action::Fault { op } => self.apply_fault_now(op),
        }
        self.scan_triggers();
        true
    }

    /// Runs until the predicate holds (checked between events), the queue
    /// drains, or a limit is hit.
    pub fn run_until(&mut self, mut pred: impl FnMut(&Sim) -> bool) -> RunOutcome {
        loop {
            if pred(self) {
                return RunOutcome::Predicate;
            }
            if self.processed >= self.cfg.max_events {
                return RunOutcome::EventLimit;
            }
            if !self.step() {
                return RunOutcome::Exhausted;
            }
            if self.now > self.cfg.max_time {
                return RunOutcome::TimeLimit;
            }
        }
    }

    /// Runs until simulated time reaches `deadline` (or the queue drains).
    pub fn run_until_time(&mut self, deadline: Time) -> RunOutcome {
        loop {
            match self.queue.peek() {
                None => return RunOutcome::Exhausted,
                Some(Reverse(e)) if e.at > deadline => {
                    self.now = deadline;
                    return RunOutcome::Predicate;
                }
                Some(_) => {}
            }
            if self.processed >= self.cfg.max_events {
                return RunOutcome::EventLimit;
            }
            self.step();
            if self.now > self.cfg.max_time {
                return RunOutcome::TimeLimit;
            }
        }
    }

    /// Runs for `dur` more simulated time.
    pub fn run_for(&mut self, dur: Dur) -> RunOutcome {
        let deadline = self.now + dur;
        self.run_until_time(deadline)
    }

    // ---- internals -------------------------------------------------------

    fn do_crash(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if !self.nodes[idx].up {
            return;
        }
        self.nodes[idx].up = false;
        self.nodes[idx].process = None;
        // A paused node can crash; its undelivered inbox dies with it.
        self.nodes[idx].paused = false;
        self.stash.retain(|(n, _)| *n != node);
        self.trace.push(TraceEvent::new(self.now, node, TraceKind::Crash));
        let detect = self.cfg.net.min_delay;
        for &s in self.fd_subscribers.clone().iter() {
            if s != node {
                self.push(
                    self.now + detect,
                    Action::NotifyPeer { node: s, about: node, up: false },
                );
            }
        }
    }

    fn do_recover(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.nodes[idx].up {
            return;
        }
        self.nodes[idx].up = true;
        self.nodes[idx].incarnation += 1;
        let process = (self.nodes[idx].factory)(node);
        self.nodes[idx].process = Some(process);
        self.trace.push(TraceEvent::new(self.now, node, TraceKind::Recover));
        self.dispatch(node, Event::Recovered, 0);
        let detect = self.cfg.net.min_delay;
        for &s in self.fd_subscribers.clone().iter() {
            if s != node {
                self.push(self.now + detect, Action::NotifyPeer { node: s, about: node, up: true });
            }
        }
    }

    fn do_pause(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if !self.nodes[idx].up || self.nodes[idx].paused {
            return;
        }
        self.nodes[idx].paused = true;
        self.trace.push(TraceEvent::new(self.now, node, TraceKind::Pause));
    }

    fn do_resume(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if !self.nodes[idx].paused {
            return;
        }
        self.nodes[idx].paused = false;
        self.trace.push(TraceEvent::new(self.now, node, TraceKind::Resume));
        // Replay everything that arrived during the pause, in arrival
        // order, at the current instant — late, like after a real SIGCONT.
        let mut replay = Vec::new();
        let mut kept = Vec::new();
        for entry in self.stash.drain(..) {
            if entry.0 == node {
                replay.push(entry.1);
            } else {
                kept.push(entry);
            }
        }
        self.stash = kept;
        for action in replay {
            self.push(self.now, action);
        }
    }

    fn dispatch(&mut self, node: NodeId, event: Event, depth: u32) {
        let idx = node.0 as usize;
        let mut process = match self.nodes[idx].process.take() {
            Some(p) => p,
            None => return, // crashed between scheduling and dispatch
        };
        let mut subscribe = false;
        {
            let slot = &mut self.nodes[idx];
            let mut ctx = SimCtx {
                now: self.now,
                me: node,
                depth,
                incarnation: slot.incarnation,
                net: &self.cfg.net,
                cost: &self.cfg.cost,
                links: &self.links,
                rng: &mut self.rng,
                storage: &mut slot.storage,
                trace: &mut self.trace,
                stats: &mut self.stats,
                queue: &mut self.queue,
                seq: &mut self.seq,
                timer_seq: &mut self.timer_seq,
                cancelled: &mut self.cancelled,
                subscribe: &mut subscribe,
                held: &mut self.held,
            };
            process.on_event(&mut ctx, event);
        }
        if subscribe && !self.fd_subscribers.contains(&node) {
            self.fd_subscribers.push(node);
        }
        // The node may have crashed *during* its own handler only via
        // external scheduling, which is processed later; put it back.
        if self.nodes[idx].up {
            self.nodes[idx].process = Some(process);
        }
    }

    fn scan_triggers(&mut self) {
        if self.triggers.is_empty() {
            self.trace_scanned = self.trace.len();
            return;
        }
        let mut fired: Vec<TriggerFire> = Vec::new();
        {
            let events = &self.trace.events()[self.trace_scanned..];
            for t in self.triggers.iter_mut() {
                if t.fired {
                    continue;
                }
                for ev in events {
                    if (t.pred)(ev) {
                        t.fired = true;
                        fired.push(match &t.fire {
                            TriggerFire::Legacy(a) => TriggerFire::Legacy(*a),
                            TriggerFire::Op(op) => TriggerFire::Op(op.clone()),
                        });
                        break;
                    }
                }
            }
        }
        self.trace_scanned = self.trace.len();
        for fire in fired {
            match fire {
                // The legacy arms must stay byte-identical to the
                // pre-fault-plane kernel: same actions, same order, same
                // sequence-number consumption.
                TriggerFire::Legacy(FaultAction::Crash(n)) => {
                    self.push(self.now, Action::Crash { node: n })
                }
                TriggerFire::Legacy(FaultAction::CrashRecover(n, after)) => {
                    self.push(self.now, Action::Crash { node: n });
                    self.push(self.now + after, Action::Recover { node: n });
                }
                TriggerFire::Legacy(FaultAction::Recover(n)) => {
                    self.push(self.now, Action::Recover { node: n })
                }
                TriggerFire::Op(op) => self.push(self.now, Action::Fault { op }),
            }
        }
    }

    /// Node name (diagnostics).
    pub fn node_name(&self, node: NodeId) -> &'static str {
        self.nodes[node.0 as usize].name
    }

    /// Read access to a live process (None while the node is crashed).
    /// Pair with [`Process::as_any`] to downcast — test/harness
    /// introspection only, never a protocol channel.
    pub fn process_ref(&self, node: NodeId) -> Option<&dyn Process> {
        self.nodes[node.0 as usize].process.as_deref()
    }
}

/// The simulator is the deterministic implementation of the runtime seam:
/// virtual clock, byte-identical replay per seed, and simulated fault
/// injection — [`Host::schedule_fault`] maps every fault-plane operation
/// onto the kernel's existing machinery (crash/recover queue entries,
/// trace triggers, link blocks), so a nemesis schedule expressed through
/// the backend-neutral interface replays the same trace, byte for byte,
/// as the original direct [`Sim`] fault calls.
impl Host for Sim {
    fn add_node(&mut self, name: &'static str, factory: NodeFactory) -> NodeId {
        Sim::add_node(self, name, factory)
    }

    fn host_now(&self) -> Time {
        self.now()
    }

    fn run_trace_until(
        &mut self,
        mut pred: Box<dyn FnMut(&etx_base::trace::Trace) -> bool + '_>,
    ) -> RunOutcome {
        self.run_until(move |s| pred(s.trace()))
    }

    fn quiesce_for(&mut self, extra: Dur) {
        let deadline = self.now() + extra;
        let _ = self.run_until_time(deadline);
    }

    fn with_trace(&self, f: &mut dyn FnMut(&etx_base::trace::Trace)) {
        f(self.trace())
    }

    fn with_stats(&self, f: &mut dyn FnMut(&etx_base::trace::MsgStats)) {
        f(self.stats())
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn schedule_fault(&mut self, when: NemesisWhen, op: FaultOp) -> Result<(), CapabilityError> {
        match when {
            NemesisWhen::Now => self.apply_fault_now(op),
            NemesisWhen::After(d) => {
                let at = self.now + d;
                match op {
                    // Crash-family timed ops map onto the exact entries
                    // `crash_at` / `recover_at` push, in the same order —
                    // this is what keeps old chaos schedules re-expressed
                    // through the fault plane byte-identical.
                    FaultOp::Crash(n) => self.crash_at(at, n),
                    FaultOp::Recover(n) => self.recover_at(at, n),
                    FaultOp::CrashFor { node, down_for } => {
                        self.crash_at(at, node);
                        self.recover_at(at + down_for, node);
                    }
                    FaultOp::Pause(n) => self.push(at, Action::Pause { node: n }),
                    FaultOp::Resume(n) => self.push(at, Action::Resume { node: n }),
                    FaultOp::PauseFor { node, down_for } => {
                        self.push(at, Action::Pause { node });
                        self.push(at + down_for, Action::Resume { node });
                    }
                    other => self.push(at, Action::Fault { op: other }),
                }
            }
            NemesisWhen::OnTrace(pred) => {
                let fire = match op {
                    // Crash-family trace triggers ride the legacy path
                    // (same firing actions, same sequence numbers).
                    FaultOp::Crash(n) => TriggerFire::Legacy(FaultAction::Crash(n)),
                    FaultOp::Recover(n) => TriggerFire::Legacy(FaultAction::Recover(n)),
                    FaultOp::CrashFor { node, down_for } => {
                        TriggerFire::Legacy(FaultAction::CrashRecover(node, down_for))
                    }
                    other => TriggerFire::Op(other),
                };
                self.triggers.push(Trigger {
                    pred: Box::new(move |ev| pred(ev)),
                    fire,
                    fired: false,
                });
            }
        }
        Ok(())
    }
}

struct SimCtx<'a> {
    now: Time,
    me: NodeId,
    depth: u32,
    incarnation: u32,
    net: &'a NetConfig,
    cost: &'a CostModel,
    links: &'a LinkState,
    rng: &'a mut Rng,
    storage: &'a mut StableStorage,
    trace: &'a mut Trace,
    stats: &'a mut MsgStats,
    queue: &'a mut BinaryHeap<Reverse<Entry>>,
    seq: &'a mut u64,
    timer_seq: &'a mut u64,
    cancelled: &'a mut HashSet<u64>,
    subscribe: &'a mut bool,
    held: &'a mut Vec<(NodeId, NodeId, Payload, u32)>,
}

impl SimCtx<'_> {
    fn push(&mut self, at: Time, action: Action) {
        *self.seq += 1;
        self.queue.push(Reverse(Entry { at, seq: *self.seq, action }));
    }

    fn send_impl(&mut self, depth_base: u32, extra: Dur, to: NodeId, payload: Payload) {
        let background = payload.is_background();
        let depth = if background { 0 } else { depth_base + 1 };
        let depart = self.now + extra;
        // Fault-plane link faults. With an empty fault table this lookup
        // is the only cost — no randomness, no sequence numbers — so
        // fault-free runs replay byte-identically to the pre-fault-plane
        // kernel.
        if let Some(fault) = self.links.fault_on(self.me, to) {
            self.stats.record_sent(payload.label(), background);
            if fault.drop {
                // The sim's reliable channel absorbs rather than loses:
                // held until the link heals, then re-injected.
                self.stats.record_dropped_on_link();
                self.held.push((self.me, to, payload, depth));
                return;
            }
            let mut delay =
                sample_delivery_delay(self.net, self.links, self.rng, self.me, to, depart);
            if let Some(extra_delay) = fault.delay {
                delay += extra_delay;
            }
            if fault.duplicate {
                let dup = payload.clone();
                self.push(
                    depart + delay,
                    Action::Deliver { from: self.me, to, payload: dup, depth },
                );
            }
            self.push(depart + delay, Action::Deliver { from: self.me, to, payload, depth });
            return;
        }
        let delay = sample_delivery_delay(self.net, self.links, self.rng, self.me, to, depart);
        self.stats.record_sent(payload.label(), background);
        self.push(depart + delay, Action::Deliver { from: self.me, to, payload, depth });
    }
}

impl Context for SimCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }

    fn me(&self) -> NodeId {
        self.me
    }

    fn send(&mut self, to: NodeId, payload: Payload) {
        self.send_impl(self.depth, Dur::ZERO, to, payload);
    }

    fn send_after(&mut self, delay: Dur, to: NodeId, payload: Payload) {
        self.send_impl(self.depth, delay, to, payload);
    }

    fn set_timer(&mut self, delay: Dur, tag: TimerTag) -> TimerId {
        *self.timer_seq += 1;
        let id = TimerId(*self.timer_seq);
        let (node, incarnation, depth) = (self.me, self.incarnation, self.depth);
        self.push(self.now + delay, Action::Timer { node, incarnation, id, tag, depth });
        id
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    fn random_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn log_append(&mut self, log: &'static str, rec: StableRecord, forced: bool) -> Dur {
        self.storage.append(log, rec);
        if forced {
            self.rng.jitter(self.cost.log_force, self.cost.jitter)
        } else {
            Dur::ZERO
        }
    }

    fn log_read(&self, log: &'static str) -> Vec<StableRecord> {
        self.storage.read(log).to_vec()
    }

    fn trace(&mut self, kind: TraceKind) {
        self.trace.push(TraceEvent::new(self.now, self.me, kind));
    }

    fn depth(&self) -> u32 {
        self.depth
    }

    fn send_at_depth(&mut self, depth: u32, to: NodeId, payload: Payload) {
        self.send_impl(depth, Dur::ZERO, to, payload);
    }

    fn send_after_at_depth(&mut self, depth: u32, delay: Dur, to: NodeId, payload: Payload) {
        self.send_impl(depth, delay, to, payload);
    }

    fn subscribe_node_events(&mut self) {
        *self.subscribe = true;
    }
}
