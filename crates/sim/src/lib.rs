//! # etx-sim — deterministic discrete-event simulation kernel
//!
//! Hosts every process of a three-tier run on a virtual clock. The kernel
//! implements the system model of the paper's §2 exactly:
//!
//! * **asynchronous message passing** with configurable latency, loss and
//!   partitions ([`net`]), exposed to protocols as the *reliable channel*
//!   abstraction of §4 (termination + integrity; loss becomes delay via
//!   modelled retransmission, duplicates never surface);
//! * **crash failures**: crashing a process drops its volatile state; its
//!   [`storage::StableStorage`] survives, and recovery rebuilds the process
//!   from its factory (crash-recovery for database servers, crash-stop for
//!   application servers — the protocol never recovers those);
//! * **determinism**: every run is a pure function of its seed. Event
//!   ordering ties are broken by insertion sequence; randomness comes from a
//!   self-contained SplitMix64 stream ([`rng`]).
//!
//! The kernel additionally tracks **causal depth** per message (the number
//! of sequential communication steps since the client issued its request),
//! which is how the Figure 7 "communication steps" comparison is measured
//! rather than hand-counted.
//!
//! ```
//! use etx_sim::{Sim, SimConfig};
//! use etx_base::runtime::{Context, Event, Process};
//! use etx_base::msg::{Payload, FdMsg};
//!
//! struct Echo;
//! impl Process for Echo {
//!     fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
//!         if let Event::Message { from, .. } = event {
//!             ctx.send(from, Payload::Fd(FdMsg::Heartbeat { seq: 1 }));
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::with_seed(7));
//! let a = sim.add_node("a", Box::new(|_| Box::new(Echo)));
//! let _b = sim.add_node("b", Box::new(|_| Box::new(Echo)));
//! # let _ = a;
//! sim.run_until(|s| s.processed() > 2);
//! ```

pub mod kernel;
pub mod net;
pub mod observe;
pub mod storage;

/// Deterministic SplitMix64 stream (shared with the threaded backend; the
/// module moved to `etx-base` with the runtime seam).
pub use etx_base::rng;

pub use kernel::{FaultAction, RunOutcome, Sim, SimConfig};
pub use net::NetConfig;
pub use observe::{MsgStats, Trace};
pub use rng::Rng;
pub use storage::StableStorage;

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::NodeId;
    use etx_base::msg::{FdMsg, Payload};
    use etx_base::runtime::{Context, Event, Process, TimerTag};
    use etx_base::time::{Dur, Time};
    use etx_base::trace::TraceKind;
    use etx_base::wal::{StableRecord, LOG_WAL};

    /// Sends `n` pings to a peer on Init; counts pongs via trace notes.
    struct Pinger {
        peer: Option<NodeId>,
        n: u64,
    }
    impl Process for Pinger {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => {
                    if let Some(peer) = self.peer {
                        for i in 0..self.n {
                            ctx.send(peer, Payload::Fd(FdMsg::Heartbeat { seq: i }));
                        }
                    }
                }
                Event::Message { .. } => ctx.trace(TraceKind::Note("pong")),
                _ => {}
            }
        }
    }

    #[test]
    fn messages_deliver_within_latency_bounds() {
        let mut sim = Sim::new(SimConfig::with_seed(1));
        let _a = sim.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 5 })));
        let _b = sim.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        let out =
            sim.run_until(|s| s.trace().count_kind(|k| matches!(k, TraceKind::Note("pong"))) == 5);
        assert_eq!(out, RunOutcome::Predicate);
        assert!(sim.now() <= Time(2_500), "all pings within max one-way latency");
        assert_eq!(sim.stats().sent("Heartbeat"), 5);
    }

    struct TimerBox {
        fired: u32,
    }
    impl Process for TimerBox {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => {
                    let keep = ctx.set_timer(Dur::from_millis(10), TimerTag::CleanerTick);
                    let kill = ctx.set_timer(Dur::from_millis(5), TimerTag::FdCheck);
                    ctx.cancel_timer(kill);
                    let _ = keep;
                }
                Event::Timer { tag, .. } => {
                    self.fired += 1;
                    assert_eq!(tag, TimerTag::CleanerTick, "cancelled timer must not fire");
                    ctx.trace(TraceKind::Note("tick"));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut sim = Sim::new(SimConfig::with_seed(2));
        sim.add_node("t", Box::new(|_| Box::new(TimerBox { fired: 0 })));
        sim.run_until_time(Time(100_000));
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Note("tick"))), 1);
    }

    /// Writes to stable storage on Init, notes recovery content on Recovered.
    struct Durable;
    impl Process for Durable {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => {
                    let rid = etx_base::ids::ResultId::first(etx_base::ids::RequestId {
                        client: NodeId(0),
                        seq: 1,
                    });
                    let d = ctx.log_append(LOG_WAL, StableRecord::CoordStart { rid }, true);
                    assert!(d > Dur::ZERO, "forced writes cost time");
                    // Arm a timer that must NOT survive the crash.
                    ctx.set_timer(Dur::from_millis(50), TimerTag::CleanerTick);
                }
                Event::Recovered => {
                    let recs = ctx.log_read(LOG_WAL);
                    if recs.len() == 1 {
                        ctx.trace(TraceKind::Note("log-survived"));
                    }
                }
                Event::Timer { .. } => ctx.trace(TraceKind::Note("stale-timer")),
                _ => {}
            }
        }
    }

    #[test]
    fn crash_preserves_storage_and_kills_timers() {
        let mut sim = Sim::new(SimConfig::with_seed(3));
        let n = sim.add_node("d", Box::new(|_| Box::new(Durable)));
        sim.crash_at(Time(10_000), n);
        sim.recover_at(Time(20_000), n);
        sim.run_until_time(Time(200_000));
        assert!(sim.is_up(n));
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Note("log-survived"))), 1);
        assert_eq!(
            sim.trace().count_kind(|k| matches!(k, TraceKind::Note("stale-timer"))),
            0,
            "pre-crash timers must not fire after recovery"
        );
        assert_eq!(sim.storage(n).len(LOG_WAL), 1);
        // Crash + Recover appear in the trace.
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Crash)), 1);
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Recover)), 1);
    }

    #[test]
    fn messages_to_down_nodes_are_dropped() {
        let mut sim = Sim::new(SimConfig::with_seed(4));
        let _a = sim.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 3 })));
        let b = sim.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        sim.crash_at(Time(0), b);
        sim.run_until_time(Time(100_000));
        assert_eq!(sim.stats().dropped_to_down(), 3);
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Note("pong"))), 0);
    }

    /// Subscribes to node events (perfect FD oracle).
    struct Watcher;
    impl Process for Watcher {
        fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
            match event {
                Event::Init => ctx.subscribe_node_events(),
                Event::NodeDown(_) => ctx.trace(TraceKind::Note("down")),
                Event::NodeUp(_) => ctx.trace(TraceKind::Note("up")),
                _ => {}
            }
        }
    }

    #[test]
    fn perfect_fd_oracle_notifies_subscribers() {
        let mut sim = Sim::new(SimConfig::with_seed(5));
        let _w = sim.add_node("w", Box::new(|_| Box::new(Watcher)));
        let v = sim.add_node("v", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        sim.crash_at(Time(5_000), v);
        sim.recover_at(Time(9_000), v);
        sim.run_until_time(Time(50_000));
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Note("down"))), 1);
        assert_eq!(sim.trace().count_kind(|k| matches!(k, TraceKind::Note("up"))), 1);
    }

    #[test]
    fn trace_trigger_crashes_node() {
        let mut sim = Sim::new(SimConfig::with_seed(6));
        let a = sim.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 1 })));
        let b = sim.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        // Crash `b` as soon as it logs its first pong.
        sim.on_trace(
            move |ev| ev.node == b && matches!(ev.kind, TraceKind::Note("pong")),
            FaultAction::Crash(b),
        );
        sim.run_until_time(Time(100_000));
        assert!(!sim.is_up(b));
        assert!(sim.is_up(a));
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Sim::new(SimConfig::with_seed(seed));
            sim.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 10 })));
            sim.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
            sim.run_until_time(Time(1_000_000));
            (sim.processed(), sim.now(), sim.stats().total())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, 0);
    }

    #[test]
    fn run_outcomes() {
        let mut sim = Sim::new(SimConfig::with_seed(7));
        sim.add_node("a", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        // Queue drains after Init.
        assert_eq!(sim.run_until(|_| false), RunOutcome::Exhausted);
        // Predicate outcome.
        let mut sim2 = Sim::new(SimConfig::with_seed(8));
        sim2.add_node("a", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        assert_eq!(sim2.run_until(|_| true), RunOutcome::Predicate);
    }

    #[test]
    fn partition_delays_delivery_until_heal() {
        let mut sim = Sim::new(SimConfig::with_seed(9));
        let a = sim.add_node("a", Box::new(|_| Box::new(Pinger { peer: Some(NodeId(1)), n: 1 })));
        let b = sim.add_node("b", Box::new(|_| Box::new(Pinger { peer: None, n: 0 })));
        sim.partition(&[a], &[b], Time(500_000));
        sim.run_until(|s| s.trace().count_kind(|k| matches!(k, TraceKind::Note("pong"))) == 1);
        assert!(sim.now() >= Time(500_000), "delivered only after heal: {}", sim.now());
    }
}
