//! The network model: latency, loss (absorbed by the reliable-channel
//! layer), and partitions.
//!
//! The paper assumes *reliable channels* (§4: termination + integrity) and
//! notes (§5) that in practice they are "implemented by retransmitting
//! messages and tracking duplicates", and that link failures are tolerated
//! "as long as any link failure is eventually repaired". The kernel models
//! exactly that: each logical send is delivered exactly once; message loss
//! and blocked links translate into extra delay (retransmission gaps), not
//! into silent drops. A message to a *crashed* process is dropped — the
//! reliable-channel obligation is void when the receiver crashes, and every
//! protocol layer that must survive crash/recovery retransmits on its own
//! (client re-broadcast, terminate() repeat-loop, consensus resync), just
//! like the paper's algorithms.

use crate::rng::Rng;
use etx_base::fault::LinkFault;
use etx_base::ids::NodeId;
use etx_base::time::{Dur, Time};
use std::collections::HashMap;

/// Static network parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Minimum one-way latency.
    pub min_delay: Dur,
    /// Maximum one-way latency.
    pub max_delay: Dur,
    /// Probability that a single transmission attempt is lost. The reliable
    /// channel retransmits after [`NetConfig::retransmit_gap`], so loss
    /// manifests as latency, never as absence.
    pub loss_rate: f64,
    /// Gap before a lost transmission is retried.
    pub retransmit_gap: Dur,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            min_delay: Dur::from_micros(1_500),
            max_delay: Dur::from_micros(2_500),
            loss_rate: 0.0,
            retransmit_gap: Dur::from_millis(10),
        }
    }
}

impl NetConfig {
    /// A LAN-ish profile matching the paper's testbed (3–5 ms RPC round
    /// trips ⇒ 1.5–2.5 ms one-way).
    pub fn paper_lan() -> Self {
        NetConfig::default()
    }

    /// A lossy profile for chaos tests.
    pub fn lossy(loss_rate: f64) -> Self {
        NetConfig { loss_rate, ..NetConfig::default() }
    }

    /// Zero-jitter profile: every message takes exactly the mean latency.
    /// Used by step-count experiments (Figure 7) where determinism of the
    /// interleaving matters.
    pub fn deterministic() -> Self {
        let mean = Dur::from_micros(2_000);
        NetConfig {
            min_delay: mean,
            max_delay: mean,
            loss_rate: 0.0,
            retransmit_gap: Dur::from_millis(10),
        }
    }
}

/// Dynamic link state: directional blocks with explicit heal times, plus
/// the fault plane's per-link [`LinkFault`] table (drop/delay/duplicate,
/// installed via `Host::schedule_fault` and held until healed).
#[derive(Debug, Default)]
pub struct LinkState {
    blocked_until: HashMap<(NodeId, NodeId), Time>,
    faults: HashMap<(NodeId, NodeId), LinkFault>,
}

impl LinkState {
    /// Blocks the directed link `from → to` until `heal_at`.
    pub fn block(&mut self, from: NodeId, to: NodeId, heal_at: Time) {
        let slot = self.blocked_until.entry((from, to)).or_insert(heal_at);
        if *slot < heal_at {
            *slot = heal_at;
        }
    }

    /// Blocks both directions between every pair across the two groups.
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId], heal_at: Time) {
        for &a in side_a {
            for &b in side_b {
                self.block(a, b, heal_at);
                self.block(b, a, heal_at);
            }
        }
    }

    /// If the link is blocked at `now`, returns when it heals.
    pub fn blocked_until(&self, from: NodeId, to: NodeId, now: Time) -> Option<Time> {
        match self.blocked_until.get(&(from, to)) {
            Some(&t) if t > now => Some(t),
            _ => None,
        }
    }

    /// Drops expired entries (housekeeping; correctness never depends on it).
    pub fn compact(&mut self, now: Time) {
        self.blocked_until.retain(|_, &mut t| t > now);
    }

    /// Installs (or replaces) the fault on the directed link `from → to`.
    /// A no-op fault clears the entry.
    pub fn set_fault(&mut self, from: NodeId, to: NodeId, fault: LinkFault) {
        if fault.is_noop() {
            self.faults.remove(&(from, to));
        } else {
            self.faults.insert((from, to), fault);
        }
    }

    /// Removes any fault on the directed link `from → to`.
    pub fn clear_fault(&mut self, from: NodeId, to: NodeId) {
        self.faults.remove(&(from, to));
    }

    /// The fault currently installed on `from → to`, if any. An empty
    /// table costs one hash lookup per send and nothing else — the fault
    /// plane is observationally invisible to runs that never use it.
    pub fn fault_on(&self, from: NodeId, to: NodeId) -> Option<LinkFault> {
        self.faults.get(&(from, to)).copied()
    }
}

/// Samples the end-to-end delay of one logical (reliable) transmission:
/// base latency plus retransmission penalties for lost attempts and blocked
/// links.
pub fn sample_delivery_delay(
    cfg: &NetConfig,
    links: &LinkState,
    rng: &mut Rng,
    from: NodeId,
    to: NodeId,
    now: Time,
) -> Dur {
    let mut at = now;
    // A blocked link delays the first successful attempt until it heals.
    if let Some(heal) = links.blocked_until(from, to, now) {
        at = heal;
    }
    // Geometric number of lost attempts, each costing a retransmission gap.
    let mut attempts: u32 = 0;
    while rng.chance(cfg.loss_rate) && attempts < 1_000 {
        attempts += 1;
        at += cfg.retransmit_gap;
    }
    let latency = rng.range_dur(cfg.min_delay, cfg.max_delay);
    (at + latency).since(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_delay_within_bounds() {
        let cfg = NetConfig::default();
        let links = LinkState::default();
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let d = sample_delivery_delay(&cfg, &links, &mut rng, NodeId(0), NodeId(1), Time::ZERO);
            assert!(d >= cfg.min_delay && d <= cfg.max_delay, "{d:?}");
        }
    }

    #[test]
    fn loss_adds_retransmission_gaps() {
        let cfg = NetConfig::lossy(0.5);
        let links = LinkState::default();
        let mut rng = Rng::new(2);
        let n = 10_000;
        let total: u64 = (0..n)
            .map(|_| {
                sample_delivery_delay(&cfg, &links, &mut rng, NodeId(0), NodeId(1), Time::ZERO).0
            })
            .sum();
        let mean = Dur(total / n);
        // Expected ≈ 1 extra gap on average at 50% loss (geometric mean 1).
        assert!(mean > cfg.retransmit_gap, "mean {mean}");
        assert!(mean < Dur::from_millis(40), "mean {mean}");
    }

    #[test]
    fn blocked_link_delays_until_heal() {
        let cfg = NetConfig::default();
        let mut links = LinkState::default();
        links.block(NodeId(0), NodeId(1), Time(1_000_000));
        let mut rng = Rng::new(3);
        let d = sample_delivery_delay(&cfg, &links, &mut rng, NodeId(0), NodeId(1), Time(0));
        assert!(d >= Dur(1_000_000), "{d:?}");
        // Reverse direction unaffected.
        let d2 = sample_delivery_delay(&cfg, &links, &mut rng, NodeId(1), NodeId(0), Time(0));
        assert!(d2 <= cfg.max_delay);
    }

    #[test]
    fn partition_blocks_both_directions_and_heals() {
        let cfg = NetConfig::deterministic();
        let mut links = LinkState::default();
        links.partition(&[NodeId(0)], &[NodeId(1), NodeId(2)], Time(500_000));
        assert!(links.blocked_until(NodeId(0), NodeId(2), Time(0)).is_some());
        assert!(links.blocked_until(NodeId(2), NodeId(0), Time(0)).is_some());
        assert!(links.blocked_until(NodeId(1), NodeId(2), Time(0)).is_none());
        // After healing.
        assert!(links.blocked_until(NodeId(0), NodeId(2), Time(500_000)).is_none());
        let mut rng = Rng::new(4);
        let d = sample_delivery_delay(&cfg, &links, &mut rng, NodeId(0), NodeId(1), Time(600_000));
        assert_eq!(d, Dur::from_micros(2_000));
    }

    #[test]
    fn compact_removes_expired() {
        let mut links = LinkState::default();
        links.block(NodeId(0), NodeId(1), Time(10));
        links.block(NodeId(0), NodeId(2), Time(1_000));
        links.compact(Time(500));
        assert!(links.blocked_until(NodeId(0), NodeId(2), Time(0)).is_some());
        assert!(links.blocked_until(NodeId(0), NodeId(1), Time(0)).is_none());
    }

    #[test]
    fn block_keeps_latest_heal_time() {
        let mut links = LinkState::default();
        links.block(NodeId(0), NodeId(1), Time(1_000));
        links.block(NodeId(0), NodeId(1), Time(500)); // earlier heal must not shorten
        assert_eq!(links.blocked_until(NodeId(0), NodeId(1), Time(0)), Some(Time(1_000)));
    }
}
