//! Run observability: the collected trace and message statistics.

use etx_base::trace::{TraceEvent, TraceKind};
use std::collections::BTreeMap;

/// The totally ordered record of everything observable that happened in a
/// run. The experiment harness and the property checker consume this.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Appends an event (kernel-internal).
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events matching a predicate on the kind.
    pub fn count_kind(&self, mut pred: impl FnMut(&TraceKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// First event matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> Option<&TraceEvent> {
        self.events.iter().find(|e| pred(e))
    }
}

/// Message-volume accounting, used by the Figure 7 experiment ("total
/// messages exchanged") and by tests asserting protocol overheads.
#[derive(Debug, Default)]
pub struct MsgStats {
    per_label: BTreeMap<&'static str, u64>,
    total: u64,
    background: u64,
    dropped_to_down: u64,
}

impl MsgStats {
    pub(crate) fn record_sent(&mut self, label: &'static str, background: bool) {
        *self.per_label.entry(label).or_insert(0) += 1;
        self.total += 1;
        if background {
            self.background += 1;
        }
    }

    pub(crate) fn record_dropped_to_down(&mut self) {
        self.dropped_to_down += 1;
    }

    /// Messages sent with the given label.
    pub fn sent(&self, label: &str) -> u64 {
        self.per_label.get(label).copied().unwrap_or(0)
    }

    /// All (label, count) pairs, alphabetically.
    pub fn by_label(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.per_label.iter().map(|(&l, &c)| (l, c))
    }

    /// Total messages sent (including background heartbeats).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Protocol messages only (heartbeats excluded).
    pub fn protocol_total(&self) -> u64 {
        self.total - self.background
    }

    /// Messages whose receiver was down at delivery time.
    pub fn dropped_to_down(&self) -> u64 {
        self.dropped_to_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::NodeId;
    use etx_base::time::Time;

    #[test]
    fn trace_collects_in_order() {
        let mut t = Trace::default();
        assert!(t.is_empty());
        t.push(TraceEvent::new(Time(1), NodeId(0), TraceKind::Note("a")));
        t.push(TraceEvent::new(Time(2), NodeId(1), TraceKind::Note("b")));
        assert_eq!(t.len(), 2);
        assert_eq!(t.count_kind(|k| matches!(k, TraceKind::Note(_))), 2);
        assert_eq!(t.find(|e| e.node == NodeId(1)).unwrap().at, Time(2));
    }

    #[test]
    fn stats_classify_background() {
        let mut s = MsgStats::default();
        s.record_sent("Request", false);
        s.record_sent("Heartbeat", true);
        s.record_sent("Heartbeat", true);
        s.record_dropped_to_down();
        assert_eq!(s.total(), 3);
        assert_eq!(s.protocol_total(), 1);
        assert_eq!(s.sent("Heartbeat"), 2);
        assert_eq!(s.sent("nope"), 0);
        assert_eq!(s.dropped_to_down(), 1);
        assert_eq!(s.by_label().count(), 2);
    }
}
