//! Run observability: the collected trace and message statistics.
//!
//! The concrete types moved to `etx-base::trace` when the runtime seam
//! grew a second (threaded) backend — both hosts fill the same sink types,
//! which is what keeps the harness accessors and the §3 property checker
//! backend-neutral. Re-exported here so `etx_sim::{Trace, MsgStats}` paths
//! keep working.

pub use etx_base::trace::{MsgStats, Trace};
