//! Simulated stable storage: named append-only logs that survive crashes.
//!
//! §2: "The crash of a process has no impact on its stable storage." The
//! kernel owns one [`StableStorage`] per node, outside the process object,
//! so crashing a node (dropping its process) cannot touch it. Costs of
//! *forced* writes are modelled by the kernel's cost model, not here.

use etx_base::wal::StableRecord;
use std::collections::BTreeMap;

/// One node's stable storage: a set of named logs.
#[derive(Debug, Default)]
pub struct StableStorage {
    logs: BTreeMap<&'static str, Vec<StableRecord>>,
}

impl StableStorage {
    /// Empty storage.
    pub fn new() -> Self {
        StableStorage::default()
    }

    /// Appends a record to `log`, creating the log on first use.
    pub fn append(&mut self, log: &'static str, rec: StableRecord) {
        self.logs.entry(log).or_default().push(rec);
    }

    /// Reads a log back (empty slice if never written).
    pub fn read(&self, log: &'static str) -> &[StableRecord] {
        self.logs.get(log).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of records in a log.
    pub fn len(&self, log: &'static str) -> usize {
        self.read(log).len()
    }

    /// True when the named log has no records.
    pub fn is_empty(&self, log: &'static str) -> bool {
        self.len(log) == 0
    }

    /// Truncates a log to its first `keep` records (checkpointing /
    /// garbage-collection support).
    pub fn truncate(&mut self, log: &'static str, keep: usize) {
        if let Some(l) = self.logs.get_mut(log) {
            l.truncate(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::{NodeId, RequestId, ResultId};
    use etx_base::value::Outcome;
    use etx_base::wal::LOG_WAL;

    fn rid(seq: u64) -> ResultId {
        ResultId::first(RequestId { client: NodeId(0), seq })
    }

    #[test]
    fn append_read_roundtrip() {
        let mut s = StableStorage::new();
        assert!(s.is_empty(LOG_WAL));
        s.append(LOG_WAL, StableRecord::CoordStart { rid: rid(1) });
        s.append(LOG_WAL, StableRecord::DbOutcome { rid: rid(1), outcome: Outcome::Commit });
        assert_eq!(s.len(LOG_WAL), 2);
        assert_eq!(s.read(LOG_WAL)[0].rid(), rid(1));
        assert_eq!(s.read("other"), &[]);
    }

    #[test]
    fn logs_are_independent() {
        let mut s = StableStorage::new();
        s.append("a", StableRecord::CoordStart { rid: rid(1) });
        s.append("b", StableRecord::CoordStart { rid: rid(2) });
        assert_eq!(s.len("a"), 1);
        assert_eq!(s.len("b"), 1);
        assert_eq!(s.read("a")[0].rid(), rid(1));
        assert_eq!(s.read("b")[0].rid(), rid(2));
    }

    #[test]
    fn truncate_for_checkpointing() {
        let mut s = StableStorage::new();
        for i in 0..5 {
            s.append(LOG_WAL, StableRecord::CoordStart { rid: rid(i) });
        }
        s.truncate(LOG_WAL, 2);
        assert_eq!(s.len(LOG_WAL), 2);
        s.truncate("missing", 0); // no-op, no panic
    }
}
