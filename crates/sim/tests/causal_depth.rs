//! Causal-depth tracking: the mechanism behind the Figure 7 step counts.
//! A chain of relays must see depth grow by exactly one per hop; timer
//! continuations inherit the arming event's depth; background traffic
//! stays at depth zero.

use etx_base::ids::{NodeId, RequestId, ResultId};
use etx_base::msg::{FdMsg, Payload, PbMsg};
use etx_base::runtime::{Context, Event, Process, TimerTag};
use etx_base::time::{Dur, Time};
use etx_base::trace::TraceKind;
use etx_sim::{Sim, SimConfig};

fn rid() -> ResultId {
    ResultId::first(RequestId { client: NodeId(0), seq: 1 })
}

/// Relays a protocol message down a chain, probing observed depth through
/// the `steps` field of a Deliver trace event.
struct Relay {
    next: Option<NodeId>,
}

impl Process for Relay {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init if ctx.me() == NodeId(0) => {
                // Kick the chain with a protocol (non-background) message.
                ctx.send(NodeId(1), Payload::Pb(PbMsg::AckStart { rid: rid() }));
            }
            Event::Message { payload: Payload::Pb(_), .. } => {
                ctx.trace(TraceKind::Deliver {
                    rid: rid(),
                    outcome: etx_base::value::Outcome::Commit,
                    steps: ctx.depth(),
                });
                if let Some(next) = self.next {
                    ctx.send(next, Payload::Pb(PbMsg::AckStart { rid: rid() }));
                }
            }
            _ => {}
        }
    }
}

#[test]
fn depth_grows_one_per_hop() {
    let mut sim = Sim::new(SimConfig::with_seed(1));
    for i in 0..5u32 {
        let next = if i < 4 { Some(NodeId(i + 1)) } else { None };
        sim.add_node("relay", Box::new(move |_| Box::new(Relay { next })));
    }
    sim.run_until_time(Time(60_000));
    let depths: Vec<u32> = sim
        .trace()
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Deliver { steps, .. } => Some(steps),
            _ => None,
        })
        .collect();
    assert_eq!(depths, vec![1, 2, 3, 4], "one step per hop");
}

/// A timer continuation must inherit the depth of the event that armed it.
struct TimerChain;

impl Process for TimerChain {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init if ctx.me() == NodeId(0) => {
                ctx.send(NodeId(1), Payload::Pb(PbMsg::AckStart { rid: rid() }));
            }
            Event::Message { payload: Payload::Pb(_), .. } => {
                // Defer the next step through a timer (like a service cost).
                ctx.set_timer(Dur::from_millis(1), TimerTag::PbTick);
            }
            Event::Timer { .. } => {
                ctx.trace(TraceKind::Deliver {
                    rid: rid(),
                    outcome: etx_base::value::Outcome::Commit,
                    steps: ctx.depth(),
                });
            }
            _ => {}
        }
    }
}

#[test]
fn timer_continuations_preserve_causal_depth() {
    let mut sim = Sim::new(SimConfig::with_seed(2));
    sim.add_node("a", Box::new(|_| Box::new(TimerChain)));
    sim.add_node("b", Box::new(|_| Box::new(TimerChain)));
    sim.run_until_time(Time(60_000));
    let depth = sim
        .trace()
        .events()
        .iter()
        .find_map(|e| match e.kind {
            TraceKind::Deliver { steps, .. } => Some(steps),
            _ => None,
        })
        .unwrap();
    // The message arrived at depth 1; the timer continues at depth 1
    // (service time adds latency, not a communication step).
    assert_eq!(depth, 1);
}

/// Heartbeats are background: they never contribute depth.
struct Beater;

impl Process for Beater {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init => {
                ctx.send(NodeId(1 - ctx.me().0), Payload::Fd(FdMsg::Heartbeat { seq: 0 }));
            }
            Event::Message { payload: Payload::Fd(_), .. } => {
                ctx.trace(TraceKind::Deliver {
                    rid: rid(),
                    outcome: etx_base::value::Outcome::Commit,
                    steps: ctx.depth(),
                });
            }
            _ => {}
        }
    }
}

#[test]
fn background_messages_have_zero_depth() {
    let mut sim = Sim::new(SimConfig::with_seed(3));
    sim.add_node("a", Box::new(|_| Box::new(Beater)));
    sim.add_node("b", Box::new(|_| Box::new(Beater)));
    sim.run_until_time(Time(60_000));
    let depths: Vec<u32> = sim
        .trace()
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Deliver { steps, .. } => Some(steps),
            _ => None,
        })
        .collect();
    assert!(!depths.is_empty());
    assert!(depths.iter().all(|&d| d == 0), "{depths:?}");
}

/// Explicit-depth sends (`send_at_depth`) override the automatic rule —
/// the aggregation hook protocols use after wait-for-all points.
struct Aggregator;

impl Process for Aggregator {
    fn on_event(&mut self, ctx: &mut dyn Context, event: Event) {
        match event {
            Event::Init if ctx.me() == NodeId(0) => {
                ctx.send_at_depth(9, NodeId(1), Payload::Pb(PbMsg::AckStart { rid: rid() }));
            }
            Event::Message { payload: Payload::Pb(_), .. } => {
                ctx.trace(TraceKind::Deliver {
                    rid: rid(),
                    outcome: etx_base::value::Outcome::Commit,
                    steps: ctx.depth(),
                });
            }
            _ => {}
        }
    }
}

#[test]
fn explicit_depth_override() {
    let mut sim = Sim::new(SimConfig::with_seed(4));
    sim.add_node("a", Box::new(|_| Box::new(Aggregator)));
    sim.add_node("b", Box::new(|_| Box::new(Aggregator)));
    sim.run_until_time(Time(60_000));
    let depth = sim
        .trace()
        .events()
        .iter()
        .find_map(|e| match e.kind {
            TraceKind::Deliver { steps, .. } => Some(steps),
            _ => None,
        })
        .unwrap();
    assert_eq!(depth, 10, "explicit base depth 9 + one hop");
}
