//! The transactional engine: an XA resource manager in miniature.
//!
//! The paper treats a database server as "a stateful, autonomous resource
//! that runs the XA interface" (§1) and models only its commitment surface:
//! `vote()` (XA prepare) and `decide()` (XA commit/rollback) with the
//! contract of §2:
//!
//! * `decide(j, abort)` returns abort;
//! * if the server voted **yes** for `j` and the input is commit, the
//!   return is commit;
//! * a yes vote is a durable promise: the branch's redo information is
//!   **forced** to the write-ahead log before the vote leaves the server,
//!   and recovery restores prepared branches *with their locks held*
//!   (in-doubt transactions — the reason the paper's T.2 matters).
//!
//! The engine is sans-I/O: it mutates in-memory state and *returns* the log
//! records (with force flags) for its host process to append via the
//! runtime, so the same engine is testable in isolation and drivable from
//! the simulator.

use crate::locks::{LockGrant, LockMode, LockTable};
use etx_base::ids::ResultId;
use etx_base::time::Dur;
use etx_base::value::{DbOp, ExecStatus, OpOutput, Outcome, Vote};
use etx_base::wal::StableRecord;
use std::collections::{BTreeMap, HashMap};

/// A log record the host must append, and whether it must be forced
/// (synchronous) before the operation's reply may leave the server.
#[derive(Debug, Clone, PartialEq)]
pub struct LogWrite {
    /// The record.
    pub rec: StableRecord,
    /// Forced (synchronous) or buffered.
    pub force: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchState {
    Active,
    Doomed,
    Prepared,
}

#[derive(Debug)]
struct Branch {
    state: BranchState,
    /// Write set: key → new value (redo information).
    writes: BTreeMap<String, i64>,
}

pub use etx_base::value::{ShippedCommit, ShippedEntries};

/// One stashed speculative batch execution, keyed by the decision-log slot
/// its batch was *proposed* into. Everything here is provisional: the
/// overlay is a snapshot layered over committed state, never written
/// through to `data`, the WAL or the replication outbox, and the whole
/// stash is volatile (a crash discards it — recovery replays only decided
/// state, which is exactly the correctness story).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecSlot {
    /// The proposed `(branch, outcome)` pairs, in proposal order. The
    /// decided slot must match these exactly for the stash to promote.
    pub entries: Vec<(ResultId, Outcome)>,
    /// The per-branch acknowledgements the batch would produce.
    pub acks: Vec<(ResultId, Outcome)>,
    /// Buffered writes: committed state as it *would* look after the
    /// batch, expressed as an overlay (key → post-batch value).
    pub overlay: BTreeMap<String, i64>,
    /// Device time the host pre-paid when it executed the batch
    /// speculatively (so promotion can attribute latency spans to it).
    pub cost: Dur,
}

/// What promoting a matched speculation yields: exactly what
/// [`Engine::decide_batch`] would have returned, plus the pre-paid cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecPromotion {
    /// Per-branch applied outcomes, for the batched acknowledgement.
    pub acks: Vec<(ResultId, Outcome)>,
    /// The (group) WAL append the promotion must make durable.
    pub writes: Vec<LogWrite>,
    /// Device time already charged at speculation time.
    pub cost: Dur,
}

/// What [`Engine::apply_replicated`] did with an incoming apply.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplApply {
    /// Log records for every apply that landed (the in-order one plus any
    /// buffered successors it unblocked), in apply order.
    pub writes: Vec<LogWrite>,
    /// The apply arrived beyond a gap — the caller should request a
    /// snapshot from the primary.
    pub need_sync: bool,
}

/// The in-memory transactional engine of one database server.
///
/// Besides the XA surface, the engine carries both sides of intra-shard
/// asynchronous replication: as a **primary** it counts every local commit
/// into a dense ship sequence and queues the write set in an outbox for
/// the host to broadcast; as a **follower** it applies shipped commits
/// strictly in sequence order (buffering out-of-order arrivals) so its
/// state is always a prefix of the primary's committed history.
#[derive(Debug, Default)]
pub struct Engine {
    data: BTreeMap<String, i64>,
    branches: HashMap<ResultId, Branch>,
    locks: LockTable,
    decided: HashMap<ResultId, Outcome>,
    /// Primary role: dense counter of locally decided commits (ship order).
    ship_seq: u64,
    /// Primary role: committed write sets awaiting broadcast by the host.
    outbox: Vec<ShippedCommit>,
    /// Follower role: highest contiguously applied ship position.
    repl_last_seq: u64,
    /// Follower role: out-of-order applies waiting for their predecessors.
    repl_pending: BTreeMap<u64, (ResultId, ShippedEntries)>,
    /// Primary role: stashed speculative batch executions, keyed by the
    /// proposed decision-log slot. Volatile by design — never recovered.
    spec: BTreeMap<u64, SpecSlot>,
}

impl Engine {
    /// Empty engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Engine pre-seeded with committed data (workload setup).
    pub fn with_data(data: impl IntoIterator<Item = (String, i64)>) -> Self {
        Engine { data: data.into_iter().collect(), ..Engine::default() }
    }

    /// Committed value of `key` (ignores uncommitted branch writes).
    pub fn committed(&self, key: &str) -> Option<i64> {
        self.data.get(key).copied()
    }

    /// All committed data (test assertions).
    pub fn snapshot(&self) -> &BTreeMap<String, i64> {
        &self.data
    }

    /// Memoized decision for a branch, if any (idempotence across
    /// retransmitted `Decide` messages).
    pub fn decision(&self, rid: ResultId) -> Option<Outcome> {
        self.decided.get(&rid).copied()
    }

    /// Whether `rid` is an in-doubt (prepared, undecided) branch.
    pub fn is_prepared(&self, rid: ResultId) -> bool {
        matches!(self.branches.get(&rid).map(|b| b.state), Some(BranchState::Prepared))
    }

    /// Every in-doubt (prepared, undecided) branch. Used by a recovering
    /// lease-granting primary to rebuild its renewal-withholding set: a
    /// WAL-recovered prepared branch is a live cross-shard transaction,
    /// and leases must not be renewed while one exists.
    pub fn prepared_rids(&self) -> Vec<ResultId> {
        let mut rids: Vec<ResultId> = self
            .branches
            .iter()
            .filter(|(_, b)| b.state == BranchState::Prepared)
            .map(|(&rid, _)| rid)
            .collect();
        rids.sort_unstable();
        rids
    }

    /// Number of keys currently locked (diagnostics).
    pub fn locked_keys(&self) -> usize {
        self.locks.locked_keys()
    }

    /// Snapshot read: executes a batch of pure [`DbOp::Get`] operations
    /// against **committed** state, opening no branch, taking no locks and
    /// writing nothing. This is the engine half of the read fast path:
    /// because the lock table is never consulted, a snapshot read can
    /// never conflict with — and therefore never doom — a concurrent
    /// writer, and a concurrent writer's uncommitted branch writes are
    /// never visible to it.
    ///
    /// Non-read operations are a caller bug (the router only sends
    /// all-`Get` scripts down this path); they are answered as absent
    /// values in release builds and panic in debug builds.
    pub fn read_only(&self, ops: &[DbOp]) -> Vec<OpOutput> {
        ops.iter()
            .map(|op| match op {
                DbOp::Get { key } => OpOutput::Value(self.committed(key)),
                other => {
                    debug_assert!(false, "non-read op {other:?} on the snapshot-read path");
                    OpOutput::Value(None)
                }
            })
            .collect()
    }

    /// Primary role: current commit-ship position (the dense counter of
    /// locally decided commits). Piggybacked on decide acknowledgements so
    /// application servers can stamp follower reads with the freshest
    /// position they have observed.
    pub fn ship_position(&self) -> u64 {
        self.ship_seq
    }

    /// Whether any **prepared** (in-doubt) branch holds a pending write to
    /// a key one of `ops` reads. This is the store half of multi-shard
    /// snapshot validation: a cross-shard transaction between its first
    /// and last per-shard commit is prepared exactly at the shards that
    /// have not applied it yet, so a snapshot that read those keys here
    /// while seeing the transaction's effect elsewhere would be fractured.
    /// Active and doomed branches are ignored — their writes cannot have
    /// committed anywhere yet.
    pub fn indoubt_read_conflict(&self, ops: &[DbOp]) -> bool {
        self.branches
            .values()
            .filter(|b| b.state == BranchState::Prepared)
            .any(|b| ops.iter().filter_map(DbOp::key).any(|k| b.writes.contains_key(k)))
    }

    fn effective(&self, rid: ResultId, key: &str) -> Option<i64> {
        if let Some(b) = self.branches.get(&rid) {
            if let Some(&v) = b.writes.get(key) {
                return Some(v);
            }
        }
        self.committed(key)
    }

    fn doom(&mut self, rid: ResultId) {
        self.locks.release_all(rid);
        if let Some(b) = self.branches.get_mut(&rid) {
            b.state = BranchState::Doomed;
            b.writes.clear();
        } else {
            self.branches
                .insert(rid, Branch { state: BranchState::Doomed, writes: BTreeMap::new() });
        }
    }

    /// Executes a batch of business-logic operations inside branch `rid`
    /// (the transient manipulation behind the paper's `compute()`). Creates
    /// the branch on first use.
    ///
    /// A lock conflict dooms the branch (no-wait policy), releases its locks
    /// and returns [`ExecStatus::Conflict`]; the branch will vote no.
    pub fn execute(&mut self, rid: ResultId, ops: &[DbOp]) -> ExecStatus {
        if let Some(outcome) = self.decided.get(&rid) {
            // A decided branch cannot execute further work; treat as
            // conflict so the caller aborts this attempt. (Can occur only
            // with duplicated/very late Exec messages.)
            let _ = outcome;
            return ExecStatus::Conflict;
        }
        match self.branches.get(&rid).map(|b| b.state) {
            Some(BranchState::Doomed) => return ExecStatus::Conflict,
            Some(BranchState::Prepared) => return ExecStatus::Conflict,
            _ => {}
        }
        self.branches
            .entry(rid)
            .or_insert(Branch { state: BranchState::Active, writes: BTreeMap::new() });
        let mut outputs = Vec::with_capacity(ops.len());
        for op in ops {
            // Locking.
            if let Some(key) = op.key() {
                let mode = if op.is_write() { LockMode::Exclusive } else { LockMode::Shared };
                if self.locks.acquire(key, rid, mode) == LockGrant::Conflict {
                    self.doom(rid);
                    return ExecStatus::Conflict;
                }
            }
            // Semantics.
            let out = match op {
                DbOp::Get { key } => OpOutput::Value(self.effective(rid, key)),
                DbOp::Put { key, value } => {
                    self.branches
                        .get_mut(&rid)
                        .expect("branch exists")
                        .writes
                        .insert(key.clone(), *value);
                    OpOutput::Updated(*value)
                }
                DbOp::Add { key, delta } => {
                    let new = self.effective(rid, key).unwrap_or(0) + delta;
                    self.branches
                        .get_mut(&rid)
                        .expect("branch exists")
                        .writes
                        .insert(key.clone(), new);
                    OpOutput::Updated(new)
                }
                DbOp::Reserve { key, qty } => {
                    let have = self.effective(rid, key).unwrap_or(0);
                    if have >= *qty {
                        let remaining = have - qty;
                        self.branches
                            .get_mut(&rid)
                            .expect("branch exists")
                            .writes
                            .insert(key.clone(), remaining);
                        OpOutput::Reserved { remaining }
                    } else {
                        OpOutput::SoldOut
                    }
                }
                DbOp::Doom => {
                    self.doom(rid);
                    outputs.push(OpOutput::Doomed);
                    return ExecStatus::Done(outputs);
                }
            };
            outputs.push(out);
        }
        ExecStatus::Done(outputs)
    }

    /// XA prepare: returns the vote and any log writes the host must apply.
    /// A yes vote is accompanied by a **forced** `Prepared` record carrying
    /// the branch's redo set.
    pub fn vote(&mut self, rid: ResultId) -> (Vote, Vec<LogWrite>) {
        if let Some(outcome) = self.decided.get(&rid) {
            // Already decided (e.g. duplicated Prepare after a Decide): the
            // vote follows the decision.
            return match outcome {
                Outcome::Commit => (Vote::Yes, Vec::new()),
                Outcome::Abort => (Vote::No, Vec::new()),
            };
        }
        match self.branches.get_mut(&rid) {
            Some(b) if b.state == BranchState::Active => {
                b.state = BranchState::Prepared;
                let writes: Vec<(String, i64)> =
                    b.writes.iter().map(|(k, &v)| (k.clone(), v)).collect();
                (
                    Vote::Yes,
                    vec![LogWrite { rec: StableRecord::Prepared { rid, writes }, force: true }],
                )
            }
            Some(b) if b.state == BranchState::Prepared => (Vote::Yes, Vec::new()),
            // Doomed, or unknown (e.g. the server crashed and lost the
            // unprepared branch — the `Ready` path).
            _ => (Vote::No, Vec::new()),
        }
    }

    /// XA decide, with the §2 contract. Returns the applied outcome and log
    /// writes (commit records are forced; abort is presumed and buffered).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if asked to commit a branch that never voted
    /// yes — the protocol's validity property V.2 makes that unreachable;
    /// release builds conservatively abort instead.
    pub fn decide(&mut self, rid: ResultId, outcome: Outcome) -> (Outcome, Vec<LogWrite>) {
        if let Some(&prev) = self.decided.get(&rid) {
            return (prev, Vec::new()); // idempotent re-delivery
        }
        let applied = match outcome {
            Outcome::Abort => {
                self.locks.release_all(rid);
                self.branches.remove(&rid);
                Outcome::Abort
            }
            Outcome::Commit => {
                match self.branches.get(&rid).map(|b| b.state) {
                    Some(BranchState::Prepared) => {
                        let b = self.branches.remove(&rid).expect("prepared branch");
                        let shipped: ShippedEntries =
                            b.writes.iter().map(|(k, &v)| (k.clone(), v)).collect();
                        for (k, v) in b.writes {
                            self.data.insert(k, v);
                        }
                        self.locks.release_all(rid);
                        self.ship_seq += 1;
                        self.outbox.push((self.ship_seq, rid, shipped));
                        Outcome::Commit
                    }
                    None => {
                        // Vacuous commit: this server was not involved in
                        // the transaction (the cleaner and crash-recovery
                        // paths push decisions to *every* database, §4).
                        // Nothing to apply; record the outcome for
                        // idempotence and consistency (A.3). Shipped empty
                        // so the replication sequence stays dense (it must
                        // mirror the count of logged commit outcomes, which
                        // is how recovery restores the counter).
                        self.ship_seq += 1;
                        self.outbox.push((self.ship_seq, rid, ShippedEntries::from([])));
                        Outcome::Commit
                    }
                    Some(state) => {
                        // A branch this server executed (or doomed) but
                        // never successfully prepared can only be committed
                        // by a caller violating V.2 — unreachable under the
                        // protocol.
                        debug_assert!(
                            false,
                            "decide(commit) for unprepared branch {rid} ({state:?}) — \
                             V.2 violated by caller"
                        );
                        self.locks.release_all(rid);
                        self.branches.remove(&rid);
                        self.decided.insert(rid, Outcome::Abort);
                        return (
                            Outcome::Abort,
                            vec![LogWrite {
                                rec: StableRecord::DbOutcome { rid, outcome: Outcome::Abort },
                                force: false,
                            }],
                        );
                    }
                }
            }
        };
        self.decided.insert(rid, applied);
        let force = applied == Outcome::Commit;
        (applied, vec![LogWrite { rec: StableRecord::DbOutcome { rid, outcome: applied }, force }])
    }

    /// XA decide for a whole batch (one decided decision-log slot's worth
    /// of outcomes): applies every entry with the exact per-branch
    /// semantics of [`Engine::decide`], then frames all resulting records
    /// into **one** group WAL append — the group-commit move that pays a
    /// single log force for N outcomes. Returns the per-branch applied
    /// outcomes (for the batched acknowledgement) and at most one
    /// [`LogWrite`]: a bare record when only one branch produced log
    /// output (so a batch of one is byte-identical to the unbatched
    /// protocol on disk), a [`StableRecord::Group`] frame otherwise.
    pub fn decide_batch(
        &mut self,
        entries: &[(ResultId, Outcome)],
    ) -> (Vec<(ResultId, Outcome)>, Vec<LogWrite>) {
        let mut acks = Vec::with_capacity(entries.len());
        let mut members = Vec::new();
        let mut force = false;
        for &(rid, outcome) in entries {
            let (applied, writes) = self.decide(rid, outcome);
            acks.push((rid, applied));
            for w in writes {
                force |= w.force;
                members.push(w.rec);
            }
        }
        let writes = match members.len() {
            0 => Vec::new(),
            1 => vec![LogWrite { rec: members.remove(0), force }],
            _ => vec![LogWrite { rec: StableRecord::Group { records: members }, force }],
        };
        (acks, writes)
    }

    // ---- speculative batch execution ----------------------------------------

    /// Executes a *proposed* (not yet decided) batch against a speculative
    /// snapshot: computes the would-be acknowledgements and buffers the
    /// would-be writes as an overlay over committed state, without
    /// touching `data`, the lock table, the decision memo, the WAL or the
    /// replication outbox. The stash is keyed by the proposed slot, and a
    /// pipelined window stacks several stashes at once — each slot's
    /// overlay layered over the one below it ([`Engine::speculative_view`]
    /// reads youngest-first through the stack). The first proposal stashed
    /// for a slot wins (a second is refused), and a stash beyond `cap`
    /// evicts the oldest slot — **with every stash above it**, because the
    /// slots above were executed against the evicted base
    /// ([`Engine::evict_speculation`]); a cap below the pipeline depth
    /// therefore thrashes the whole stack, which is why hosts floor the
    /// cap at the configured depth. `cost` records whatever device time
    /// the host pre-paid for the execution.
    ///
    /// Returns whether the batch was stashed. Refusals are harmless: the
    /// slot simply decides the ordinary decide-then-execute way.
    pub fn speculate(
        &mut self,
        slot: u64,
        entries: &[(ResultId, Outcome)],
        cost: Dur,
        cap: usize,
    ) -> bool {
        if self.spec.contains_key(&slot) {
            return false;
        }
        let mut overlay = BTreeMap::new();
        let mut acks = Vec::with_capacity(entries.len());
        for &(rid, outcome) in entries {
            let applied = if let Some(&prev) = self.decided.get(&rid) {
                prev
            } else {
                match outcome {
                    Outcome::Abort => Outcome::Abort,
                    Outcome::Commit => match self.branches.get(&rid).map(|b| b.state) {
                        Some(BranchState::Prepared) => {
                            let b = self.branches.get(&rid).expect("prepared branch");
                            for (k, &v) in &b.writes {
                                overlay.insert(k.clone(), v);
                            }
                            Outcome::Commit
                        }
                        // Vacuous commit (this server not involved).
                        None => Outcome::Commit,
                        // Would violate V.2 if it ever decided this way;
                        // speculate the conservative answer.
                        Some(_) => Outcome::Abort,
                    },
                }
            };
            acks.push((rid, applied));
        }
        while self.spec.len() >= cap.max(1) {
            let oldest = *self.spec.keys().next().expect("non-empty stash");
            self.evict_speculation(oldest);
        }
        self.spec.insert(slot, SpecSlot { entries: entries.to_vec(), acks, overlay, cost });
        true
    }

    /// Discards the stash for `slot` **and every stash above it** — the
    /// cascading abort of the pipelined window: slots speculate in slot
    /// order, so the stashes above `slot` were executed against a base
    /// that included it; once that base is wrong (mismatch) or gone
    /// (eviction), their buffered work is unsound to promote and must
    /// replay decide-then-execute. Returns the evicted slot ids in
    /// ascending order, so the host can drop its per-slot bookkeeping
    /// (pre-paid completion instants) in lockstep.
    pub fn evict_speculation(&mut self, slot: u64) -> Vec<u64> {
        let evicted: Vec<u64> = self.spec.range(slot..).map(|(&s, _)| s).collect();
        self.spec.retain(|&s, _| s < slot);
        evicted
    }

    /// The value of `key` as the speculative stack sees it: youngest
    /// stashed overlay first, committed state last. Diagnostics and tests
    /// — committed reads ([`Engine::committed`]) never consult the stack.
    pub fn speculative_view(&self, key: &str) -> Option<i64> {
        for stash in self.spec.values().rev() {
            if let Some(&v) = stash.overlay.get(key) {
                return Some(v);
            }
        }
        self.committed(key)
    }

    /// Resolves the speculation stash against slot `slot`'s **decided**
    /// batch. On an exact match (same branches, same outcomes, same
    /// order) the buffered execution is promoted — internally this runs
    /// [`Engine::decide_batch`], so the applied state, WAL framing, ship
    /// sequence and acknowledgements are *provably* those of the
    /// non-speculative path — and `Some(promotion)` is returned. On a
    /// mismatch (another proposer won the slot, or first-occurrence
    /// filtering changed the batch) the stash is discarded and `None`
    /// says "replay on the ordinary path".
    ///
    /// Every stash at or below `slot` is always dropped: slots apply in
    /// order, so those proposals can never be decided unchanged again. A
    /// **mismatch additionally cascades upward** — the stashes above
    /// `slot` were speculated over a base that assumed `slot` decided as
    /// proposed, so once it decided differently their buffered work is
    /// discarded too and those slots replay decide-then-execute from
    /// `slot` up. On a match the stashes above survive: their base held.
    pub fn promote_speculation(
        &mut self,
        slot: u64,
        decided: &[(ResultId, Outcome)],
    ) -> Option<SpecPromotion> {
        let stash = self.spec.remove(&slot);
        if stash.as_ref().is_some_and(|s| s.entries != decided) {
            self.evict_speculation(slot);
        }
        self.spec.retain(|&s, _| s > slot);
        let stash = stash.filter(|s| s.entries == decided)?;
        let (acks, writes) = self.decide_batch(decided);
        debug_assert!(
            stash.overlay.iter().all(|(k, v)| self.data.get(k) == Some(v)),
            "promoted overlay must equal the decided application"
        );
        Some(SpecPromotion { acks, writes, cost: stash.cost })
    }

    /// The stash for a proposed slot, if any (tests and diagnostics).
    pub fn speculation(&self, slot: u64) -> Option<&SpecSlot> {
        self.spec.get(&slot)
    }

    /// Number of speculation buffers currently stashed.
    pub fn spec_slots(&self) -> usize {
        self.spec.len()
    }

    /// The proposed slots currently stashed, in ascending order. The host
    /// keeps its per-slot bookkeeping (pre-paid completion instants) in
    /// **lockstep** with this set: whatever the engine's inflight-cap
    /// eviction dropped must be dropped there too, or a capped slot could
    /// later promote a buffer that no longer exists — or be acknowledged
    /// at an instant pre-paid for work that was thrown away.
    pub fn spec_slot_ids(&self) -> Vec<u64> {
        self.spec.keys().copied().collect()
    }

    /// One-phase commit for the unreliable baseline (Figure 7a): commit an
    /// *active* branch directly, no vote, no forced protocol log (the
    /// database's own commit cost is modelled by the host).
    pub fn commit_one_phase(&mut self, rid: ResultId) -> (bool, Vec<LogWrite>) {
        if self.decided.get(&rid) == Some(&Outcome::Commit) {
            return (true, Vec::new());
        }
        match self.branches.get(&rid).map(|b| b.state) {
            Some(BranchState::Active) => {
                let b = self.branches.remove(&rid).expect("active branch");
                let shipped: ShippedEntries =
                    b.writes.iter().map(|(k, &v)| (k.clone(), v)).collect();
                for (k, v) in b.writes {
                    self.data.insert(k, v);
                }
                self.locks.release_all(rid);
                self.ship_seq += 1;
                self.outbox.push((self.ship_seq, rid, shipped));
                self.decided.insert(rid, Outcome::Commit);
                (
                    true,
                    vec![LogWrite {
                        rec: StableRecord::DbOutcome { rid, outcome: Outcome::Commit },
                        force: true,
                    }],
                )
            }
            _ => (false, Vec::new()),
        }
    }

    // ---- intra-shard asynchronous replication -------------------------------

    /// Primary role: drains the committed write sets queued since the last
    /// drain, in ship order. The host broadcasts each as a `ReplMsg::Apply`
    /// to the shard's followers (a host without followers just drops them).
    pub fn take_repl_outbox(&mut self) -> Vec<ShippedCommit> {
        std::mem::take(&mut self.outbox)
    }

    /// Primary role: the current committed state and ship position, for
    /// answering a follower's `SyncReq`.
    pub fn repl_snapshot(&self) -> (u64, Vec<(String, i64)>) {
        (self.ship_seq, self.data.iter().map(|(k, &v)| (k.clone(), v)).collect())
    }

    /// Follower role: highest contiguously applied ship position
    /// (diagnostics and tests).
    pub fn repl_position(&self) -> u64 {
        self.repl_last_seq
    }

    /// Follower role: processes a whole shipped batch (the primary's
    /// batched form of commit shipping). Exactly equivalent to applying
    /// each item through [`Engine::apply_replicated`] in order; the
    /// aggregate `need_sync` reports whether a gap remained after the last
    /// item.
    pub fn apply_replicated_batch(&mut self, items: Vec<ShippedCommit>) -> ReplApply {
        let mut writes = Vec::new();
        let mut need_sync = false;
        for (seq, rid, entries) in items {
            let res = self.apply_replicated(seq, rid, entries);
            writes.extend(res.writes);
            need_sync = res.need_sync;
        }
        ReplApply { writes, need_sync }
    }

    /// Follower role: processes one shipped commit. Applies it (and any
    /// buffered successors it unblocks) if it is next in sequence; buffers
    /// it if it is ahead of a gap and asks the host to sync; drops it if it
    /// is a duplicate of something already applied.
    pub fn apply_replicated(
        &mut self,
        seq: u64,
        rid: ResultId,
        entries: ShippedEntries,
    ) -> ReplApply {
        if seq <= self.repl_last_seq {
            return ReplApply { writes: Vec::new(), need_sync: false };
        }
        self.repl_pending.insert(seq, (rid, entries));
        let writes = self.drain_repl_pending();
        // Anything still pending is beyond a gap: commits this follower
        // missed (it was down when they shipped). Ask for a snapshot.
        ReplApply { writes, need_sync: !self.repl_pending.is_empty() }
    }

    /// Follower role: adopts a full snapshot from the primary (recovery
    /// catch-up). A stale snapshot (at or below the current position) is
    /// ignored; a fresh one replaces the committed state wholesale and
    /// fast-forwards the position, after which buffered applies beyond it
    /// drain in order.
    pub fn adopt_repl_snapshot(&mut self, seq: u64, entries: Vec<(String, i64)>) -> Vec<LogWrite> {
        if seq <= self.repl_last_seq {
            return Vec::new();
        }
        self.data = entries.iter().cloned().collect();
        self.repl_last_seq = seq;
        self.repl_pending.retain(|&s, _| s > seq);
        let mut writes = vec![LogWrite {
            rec: StableRecord::Replicated { seq, rid: ResultId::repl_snapshot(), writes: entries },
            force: false,
        }];
        writes.extend(self.drain_repl_pending());
        writes
    }

    fn drain_repl_pending(&mut self) -> Vec<LogWrite> {
        let mut out = Vec::new();
        while let Some(entry) = self.repl_pending.remove(&(self.repl_last_seq + 1)) {
            let (rid, entries) = entry;
            for (k, &v) in entries.iter().map(|(k, v)| (k, v)) {
                self.data.insert(k.clone(), v);
            }
            self.repl_last_seq += 1;
            // The log record owns its bytes (stable storage, not the wire),
            // so the shared entries are materialized here — the one copy
            // the durable append genuinely needs.
            out.push(LogWrite {
                rec: StableRecord::Replicated {
                    seq: self.repl_last_seq,
                    rid,
                    writes: entries.to_vec(),
                },
                force: false,
            });
        }
        out
    }

    /// Rebuilds an engine from the write-ahead log after a crash:
    /// committed branches are replayed (redo), prepared-but-undecided
    /// branches are restored **with their exclusive locks re-acquired**
    /// (in-doubt), everything else is gone (presumed abort).
    pub fn recover(log: &[StableRecord]) -> Engine {
        Self::recover_with_seed(Vec::<(String, i64)>::new(), log)
    }

    /// [`Engine::recover`] starting from pre-crash seed data (the workload's
    /// initial table contents, which a real database would have on disk
    /// already); replayed log values overwrite seeds.
    pub fn recover_with_seed(
        seed: impl IntoIterator<Item = (String, i64)>,
        log: &[StableRecord],
    ) -> Engine {
        let mut e = Engine::with_data(seed);
        let mut prepared: HashMap<ResultId, Vec<(String, i64)>> = HashMap::new();
        // Group frames (batched commit / batched replication appends)
        // unfold to their members in order: framing is a durability
        // optimisation, invisible to replay semantics.
        for rec in log.iter().flat_map(|r| r.leaves()) {
            match rec {
                StableRecord::Prepared { rid, writes } => {
                    prepared.insert(*rid, writes.clone());
                }
                StableRecord::DbOutcome { rid, outcome } => {
                    if let Some(writes) = prepared.remove(rid) {
                        if *outcome == Outcome::Commit {
                            for (k, v) in writes {
                                e.data.insert(k, v);
                            }
                        }
                    }
                    if *outcome == Outcome::Commit {
                        // Restore the primary-role ship counter: every
                        // logged commit outcome was (or will be, see the
                        // host's outbox drain) shipped exactly once, so the
                        // counter is the count of commit records.
                        e.ship_seq += 1;
                    }
                    e.decided.insert(*rid, *outcome);
                }
                StableRecord::Replicated { seq, rid: _, writes } => {
                    // Follower-role replay: records were appended in apply
                    // order, so the last one fixes the replication cursor.
                    for (k, v) in writes {
                        e.data.insert(k.clone(), *v);
                    }
                    e.repl_last_seq = *seq;
                }
                // Coordinator records belong to the 2PC baseline's log and
                // are ignored by database recovery. Groups never appear as
                // leaves (flattened above).
                StableRecord::CoordStart { .. }
                | StableRecord::CoordOutcome { .. }
                | StableRecord::Group { .. } => {}
            }
        }
        // Whatever is still prepared is in-doubt: restore branch + locks.
        for (rid, writes) in prepared {
            for (k, _) in &writes {
                let g = e.locks.acquire(k, rid, LockMode::Exclusive);
                debug_assert_eq!(g, LockGrant::Granted, "in-doubt locks cannot conflict");
            }
            e.branches.insert(
                rid,
                Branch { state: BranchState::Prepared, writes: writes.into_iter().collect() },
            );
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::{NodeId, RequestId};

    fn rid(n: u64) -> ResultId {
        ResultId::first(RequestId { client: NodeId(0), seq: n })
    }

    fn put(key: &str, value: i64) -> DbOp {
        DbOp::Put { key: key.into(), value }
    }

    #[test]
    fn execute_prepare_commit_roundtrip() {
        let mut e = Engine::new();
        let r = rid(1);
        let st = e.execute(r, &[put("acct", 100), DbOp::Add { key: "acct".into(), delta: -30 }]);
        assert_eq!(st, ExecStatus::Done(vec![OpOutput::Updated(100), OpOutput::Updated(70)]));
        // Nothing committed yet.
        assert_eq!(e.committed("acct"), None);
        let (v, logs) = e.vote(r);
        assert_eq!(v, Vote::Yes);
        assert_eq!(logs.len(), 1);
        assert!(logs[0].force, "prepare record must be forced");
        let (o, logs2) = e.decide(r, Outcome::Commit);
        assert_eq!(o, Outcome::Commit);
        assert!(logs2[0].force, "commit record must be forced");
        assert_eq!(e.committed("acct"), Some(70));
        assert_eq!(e.locked_keys(), 0, "commit releases locks");
    }

    #[test]
    fn abort_discards_everything() {
        let mut e = Engine::with_data([("k".to_string(), 5)]);
        let r = rid(1);
        e.execute(r, &[put("k", 99)]);
        let (v, _) = e.vote(r);
        assert_eq!(v, Vote::Yes);
        let (o, logs) = e.decide(r, Outcome::Abort);
        assert_eq!(o, Outcome::Abort);
        assert!(!logs[0].force, "abort records are presumed (lazy)");
        assert_eq!(e.committed("k"), Some(5));
        assert_eq!(e.locked_keys(), 0);
    }

    #[test]
    fn decide_is_idempotent() {
        let mut e = Engine::new();
        let r = rid(1);
        e.execute(r, &[put("k", 1)]);
        e.vote(r);
        let (o1, l1) = e.decide(r, Outcome::Commit);
        let (o2, l2) = e.decide(r, Outcome::Commit);
        assert_eq!(o1, Outcome::Commit);
        assert_eq!(o2, Outcome::Commit);
        assert_eq!(l1.len(), 1);
        assert!(l2.is_empty(), "re-delivery writes nothing");
        // decide(abort) after commit returns the memoized commit — the
        // paper's A.3 makes conflicting inputs unreachable, but the engine
        // still answers deterministically.
        let (o3, _) = e.decide(r, Outcome::Abort);
        assert_eq!(o3, Outcome::Commit);
    }

    #[test]
    fn vote_unknown_branch_is_no() {
        let mut e = Engine::new();
        let (v, logs) = e.vote(rid(9));
        assert_eq!(v, Vote::No);
        assert!(logs.is_empty());
    }

    #[test]
    fn vote_is_idempotent_single_force() {
        let mut e = Engine::new();
        let r = rid(1);
        e.execute(r, &[put("k", 1)]);
        let (v1, l1) = e.vote(r);
        let (v2, l2) = e.vote(r);
        assert_eq!((v1, v2), (Vote::Yes, Vote::Yes));
        assert_eq!(l1.len(), 1);
        assert!(l2.is_empty(), "second prepare forces nothing new");
    }

    #[test]
    fn doomed_branch_votes_no_and_releases_locks() {
        let mut e = Engine::new();
        let r = rid(1);
        let st = e.execute(r, &[put("k", 1), DbOp::Doom]);
        assert!(matches!(st, ExecStatus::Done(ref o) if o.last() == Some(&OpOutput::Doomed)));
        assert_eq!(e.locked_keys(), 0, "doom releases locks immediately");
        assert_eq!(e.vote(r).0, Vote::No);
        // Another branch can take the key at once.
        assert!(matches!(e.execute(rid(2), &[put("k", 7)]), ExecStatus::Done(_)));
    }

    #[test]
    fn lock_conflict_dooms_requester_not_holder() {
        let mut e = Engine::new();
        let (r1, r2) = (rid(1), rid(2));
        assert!(matches!(e.execute(r1, &[put("k", 1)]), ExecStatus::Done(_)));
        assert_eq!(e.execute(r2, &[put("k", 2)]), ExecStatus::Conflict);
        assert_eq!(e.vote(r2).0, Vote::No);
        assert_eq!(e.vote(r1).0, Vote::Yes, "holder unaffected");
    }

    #[test]
    fn reserve_semantics() {
        let mut e = Engine::with_data([("seats".to_string(), 2)]);
        let r = rid(1);
        let st = e.execute(
            r,
            &[
                DbOp::Reserve { key: "seats".into(), qty: 1 },
                DbOp::Reserve { key: "seats".into(), qty: 1 },
                DbOp::Reserve { key: "seats".into(), qty: 1 },
            ],
        );
        assert_eq!(
            st,
            ExecStatus::Done(vec![
                OpOutput::Reserved { remaining: 1 },
                OpOutput::Reserved { remaining: 0 },
                OpOutput::SoldOut,
            ])
        );
        e.vote(r);
        e.decide(r, Outcome::Commit);
        assert_eq!(e.committed("seats"), Some(0));
    }

    #[test]
    fn sold_out_is_still_committable() {
        // The paper's user-level abort: an informative result that commits.
        let mut e = Engine::with_data([("seats".to_string(), 0)]);
        let r = rid(1);
        let st = e.execute(r, &[DbOp::Reserve { key: "seats".into(), qty: 1 }]);
        assert_eq!(st, ExecStatus::Done(vec![OpOutput::SoldOut]));
        assert_eq!(e.vote(r).0, Vote::Yes);
        assert_eq!(e.decide(r, Outcome::Commit).0, Outcome::Commit);
        assert_eq!(e.committed("seats"), Some(0));
    }

    #[test]
    fn recovery_replays_committed_and_restores_indoubt() {
        let mut e = Engine::new();
        let mut wal: Vec<StableRecord> = Vec::new();
        // r1 commits fully.
        let r1 = rid(1);
        e.execute(r1, &[put("a", 10)]);
        let (_, l) = e.vote(r1);
        wal.extend(l.into_iter().map(|w| w.rec));
        let (_, l) = e.decide(r1, Outcome::Commit);
        wal.extend(l.into_iter().map(|w| w.rec));
        // r2 prepares, then the server "crashes" before any decide.
        let r2 = rid(2);
        e.execute(r2, &[put("b", 20)]);
        let (_, l) = e.vote(r2);
        wal.extend(l.into_iter().map(|w| w.rec));
        // r3 was active, never prepared — its writes must vanish.
        let r3 = rid(3);
        e.execute(r3, &[put("c", 30)]);

        let mut recovered = Engine::recover(&wal);
        assert_eq!(recovered.committed("a"), Some(10), "committed data survives");
        assert_eq!(recovered.committed("b"), None, "in-doubt not visible");
        assert_eq!(recovered.committed("c"), None, "unprepared work is gone");
        assert!(recovered.is_prepared(r2), "in-doubt branch restored");
        // In-doubt branch still holds its lock: a new writer conflicts.
        assert_eq!(recovered.execute(rid(4), &[put("b", 99)]), ExecStatus::Conflict);
        // vote() after recovery: r2 yes (prepared), r3 no (lost).
        assert_eq!(recovered.vote(r2).0, Vote::Yes);
        assert_eq!(recovered.vote(r3).0, Vote::No);
        // Late decide(commit) lands correctly.
        let (o, _) = recovered.decide(r2, Outcome::Commit);
        assert_eq!(o, Outcome::Commit);
        assert_eq!(recovered.committed("b"), Some(20));
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut e = Engine::new();
        let mut wal: Vec<StableRecord> = Vec::new();
        let r = rid(1);
        e.execute(r, &[put("x", 1)]);
        let (_, l) = e.vote(r);
        wal.extend(l.into_iter().map(|w| w.rec));
        let (_, l) = e.decide(r, Outcome::Commit);
        wal.extend(l.into_iter().map(|w| w.rec));
        let once = Engine::recover(&wal);
        let twice = Engine::recover(&wal);
        assert_eq!(once.snapshot(), twice.snapshot());
        assert_eq!(once.decision(r), twice.decision(r));
    }

    #[test]
    fn decided_memo_survives_recovery() {
        // A Decide retransmitted after a crash must be answered from the
        // log, not re-applied.
        let mut e = Engine::new();
        let mut wal: Vec<StableRecord> = Vec::new();
        let r = rid(1);
        e.execute(r, &[put("x", 5)]);
        for w in e.vote(r).1 {
            wal.push(w.rec);
        }
        for w in e.decide(r, Outcome::Commit).1 {
            wal.push(w.rec);
        }
        let mut rec = Engine::recover(&wal);
        let (o, logs) = rec.decide(r, Outcome::Commit);
        assert_eq!(o, Outcome::Commit);
        assert!(logs.is_empty());
        assert_eq!(rec.committed("x"), Some(5));
    }

    #[test]
    fn indoubt_read_conflict_tracks_the_prepared_window() {
        let mut e = Engine::with_data([("k".to_string(), 1), ("other".to_string(), 2)]);
        let r = rid(1);
        let read = [DbOp::Get { key: "k".into() }];
        let miss = [DbOp::Get { key: "other".into() }];
        // Active branch: writes cannot have committed anywhere — no flag.
        e.execute(r, &[put("k", 9)]);
        assert!(!e.indoubt_read_conflict(&read));
        // Prepared (in-doubt): the half-applied window — flag on the
        // written key only.
        e.vote(r);
        assert!(e.indoubt_read_conflict(&read));
        assert!(!e.indoubt_read_conflict(&miss));
        // Decided: window closed.
        e.decide(r, Outcome::Commit);
        assert!(!e.indoubt_read_conflict(&read));
    }

    #[test]
    fn one_phase_commit_baseline() {
        let mut e = Engine::new();
        let r = rid(1);
        e.execute(r, &[put("k", 3)]);
        let (ok, logs) = e.commit_one_phase(r);
        assert!(ok);
        assert_eq!(logs.len(), 1);
        assert_eq!(e.committed("k"), Some(3));
        // Idempotent.
        let (ok2, logs2) = e.commit_one_phase(r);
        assert!(ok2);
        assert!(logs2.is_empty());
        // Unknown branch fails.
        assert!(!e.commit_one_phase(rid(9)).0);
    }

    #[test]
    fn exec_after_prepare_is_rejected() {
        let mut e = Engine::new();
        let r = rid(1);
        e.execute(r, &[put("k", 1)]);
        e.vote(r);
        assert_eq!(e.execute(r, &[put("k", 2)]), ExecStatus::Conflict);
    }

    #[test]
    fn commits_enter_the_replication_outbox_in_ship_order() {
        let mut e = Engine::new();
        for i in 1..=3u64 {
            let r = rid(i);
            e.execute(r, &[put(&format!("k{i}"), i as i64)]);
            e.vote(r);
            e.decide(r, if i == 2 { Outcome::Abort } else { Outcome::Commit });
        }
        let box1 = e.take_repl_outbox();
        assert_eq!(box1.len(), 2, "aborts do not ship");
        assert_eq!(box1[0].0, 1);
        assert_eq!(box1[1].0, 2);
        assert_eq!(box1[0].2.to_vec(), vec![("k1".to_string(), 1)]);
        assert!(e.take_repl_outbox().is_empty(), "drain empties the outbox");
    }

    #[test]
    fn follower_applies_in_sequence_and_buffers_gaps() {
        let mut f = Engine::new();
        // seq 2 arrives first: buffered, gap detected.
        let r2 = f.apply_replicated(2, rid(2), vec![("b".into(), 2)].into());
        assert!(r2.writes.is_empty());
        assert!(r2.need_sync);
        assert_eq!(f.committed("b"), None);
        // seq 1 arrives: both drain, in order.
        let r1 = f.apply_replicated(1, rid(1), vec![("a".into(), 1)].into());
        assert_eq!(r1.writes.len(), 2);
        assert!(!r1.need_sync);
        assert_eq!(f.committed("a"), Some(1));
        assert_eq!(f.committed("b"), Some(2));
        assert_eq!(f.repl_position(), 2);
        // Duplicates are dropped.
        let dup = f.apply_replicated(1, rid(1), vec![("a".into(), 99)].into());
        assert!(dup.writes.is_empty() && !dup.need_sync);
        assert_eq!(f.committed("a"), Some(1));
    }

    #[test]
    fn snapshot_adoption_fast_forwards_and_ignores_stale() {
        let mut f = Engine::with_data([("seed".to_string(), 7)]);
        f.apply_replicated(1, rid(1), vec![("a".into(), 1)].into());
        // Buffered apply beyond the snapshot drains after adoption.
        let pending = f.apply_replicated(5, rid(5), vec![("e".into(), 5)].into());
        assert!(pending.need_sync);
        let writes =
            f.adopt_repl_snapshot(4, vec![("seed".into(), 7), ("a".into(), 1), ("d".into(), 4)]);
        assert_eq!(writes.len(), 2, "snapshot record plus the drained apply");
        assert_eq!(f.repl_position(), 5);
        assert_eq!(f.committed("d"), Some(4));
        assert_eq!(f.committed("e"), Some(5));
        // Stale snapshot is a no-op.
        assert!(f.adopt_repl_snapshot(3, vec![("x".into(), 9)]).is_empty());
        assert_eq!(f.committed("x"), None);
    }

    #[test]
    fn recovery_restores_both_replication_roles() {
        // Primary side: ship counter equals logged commit outcomes.
        let mut p = Engine::new();
        let mut wal = Vec::new();
        for i in 1..=2u64 {
            let r = rid(i);
            p.execute(r, &[put("k", i as i64)]);
            for w in p.vote(r).1 {
                wal.push(w.rec);
            }
            for w in p.decide(r, Outcome::Commit).1 {
                wal.push(w.rec);
            }
        }
        let p2 = Engine::recover(&wal);
        let (seq, snap) = p2.repl_snapshot();
        assert_eq!(seq, 2);
        assert_eq!(snap, vec![("k".to_string(), 2)]);

        // Follower side: replicated records restore data and the cursor.
        let mut f = Engine::new();
        let mut fwal = Vec::new();
        for w in f.apply_replicated(1, rid(1), vec![("a".into(), 1)].into()).writes {
            fwal.push(w.rec);
        }
        for w in f.apply_replicated(2, rid(2), vec![("a".into(), 3)].into()).writes {
            fwal.push(w.rec);
        }
        let f2 = Engine::recover(&fwal);
        assert_eq!(f2.committed("a"), Some(3));
        assert_eq!(f2.repl_position(), 2);
    }

    #[test]
    fn decide_batch_frames_one_group_record_and_matches_singleton_semantics() {
        let mut e = Engine::new();
        for i in 1..=3u64 {
            e.execute(rid(i), &[put(&format!("k{i}"), i as i64)]);
            e.vote(rid(i));
        }
        let entries =
            vec![(rid(1), Outcome::Commit), (rid(2), Outcome::Abort), (rid(3), Outcome::Commit)];
        let (acks, writes) = e.decide_batch(&entries);
        assert_eq!(acks, entries, "every branch applies its own outcome");
        assert_eq!(writes.len(), 1, "one group append for the whole batch");
        assert!(writes[0].force, "a batch containing commits forces once");
        let leaves = writes[0].rec.leaves();
        assert_eq!(leaves.len(), 3, "frame carries all member outcome records");
        assert_eq!(e.committed("k1"), Some(1));
        assert_eq!(e.committed("k2"), None, "abort inside a batch still discards");
        assert_eq!(e.committed("k3"), Some(3));
        // Re-delivery of the whole batch writes nothing (memoized).
        let (acks2, writes2) = e.decide_batch(&entries);
        assert_eq!(acks2, entries);
        assert!(writes2.is_empty());
        // A batch of one stays a bare record — on-disk shape identical to
        // the unbatched protocol.
        let mut e2 = Engine::new();
        e2.execute(rid(9), &[put("x", 1)]);
        e2.vote(rid(9));
        let (_, w) = e2.decide_batch(&[(rid(9), Outcome::Commit)]);
        assert_eq!(w.len(), 1);
        assert!(matches!(w[0].rec, StableRecord::DbOutcome { .. }), "no frame around one record");
    }

    #[test]
    fn recovery_unfolds_group_frames() {
        let mut e = Engine::new();
        let mut wal: Vec<StableRecord> = Vec::new();
        for i in 1..=2u64 {
            e.execute(rid(i), &[put(&format!("g{i}"), 10 + i as i64)]);
            for w in e.vote(rid(i)).1 {
                wal.push(w.rec);
            }
        }
        let (_, writes) = e.decide_batch(&[(rid(1), Outcome::Commit), (rid(2), Outcome::Commit)]);
        for w in writes {
            wal.push(w.rec);
        }
        let rec = Engine::recover(&wal);
        assert_eq!(rec.committed("g1"), Some(11));
        assert_eq!(rec.committed("g2"), Some(12));
        assert_eq!(rec.decision(rid(1)), Some(Outcome::Commit));
        assert_eq!(rec.decision(rid(2)), Some(Outcome::Commit));
        let (seq, _) = rec.repl_snapshot();
        assert_eq!(seq, 2, "ship counter counts commits inside frames too");
    }

    #[test]
    fn batched_apply_equals_sequential_apply() {
        let mut a = Engine::new();
        let mut b = Engine::new();
        let items: Vec<ShippedCommit> = vec![
            (1u64, rid(1), vec![("x".to_string(), 1)].into()),
            (2u64, rid(2), vec![("y".to_string(), 2)].into()),
            (4u64, rid(4), vec![("z".to_string(), 4)].into()),
        ];
        for (seq, r, entries) in items.clone() {
            a.apply_replicated(seq, r, entries);
        }
        let res = b.apply_replicated_batch(items);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.repl_position(), b.repl_position());
        assert!(res.need_sync, "the 3→4 gap surfaces from the batched path too");
    }

    #[test]
    fn snapshot_catchup_into_empty_batch_window_is_a_safe_noop() {
        // A follower recovers into a window where the primary committed
        // NOTHING since the follower's crash: the catch-up snapshot carries
        // the ship position the follower already holds. Adoption must be a
        // no-op that loses nothing and leaves the follower ready for the
        // next shipped batch.
        let mut f = Engine::new();
        f.apply_replicated(1, rid(1), vec![("a".into(), 1)].into());
        f.apply_replicated(2, rid(2), vec![("b".into(), 2)].into());
        let before = f.snapshot().clone();
        let writes = f.adopt_repl_snapshot(2, vec![("a".into(), 1), ("b".into(), 2)]);
        assert!(writes.is_empty(), "empty window: nothing to adopt, nothing to log");
        assert_eq!(f.snapshot(), &before);
        assert_eq!(f.repl_position(), 2);
        // The stream continues seamlessly after the no-op catch-up.
        let next = f.apply_replicated(3, rid(3), vec![("c".into(), 3)].into());
        assert_eq!(next.writes.len(), 1);
        assert!(!next.need_sync);
        assert_eq!(f.committed("c"), Some(3));
    }

    #[test]
    fn snapshot_straddling_a_partially_shipped_batch_converges() {
        // The primary group-commits a batch that ships as positions 3..=5.
        // The follower crashed after applying 3, then receives a catch-up
        // snapshot taken at position 4 — *inside* the shipped batch — while
        // the batch's tail (5) arrives around it out of order. The follower
        // must converge on exactly the primary's state: no lost entry from
        // the straddled batch, no double-apply.
        let mut f = Engine::new();
        f.apply_replicated(1, rid(1), vec![("k1".into(), 1)].into());
        f.apply_replicated(2, rid(2), vec![("k2".into(), 2)].into());
        f.apply_replicated(3, rid(3), vec![("k3".into(), 3)].into());
        // Tail of the batch arrives first (4 was lost while the follower
        // was down): buffered beyond the gap, sync requested.
        let tail = f.apply_replicated(5, rid(5), vec![("k5".into(), 5)].into());
        assert!(tail.writes.is_empty() && tail.need_sync);
        // Snapshot taken mid-batch, at position 4.
        let snap: Vec<(String, i64)> =
            vec![("k1".into(), 1), ("k2".into(), 2), ("k3".into(), 3), ("k4".into(), 4)];
        let writes = f.adopt_repl_snapshot(4, snap);
        assert_eq!(writes.len(), 2, "snapshot record plus the drained batch tail");
        assert_eq!(f.repl_position(), 5);
        for (k, v) in [("k1", 1), ("k2", 2), ("k3", 3), ("k4", 4), ("k5", 5)] {
            assert_eq!(f.committed(k), Some(v), "{k} must hold the primary's value");
        }
        // A late duplicate of the straddled batch's head is dropped.
        let dup = f.apply_replicated(4, rid(4), vec![("k4".into(), 99)].into());
        assert!(dup.writes.is_empty() && !dup.need_sync);
        assert_eq!(f.committed("k4"), Some(4), "no double-apply of the straddled entry");
    }

    #[test]
    fn speculation_buffers_without_touching_observable_state() {
        let mut e = Engine::with_data([("k".to_string(), 1)]);
        e.execute(rid(1), &[put("k", 5)]);
        e.vote(rid(1));
        let entries = vec![(rid(1), Outcome::Commit)];
        assert!(e.speculate(7, &entries, Dur::from_millis(1), 4));
        // Nothing a client, follower or the WAL could see has changed.
        assert_eq!(e.committed("k"), Some(1), "overlay must not write through");
        assert!(e.take_repl_outbox().is_empty(), "nothing ships speculatively");
        assert_eq!(e.decision(rid(1)), None, "no decision memoized");
        assert!(e.is_prepared(rid(1)), "branch stays in-doubt, locks held");
        assert_eq!(e.ship_position(), 0);
        let s = e.speculation(7).expect("stashed");
        assert_eq!(s.overlay.get("k"), Some(&5));
        assert_eq!(s.acks, entries);
        assert_eq!(s.cost, Dur::from_millis(1));
        // First proposal stashed for a slot wins; a second is refused.
        assert!(!e.speculate(7, &entries, Dur::ZERO, 4));
    }

    #[test]
    fn promotion_on_match_equals_the_nonspeculative_run() {
        let build = || {
            let mut e = Engine::with_data([("a".to_string(), 0)]);
            for i in 1..=2u64 {
                e.execute(rid(i), &[put(&format!("a{i}"), i as i64)]);
                e.vote(rid(i));
            }
            e
        };
        let entries = vec![(rid(1), Outcome::Commit), (rid(2), Outcome::Abort)];
        // Speculating twin.
        let mut spec = build();
        assert!(spec.speculate(0, &entries, Dur::from_millis(3), 4));
        let p = spec.promote_speculation(0, &entries).expect("exact match promotes");
        assert_eq!(p.cost, Dur::from_millis(3));
        // Plain twin.
        let mut plain = build();
        let (acks, writes) = plain.decide_batch(&entries);
        assert_eq!(p.acks, acks);
        assert_eq!(p.writes, writes, "identical WAL bytes, identical framing");
        assert_eq!(spec.snapshot(), plain.snapshot());
        assert_eq!(spec.take_repl_outbox(), plain.take_repl_outbox());
        assert_eq!(spec.ship_position(), plain.ship_position());
        assert_eq!(spec.spec_slots(), 0, "promotion consumes the stash");
    }

    #[test]
    fn mismatched_speculation_discards_and_replays_cleanly() {
        let build = || {
            let mut e = Engine::new();
            for i in 1..=2u64 {
                e.execute(rid(i), &[put(&format!("m{i}"), 10 + i as i64)]);
                e.vote(rid(i));
            }
            e
        };
        let speculated = vec![(rid(1), Outcome::Commit), (rid(2), Outcome::Commit)];
        // The slot decides in the *other* order (another proposer won).
        let decided = vec![(rid(2), Outcome::Commit), (rid(1), Outcome::Commit)];
        let mut spec = build();
        assert!(spec.speculate(0, &speculated, Dur::from_millis(2), 4));
        assert!(spec.promote_speculation(0, &decided).is_none(), "order mismatch aborts");
        assert_eq!(spec.spec_slots(), 0, "mismatch still consumes the stash");
        // Replay on the ordinary path lands exactly the plain run's state.
        let (acks, writes) = spec.decide_batch(&decided);
        let mut plain = build();
        let (packs, pwrites) = plain.decide_batch(&decided);
        assert_eq!(acks, packs);
        assert_eq!(writes, pwrites);
        assert_eq!(spec.snapshot(), plain.snapshot());
        assert_eq!(spec.take_repl_outbox(), plain.take_repl_outbox());
    }

    #[test]
    fn speculation_stash_is_capped_and_gcs_below_the_decided_slot() {
        let mut e = Engine::new();
        let entries = |i: u64| vec![(rid(i), Outcome::Abort)];
        // Cap 2: stashing a third slot evicts the oldest — and the
        // cascade takes every stash above it (they were speculated over
        // the evicted base), so only the new stash remains.
        assert!(e.speculate(0, &entries(1), Dur::ZERO, 2));
        assert!(e.speculate(1, &entries(2), Dur::ZERO, 2));
        assert!(e.speculate(2, &entries(3), Dur::ZERO, 2));
        assert_eq!(e.spec_slot_ids(), [2], "cap eviction cascades upward");
        // Refill below the cap, then resolve a match mid-stack: the
        // matched slot promotes and the stash *above* survives (its base
        // held), while everything at or below is consumed.
        assert!(e.speculate(3, &entries(4), Dur::ZERO, 2));
        assert!(e.promote_speculation(2, &entries(3)).is_some());
        assert_eq!(e.spec_slot_ids(), [3], "slot 3's stash survives a match below");
        // Resolving a later slot with no stash still GCs stale ones.
        assert!(e.promote_speculation(5, &entries(9)).is_none());
        assert_eq!(e.spec_slots(), 0);
    }

    #[test]
    fn mid_window_eviction_and_mismatch_cascade_above() {
        let mut e = Engine::new();
        let entries = |i: u64| vec![(rid(i), Outcome::Abort)];
        for slot in 0..3u64 {
            assert!(e.speculate(slot, &entries(slot + 1), Dur::ZERO, 8));
        }
        // Evicting the middle of the window discards it and everything
        // above; the stash below survives untouched.
        assert_eq!(e.evict_speculation(1), [1, 2], "evicted ids reported for host lockstep");
        assert_eq!(e.spec_slot_ids(), [0], "slot 0 speculated over committed state alone");
        // A mismatched decide cascades the same way: refill the stack,
        // then decide slot 1 with a different batch than was speculated.
        assert!(e.speculate(1, &entries(2), Dur::ZERO, 8));
        assert!(e.speculate(2, &entries(3), Dur::ZERO, 8));
        assert!(e.promote_speculation(1, &entries(9)).is_none(), "mismatch");
        assert_eq!(e.spec_slots(), 0, "mismatch at slot 1 cascades over slot 2 (and GCs slot 0)");
    }

    #[test]
    fn speculative_view_reads_youngest_first_through_the_stack() {
        let mut e = Engine::with_data([("k".to_string(), 1)]);
        // Slot 0's batch writes k speculatively; its branch then decides
        // on the bare path (stash left behind), freeing the lock for a
        // second branch that writes k into slot 1's stash. Both overlays
        // now carry k — the younger must shadow the older.
        e.execute(rid(1), &[put("k", 2)]);
        e.vote(rid(1));
        assert!(e.speculate(0, &[(rid(1), Outcome::Commit)], Dur::ZERO, 8));
        assert_eq!(e.speculative_view("k"), Some(2), "single overlay shadows committed");
        assert_eq!(e.committed("k"), Some(1), "committed reads never consult the stack");
        e.decide(rid(1), Outcome::Commit);
        let r2 = ResultId::first(RequestId { client: NodeId(1), seq: 1 });
        e.execute(r2, &[put("k", 3)]);
        e.vote(r2);
        assert!(e.speculate(1, &[(r2, Outcome::Commit)], Dur::ZERO, 8));
        assert_eq!(e.speculative_view("k"), Some(3), "youngest overlay wins");
        e.evict_speculation(1);
        assert_eq!(e.speculative_view("k"), Some(2), "next layer down after eviction");
        e.evict_speculation(0);
        assert_eq!(e.speculative_view("k"), Some(2), "empty stack falls through to committed");
        assert_eq!(e.committed("k"), Some(2));
    }

    #[test]
    fn speculation_never_leaks_into_recovery() {
        // A primary crashes between SpecExec and the slot decision: its
        // WAL has no trace of the speculative execution, so recovery
        // rebuilds pre-batch state with the in-doubt branch intact.
        let mut e = Engine::new();
        let mut wal: Vec<StableRecord> = Vec::new();
        e.execute(rid(1), &[put("s", 9)]);
        for w in e.vote(rid(1)).1 {
            wal.push(w.rec);
        }
        assert!(e.speculate(3, &[(rid(1), Outcome::Commit)], Dur::ZERO, 4));
        // Crash now: only the WAL survives.
        let r = Engine::recover(&wal);
        assert_eq!(r.committed("s"), None, "speculative write never became durable");
        assert!(r.is_prepared(rid(1)), "in-doubt branch restored, locks held");
        assert_eq!(r.spec_slots(), 0, "the stash is volatile");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "V.2 violated"))]
    fn decide_commit_unprepared_panics_in_debug() {
        let mut e = Engine::new();
        let r = rid(1);
        e.execute(r, &[put("k", 1)]);
        // No vote! decide(commit) violates V.2.
        let (o, _) = e.decide(r, Outcome::Commit);
        // Release builds: conservative abort.
        assert_eq!(o, Outcome::Abort);
    }
}
