//! # etx-store — an XA-style transactional database engine
//!
//! The back-end tier substrate: the paper runs Oracle 8.0.3 behind the XA
//! interface; this crate provides the equivalent commitment contract over an
//! in-memory key-value store with strict two-phase locking, a write-ahead
//! log on (simulated) stable storage, forced prepare/commit records, and
//! crash recovery that restores **in-doubt** branches with their locks.
//!
//! See [`engine::Engine`] for the resource-manager surface (`execute`,
//! `vote`, `decide`, `commit_one_phase`, `recover`) and [`locks`] for the
//! serializability substrate the paper assumes in §3.
//!
//! ```
//! use etx_store::Engine;
//! use etx_base::ids::{NodeId, RequestId, ResultId};
//! use etx_base::value::{DbOp, Outcome, Vote};
//!
//! let mut db = Engine::with_data([("seats".to_string(), 3)]);
//! let rid = ResultId::first(RequestId { client: NodeId(0), seq: 1 });
//! db.execute(rid, &[DbOp::Reserve { key: "seats".into(), qty: 1 }]);
//! let (vote, _log) = db.vote(rid);
//! assert_eq!(vote, Vote::Yes);
//! let (outcome, _log) = db.decide(rid, Outcome::Commit);
//! assert_eq!(outcome, Outcome::Commit);
//! assert_eq!(db.committed("seats"), Some(2));
//! ```

pub mod engine;
pub mod locks;

pub use engine::{Engine, LogWrite, ReplApply, ShippedCommit};
pub use locks::{LockGrant, LockMode, LockTable};
