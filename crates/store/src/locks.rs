//! Strict two-phase locking with a no-wait conflict policy.
//!
//! The paper assumes "the existence of some serializability protocol" (§3)
//! inside the database tier; this lock table provides it. **No-wait** means
//! a conflicting request dooms the requesting branch instead of blocking —
//! the branch will vote *no*, the attempt aborts, and the client retries a
//! fresh attempt. This matches the paper's liveness assumption that "if an
//! application server keeps computing results, a result eventually commits"
//! (§4, footnote 4) without introducing deadlocks into the simulation.

use etx_base::ids::ResultId;
use std::collections::{HashMap, HashSet};

/// Lock strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers).
    Exclusive,
}

#[derive(Debug, Default)]
struct LockEntry {
    shared: HashSet<ResultId>,
    exclusive: Option<ResultId>,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockGrant {
    /// Acquired (or already held at sufficient strength).
    Granted,
    /// Conflicts with another branch — requester must abort (no-wait).
    Conflict,
}

/// A per-database lock table keyed by record key.
#[derive(Debug, Default)]
pub struct LockTable {
    entries: HashMap<String, LockEntry>,
}

impl LockTable {
    /// Empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Requests `mode` on `key` for branch `rid` (no-wait).
    pub fn acquire(&mut self, key: &str, rid: ResultId, mode: LockMode) -> LockGrant {
        let e = self.entries.entry(key.to_string()).or_default();
        match mode {
            LockMode::Shared => {
                match e.exclusive {
                    Some(holder) if holder != rid => LockGrant::Conflict,
                    _ => {
                        // X by self implies S; otherwise take S.
                        if e.exclusive.is_none() {
                            e.shared.insert(rid);
                        }
                        LockGrant::Granted
                    }
                }
            }
            LockMode::Exclusive => {
                if let Some(holder) = e.exclusive {
                    if holder == rid {
                        return LockGrant::Granted;
                    }
                    return LockGrant::Conflict;
                }
                let others_share = e.shared.iter().any(|&h| h != rid);
                if others_share {
                    return LockGrant::Conflict;
                }
                // Upgrade own shared lock (or fresh acquire).
                e.shared.remove(&rid);
                e.exclusive = Some(rid);
                LockGrant::Granted
            }
        }
    }

    /// Releases everything `rid` holds.
    pub fn release_all(&mut self, rid: ResultId) {
        self.entries.retain(|_, e| {
            e.shared.remove(&rid);
            if e.exclusive == Some(rid) {
                e.exclusive = None;
            }
            e.exclusive.is_some() || !e.shared.is_empty()
        });
    }

    /// Whether `rid` holds any lock on `key` at least as strong as `mode`.
    pub fn holds(&self, key: &str, rid: ResultId, mode: LockMode) -> bool {
        let Some(e) = self.entries.get(key) else { return false };
        match mode {
            LockMode::Shared => e.shared.contains(&rid) || e.exclusive == Some(rid),
            LockMode::Exclusive => e.exclusive == Some(rid),
        }
    }

    /// Number of keys with at least one lock (diagnostics / tests).
    pub fn locked_keys(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_base::ids::{NodeId, RequestId};

    fn rid(n: u64) -> ResultId {
        ResultId::first(RequestId { client: NodeId(0), seq: n })
    }

    #[test]
    fn shared_locks_coexist() {
        let mut t = LockTable::new();
        assert_eq!(t.acquire("k", rid(1), LockMode::Shared), LockGrant::Granted);
        assert_eq!(t.acquire("k", rid(2), LockMode::Shared), LockGrant::Granted);
        assert!(t.holds("k", rid(1), LockMode::Shared));
        assert!(t.holds("k", rid(2), LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes_everyone() {
        let mut t = LockTable::new();
        assert_eq!(t.acquire("k", rid(1), LockMode::Exclusive), LockGrant::Granted);
        assert_eq!(t.acquire("k", rid(2), LockMode::Exclusive), LockGrant::Conflict);
        assert_eq!(t.acquire("k", rid(2), LockMode::Shared), LockGrant::Conflict);
        // Re-entrant for the holder.
        assert_eq!(t.acquire("k", rid(1), LockMode::Exclusive), LockGrant::Granted);
        assert_eq!(t.acquire("k", rid(1), LockMode::Shared), LockGrant::Granted);
    }

    #[test]
    fn shared_blocks_exclusive_from_others() {
        let mut t = LockTable::new();
        assert_eq!(t.acquire("k", rid(1), LockMode::Shared), LockGrant::Granted);
        assert_eq!(t.acquire("k", rid(2), LockMode::Exclusive), LockGrant::Conflict);
    }

    #[test]
    fn upgrade_own_shared_to_exclusive() {
        let mut t = LockTable::new();
        assert_eq!(t.acquire("k", rid(1), LockMode::Shared), LockGrant::Granted);
        assert_eq!(t.acquire("k", rid(1), LockMode::Exclusive), LockGrant::Granted);
        assert!(t.holds("k", rid(1), LockMode::Exclusive));
        // But not if someone else shares it.
        let mut t2 = LockTable::new();
        t2.acquire("k", rid(1), LockMode::Shared);
        t2.acquire("k", rid(2), LockMode::Shared);
        assert_eq!(t2.acquire("k", rid(1), LockMode::Exclusive), LockGrant::Conflict);
    }

    #[test]
    fn release_unblocks() {
        let mut t = LockTable::new();
        t.acquire("a", rid(1), LockMode::Exclusive);
        t.acquire("b", rid(1), LockMode::Shared);
        t.release_all(rid(1));
        assert_eq!(t.locked_keys(), 0);
        assert_eq!(t.acquire("a", rid(2), LockMode::Exclusive), LockGrant::Granted);
        assert!(!t.holds("a", rid(1), LockMode::Shared));
    }

    #[test]
    fn exclusive_implies_shared_without_double_entry() {
        let mut t = LockTable::new();
        t.acquire("k", rid(1), LockMode::Exclusive);
        assert_eq!(t.acquire("k", rid(1), LockMode::Shared), LockGrant::Granted);
        t.release_all(rid(1));
        assert_eq!(t.acquire("k", rid(2), LockMode::Exclusive), LockGrant::Granted);
    }
}
