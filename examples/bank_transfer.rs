//! The "charged twice" story from the paper's introduction, played out.
//!
//! Scenario: the server crashes right after the database commits the
//! payment but before the user hears back. The user (or their browser)
//! retries.
//!
//! * Under **2PC with naive retry**: the request executes again — the
//!   account is charged twice (at-least-once).
//! * Under **e-Transactions**: the identical crash schedule yields exactly
//!   one charge and a delivered result.
//!
//! ```sh
//! cargo run --example bank_transfer
//! ```

use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::base::value::Outcome;
use etx::baselines::RetryPolicy;
use etx::harness::{MiddleTier, ScenarioBuilder, Workload};
use etx::sim::FaultAction;

fn commits(s: &etx::harness::Scenario) -> usize {
    s.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }))
}

fn main() {
    println!("== the same crash, two protocols ==\n");

    // --- 2PC + the retry every real user performs -----------------------
    let mut tpc = ScenarioBuilder::fast(MiddleTier::Tpc, 1)
        .workload(Workload::BankUpdate { amount: 100 })
        .client_retry(RetryPolicy::NaiveResend { max_retries: 4 })
        .requests(1)
        .build();
    let coord = tpc.topo.app_servers[0];
    let db = tpc.topo.db_servers[0];
    tpc.sim_mut().on_trace(
        move |ev| {
            ev.node == db && matches!(ev.kind, TraceKind::DbDecide { outcome: Outcome::Commit, .. })
        },
        FaultAction::CrashRecover(coord, Dur::from_millis(200)),
    );
    tpc.sim_mut().run_until(|s| {
        s.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }))
            >= 2
    });
    tpc.quiesce(Dur::from_millis(100));
    println!("2PC + naive retry : {} database commits — the user paid twice!", commits(&tpc));

    // --- e-Transactions under the same fault ----------------------------
    let mut etx_run = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 1)
        .workload(Workload::BankUpdate { amount: 100 })
        .requests(1)
        .build();
    let a1 = etx_run.topo.primary();
    let db2 = etx_run.topo.db_servers[0];
    etx_run.sim_mut().on_trace(
        move |ev| {
            ev.node == db2
                && matches!(ev.kind, TraceKind::DbDecide { outcome: Outcome::Commit, .. })
        },
        FaultAction::Crash(a1), // app servers are crash-stop; replicas cover
    );
    etx_run.run_until_settled(1);
    etx_run.quiesce(Dur::from_millis(100));
    println!(
        "e-Transactions    : {} database commit(s) — exactly once, result delivered",
        commits(&etx_run)
    );
    assert!(commits(&tpc) >= 2);
    assert_eq!(commits(&etx_run), 1);
    assert_eq!(etx_run.delivered_commits(), 1);
}
